"""The public pack/unpack API (MPI_Pack analogues)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import datatypes as dt
from repro.datatypes.packing import pack_typemap
from repro.errors import DatatypeError
from repro.pack import PackBuffer, pack, pack_size, unpack
from tests.conftest import datatype_trees, fill_pattern


class TestPackSize:
    def test_counts_data_bytes_only(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        assert pack_size(3, v) == 3 * 64

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            pack_size(-1, dt.INT)


class TestPackUnpack:
    def test_matches_oracle(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0:
                continue
            src = fill_pattern(t.true_ub + 8, seed=21)
            out = np.zeros(t.size + 16, dtype=np.uint8)
            pos = pack(src, 1, t, out, 8)
            assert pos == 8 + t.size
            assert (out[8:pos] == pack_typemap(src, 1, t)).all(), name

    def test_position_threading(self):
        a = np.arange(4, dtype=np.int32)
        b = np.arange(2, dtype=np.float64)
        out = np.zeros(64, dtype=np.uint8)
        pos = pack(a, 4, dt.INT, out, 0)
        pos = pack(b, 2, dt.DOUBLE, out, pos)
        assert pos == 32
        a2 = np.zeros(4, dtype=np.int32)
        b2 = np.zeros(2, dtype=np.float64)
        p = unpack(out, 0, a2, 4, dt.INT)
        p = unpack(out, p, b2, 2, dt.DOUBLE)
        assert p == 32
        assert (a2 == a).all() and (b2 == b).all()

    def test_overflow_rejected(self):
        out = np.zeros(8, dtype=np.uint8)
        with pytest.raises(DatatypeError):
            pack(np.zeros(4, np.int32), 4, dt.INT, out, 0)

    def test_unpack_underflow_rejected(self):
        with pytest.raises(DatatypeError):
            unpack(np.zeros(4, np.uint8), 0, np.zeros(2, np.float64), 2,
                   dt.DOUBLE)

    @settings(max_examples=40, deadline=None)
    @given(datatype_trees())
    def test_roundtrip_random_types(self, t):
        src = fill_pattern(t.true_ub + 8, seed=31)
        out = np.zeros(t.size, dtype=np.uint8)
        pack(src, 1, t, out, 0)
        dst = np.zeros_like(src)
        unpack(out, 0, dst, 1, t)
        assert (pack_typemap(dst, 1, t) == out).all()


class TestPackBuffer:
    def test_incremental_roundtrip(self):
        pb = PackBuffer(256)
        header = np.array([42, 7], dtype=np.int32)
        strided = np.arange(20, dtype=np.float64)
        vec = dt.vector(4, 2, 5, dt.DOUBLE)
        pb.add(header, 2, dt.INT)
        pb.add(strided, 1, vec)
        assert pb.position == 8 + 64

        up = pb.unpacker()
        h2 = np.zeros(2, dtype=np.int32)
        s2 = np.zeros(20, dtype=np.float64)
        up.take(h2, 2, dt.INT)
        up.take(s2, 1, vec)
        assert up.remaining == 0
        assert (h2 == header).all()
        mask = np.zeros(20, bool)
        for i in range(4):
            mask[i * 5 : i * 5 + 2] = True
        assert (s2[mask] == strided[mask]).all()

    def test_capacity_enforced(self):
        pb = PackBuffer(4)
        with pytest.raises(DatatypeError):
            pb.add(np.zeros(2, np.float64), 2, dt.DOUBLE)

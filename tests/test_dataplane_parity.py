"""Whole-access compiled programs and fused copies vs the interpreted walk.

Two differentials pin the data-plane refactor:

* the generalized residue reduction (``_periodicity`` descending
  nested/struct dataloops) — for random constructor trees, the compiled
  whole-access program translated by its base must reproduce
  ``blocks_range`` exactly, cold and from a cache hit, at every
  period-translated position;
* the :class:`~repro.plan.dataplane.DataPlane` facade — the fused
  batched copies must be byte-identical to the interpreted per-tuple
  loops they replaced, for both block flavors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.core import blockprog
from repro.core.blockprog import BLOCKPROG_STATS, program_for
from repro.core.ff_pack import top_dataloop
from repro.plan.dataplane import DataPlane, block_lists, tuple_arrays
from repro.plan.ops import Blocks, TupleBlocks
from tests.conftest import datatype_trees, fill_pattern


@pytest.fixture(autouse=True)
def _fresh_cache():
    prev = blockprog.set_enabled(True)
    blockprog.clear()
    BLOCKPROG_STATS.reset()
    yield
    blockprog.set_enabled(prev)
    blockprog.clear()


def nested_struct_type():
    """A struct nested under a vector under a resized period — the
    shape the top-level-only residue reduction used to give up on."""
    inner = dt.struct([2, 1], [0, 7], [dt.BYTE, dt.contiguous(3, dt.BYTE)])
    return dt.resized(dt.vector(3, 1, 2, inner), 0, 96)


# ----------------------------------------------------------------------
# Compiled whole-access program vs interpreted blocks_range
# ----------------------------------------------------------------------
class TestWholeAccessParity:
    @settings(max_examples=60, deadline=None)
    @given(tree=datatype_trees(), data=st.data())
    def test_program_matches_blocks_range(self, tree, data):
        count = 6
        loop = top_dataloop(tree, count)
        if loop is None or loop.size <= 0:
            return
        total = loop.size
        s_lo = data.draw(st.integers(0, total - 1), label="s_lo")
        n = data.draw(st.integers(1, total - s_lo), label="n")
        ref_offs, ref_lens = loop.blocks_range(s_lo, s_lo + n)
        for attempt in ("cold", "hit"):
            hit = program_for(loop, s_lo, s_lo + n)
            if hit is None:  # contiguous bypass: nothing to compile
                return
            prog, base = hit
            offs, lens = prog.materialize(base)
            assert offs.tolist() == ref_offs.tolist(), attempt
            assert lens.tolist() == ref_lens.tolist(), attempt

    @settings(max_examples=40, deadline=None)
    @given(tree=datatype_trees(), data=st.data())
    def test_relocation_across_periods(self, tree, data):
        """A range and its whole-period translate resolve to programs
        whose materializations both match the interpreted walk."""
        count = 6
        loop = top_dataloop(tree, count)
        if loop is None or loop.size <= 0 or tree.size <= 0:
            return
        per = tree.size
        s_lo = data.draw(st.integers(0, per - 1), label="s_lo")
        n = data.draw(st.integers(1, per), label="n")
        for q in range(count - 1):
            lo = q * per + s_lo
            hi = min(lo + n, loop.size)
            if hi <= lo:
                break
            ref_offs, ref_lens = loop.blocks_range(lo, hi)
            hit = program_for(loop, lo, hi)
            if hit is None:
                return
            prog, base = hit
            offs, lens = prog.materialize(base)
            assert offs.tolist() == ref_offs.tolist(), q
            assert lens.tolist() == ref_lens.tolist(), q

    def test_nested_struct_periods_share_one_program(self):
        """The generalized reduction keys period-translated ranges of a
        nested struct type to one canonical program."""
        t = nested_struct_type()
        loop = top_dataloop(t, 16)
        progs = set()
        for q in range(8):
            hit = program_for(loop, q * t.size + 2, q * t.size + 9)
            assert hit is not None
            progs.add(id(hit[0]))
        assert len(progs) == 1
        assert BLOCKPROG_STATS.misses == 1
        assert BLOCKPROG_STATS.hits == 7

    def test_sub_period_translation_inside_nested_vector(self):
        """Ranges confined to one inner-vector child reduce through the
        nested levels, not just the top one: translates by the *inner*
        stride share a program too."""
        inner = dt.contiguous(4, dt.BYTE)
        t = dt.resized(dt.vector(8, 1, 3, inner), 0, 128)
        loop = top_dataloop(t, 4)
        a = program_for(loop, 0, 3)
        b = program_for(loop, 4, 7)  # next inner child, same residue
        assert a is not None and b is not None
        assert id(a[0]) == id(b[0])
        assert a[1] != b[1]  # distinct translation bases


# ----------------------------------------------------------------------
# Fused DataPlane copies vs the interpreted loops they replaced
# ----------------------------------------------------------------------
def _random_blocks(rng, wlo, whi, max_blocks=24):
    """Disjoint ascending (offset, length) pairs inside [wlo, whi)."""
    pairs = []
    pos = wlo
    for _ in range(rng.integers(1, max_blocks + 1)):
        pos += int(rng.integers(0, 9))
        ln = int(rng.integers(1, 17))
        if pos + ln > whi:
            break
        pairs.append((pos, ln))
        pos += ln
    return pairs or [(wlo, 1)]


class TestDataPlaneParity:
    @pytest.mark.parametrize("flavor", ["blocks", "tuples"])
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_gather_fused_equals_interpreted(self, flavor, seed):
        rng = np.random.default_rng(seed)
        wlo, whi = 128, 1024
        pairs = _random_blocks(rng, wlo, whi)
        total = sum(ln for _, ln in pairs)
        fb = fill_pattern(whi - wlo, seed=seed)
        if flavor == "blocks":
            mk = lambda: Blocks(
                np.array([o for o, _ in pairs], dtype=np.int64),
                np.array([ln for _, ln in pairs], dtype=np.int64),
            )
        else:
            mk = lambda: TupleBlocks(tuple(pairs))
        out_fused = np.zeros(total, dtype=np.uint8)
        out_interp = np.zeros(total, dtype=np.uint8)
        n1 = DataPlane.gather(fb, wlo, mk(), out_fused, 0, True)
        n2 = DataPlane.gather(fb, wlo, mk(), out_interp, 0, False)
        assert n1 == n2 == total
        assert (out_fused == out_interp).all()

    @pytest.mark.parametrize("flavor", ["blocks", "tuples"])
    @pytest.mark.parametrize("seed", [1, 7, 13])
    def test_scatter_fused_equals_interpreted(self, flavor, seed):
        rng = np.random.default_rng(seed)
        wlo, whi = 64, 768
        pairs = _random_blocks(rng, wlo, whi)
        total = sum(ln for _, ln in pairs)
        src = fill_pattern(total, seed=seed + 100)
        if flavor == "blocks":
            mk = lambda: Blocks(
                np.array([o for o, _ in pairs], dtype=np.int64),
                np.array([ln for _, ln in pairs], dtype=np.int64),
            )
        else:
            mk = lambda: TupleBlocks(tuple(pairs))
        fb_fused = np.zeros(whi - wlo, dtype=np.uint8)
        fb_interp = np.zeros(whi - wlo, dtype=np.uint8)
        n1 = DataPlane.scatter(fb_fused, wlo, mk(), src, 0, True)
        n2 = DataPlane.scatter(fb_interp, wlo, mk(), src, 0, False)
        assert n1 == n2 == total
        assert (fb_fused == fb_interp).all()

    def test_tuple_arrays_memoized(self):
        tb = TupleBlocks(((4, 2), (10, 3)))
        offs1, lens1 = tuple_arrays(tb)
        offs2, lens2 = tuple_arrays(tb)
        assert offs1 is offs2 and lens1 is lens2
        assert offs1.tolist() == [4, 10]
        assert lens1.tolist() == [2, 3]

    def test_block_lists_memoized_both_flavors(self):
        b = Blocks(np.array([8, 20], dtype=np.int64),
                   np.array([4, 1], dtype=np.int64))
        tb = TupleBlocks(((8, 4), (20, 1)))
        for spec in (b, tb):
            l1 = block_lists(spec)
            l2 = block_lists(spec)
            assert l1 is l2
            assert l1 == ([8, 20], [4, 1])

"""BTIO: decomposition invariants, paper Tables 1–2 exactness, runs."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench import BTIOConfig, BTIO_CLASSES, btio_characterize, run_btio
from repro.bench.btio import (
    GHOST,
    NCOMP,
    POINT_BYTES,
    build_process_filetype,
    build_process_memtype,
    btio_exact_pattern,
    cell_coords,
    cell_splits,
    max_cell_size,
)
from repro.flatten import flatten_datatype


class TestDecomposition:
    @pytest.mark.parametrize("P", [1, 4, 9, 16, 25])
    def test_cells_partition_every_slab(self, P):
        q = int(P ** 0.5)
        for c in range(q):  # each k-slab
            seen = set()
            for rank in range(P):
                for kc, jc, ic in cell_coords(rank, q):
                    if kc == c:
                        seen.add((jc, ic))
            assert seen == {(j, i) for j in range(q) for i in range(q)}

    def test_each_rank_owns_q_cells(self):
        q = 3
        for rank in range(q * q):
            coords = cell_coords(rank, q)
            assert len(coords) == q
            assert len({kc for kc, _, _ in coords}) == q

    def test_cell_splits_cover(self):
        for n, q in [(12, 2), (102, 4), (7, 3)]:
            sizes, starts = cell_splits(n, q)
            assert sum(sizes) == n
            assert starts[0] == 0
            for s, sz, s2 in zip(starts, sizes, starts[1:] + [n]):
                assert s + sz == s2

    def test_square_process_count_required(self):
        with pytest.raises(ValueError):
            btio_characterize("A", 5)


class TestFiletypes:
    @pytest.mark.parametrize("n,P", [(12, 4), (12, 9), (24, 4)])
    def test_fileviews_partition_grid(self, n, P):
        """The P fileviews must tile the n^3 x 5-double file exactly."""
        total = n ** 3 * POINT_BYTES
        covered = np.zeros(total // 8, dtype=int)  # per double
        for rank in range(P):
            ft = build_process_filetype(n, P, rank)
            assert ft.extent == total
            for off, ln in flatten_datatype(ft):
                assert off % 8 == 0 and ln % 8 == 0
                covered[off // 8 : (off + ln) // 8] += 1
        assert (covered == 1).all()

    def test_exact_nblock_divisible_case(self):
        # class S = 12, P = 4 -> q=2, cells 6^3: Nblock = 2*36 = 72.
        pat = btio_exact_pattern("S", 4, 0)
        assert pat["nblock"] == 2 * 36
        ft = build_process_filetype(12, 4, 0)
        assert len(flatten_datatype(ft)) == pat["nblock"]

    def test_exact_nblock_uneven_case(self):
        # 102 over q=4: uneven cells still partition; exact block count
        # equals the flattened count.
        n, P = 14, 16  # q=4, 14 = 4+4+3+3
        for rank in (0, 5, 15):
            ft = build_process_filetype(n, P, rank)
            per_cell = 0
            sizes, _ = cell_splits(n, 4)
            for kc, jc, ic in cell_coords(rank, 4):
                per_cell += sizes[kc] * sizes[jc]
            flat = flatten_datatype(ft)
            # Adjacent cells of one rank may share a seam (merged into one
            # block); at most q-1 seams can merge.
            assert per_cell - 3 <= len(flat) <= per_cell
            # The structural Nblock always matches the flattened count.
            assert ft.num_blocks == len(flat)

    def test_memtype_selects_interiors(self):
        n, P = 12, 4
        q = 2
        mt = build_process_memtype(n, P, 0)
        m = max_cell_size(n, q) + 2 * GHOST
        cell_bytes = m ** 3 * POINT_BYTES
        assert mt.extent == q * cell_bytes
        assert mt.size == build_process_filetype(n, P, 0).size


class TestCharacterization:
    @pytest.mark.parametrize(
        "cls,P,nblock,sblock",
        [
            ("B", 4, 5202, 2040),
            ("B", 9, 3468, 1360),
            ("B", 16, 2601, 1020),
            ("B", 25, 2080, 816),
            ("C", 4, 13122, 3240),
            ("C", 9, 8748, 2160),
            ("C", 16, 6561, 1620),
            ("C", 25, 5248, 1296),
        ],
    )
    def test_table2_matches_paper(self, cls, P, nblock, sblock):
        c = btio_characterize(cls, P)
        assert c["nblock"] == nblock
        assert c["sblock"] == sblock

    def test_table1_matches_paper(self):
        b = btio_characterize("B", 4, nsteps=40)
        c = btio_characterize("C", 4, nsteps=40)
        # Paper: Dstep 42 MB / 170 MB; Drun 1.7 GB / 6.8 GB.
        assert round(b["dstep"] / 1e6) == 42
        assert round(c["dstep"] / 1e6) == 170
        assert abs(b["drun"] / 1e9 - 1.7) < 0.05
        assert abs(c["drun"] / 1e9 - 6.8) < 0.05

    def test_dstep_equals_p_nblock_sblock_when_divisible(self):
        # The paper's identity Dstep = P * Sblock * Nblock (exact when
        # q | N).
        c = btio_characterize("A", 16)  # 64 / 4 divides
        assert c["dstep"] == 16 * c["nblock"] * c["sblock"]


class TestRuns:
    @pytest.mark.parametrize("engine", ["listless", "list_based"])
    def test_verified_run(self, engine):
        r = run_btio(engine, BTIOConfig(cls="S", nprocs=4, nsteps=2,
                                        verify=True))
        assert r.io_time.total > 0
        assert r.drun == 2 * 12 ** 3 * 40
        assert r.fs_stats["bytes_written"] >= r.drun

    def test_single_process(self):
        r = run_btio("listless", BTIOConfig(cls="S", nprocs=1, nsteps=1,
                                            verify=True))
        assert r.io_time.total > 0

    def test_uneven_class_runs(self):
        # W=24 over q=5 -> uneven 5/5/5/5/4 cells.
        r = run_btio("listless", BTIOConfig(cls="W", nprocs=25, nsteps=1,
                                            verify=True, compute_sweeps=0))
        assert r.io_time.total > 0

    def test_file_identical_across_engines(self):
        from repro.fs import SimFileSystem

        imgs = {}
        for engine in ("listless", "list_based"):
            fs = SimFileSystem()
            run_btio(engine, BTIOConfig(cls="S", nprocs=9, nsteps=2,
                                        compute_sweeps=0), fs=fs)
            imgs[engine] = fs.lookup("/btio.out").contents()
        assert (imgs["listless"] == imgs["list_based"]).all()

"""The datatype tree pretty-printer."""

from repro import datatypes as dt
from repro.datatypes.describe import describe


class TestDescribe:
    def test_basic(self):
        assert describe(dt.DOUBLE) == "DOUBLE  [8B]"

    def test_vector_tree(self):
        out = describe(dt.vector(4, 2, 5, dt.DOUBLE))
        assert "hvector(count=4, blocklen=2, stride=40B)" in out
        assert "size=64B" in out
        assert "blocks=4" in out
        assert "DOUBLE" in out

    def test_markers_shown(self):
        t = dt.struct([1, 1, 1], [0, 8, 100], [dt.LB, dt.INT, dt.UB])
        out = describe(t)
        assert "LB marker" in out and "UB marker" in out

    def test_non_monotonic_flagged(self):
        out = describe(dt.indexed([1, 1], [5, 0], dt.INT))
        assert "non-monotonic" in out

    def test_long_descriptor_truncated(self):
        t = dt.indexed([1] * 50, list(range(0, 200, 4)), dt.INT)
        out = describe(t)
        assert "... 50 total" in out

    def test_renders_every_sample_type(self, sample_types):
        for name, t in sample_types.items():
            out = describe(t)
            assert out, name
            # The leaf basic type always appears somewhere in the tree.
            assert "DOUBLE" in out or "INT" in out or "BYTE" in out, name

    def test_repeated_children_deduplicated(self):
        from repro.bench.btio import build_process_filetype

        ft = build_process_filetype(12, 4, 0)
        out = describe(ft)
        # Two cells, but differing starts: both subtrees rendered.
        assert out.count("resized") >= 1

"""The typemap-based pack/unpack oracle itself."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.datatypes.packing import (
    pack_typemap,
    packed_size,
    typemap_blocks,
    unpack_typemap,
)
from repro.errors import DatatypeError
from tests.conftest import fill_pattern


class TestPackTypemap:
    def test_contiguous_is_identity(self):
        src = fill_pattern(32)
        out = pack_typemap(src, 1, dt.contiguous(32, dt.BYTE))
        assert (out == src).all()

    def test_vector_selects_blocks(self):
        src = np.arange(20, dtype=np.float64)
        out = pack_typemap(src, 1, dt.vector(4, 2, 5, dt.DOUBLE))
        expect = np.concatenate([src[i * 5 : i * 5 + 2] for i in range(4)])
        assert (out.view(np.float64) == expect).all()

    def test_count_tiles_by_extent(self):
        src = np.arange(8, dtype=np.int32)
        t = dt.contiguous(2, dt.INT)
        out = pack_typemap(src, 4, t)
        assert (out.view(np.int32) == src).all()

    def test_origin_shifts_reads(self):
        src = fill_pattern(24)
        t = dt.contiguous(8, dt.BYTE)
        out = pack_typemap(src, 1, t, origin=16)
        assert (out == src[16:24]).all()

    def test_out_of_bounds_rejected(self):
        src = np.zeros(8, dtype=np.uint8)
        with pytest.raises(DatatypeError):
            pack_typemap(src, 1, dt.contiguous(16, dt.BYTE))

    def test_non_monotonic_order_respected(self):
        # indexed([1,1],[5,0]) reads element 5 first, element 0 second.
        src = np.arange(8, dtype=np.int32)
        out = pack_typemap(src, 1, dt.indexed([1, 1], [5, 0], dt.INT))
        assert list(out.view(np.int32)) == [5, 0]


class TestUnpackTypemap:
    def test_roundtrip(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0:
                continue
            span = t.true_ub - min(t.true_lb, 0)
            src = fill_pattern(span + 8, seed=3)
            packed = pack_typemap(src, 1, t, origin=-min(t.true_lb, 0))
            dst = np.zeros_like(src)
            unpack_typemap(packed, dst, 1, t, origin=-min(t.true_lb, 0))
            repacked = pack_typemap(dst, 1, t, origin=-min(t.true_lb, 0))
            assert (repacked == packed).all(), name

    def test_short_packed_buffer_rejected(self):
        dst = np.zeros(16, dtype=np.uint8)
        with pytest.raises(DatatypeError):
            unpack_typemap(
                np.zeros(4, dtype=np.uint8), dst, 1,
                dt.contiguous(8, dt.BYTE),
            )

    def test_unpack_out_of_bounds_rejected(self):
        dst = np.zeros(4, dtype=np.uint8)
        with pytest.raises(DatatypeError):
            unpack_typemap(
                np.zeros(8, dtype=np.uint8), dst, 1,
                dt.contiguous(8, dt.BYTE),
            )


class TestHelpers:
    def test_packed_size(self):
        assert packed_size(dt.DOUBLE, 7) == 56

    def test_typemap_blocks_merges_adjacent(self):
        t = dt.contiguous(4, dt.INT)
        assert typemap_blocks(t, 2) == [(0, 32)]

    def test_typemap_blocks_matches_num_blocks(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0:
                continue
            blocks = typemap_blocks(t, 1)
            assert len(blocks) == t.num_blocks, name

"""Gather/scatter kernels: all three dispatch paths."""

import numpy as np
import pytest

from repro.core.gather import (
    _SMALL_N,
    _uniform_stride,
    block_index,
    gather_blocks,
    scatter_blocks,
)
from tests.conftest import fill_pattern


def ref_gather(src, offs, lens):
    return np.concatenate(
        [src[o : o + ln] for o, ln in zip(offs, lens)]
    ) if len(offs) else np.empty(0, dtype=np.uint8)


def arrs(pairs):
    offs = np.array([o for o, _ in pairs], dtype=np.int64)
    lens = np.array([ln for _, ln in pairs], dtype=np.int64)
    return offs, lens


class TestBlockIndex:
    def test_uniform(self):
        offs, lens = arrs([(0, 2), (10, 2)])
        assert block_index(offs, lens).tolist() == [0, 1, 10, 11]

    def test_ragged(self):
        offs, lens = arrs([(0, 3), (10, 1), (20, 2)])
        assert block_index(offs, lens).tolist() == [0, 1, 2, 10, 20, 21]

    def test_empty(self):
        offs, lens = arrs([])
        assert block_index(offs, lens).size == 0


class TestGather:
    @pytest.mark.parametrize(
        "pairs",
        [
            [(0, 16)],  # single block
            [(0, 4), (8, 4), (16, 4)],  # uniform stride (strided view)
            [(0, 4), (9, 4), (30, 4)],  # irregular offsets, uniform len
            [(0, 3), (9, 1), (30, 7)],  # ragged
            [(8, 4), (0, 4)],  # backwards (type-map order)
        ],
    )
    def test_matches_reference(self, pairs):
        src = fill_pattern(64)
        offs, lens = arrs(pairs)
        total = int(lens.sum())
        out = np.zeros(total + 4, dtype=np.uint8)
        n = gather_blocks(src, offs, lens, out, 2)
        assert n == total
        assert (out[2 : 2 + total] == ref_gather(src, offs, lens)).all()
        assert out[0] == 0 and out[total + 2] == 0

    def test_empty(self):
        src = fill_pattern(8)
        offs, lens = arrs([])
        assert gather_blocks(src, offs, lens, np.zeros(4, np.uint8)) == 0

    def test_overlapping_blocks_read_ok(self):
        src = fill_pattern(16)
        offs, lens = arrs([(0, 8), (4, 8)])
        out = np.zeros(16, dtype=np.uint8)
        gather_blocks(src, offs, lens, out)
        assert (out == ref_gather(src, offs.tolist(), lens.tolist())).all()


class TestScatter:
    @pytest.mark.parametrize(
        "pairs",
        [
            [(0, 16)],
            [(0, 4), (8, 4), (16, 4)],
            [(0, 4), (9, 4), (30, 4)],
            [(0, 3), (9, 1), (30, 7)],
            [(8, 4), (0, 4)],
        ],
    )
    def test_inverse_of_gather(self, pairs):
        offs, lens = arrs(pairs)
        total = int(lens.sum())
        data = fill_pattern(total, seed=8)
        dst = np.zeros(64, dtype=np.uint8)
        n = scatter_blocks(dst, offs, lens, data)
        assert n == total
        regathered = np.zeros(total, dtype=np.uint8)
        gather_blocks(dst, offs, lens, regathered)
        assert (regathered == data).all()

    def test_untouched_bytes_stay(self):
        offs, lens = arrs([(4, 4)])
        dst = np.full(16, 9, dtype=np.uint8)
        scatter_blocks(dst, offs, lens, np.zeros(4, np.uint8))
        assert (dst[:4] == 9).all() and (dst[8:] == 9).all()
        assert (dst[4:8] == 0).all()

    def test_src_pos(self):
        offs, lens = arrs([(0, 4)])
        data = fill_pattern(12)
        dst = np.zeros(4, dtype=np.uint8)
        scatter_blocks(dst, offs, lens, data, src_pos=8)
        assert (dst == data[8:12]).all()


class TestUniformStride:
    def test_uniform(self):
        assert _uniform_stride(np.array([3, 8, 13, 18], np.int64)) == 5

    def test_negative(self):
        assert _uniform_stride(np.array([30, 20, 10, 0], np.int64)) == -10

    def test_degenerate(self):
        assert _uniform_stride(np.array([], np.int64)) == 0
        assert _uniform_stride(np.array([7], np.int64)) == 0

    def test_early_exit_on_first_mismatch(self):
        # Third offset breaks the step: the O(n) diff must be skipped —
        # feed an array whose tail would *also* match the step so only
        # the early exit can return None here.
        offs = np.array([0, 8, 17] + [17 + 8 * i for i in range(1, 50)],
                        np.int64)
        assert _uniform_stride(offs) is None

    def test_late_mismatch_detected(self):
        offs = np.arange(0, 400, 8, dtype=np.int64)
        offs[-1] += 1
        assert _uniform_stride(offs) is None


class TestHardening:
    """Negative-stride and overlapping-offset inputs above _SMALL_N.

    Type-map order need not be buffer order (non-monotonic memtypes):
    the strided-view fast path must refuse these and the index paths
    must reproduce the per-block reference loop, including its
    last-block-wins overwrite order for overlapping scatters.
    """

    N = _SMALL_N + 8  # force past the small-loop path

    def _ref_scatter(self, span, offs, lens, data):
        dst = np.zeros(span, dtype=np.uint8)
        pos = 0
        for o, ln in zip(offs.tolist(), lens.tolist()):
            dst[o : o + ln] = data[pos : pos + ln]
            pos += ln
        return dst

    def cases(self):
        n = self.N
        return {
            # uniform lengths, offsets running backwards (fancy-index)
            "negative_stride": arrs([((n - 1 - i) * 8, 4)
                                     for i in range(n)]),
            # uniform lengths, stride < length: blocks overlap
            "overlapping_stride": arrs([(i * 2, 4) for i in range(n)]),
            # backwards *and* overlapping
            "negative_overlapping": arrs([((n - 1 - i) * 2, 4)
                                          for i in range(n)]),
            # ragged + duplicate offsets (ragged-index path)
            "duplicate_offsets": arrs([(8 * (i // 2), (i % 3) + 1)
                                       for i in range(n)]),
            # long blocks backwards (big-block loop path)
            "negative_big": arrs([((n - 1 - i) * 600, 512)
                                  for i in range(n)]),
            # long blocks overlapping
            "overlapping_big": arrs([(i * 100, 512) for i in range(n)]),
        }

    @pytest.mark.parametrize("name", [
        "negative_stride", "overlapping_stride", "negative_overlapping",
        "duplicate_offsets", "negative_big", "overlapping_big",
    ])
    def test_gather_matches_reference(self, name):
        offs, lens = self.cases()[name]
        span = int(offs.max() + lens.max()) + 8
        src = fill_pattern(span, seed=5)
        total = int(lens.sum())
        out = np.zeros(total, dtype=np.uint8)
        assert gather_blocks(src, offs, lens, out) == total
        assert (out == ref_gather(src, offs.tolist(), lens.tolist())).all()

    @pytest.mark.parametrize("name", [
        "negative_stride", "overlapping_stride", "negative_overlapping",
        "duplicate_offsets", "negative_big", "overlapping_big",
    ])
    def test_scatter_matches_reference(self, name):
        offs, lens = self.cases()[name]
        span = int(offs.max() + lens.max()) + 8
        total = int(lens.sum())
        data = fill_pattern(total, seed=6)
        dst = np.zeros(span, dtype=np.uint8)
        assert scatter_blocks(dst, offs, lens, data) == total
        assert (dst == self._ref_scatter(span, offs, lens, data)).all()

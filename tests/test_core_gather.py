"""Gather/scatter kernels: all three dispatch paths."""

import numpy as np
import pytest

from repro.core.gather import block_index, gather_blocks, scatter_blocks
from tests.conftest import fill_pattern


def ref_gather(src, offs, lens):
    return np.concatenate(
        [src[o : o + ln] for o, ln in zip(offs, lens)]
    ) if len(offs) else np.empty(0, dtype=np.uint8)


def arrs(pairs):
    offs = np.array([o for o, _ in pairs], dtype=np.int64)
    lens = np.array([ln for _, ln in pairs], dtype=np.int64)
    return offs, lens


class TestBlockIndex:
    def test_uniform(self):
        offs, lens = arrs([(0, 2), (10, 2)])
        assert block_index(offs, lens).tolist() == [0, 1, 10, 11]

    def test_ragged(self):
        offs, lens = arrs([(0, 3), (10, 1), (20, 2)])
        assert block_index(offs, lens).tolist() == [0, 1, 2, 10, 20, 21]

    def test_empty(self):
        offs, lens = arrs([])
        assert block_index(offs, lens).size == 0


class TestGather:
    @pytest.mark.parametrize(
        "pairs",
        [
            [(0, 16)],  # single block
            [(0, 4), (8, 4), (16, 4)],  # uniform stride (strided view)
            [(0, 4), (9, 4), (30, 4)],  # irregular offsets, uniform len
            [(0, 3), (9, 1), (30, 7)],  # ragged
            [(8, 4), (0, 4)],  # backwards (type-map order)
        ],
    )
    def test_matches_reference(self, pairs):
        src = fill_pattern(64)
        offs, lens = arrs(pairs)
        total = int(lens.sum())
        out = np.zeros(total + 4, dtype=np.uint8)
        n = gather_blocks(src, offs, lens, out, 2)
        assert n == total
        assert (out[2 : 2 + total] == ref_gather(src, offs, lens)).all()
        assert out[0] == 0 and out[total + 2] == 0

    def test_empty(self):
        src = fill_pattern(8)
        offs, lens = arrs([])
        assert gather_blocks(src, offs, lens, np.zeros(4, np.uint8)) == 0

    def test_overlapping_blocks_read_ok(self):
        src = fill_pattern(16)
        offs, lens = arrs([(0, 8), (4, 8)])
        out = np.zeros(16, dtype=np.uint8)
        gather_blocks(src, offs, lens, out)
        assert (out == ref_gather(src, offs.tolist(), lens.tolist())).all()


class TestScatter:
    @pytest.mark.parametrize(
        "pairs",
        [
            [(0, 16)],
            [(0, 4), (8, 4), (16, 4)],
            [(0, 4), (9, 4), (30, 4)],
            [(0, 3), (9, 1), (30, 7)],
            [(8, 4), (0, 4)],
        ],
    )
    def test_inverse_of_gather(self, pairs):
        offs, lens = arrs(pairs)
        total = int(lens.sum())
        data = fill_pattern(total, seed=8)
        dst = np.zeros(64, dtype=np.uint8)
        n = scatter_blocks(dst, offs, lens, data)
        assert n == total
        regathered = np.zeros(total, dtype=np.uint8)
        gather_blocks(dst, offs, lens, regathered)
        assert (regathered == data).all()

    def test_untouched_bytes_stay(self):
        offs, lens = arrs([(4, 4)])
        dst = np.full(16, 9, dtype=np.uint8)
        scatter_blocks(dst, offs, lens, np.zeros(4, np.uint8))
        assert (dst[:4] == 9).all() and (dst[8:] == 9).all()
        assert (dst[4:8] == 0).all()

    def test_src_pos(self):
        offs, lens = arrs([(0, 4)])
        data = fill_pattern(12)
        dst = np.zeros(4, dtype=np.uint8)
        scatter_blocks(dst, offs, lens, data, src_pos=8)
        assert (dst == data[8:12]).all()

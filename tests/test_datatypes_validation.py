"""Etype/filetype legality checks (MPI-IO restrictions)."""

import pytest

from repro import datatypes as dt
from repro.errors import DatatypeError


class TestValidateEtype:
    def test_basic_ok(self):
        dt.validate_etype(dt.DOUBLE)

    def test_contiguous_ok(self):
        dt.validate_etype(dt.contiguous(5, dt.DOUBLE))

    def test_marker_only_rejected(self):
        with pytest.raises(DatatypeError):
            dt.validate_etype(dt.struct([1], [0], [dt.LB]))

    def test_negative_lb_rejected(self):
        with pytest.raises(DatatypeError):
            dt.validate_etype(dt.resized(dt.INT, -4, 8))

    def test_non_monotonic_rejected(self):
        with pytest.raises(DatatypeError):
            dt.validate_etype(dt.indexed([1, 1], [5, 0], dt.INT))

    def test_extent_must_cover_data(self):
        # Shrunk extent would interleave repeated etypes.
        with pytest.raises(DatatypeError):
            dt.validate_etype(dt.resized(dt.contiguous(4, dt.INT), 0, 8))


class TestValidateFiletype:
    def test_vector_ok(self):
        dt.validate_filetype(dt.vector(4, 2, 5, dt.DOUBLE), dt.DOUBLE)

    def test_size_multiple_of_etype(self):
        # 12 bytes of INT data is not a whole number of DOUBLEs.
        with pytest.raises(DatatypeError):
            dt.validate_filetype(dt.contiguous(3, dt.INT), dt.DOUBLE)

    def test_overlapping_vector_rejected(self):
        with pytest.raises(DatatypeError):
            dt.validate_filetype(dt.hvector(2, 2, 4, dt.INT), dt.INT)

    def test_unsorted_indexed_rejected(self):
        with pytest.raises(DatatypeError):
            dt.validate_filetype(dt.indexed([1, 1], [5, 0], dt.INT), dt.INT)

    def test_negative_displacement_rejected(self):
        with pytest.raises(DatatypeError):
            dt.validate_filetype(
                dt.resized(dt.INT, -4, 12), dt.INT
            )

    def test_empty_rejected(self):
        with pytest.raises(DatatypeError):
            dt.validate_filetype(dt.contiguous(0, dt.INT), dt.INT)

    def test_subarray_filetype_ok(self):
        point = dt.contiguous(5, dt.DOUBLE)
        t = dt.subarray([8, 8, 8], [4, 4, 4], [0, 4, 4], point)
        dt.validate_filetype(t, dt.DOUBLE)

    def test_btio_struct_of_subarrays_ok(self):
        from repro.bench.btio import build_process_filetype

        for rank in range(4):
            ft = build_process_filetype(12, 4, rank)
            dt.validate_filetype(ft, dt.DOUBLE)

    def test_is_monotonic_helper(self):
        assert dt.is_monotonic_nonoverlapping(dt.vector(3, 1, 2, dt.INT))
        assert not dt.is_monotonic_nonoverlapping(
            dt.indexed([1, 1], [5, 0], dt.INT)
        )

"""Deterministic mini-fuzzer: long mixed operation sequences on one file.

A seeded random program of writes/reads (independent, collective,
ordered; varying views, offsets and engines across reopens) runs against
a NumPy mirror of the expected file contents; every read must agree with
the mirror and the final file must equal it byte for byte.
"""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.noncontig import build_noncontig_filetype
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd

P = 2
SBLOCKS = [1, 3, 8]
NBLOCKS = [2, 5, 9]


def apply_to_mirror(mirror, rank, blocklen, blockcount, d0, payload):
    """Write `payload` through the Fig.-4 view of `rank` into the mirror."""
    A = blocklen * blockcount
    for i in range(len(payload)):
        d = d0 + i
        inst, rem = divmod(d, A)
        b, w = divmod(rem, blocklen)
        abs_off = inst * A * P + b * P * blocklen + rank * blocklen + w
        if abs_off >= len(mirror):
            mirror.extend(b"\0" * (abs_off + 1 - len(mirror)))
        mirror[abs_off] = payload[i]


def read_from_mirror(mirror, rank, blocklen, blockcount, d0, n):
    A = blocklen * blockcount
    out = np.zeros(n, dtype=np.uint8)
    for i in range(n):
        d = d0 + i
        inst, rem = divmod(d, A)
        b, w = divmod(rem, blocklen)
        abs_off = inst * A * P + b * P * blocklen + rank * blocklen + w
        out[i] = mirror[abs_off] if abs_off < len(mirror) else 0
    return out


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_program(seed):
    rng = np.random.default_rng(seed)
    fs = SimFileSystem()
    mirror = bytearray()
    steps = 18

    program = []
    for _ in range(steps):
        program.append(
            dict(
                engine=rng.choice(["listless", "list_based"]),
                blocklen=int(rng.choice(SBLOCKS)),
                blockcount=int(rng.choice(NBLOCKS)),
                op=rng.choice(["write", "write_all", "read", "read_all"]),
                offset=int(rng.integers(0, 30)),
                length=int(rng.integers(1, 40)),
                value=int(rng.integers(1, 255)),
                bufsize=int(rng.choice([16, 512])),
            )
        )

    for stepno, st in enumerate(program):
        A = st["blocklen"] * st["blockcount"]
        hints = Hints(
            ind_rd_buffer_size=st["bufsize"],
            ind_wr_buffer_size=st["bufsize"],
            cb_buffer_size=st["bufsize"],
        )
        payloads = {
            r: np.full(st["length"], (st["value"] + r) % 256,
                       dtype=np.uint8)
            for r in range(P)
        }

        def worker(comm):
            r = comm.rank
            fh = File.open(comm, fs, "/fuzz", MODE_CREATE | MODE_RDWR,
                           engine=st["engine"], hints=hints)
            ft = build_noncontig_filetype(
                P, r, st["blocklen"], st["blockcount"]
            )
            fh.set_view(0, dt.BYTE, ft)
            if st["op"] == "write":
                fh.write_at(st["offset"], payloads[r])
            elif st["op"] == "write_all":
                fh.write_at_all(st["offset"], payloads[r])
            else:
                out = np.zeros(st["length"], dtype=np.uint8)
                if st["op"] == "read":
                    fh.read_at(st["offset"], out)
                else:
                    fh.read_at_all(st["offset"], out)
                want = read_from_mirror(
                    mirror, r, st["blocklen"], st["blockcount"],
                    st["offset"], st["length"],
                )
                assert (out == want).all(), (stepno, st, r)
            fh.close()

        run_spmd(P, worker)
        if st["op"].startswith("write"):
            for r in range(P):
                apply_to_mirror(
                    mirror, r, st["blocklen"], st["blockcount"],
                    st["offset"], payloads[r],
                )

    data = fs.lookup("/fuzz").contents()
    assert bytes(data) == bytes(mirror[: data.size])
    assert all(b == 0 for b in mirror[data.size :])

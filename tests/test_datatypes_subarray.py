"""``subarray``: layout, orders, bounds, and pack equivalence with NumPy."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.datatypes.packing import pack_typemap
from repro.errors import DatatypeError


class TestSubarray2D:
    def test_blocks_match_numpy_slicing(self):
        sizes, subsizes, starts = [6, 6], [3, 2], [2, 1]
        t = dt.subarray(sizes, subsizes, starts, dt.DOUBLE)
        arr = np.arange(36, dtype=np.float64)
        packed = pack_typemap(arr, 1, t).view(np.float64)
        expect = arr.reshape(6, 6)[2:5, 1:3].reshape(-1)
        assert (packed == expect).all()

    def test_extent_covers_full_array(self):
        t = dt.subarray([6, 6], [3, 2], [2, 1], dt.DOUBLE)
        assert t.extent == 36 * 8
        assert t.lb == 0

    def test_size(self):
        t = dt.subarray([6, 6], [3, 2], [2, 1], dt.DOUBLE)
        assert t.size == 6 * 8

    def test_num_blocks_is_rows(self):
        t = dt.subarray([6, 6], [3, 2], [2, 1], dt.DOUBLE)
        assert t.num_blocks == 3

    def test_full_row_selection_merges(self):
        t = dt.subarray([4, 4], [2, 4], [1, 0], dt.INT)
        # Two full rows are contiguous in the array.
        assert t.num_blocks == 1

    def test_monotonic(self):
        t = dt.subarray([6, 6], [3, 2], [2, 1], dt.DOUBLE)
        assert t.is_monotonic


class TestSubarray3D:
    @pytest.mark.parametrize("starts", [[0, 0, 0], [1, 2, 3], [2, 0, 1]])
    def test_blocks_match_numpy(self, starts):
        sizes, subsizes = [5, 6, 7], [3, 2, 4]
        t = dt.subarray(sizes, subsizes, starts, dt.INT)
        arr = np.arange(5 * 6 * 7, dtype=np.int32)
        packed = pack_typemap(arr, 1, t).view(np.int32)
        a, b, c = starts
        expect = arr.reshape(5, 6, 7)[
            a : a + 3, b : b + 2, c : c + 4
        ].reshape(-1)
        assert (packed == expect).all()

    def test_derived_base_type(self):
        # 5-component points, as BTIO uses.
        point = dt.contiguous(5, dt.DOUBLE)
        t = dt.subarray([4, 4, 4], [2, 2, 2], [1, 1, 1], point)
        assert t.size == 8 * 5 * 8
        assert t.extent == 64 * 40


class TestSubarrayFortranOrder:
    def test_fortran_equals_c_on_reversed_dims(self):
        tf = dt.subarray(
            [6, 4], [2, 3], [1, 0], dt.INT, order=dt.ORDER_FORTRAN
        )
        tc = dt.subarray([4, 6], [3, 2], [0, 1], dt.INT, order=dt.ORDER_C)
        assert list(tf.typemap()) == list(tc.typemap())
        assert tf.extent == tc.extent

    def test_fortran_first_dim_contiguous(self):
        t = dt.subarray(
            [8, 8], [8, 1], [0, 3], dt.DOUBLE, order=dt.ORDER_FORTRAN
        )
        # Selecting a full first-dim column is one contiguous run.
        assert t.num_blocks == 1


class TestSubarrayValidation:
    def test_rank_mismatch(self):
        with pytest.raises(DatatypeError):
            dt.subarray([4, 4], [2], [0, 0], dt.INT)

    def test_block_outside_array(self):
        with pytest.raises(DatatypeError):
            dt.subarray([4], [3], [2], dt.INT)

    def test_zero_subsize_rejected(self):
        with pytest.raises(DatatypeError):
            dt.subarray([4], [0], [0], dt.INT)

    def test_bad_order(self):
        with pytest.raises(DatatypeError):
            dt.subarray([4], [2], [0], dt.INT, order="Z")

    def test_zero_dims_rejected(self):
        with pytest.raises(DatatypeError):
            dt.subarray([], [], [], dt.INT)

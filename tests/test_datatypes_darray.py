"""``darray``: block/cyclic distributions partition the global array."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.datatypes.packing import pack_typemap
from repro.errors import DatatypeError


def _owned_elements(t, total):
    """Element indices selected by a darray type over an INT array."""
    arr = np.arange(total, dtype=np.int32)
    return set(pack_typemap(arr, 1, t).view(np.int32).tolist())


class TestDarrayBlock:
    def test_1d_block_partitions(self):
        owned = []
        for r in range(4):
            t = dt.darray(
                4, r, [16], [dt.DISTRIBUTE_BLOCK],
                [dt.DISTRIBUTE_DFLT_DARG], [4], dt.INT,
            )
            owned.append(_owned_elements(t, 16))
            assert t.extent == 64
        assert set().union(*owned) == set(range(16))
        assert sum(len(o) for o in owned) == 16

    def test_2d_block_partitions(self):
        owned = []
        for r in range(4):
            t = dt.darray(
                4, r, [4, 4], [dt.DISTRIBUTE_BLOCK] * 2,
                [dt.DISTRIBUTE_DFLT_DARG] * 2, [2, 2], dt.DOUBLE,
            )
            vals = pack_typemap(
                np.arange(16, dtype=np.float64), 1, t
            ).view(np.float64)
            owned.append(set(int(v) for v in vals))
        assert set().union(*owned) == set(range(16))
        assert sum(len(o) for o in owned) == 16

    def test_rank0_gets_top_left(self):
        t = dt.darray(
            4, 0, [4, 4], [dt.DISTRIBUTE_BLOCK] * 2,
            [dt.DISTRIBUTE_DFLT_DARG] * 2, [2, 2], dt.INT,
        )
        assert _owned_elements(t, 16) == {0, 1, 4, 5}

    def test_uneven_block(self):
        # 10 elements over 3 procs: blocks of 4, 4, 2.
        lens = []
        for r in range(3):
            t = dt.darray(
                3, r, [10], [dt.DISTRIBUTE_BLOCK],
                [dt.DISTRIBUTE_DFLT_DARG], [3], dt.INT,
            )
            lens.append(t.size // 4)
        assert lens == [4, 4, 2]


class TestDarrayCyclic:
    def test_1d_cyclic(self):
        t = dt.darray(
            2, 0, [8], [dt.DISTRIBUTE_CYCLIC],
            [dt.DISTRIBUTE_DFLT_DARG], [2], dt.INT,
        )
        assert _owned_elements(t, 8) == {0, 2, 4, 6}

    def test_1d_cyclic_k(self):
        t = dt.darray(2, 1, [12], [dt.DISTRIBUTE_CYCLIC], [2], [2], dt.INT)
        assert _owned_elements(t, 12) == {2, 3, 6, 7, 10, 11}

    def test_cyclic_partition_complete(self):
        owned = []
        for r in range(3):
            t = dt.darray(
                3, r, [10], [dt.DISTRIBUTE_CYCLIC], [2], [3], dt.INT
            )
            owned.append(_owned_elements(t, 10))
        assert set().union(*owned) == set(range(10))


class TestDarrayNone:
    def test_none_dimension_fully_owned(self):
        t = dt.darray(
            2, 0, [2, 4],
            [dt.DISTRIBUTE_BLOCK, dt.DISTRIBUTE_NONE],
            [dt.DISTRIBUTE_DFLT_DARG] * 2, [2, 1], dt.INT,
        )
        assert _owned_elements(t, 8) == {0, 1, 2, 3}


class TestDarrayValidation:
    def test_psizes_product_mismatch(self):
        with pytest.raises(DatatypeError):
            dt.darray(4, 0, [8], [dt.DISTRIBUTE_BLOCK],
                      [dt.DISTRIBUTE_DFLT_DARG], [2], dt.INT)

    def test_rank_out_of_range(self):
        with pytest.raises(DatatypeError):
            dt.darray(2, 2, [8], [dt.DISTRIBUTE_BLOCK],
                      [dt.DISTRIBUTE_DFLT_DARG], [2], dt.INT)

    def test_block_too_small(self):
        with pytest.raises(DatatypeError):
            dt.darray(2, 0, [8], [dt.DISTRIBUTE_BLOCK], [2], [2], dt.INT)

"""Engine equivalence: listless and list-based I/O must move exactly the
same bytes in every configuration — only their costs differ.

Randomized end-to-end comparisons over datatype geometry, access kind,
offsets, displacements, buffer sizes and memory layouts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.bench.noncontig import (
    build_noncontig_filetype,
    build_noncontig_memtype,
)
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd


def run_scenario(engine, P, blocklen, blockcount, disp, off_et,
                 collective, mem_noncontig, bufsize, nreps):
    """Run one write+read scenario; returns (file bytes, read bytes)."""
    fs = SimFileSystem()
    A = blocklen * blockcount
    hints = Hints(
        ind_rd_buffer_size=bufsize,
        ind_wr_buffer_size=bufsize,
        cb_buffer_size=bufsize,
    )
    reads = [None] * P

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        fh.set_view(disp, dt.BYTE, ft)
        rng = np.random.default_rng(1234 + r)
        if mem_noncontig:
            mt = build_noncontig_memtype(blocklen, blockcount)
            count, memtype = 1, mt
            bufn = 2 * A
        else:
            count, memtype = A, dt.BYTE
            bufn = A
        write = fh.write_at_all if collective else fh.write_at
        read = fh.read_at_all if collective else fh.read_at
        for rep in range(nreps):
            buf = rng.integers(0, 256, bufn, dtype=np.uint8)
            write(off_et + rep * A, buf, count, memtype)
        out = np.zeros(bufn, dtype=np.uint8)
        read(off_et, out, count, memtype)
        reads[r] = out
        fh.close()

    run_spmd(P, worker)
    return fs.lookup("/f").contents(), reads


SCENARIOS = st.tuples(
    st.integers(1, 4),          # P
    st.integers(1, 9),          # blocklen
    st.integers(1, 24),         # blockcount
    st.sampled_from([0, 13]),   # disp
    st.integers(0, 20),         # offset in etypes (bytes here)
    st.booleans(),              # collective
    st.booleans(),              # mem_noncontig
    st.sampled_from([32, 512, 1 << 20]),  # buffer size
    st.integers(1, 2),          # nreps
)


@settings(max_examples=25, deadline=None)
@given(SCENARIOS)
def test_engines_produce_identical_results(params):
    (P, blocklen, blockcount, disp, off_et, collective,
     mem_noncontig, bufsize, nreps) = params
    file_a, reads_a = run_scenario(
        "listless", P, blocklen, blockcount, disp, off_et, collective,
        mem_noncontig, bufsize, nreps,
    )
    file_b, reads_b = run_scenario(
        "list_based", P, blocklen, blockcount, disp, off_et, collective,
        mem_noncontig, bufsize, nreps,
    )
    assert file_a.size == file_b.size
    assert (file_a == file_b).all()
    for ra, rb in zip(reads_a, reads_b):
        assert (ra == rb).all()


@pytest.mark.parametrize("collective", [False, True])
def test_engines_identical_on_btio_pattern(collective):
    """The subarray/struct filetype family (BTIO class S)."""
    from repro.bench.btio import (
        build_process_filetype,
        build_process_memtype,
        max_cell_size,
        GHOST,
        NCOMP,
    )

    n, P = 12, 4
    q = 2
    m = max_cell_size(n, q) + 2 * GHOST
    files = {}
    for engine in ("listless", "list_based"):
        fs = SimFileSystem()

        def worker(comm):
            r = comm.rank
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            ft = build_process_filetype(n, P, r)
            mt = build_process_memtype(n, P, r)
            fh.set_view(0, dt.DOUBLE, ft)
            rng = np.random.default_rng(r)
            buf = rng.random(q * m ** 3 * NCOMP)
            if collective:
                fh.write_at_all(0, buf, 1, mt)
            else:
                fh.write_at(0, buf, 1, mt)
            fh.close()

        run_spmd(P, worker)
        files[engine] = fs.lookup("/f").contents()
    assert (files["listless"] == files["list_based"]).all()


def test_engines_identical_with_darray_view():
    """darray-built fileviews (block-cyclic) behave identically."""
    files = {}
    for engine in ("listless", "list_based"):
        fs = SimFileSystem()

        def worker(comm):
            r = comm.rank
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            ft = dt.darray(
                comm.size, r, [8, 8],
                [dt.DISTRIBUTE_BLOCK, dt.DISTRIBUTE_CYCLIC],
                [dt.DISTRIBUTE_DFLT_DARG, 2], [2, 2], dt.DOUBLE,
            )
            fh.set_view(0, dt.DOUBLE, ft)
            buf = np.full(16, float(r + 1))
            fh.write_at_all(0, buf, 16, dt.DOUBLE)
            fh.close()

        run_spmd(4, worker)
        files[engine] = fs.lookup("/f").contents()
    assert files["listless"].size == 8 * 8 * 8
    assert (files["listless"] == files["list_based"]).all()

"""Split collective I/O (begin/end pairs) and their misuse errors."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.noncontig import build_noncontig_filetype
from repro.errors import IOEngineError
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd

ENGINES = ["listless", "list_based"]


@pytest.mark.parametrize("engine", ENGINES)
def test_split_write_read_roundtrip(engine):
    P, bl, bc = 2, 8, 16
    A = bl * bc
    fs = SimFileSystem()

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(0, dt.BYTE, build_noncontig_filetype(P, r, bl, bc))
        buf = np.full(A, r + 1, dtype=np.uint8)
        fh.write_at_all_begin(0, buf)
        # ... overlap "computation" here ...
        fh.write_at_all_end(buf)
        out = np.zeros(A, dtype=np.uint8)
        fh.read_at_all_begin(0, out)
        fh.read_at_all_end(out)
        assert (out == r + 1).all()
        fh.close()

    run_spmd(P, worker)
    assert fs.lookup("/f").size == P * A


@pytest.mark.parametrize("engine", ENGINES)
def test_split_with_individual_pointer(engine):
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(comm.rank * 16, dt.BYTE, dt.BYTE)
        buf = np.full(16, comm.rank, dtype=np.uint8)
        fh.write_all_begin(buf)
        fh.write_all_end(buf)
        assert fh.tell() == 16
        fh.seek(0)
        out = np.zeros(16, dtype=np.uint8)
        fh.read_all_begin(out)
        fh.read_all_end(out)
        assert (out == comm.rank).all()
        fh.close()

    run_spmd(2, worker)


def test_nested_split_rejected():
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
        a = np.zeros(4, dtype=np.uint8)
        fh.write_at_all_begin(0, a)
        with pytest.raises(IOEngineError):
            fh.write_at_all_begin(4, a)
        fh.write_at_all_end(a)
        fh.close()

    run_spmd(1, worker)


def test_end_without_begin_rejected():
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
        with pytest.raises(IOEngineError):
            fh.write_at_all_end(np.zeros(4, np.uint8))
        fh.close()

    run_spmd(1, worker)


def test_mismatched_kind_rejected():
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
        buf = np.zeros(4, dtype=np.uint8)
        fh.write_at_all_begin(0, buf)
        with pytest.raises(IOEngineError):
            fh.read_at_all_end(buf)
        fh.write_at_all_end(buf)
        fh.close()

    run_spmd(1, worker)


def test_mismatched_buffer_rejected():
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
        a = np.zeros(4, dtype=np.uint8)
        b = np.zeros(4, dtype=np.uint8)
        fh.write_at_all_begin(0, a)
        with pytest.raises(IOEngineError):
            fh.write_at_all_end(b)
        fh.write_at_all_end(a)
        fh.close()

    run_spmd(1, worker)


def test_close_with_outstanding_split_rejected():
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
        buf = np.zeros(4, dtype=np.uint8)
        fh.write_at_all_begin(0, buf)
        with pytest.raises(IOEngineError):
            fh.close()
        fh.write_at_all_end(buf)
        fh.close()

    run_spmd(1, worker)

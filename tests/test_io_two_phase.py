"""Two-phase scaffolding: range aggregation and domain partitioning."""

import pytest

from repro.io.two_phase import (
    AccessRange,
    aggregate_ranges,
    partition_domains,
)
from repro.mpi import run_spmd


class TestAccessRange:
    def test_empty_detection(self):
        assert AccessRange(None, None, 0, 0).empty
        assert AccessRange(10, 10, 0, 0).empty
        assert not AccessRange(0, 10, 0, 10).empty


class TestPartitionDomains:
    def test_even_split(self):
        doms = partition_domains(0, 100, 4)
        assert doms == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_uneven_split_front_loads(self):
        doms = partition_domains(0, 10, 3)
        assert doms == [(0, 4), (4, 7), (7, 10)]
        assert doms[-1][1] == 10

    def test_single_domain(self):
        assert partition_domains(7, 19, 1) == [(7, 19)]

    def test_more_domains_than_bytes(self):
        doms = partition_domains(0, 2, 4)
        assert doms == [(0, 1), (1, 2), (2, 2), (2, 2)]
        assert sum(hi - lo for lo, hi in doms) == 2

    def test_contiguous_cover(self):
        doms = partition_domains(123, 4567, 7)
        assert doms[0][0] == 123
        assert doms[-1][1] == 4567
        for (a_lo, a_hi), (b_lo, b_hi) in zip(doms, doms[1:]):
            assert a_hi == b_lo


class TestAggregateRanges:
    def test_aggregation(self):
        def worker(comm):
            mine = AccessRange(
                comm.rank * 100, comm.rank * 100 + 50, 0, 50
            )
            ranges, lo, hi = aggregate_ranges(comm, mine)
            assert len(ranges) == comm.size
            assert lo == 0
            assert hi == (comm.size - 1) * 100 + 50
            return (lo, hi)

        assert run_spmd(3, worker) == [(0, 250)] * 3

    def test_empty_ranks_ignored(self):
        def worker(comm):
            if comm.rank == 1:
                mine = AccessRange(None, None, 0, 0)
            else:
                mine = AccessRange(10, 20, 0, 10)
            _ranges, lo, hi = aggregate_ranges(comm, mine)
            return (lo, hi)

        assert run_spmd(3, worker) == [(10, 20)] * 3

    def test_all_empty(self):
        def worker(comm):
            mine = AccessRange(None, None, 0, 0)
            _r, lo, hi = aggregate_ranges(comm, mine)
            return (lo, hi)

        assert run_spmd(2, worker) == [(None, None)] * 2

"""Ol-list operations: range expansion, merging, coalescing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.flatten import (
    OLList,
    coalesce,
    expand_range,
    flatten_datatype,
    is_single_block,
    merge_lists,
    total_length,
)


class TestCoalesce:
    def test_merges_touching(self):
        assert coalesce([(0, 4), (4, 4)]) == [(0, 8)]

    def test_merges_overlapping(self):
        assert coalesce([(0, 6), (4, 4)]) == [(0, 8)]

    def test_keeps_gaps(self):
        assert coalesce([(0, 4), (8, 4)]) == [(0, 4), (8, 4)]

    def test_drops_empty(self):
        assert coalesce([(0, 0), (4, 4)]) == [(4, 4)]


class TestHelpers:
    def test_total_length(self):
        assert total_length([(0, 4), (9, 6)]) == 10

    def test_is_single_block(self):
        assert is_single_block([(0, 10)])
        assert not is_single_block([(0, 4), (8, 4)])
        assert not is_single_block([])


def _brute_expand(flat, extent, disp, lo, hi):
    """Brute-force reference for expand_range."""
    out = []
    n = 0
    while disp + n * extent < hi + extent:
        for off, ln in flat:
            a = disp + n * extent + off
            b = a + ln
            a2, b2 = max(a, lo), min(b, hi)
            if b2 > a2:
                out.append((a2, b2 - a2))
        n += 1
        if n > 1000:
            break
    # coalesce strictly adjacent as expand_range does
    merged = []
    for off, ln in out:
        if merged and merged[-1][0] + merged[-1][1] == off:
            merged[-1] = (merged[-1][0], merged[-1][1] + ln)
        else:
            merged.append((off, ln))
    return merged


class TestExpandRange:
    def test_against_brute_force(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        flat = flatten_datatype(v)
        for disp in (0, 100):
            for lo, hi in [(0, 50), (130, 300), (77, 333), (0, 1000)]:
                got = expand_range(flat, v.extent, disp, lo, hi).to_pairs()
                want = _brute_expand(
                    flat.to_pairs(), v.extent, disp, lo, hi
                )
                assert got == want, (disp, lo, hi)

    def test_empty_range(self):
        flat = OLList([(0, 4)])
        assert len(expand_range(flat, 8, 0, 10, 10)) == 0

    def test_size_proportional_to_range_not_nblock(self):
        # Paper §2.3: Ncoll depends on the access extent, not Nblock.
        flat = OLList([(0, 4)])
        ol = expand_range(flat, 8, 0, 0, 8 * 1000)
        assert len(ol) == 1000

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(1, 4),
        st.integers(0, 40),
        st.integers(0, 200),
        st.integers(0, 200),
    )
    def test_random_vectors_match_brute(self, count, blocklen, disp, a, b):
        v = dt.vector(count, blocklen, blocklen + 2, dt.INT)
        flat = flatten_datatype(v)
        lo, hi = min(a, b), max(a, b)
        got = expand_range(flat, v.extent, disp, lo, hi).to_pairs()
        want = _brute_expand(flat.to_pairs(), v.extent, disp, lo, hi)
        assert got == want


class TestMergeLists:
    def test_interleaved_lists_merge_to_one_block(self):
        a = OLList([(0, 8), (16, 8)])
        b = OLList([(8, 8), (24, 8)])
        assert merge_lists([a, b]) == [(0, 32)]

    def test_gap_remains(self):
        a = OLList([(0, 8)])
        b = OLList([(24, 8)])
        assert merge_lists([a, b]) == [(0, 8), (24, 8)]

    def test_empty_input(self):
        assert merge_lists([]) == []

    def test_three_way(self):
        lists = [
            OLList([(i * 3, 1) for i in range(5)]),
            OLList([(i * 3 + 1, 1) for i in range(5)]),
            OLList([(i * 3 + 2, 1) for i in range(5)]),
        ]
        assert merge_lists(lists) == [(0, 15)]

"""Engine statistics: the §2.4 overheads made countable."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.noncontig import build_noncontig_filetype
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd

P, SBLOCK, NBLOCK = 2, 8, 256
A = SBLOCK * NBLOCK


def run_and_collect(engine, collective, nreps=2, stagger=False):
    """``stagger`` offsets each access by a distinct residue of the
    filetype period, defeating the planner's replay fast path so every
    access is planned from scratch."""
    fs = SimFileSystem()
    stats = [None] * P

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = build_noncontig_filetype(P, r, SBLOCK, NBLOCK)
        fh.set_view(0, dt.BYTE, ft)
        buf = np.full(A, r, dtype=np.uint8)
        write = fh.write_at_all if collective else fh.write_at
        for rep in range(nreps):
            write(rep * A + (rep if stagger else 0), buf)
        stats[r] = fh.engine.stats.snapshot()
        fh.close()

    run_spmd(P, worker)
    return stats


class TestListBasedStats:
    def test_flattening_counted_once(self):
        stats = run_and_collect("list_based", collective=False)
        for s in stats:
            # The filetype flattening (NBLOCK tuples) happens at
            # set_view; independent writes add no per-access expansions.
            # (+1 allowed: the very first open in a session flattens the
            # default BYTE view before its cache warms.)
            assert NBLOCK <= s["list_tuples_built"] <= NBLOCK + 1

    def test_navigation_scans_counted(self):
        stats = run_and_collect("list_based", collective=False)
        for s in stats:
            assert s["list_scans"] >= 2  # start+end per access

    def test_collective_expansions_counted_and_sent(self):
        stats = run_and_collect("list_based", collective=True, nreps=3)
        for s in stats:
            # Per access: ~NBLOCK tuples expanded across the IOP domains
            # (boundary splitting may add a few); 3 accesses.
            assert s["list_tuples_sent"] >= 3 * NBLOCK * 0.9
            assert s["list_tuples_built"] >= s["list_tuples_sent"]

    def test_merge_volume_counted(self):
        stats = run_and_collect("list_based", collective=True)
        total_merged = sum(s["list_tuples_merged"] for s in stats)
        assert total_merged > 0

    def test_no_ff_activity(self):
        stats = run_and_collect("list_based", collective=True)
        for s in stats:
            assert s["ff_navigations"] == 0
            assert s["ff_kernel_calls"] == 0
            assert s["ff_view_bytes_exchanged"] == 0


class TestListlessStats:
    def test_no_list_activity(self):
        for collective in (False, True):
            stats = run_and_collect("listless", collective=collective)
            for s in stats:
                assert s["list_tuples_built"] == 0
                assert s["list_tuples_sent"] == 0
                assert s["list_tuples_merged"] == 0
                assert s["list_scans"] == 0

    def test_view_exchange_once_and_small(self):
        stats = run_and_collect("listless", collective=True, nreps=4)
        for s in stats:
            # Exchanged at open (default view) + set_view; independent of
            # the number of accesses and of Nblock.
            assert 0 < s["ff_view_bytes_exchanged"] < 2048

    def test_navigations_scale_with_accesses_not_nblock(self):
        # Staggered offsets: every access has a fresh period residue,
        # so every access is actually planned (no replay).
        few = run_and_collect("listless", collective=False, nreps=1,
                              stagger=True)
        many = run_and_collect("listless", collective=False, nreps=4,
                               stagger=True)
        assert many[0]["ff_navigations"] > few[0]["ff_navigations"]

    def test_replay_keeps_navigations_flat(self):
        # Period-translated accesses replay one relocatable plan;
        # repeats add no navigations at all.
        few = run_and_collect("listless", collective=False, nreps=1)
        many = run_and_collect("listless", collective=False, nreps=4)
        assert many[0]["plan_replays"] >= 2
        assert many[0]["ff_navigations"] == few[0]["ff_navigations"]

    def test_view_exchange_independent_of_nblock(self):
        def bytes_for(nblock):
            fs = SimFileSystem()
            out = [None]

            def worker(comm):
                fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                               engine="listless")
                ft = build_noncontig_filetype(1, 0, SBLOCK, nblock)
                fh.set_view(0, dt.BYTE, ft)
                out[0] = fh.engine.stats.ff_view_bytes_exchanged
                fh.close()

            run_spmd(1, worker)
            return out[0]

        assert bytes_for(16) == bytes_for(16384)

"""The POSIX-style cursor interface."""

import numpy as np
import pytest

from repro.errors import FileSystemError
from repro.fs import PosixFile, SimFileSystem
from repro.fs.posix import SEEK_CUR, SEEK_END, SEEK_SET
from tests.conftest import fill_pattern


@pytest.fixture
def pf():
    fs = SimFileSystem()
    return PosixFile(fs.create("/p"))


class TestCursor:
    def test_sequential_write_read(self, pf):
        a, b = fill_pattern(10, 1), fill_pattern(6, 2)
        pf.write(a)
        pf.write(b)
        assert pf.tell() == 16
        pf.lseek(0)
        assert (pf.read(10) == a).all()
        assert (pf.read(6) == b).all()

    def test_seek_modes(self, pf):
        pf.write(fill_pattern(100))
        assert pf.lseek(10, SEEK_SET) == 10
        assert pf.lseek(5, SEEK_CUR) == 15
        assert pf.lseek(-20, SEEK_END) == 80

    def test_seek_negative_rejected(self, pf):
        with pytest.raises(FileSystemError):
            pf.lseek(-1, SEEK_SET)

    def test_bad_whence(self, pf):
        with pytest.raises(FileSystemError):
            pf.lseek(0, 9)

    def test_positional_ops_dont_move_cursor(self, pf):
        pf.write(fill_pattern(20))
        pos = pf.tell()
        pf.pwrite(0, np.zeros(4, np.uint8))
        pf.pread(0, 4)
        assert pf.tell() == pos

    def test_ftruncate(self, pf):
        pf.write(fill_pattern(20))
        pf.ftruncate(5)
        pf.lseek(0)
        assert pf.read(100).size == 5

    def test_closed_rejects_io(self, pf):
        pf.close()
        with pytest.raises(FileSystemError):
            pf.read(1)
        with pytest.raises(FileSystemError):
            pf.write(np.zeros(1, np.uint8))

    def test_context_manager(self):
        fs = SimFileSystem()
        with PosixFile(fs.create("/c")) as pf:
            pf.write(fill_pattern(4))
        with pytest.raises(FileSystemError):
            pf.tell()

    def test_two_handles_independent_cursors(self):
        fs = SimFileSystem()
        f = fs.create("/x")
        h1, h2 = PosixFile(f), PosixFile(f)
        h1.write(fill_pattern(8, 3))
        assert h2.tell() == 0
        assert (h2.read(8) == fill_pattern(8, 3)).all()

"""Dataloop compilation and its block/navigation primitives.

Every dataloop answer is checked against the flattened type map (the
oracle), over exhaustive small ranges and hypothesis-generated trees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.core.dataloop import (
    DLBlocks,
    DLContig,
    DLSeq,
    DLVector,
    compile_dataloop,
)
from repro.datatypes.packing import typemap_blocks
from tests.conftest import datatype_trees


def ref_blocks_range(t, s_lo, s_hi):
    """Reference: clip the coalesced type map to a data range."""
    out = []
    pos = 0
    for off, ln in typemap_blocks(t, 1):
        a = max(s_lo - pos, 0)
        b = min(s_hi - pos, ln)
        if b > a:
            out.append((off + a, b - a))
        pos += ln
    return out


def got_blocks_range(t, s_lo, s_hi):
    loop = compile_dataloop(t)
    offs, lens = loop.blocks_range(s_lo, s_hi)
    return list(zip(offs.tolist(), lens.tolist()))


def merge(pairs):
    out = []
    for o, ln in pairs:
        if out and out[-1][0] + out[-1][1] == o:
            out[-1] = (out[-1][0], out[-1][1] + ln)
        else:
            out.append((o, ln))
    return out


class TestCompilation:
    def test_basic_compiles_to_contig(self):
        assert isinstance(compile_dataloop(dt.DOUBLE), DLContig)

    def test_contiguous_collapses(self):
        loop = compile_dataloop(dt.contiguous(8, dt.INT))
        assert isinstance(loop, DLContig)
        assert loop.size == 32

    def test_vector_compiles_to_vector(self):
        loop = compile_dataloop(dt.vector(4, 2, 5, dt.DOUBLE))
        assert isinstance(loop, DLVector)
        assert isinstance(loop.child, DLContig)

    def test_perfect_nesting_fuses(self):
        inner = dt.vector(4, 1, 2, dt.INT)  # span = 4*8 = extent 28?
        outer = dt.hvector(3, 1, 4 * 8, inner)
        loop = compile_dataloop(outer)
        # outer stride (32) == inner count * inner stride (4*8) -> fused
        assert isinstance(loop, DLVector)
        assert loop.count == 12

    def test_marker_only_type_compiles_to_none(self):
        t = dt.struct([1], [0], [dt.LB])
        assert compile_dataloop(t) is None

    def test_indexed_compiles_to_blocks(self):
        loop = compile_dataloop(dt.indexed([3, 1, 2], [0, 5, 9], dt.INT))
        assert isinstance(loop, DLBlocks)

    def test_cache_reused(self):
        t = dt.vector(4, 2, 5, dt.DOUBLE)
        assert compile_dataloop(t) is compile_dataloop(t)

    def test_compile_cost_independent_of_count(self):
        import time

        t0 = time.perf_counter()
        compile_dataloop(dt.vector(10**7, 1, 2, dt.DOUBLE))
        assert time.perf_counter() - t0 < 0.05

    def test_depth_bounded_by_tree(self):
        t = dt.DOUBLE
        for _ in range(5):
            t = dt.hvector(3, 1, 100, t)
        loop = compile_dataloop(t)
        assert loop.depth <= t.depth + 1


class TestBlocksRange:
    def test_full_range_matches_flatten(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0:
                continue
            got = merge(got_blocks_range(t, 0, t.size))
            assert got == typemap_blocks(t, 1), name

    def test_exhaustive_subranges_vector(self):
        t = dt.vector(3, 2, 4, dt.INT)
        for lo in range(t.size + 1):
            for hi in range(lo, t.size + 1):
                assert merge(got_blocks_range(t, lo, hi)) == merge(
                    ref_blocks_range(t, lo, hi)
                ), (lo, hi)

    def test_exhaustive_subranges_indexed(self):
        t = dt.indexed([3, 1, 2], [0, 5, 9], dt.INT)
        for lo in range(0, t.size + 1, 3):
            for hi in range(lo, t.size + 1, 3):
                assert merge(got_blocks_range(t, lo, hi)) == merge(
                    ref_blocks_range(t, lo, hi)
                ), (lo, hi)

    @settings(max_examples=80, deadline=None)
    @given(datatype_trees(), st.data())
    def test_random_trees_random_ranges(self, t, data):
        lo = data.draw(st.integers(0, t.size))
        hi = data.draw(st.integers(lo, t.size))
        assert merge(got_blocks_range(t, lo, hi)) == merge(
            ref_blocks_range(t, lo, hi)
        )

    def test_empty_range(self):
        loop = compile_dataloop(dt.vector(3, 2, 4, dt.INT))
        offs, lens = loop.blocks_range(5, 5)
        assert offs.size == 0 and lens.size == 0


class TestNavigationOnLoops:
    def oracle_size_of_ext(self, t, e):
        return sum(
            max(0, min(e - off, ln)) for off, ln in typemap_blocks(t, 1)
        )

    def test_size_of_ext_exhaustive(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0 or not t.is_monotonic:
                continue
            loop = compile_dataloop(t)
            for e in range(0, t.true_ub + 3):
                assert loop.size_of_ext(e) == self.oracle_size_of_ext(
                    t, e
                ), (name, e)

    def test_ext_of_size_start_semantics(self):
        t = dt.vector(4, 2, 5, dt.DOUBLE)
        loop = compile_dataloop(t)
        blocks = typemap_blocks(t, 1)
        pos = 0
        for off, ln in blocks:
            for i in range(ln):
                assert loop.ext_of_size(pos + i, False) == off + i
            pos += ln

    def test_ext_of_size_end_semantics(self):
        t = dt.vector(4, 2, 5, dt.DOUBLE)
        loop = compile_dataloop(t)
        blocks = typemap_blocks(t, 1)
        pos = 0
        for off, ln in blocks:
            # end of the s bytes ending inside/at end of this block
            for i in range(1, ln + 1):
                assert loop.ext_of_size(pos + i, True) == off + i
            pos += ln

    def test_ext_size_are_inverse_on_block_interiors(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0 or not t.is_monotonic:
                continue
            loop = compile_dataloop(t)
            for s in range(t.size):
                e = loop.ext_of_size(s, False)
                assert loop.size_of_ext(e) == s, (name, s)

    def test_overlapping_struct_subarrays_nav(self):
        # Children placed at identical offsets but data-disjoint (the
        # BTIO filetype shape) - the regression that motivated data-start
        # navigation.
        a = dt.subarray([4, 4], [2, 4], [0, 0], dt.DOUBLE)
        b = dt.subarray([4, 4], [2, 4], [2, 0], dt.DOUBLE)
        t = dt.struct([1, 1], [0, 0], [a, b])
        assert t.is_monotonic
        loop = compile_dataloop(t)
        for e in range(0, t.true_ub + 1, 4):
            assert loop.size_of_ext(e) == self.oracle_size_of_ext(t, e), e

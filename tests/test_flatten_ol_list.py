"""The OLList structure: construction, navigation, accounting."""

import pytest

from repro.errors import FlattenError
from repro.flatten import OLList


class TestConstruction:
    def test_drops_empty_blocks(self):
        ol = OLList([(0, 4), (10, 0), (20, 4)])
        assert len(ol) == 2
        assert ol.to_pairs() == [(0, 4), (20, 4)]

    def test_negative_length_rejected(self):
        with pytest.raises(FlattenError):
            OLList([(0, -1)])

    def test_size(self):
        ol = OLList([(0, 4), (20, 6)])
        assert ol.size == 10

    def test_nbytes_repr_is_16_per_tuple(self):
        # The paper's accounting: sizeof(Aint) + sizeof(Offset) per block.
        ol = OLList([(i * 10, 4) for i in range(7)])
        assert ol.nbytes_repr == 7 * 16

    def test_repr_exceeds_payload_for_small_blocks(self):
        # Paper §2.1: for blocks < 16 bytes the representation outweighs
        # the data.
        ol = OLList([(i * 16, 8) for i in range(100)])
        assert ol.nbytes_repr > ol.size

    def test_end_offset(self):
        assert OLList([(5, 5), (20, 10)]).end_offset() == 30
        assert OLList(()).end_offset() == 0

    def test_iteration_and_indexing(self):
        ol = OLList([(0, 1), (2, 3)])
        assert list(ol) == [(0, 1), (2, 3)]
        assert ol[1] == (2, 3)


class TestNavigation:
    def make(self):
        return OLList([(0, 16), (40, 16), (80, 16), (120, 16)])

    def test_find_position_inside_block(self):
        assert self.make().find_position(17) == (1, 1)

    def test_find_position_block_boundary(self):
        assert self.make().find_position(16) == (1, 0)

    def test_find_position_at_end(self):
        assert self.make().find_position(64) == (4, 0)

    def test_find_position_beyond_end_raises(self):
        with pytest.raises(FlattenError):
            self.make().find_position(65)

    def test_find_position_negative_raises(self):
        with pytest.raises(FlattenError):
            self.make().find_position(-1)

    def test_find_block_linear(self):
        ol = self.make()
        assert ol.find_block_linear(0) == 0
        assert ol.find_block_linear(15) == 0
        assert ol.find_block_linear(16) == 1  # in the gap -> next block
        assert ol.find_block_linear(80) == 2
        assert ol.find_block_linear(200) == 4

    def test_bisect_matches_linear(self):
        ol = self.make()
        for off in range(0, 150, 7):
            assert ol.find_block_bisect(off) == ol.find_block_linear(off)

    def test_data_before(self):
        ol = self.make()
        assert ol.data_before(0) == 0
        assert ol.data_before(8) == 8
        assert ol.data_before(41) == 17
        assert ol.data_before(1000) == 64

    def test_shifted(self):
        ol = self.make().shifted(100)
        assert ol.to_pairs()[0] == (100, 16)
        assert ol.size == 64

"""Independent non-contiguous I/O across the Fig.-1 layout matrix.

Each case writes through interleaving per-rank views and reads back,
then the file contents are checked against an analytically computed
expectation — for both engines, several window sizes (forcing the
multi-window sieving paths), displacements and mid-view offsets.
"""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.noncontig import (
    build_noncontig_filetype,
    build_noncontig_memtype,
)
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd

ENGINES = ["listless", "list_based"]


def expected_file(P, blocklen, blockcount, disp, off_bytes, payloads):
    """Analytic interleaved file image for the Fig. 4 views."""
    A = blocklen * blockcount
    total = disp + off_bytes // A * 0  # placeholder
    n_access_bytes = max(len(p) for p in payloads)
    n_et = off_bytes + n_access_bytes
    ninst = (n_et + A - 1) // A
    img = np.zeros(disp + ninst * A * P, dtype=np.uint8)
    for r in range(P):
        data = payloads[r]
        for i in range(len(data)):
            d = off_bytes + i
            inst, rem = divmod(d, A)
            b, w = divmod(rem, blocklen)
            abs_off = (
                disp + inst * A * P + b * P * blocklen + r * blocklen + w
            )
            img[abs_off] = data[i]
    return img


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("bufsize", [64, 4096])
@pytest.mark.parametrize("disp,off", [(0, 0), (24, 0), (0, 40), (24, 40)])
def test_cnc_write_read_roundtrip(engine, bufsize, disp, off):
    P, blocklen, blockcount = 3, 5, 8
    A = blocklen * blockcount
    fs = SimFileSystem()
    hints = Hints(ind_rd_buffer_size=bufsize, ind_wr_buffer_size=bufsize)
    payloads = [
        np.random.default_rng(r).integers(0, 256, A, dtype=np.uint8)
        for r in range(P)
    ]

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        fh.set_view(disp, dt.BYTE, ft)
        fh.write_at(off, payloads[r])
        out = np.zeros(A, dtype=np.uint8)
        fh.read_at(off, out)
        assert (out == payloads[r]).all()
        fh.close()

    run_spmd(P, worker)
    img = expected_file(P, blocklen, blockcount, disp, off, payloads)
    got = fs.lookup("/f").contents()
    # The file may be shorter than the analytic image if trailing
    # interleave slots were never written; compare the written prefix.
    assert (got == img[: got.size]).all()
    assert (img[got.size:] == 0).all()


@pytest.mark.parametrize("engine", ENGINES)
def test_ncnc_roundtrip(engine):
    P, blocklen, blockcount = 2, 8, 16
    A = blocklen * blockcount
    fs = SimFileSystem()

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        mt = build_noncontig_memtype(blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        buf = np.random.default_rng(r).integers(
            0, 256, 2 * A, dtype=np.uint8
        )
        fh.write_at(0, buf, 1, mt)
        out = np.zeros(2 * A, dtype=np.uint8)
        fh.read_at(0, out, 1, mt)
        mask = np.zeros(2 * A, dtype=bool)
        for b in range(blockcount):
            mask[2 * b * blocklen : 2 * b * blocklen + blocklen] = True
        assert (out[mask] == buf[mask]).all()
        assert (out[~mask] == 0).all()
        fh.close()

    run_spmd(P, worker)


@pytest.mark.parametrize("engine", ENGINES)
def test_ncc_pack_on_write(engine):
    """Non-contiguous memory, contiguous file: data lands packed."""
    fs = SimFileSystem()
    blocklen, blockcount = 4, 8
    A = blocklen * blockcount

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(comm.rank * A, dt.BYTE, dt.BYTE)
        mt = build_noncontig_memtype(blocklen, blockcount)
        buf = np.arange(2 * A, dtype=np.uint8)
        fh.write_at(0, buf, 1, mt)
        fh.close()

    run_spmd(2, worker)
    data = fs.lookup("/f").contents()
    expect_one = np.concatenate(
        [np.arange(2 * b * blocklen, 2 * b * blocklen + blocklen)
         for b in range(blockcount)]
    ).astype(np.uint8)
    assert (data[:A] == expect_one).all()
    assert (data[A:] == expect_one).all()


@pytest.mark.parametrize("engine", ENGINES)
def test_etype_granularity_offsets(engine):
    """Accesses at etype offsets land mid-filetype (paper §2.2)."""
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = dt.vector(4, 2, 4, dt.DOUBLE)  # blocks of 2 doubles
        fh.set_view(0, dt.DOUBLE, ft)
        # Write one double at etype offset 3 -> second block, 2nd slot.
        fh.write_at(3, np.array([7.5]), 1, dt.DOUBLE)
        fh.close()

    run_spmd(1, worker)
    data = fs.lookup("/f").contents()
    doubles = np.zeros(data.size // 8)
    doubles[: data.size // 8] = data[: data.size // 8 * 8].view(np.float64)
    # etype 3 = block 1 (file doubles 4..5), second element -> index 5.
    assert doubles[5] == 7.5


@pytest.mark.parametrize("engine", ENGINES)
def test_ds_disabled_blockwise_access(engine):
    """With data sieving off, each block becomes its own file access."""
    fs = SimFileSystem()
    hints = Hints(ds_read=False, ds_write=False)
    blockcount = 8

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        ft = dt.vector(blockcount, 1, 2, dt.DOUBLE)
        fh.set_view(0, dt.DOUBLE, ft)
        buf = np.arange(blockcount, dtype=np.float64)
        fh.write_at(0, buf, blockcount, dt.DOUBLE)
        out = np.zeros(blockcount)
        fh.read_at(0, out, blockcount, dt.DOUBLE)
        assert (out == buf).all()
        fh.close()

    run_spmd(1, worker)
    stats = fs.lookup("/f").stats.snapshot()
    # One write per block (plus no sieving pre-reads on the write path).
    assert stats["n_writes"] == blockcount
    assert stats["n_reads"] == blockcount


@pytest.mark.parametrize("engine", ENGINES)
def test_sieving_reduces_file_ops(engine):
    """With sieving on, windowed access coalesces file operations."""
    fs = SimFileSystem()
    blockcount = 256

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = dt.vector(blockcount, 1, 2, dt.DOUBLE)
        fh.set_view(0, dt.DOUBLE, ft)
        buf = np.arange(blockcount, dtype=np.float64)
        fh.write_at(0, buf, blockcount, dt.DOUBLE)
        fh.close()

    run_spmd(1, worker)
    stats = fs.lookup("/f").stats.snapshot()
    # The whole strided write fits one window: 1 pre-read + 1 write-back.
    assert stats["n_writes"] <= 2
    assert stats["n_reads"] <= 2
    assert stats["n_locks"] >= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_write_beyond_eof_extends(engine):
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = dt.vector(2, 1, 2, dt.DOUBLE)
        fh.set_view(1000, dt.DOUBLE, ft)
        fh.write_at(0, np.array([1.0, 2.0]), 2, dt.DOUBLE)
        fh.close()

    run_spmd(1, worker)
    f = fs.lookup("/f")
    assert f.size == 1000 + 3 * 8
    assert (f.contents()[:1000] == 0).all()

"""Explicit flattening: equivalence with the type map, O(Nblock) output."""

from hypothesis import given, settings

from repro import datatypes as dt
from repro.datatypes.packing import typemap_blocks
from repro.flatten import flatten_count, flatten_datatype
from tests.conftest import datatype_trees


class TestFlattenDatatype:
    def test_vector(self):
        ol = flatten_datatype(dt.vector(4, 2, 5, dt.DOUBLE))
        assert ol.to_pairs() == [(0, 16), (40, 16), (80, 16), (120, 16)]

    def test_dense_vector_single_block(self):
        ol = flatten_datatype(dt.vector(4, 2, 2, dt.DOUBLE))
        assert ol.to_pairs() == [(0, 64)]

    def test_marker_contributes_nothing(self):
        t = dt.struct([1, 1, 1], [0, 8, 100], [dt.LB, dt.INT, dt.UB])
        assert flatten_datatype(t).to_pairs() == [(8, 4)]

    def test_subarray(self):
        t = dt.subarray([4, 4], [2, 2], [1, 1], dt.DOUBLE)
        assert flatten_datatype(t).to_pairs() == [(40, 16), (72, 16)]

    def test_nested_vector_of_vectors(self):
        inner = dt.vector(2, 1, 2, dt.INT)  # blocks at 0, 8 (4B each)
        outer = dt.hvector(2, 1, 100, inner)
        ol = flatten_datatype(outer)
        assert ol.to_pairs() == [(0, 4), (8, 4), (100, 4), (108, 4)]

    def test_matches_num_blocks(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0:
                continue
            assert len(flatten_datatype(t)) == t.num_blocks, name

    @settings(max_examples=80, deadline=None)
    @given(datatype_trees())
    def test_matches_typemap_blocks(self, t):
        assert flatten_datatype(t).to_pairs() == typemap_blocks(t, 1)


class TestFlattenCount:
    def test_tiles_by_extent(self):
        t = dt.vector(2, 1, 2, dt.INT)
        ol = flatten_count(t, 2)
        # extent 12; seam merge at 12.
        assert ol.to_pairs() == [(0, 4), (8, 8), (20, 4)]

    @settings(max_examples=40, deadline=None)
    @given(datatype_trees())
    def test_matches_typemap_blocks_counted(self, t):
        assert flatten_count(t, 3).to_pairs() == typemap_blocks(t, 3)

    def test_zero_count(self):
        assert flatten_count(dt.INT, 0).to_pairs() == []

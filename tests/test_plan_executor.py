"""Executor backends and nonblocking requests: plans running against
the POSIX baseline handle, deferred execution, error propagation, and
lock cleanup on failure."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.errors import FileSystemError, IOEngineError
from repro.fs import DeviceModel, SimFileSystem, StripingConfig
from repro.fs.posix import PosixFile
from repro.fs.simfile import SimFile
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.fileview import MemDescriptor
from repro.io.request import Request
from repro.mpi import run_spmd
from repro.plan import (
    STAGE,
    Blocks,
    FileReadOp,
    FileWriteOp,
    GatherOp,
    IOPlan,
    KernelCodec,
    Piece,
    PosixExecutor,
    ScatterOp,
)


class FlakyFile(SimFile):
    """A SimFile whose n-th write raises; counts successful writes."""

    def __init__(self, *a, fail_after_writes=None, **kw):
        super().__init__(*a, **kw)
        self._writes_left = fail_after_writes
        self.writes_done = 0

    def pwrite(self, offset, data):
        if self._writes_left is not None:
            if self._writes_left == 0:
                raise FileSystemError("injected write fault")
            self._writes_left -= 1
        n = super().pwrite(offset, data)
        self.writes_done += 1
        return n


def flaky_fs(path="/f", **kw):
    fs = SimFileSystem()
    fs._files[path] = FlakyFile(path, DeviceModel(), StripingConfig(), **kw)
    return fs


def strided_plan(write):
    """Hand-built two-block plan: data bytes [0,8) to file [0,4)+[8,12)."""
    blocks = Blocks(np.array([0, 8], dtype=np.int64),
                    np.array([4, 4], dtype=np.int64))
    piece = Piece(STAGE, 0, 8, blocks)
    if write:
        ops = (GatherOp(0, 8), FileWriteOp(0, 12, "direct", (piece,)))
    else:
        ops = (FileReadOp(0, 12, "direct", (piece,)), ScatterOp(0, 8))
    kind = "write-independent" if write else "read-independent"
    return IOPlan(kind, 0, 8, ops, slots={STAGE: (0, 8)})


class TestPosixExecutor:
    def test_plans_run_against_the_posix_baseline(self):
        """The very ops engines emit for the simulated MPI-IO backend run
        unchanged against the cursor-based POSIX handle."""
        simfile = SimFile("/p", DeviceModel(), StripingConfig())
        pf = PosixFile(simfile)
        ex = PosixExecutor(pf, codec=KernelCodec())

        w = np.arange(1, 9, dtype=np.uint8)
        ex.run(strided_plan(write=True),
               MemDescriptor(w, 8, dt.BYTE))
        data = simfile.contents()
        assert (data[0:4] == [1, 2, 3, 4]).all()
        assert (data[4:8] == 0).all()
        assert (data[8:12] == [5, 6, 7, 8]).all()

        r = np.zeros(8, dtype=np.uint8)
        ex.run(strided_plan(write=False),
               MemDescriptor(r, 8, dt.BYTE))
        assert (r == w).all()
        assert ex.stats.executed_file_writes == 2
        assert ex.stats.executed_file_reads == 2


class TestRequests:
    def test_bare_request_semantics(self):
        r = Request()
        assert r.test() is False
        with pytest.raises(IOEngineError, match="unstarted request"):
            r.wait()
        done = Request.completed()
        assert done.test() is True
        done.wait()
        done.wait()

    def test_execution_deferred_until_wait(self):
        """``iread_at`` plans eagerly but reads lazily: data written to
        the file after posting is what the wait observes."""
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
            fh.set_view(0, dt.BYTE, dt.contiguous(16, dt.BYTE))
            buf = np.zeros(16, dtype=np.uint8)
            req = fh.iread_at(0, buf)
            assert req.plan is not None
            assert (buf == 0).all()
            fs.lookup("/f").pwrite(0, np.full(16, 7, dtype=np.uint8))
            req.wait()
            assert (buf == 7).all()
            req.wait()  # idempotent
            assert req.test() is True
            fh.close()

        run_spmd(1, worker)

    def test_wait_completes_a_deferred_write_exactly_once(self):
        fs = flaky_fs()
        f = fs.lookup("/f")

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR)
            fh.set_view(0, dt.BYTE, dt.contiguous(8, dt.BYTE))
            req = fh.iwrite_at(0, np.full(8, 3, dtype=np.uint8))
            assert f.writes_done == 0, "write must not happen at post time"
            req.wait()
            assert f.writes_done == 1
            req.wait()
            assert req.test() is True
            assert f.writes_done == 1, "double wait must not re-execute"
            fh.close()

        run_spmd(1, worker)
        assert (fs.lookup("/f").contents()[:8] == 3).all()

    def test_pointer_advances_at_post_time(self):
        """Back-to-back ``iwrite`` calls target consecutive regions even
        though neither has executed yet (MPI nonblocking semantics)."""
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
            fh.set_view(0, dt.BYTE, dt.contiguous(4, dt.BYTE))
            r1 = fh.iwrite(np.full(4, 1, dtype=np.uint8))
            r2 = fh.iwrite(np.full(4, 2, dtype=np.uint8))
            r2.wait()
            r1.wait()
            fh.close()

        run_spmd(1, worker)
        data = fs.lookup("/f").contents()
        assert (data[:4] == 1).all()
        assert (data[4:8] == 2).all()

    def test_error_propagates_on_wait_and_sticks(self):
        fs = flaky_fs(fail_after_writes=0)
        f = fs.lookup("/f")

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR)
            fh.set_view(0, dt.BYTE, dt.contiguous(8, dt.BYTE))
            req = fh.iwrite_at(0, np.ones(8, dtype=np.uint8))
            with pytest.raises(FileSystemError, match="injected"):
                req.wait()
            # Device heals, but the request stays completed-with-error:
            # it must never re-execute.
            f._writes_left = None
            with pytest.raises(FileSystemError, match="injected"):
                req.wait()
            with pytest.raises(FileSystemError, match="injected"):
                req.test()
            assert f.writes_done == 0
            fh.close()

        run_spmd(1, worker)


class TestLockCleanup:
    def test_executor_releases_locks_when_the_device_faults(self):
        """A sieved write faults at writeback while holding its window
        lock; the executor's cleanup must leave the lock table empty."""
        fs = flaky_fs(fail_after_writes=0)
        f = fs.lookup("/f")

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR)
            fh.set_view(0, dt.BYTE, dt.vector(64, 1, 2, dt.BYTE))
            fh.write_at(0, np.ones(64, dtype=np.uint8))
            fh.close()

        with pytest.raises(FileSystemError, match="injected"):
            run_spmd(1, worker)
        assert f.locks._held == {}


class TestPipelineWorker:
    """The background file-I/O worker in isolation: FIFO order, drain
    semantics, and prompt failure."""

    def test_fifo_order_and_drain(self):
        from repro.plan.pipeline import FileJob, PipelineWorker

        w = PipelineWorker()
        order = []
        for i in range(8):
            w.submit(FileJob(lambda i=i: order.append(i), "read", i, 16))
        done = w.drain(0)
        w.close()
        assert order == list(range(8))
        assert [j.round_index for j in done] == list(range(8))
        assert all(j.seconds >= 0 for j in done)

    def test_drain_keep_leaves_work_in_flight(self):
        import threading

        from repro.plan.pipeline import FileJob, PipelineWorker

        gate = threading.Event()
        w = PipelineWorker()
        w.submit(FileJob(lambda: None, "read", 0, 4))
        w.submit(FileJob(gate.wait, "read", 1, 4))
        done = w.drain(keep=1)  # job 0 done; job 1 may still block
        assert [j.round_index for j in done] == [0]
        gate.set()
        assert [j.round_index for j in w.drain(0)] == [1]
        w.close()

    def test_error_reraised_at_drain_and_queue_dropped(self):
        from repro.plan.pipeline import FileJob, PipelineWorker

        def boom():
            raise OSError("disk on fire")

        ran = []
        w = PipelineWorker()
        w.submit(FileJob(boom, "write", 0, 4))
        w.submit(FileJob(lambda: ran.append(1), "write", 1, 4))
        with pytest.raises(OSError, match="disk on fire"):
            w.drain(0)
        # Queued work behind the failure was abandoned, and later
        # submits surface the stored error instead of queueing.
        assert ran == []
        with pytest.raises(OSError):
            w.submit(FileJob(lambda: None, "write", 2, 4))
        w.close(raise_error=False)

    def test_close_can_swallow_error(self):
        from repro.plan.pipeline import FileJob, PipelineWorker

        def boom():
            raise OSError("late fault")

        w = PipelineWorker()
        w.submit(FileJob(boom, "write", 0, 4))
        assert w.close(raise_error=False) == []

    def test_inflight_bytes_tracked(self):
        import threading

        from repro.plan.pipeline import FileJob, PipelineWorker

        gate = threading.Event()
        w = PipelineWorker()
        w.submit(FileJob(gate.wait, "read", 0, 100))
        w.submit(FileJob(lambda: None, "read", 1, 50))
        assert w.peak_inflight_bytes == 150
        gate.set()
        w.drain(0)
        w.close()

"""Shared fixtures and hypothesis strategies for the test suite.

The central oracle is the type map (:func:`repro.datatypes.packing`):
every engine-level operation must move exactly the bytes the type map
says.  ``datatype_trees`` generates random constructor trees bounded in
size so property tests explore vectors-of-structs-of-indexed shapes the
hand-written tests would never contain.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.datatypes.base import Datatype

# ----------------------------------------------------------------------
# Hypothesis strategies for datatype trees
# ----------------------------------------------------------------------
_BASICS = [dt.BYTE, dt.INT, dt.DOUBLE, dt.SHORT]


def _leaf() -> st.SearchStrategy[Datatype]:
    return st.sampled_from(_BASICS)


def _combine(children: st.SearchStrategy[Datatype]) -> st.SearchStrategy:
    def mk_contig(base, count):
        return dt.contiguous(count, base)

    def mk_vector(base, count, blocklen, gap):
        return dt.vector(count, blocklen, blocklen + gap, base)

    def mk_hvector(base, count, blocklen, gapbytes):
        stride = blocklen * base.extent + gapbytes
        return dt.hvector(count, blocklen, stride, base)

    def mk_indexed(base, blocklens, gaps):
        displs = []
        pos = 0
        for b, g in zip(blocklens, gaps):
            displs.append(pos)
            pos += b + g
        return dt.indexed(blocklens, displs, base)

    def mk_struct(specs):
        # specs: list of (blocklen, gap, type); displacements stacked
        # forward so the result stays monotonic-friendly.
        blocklens, displs, types = [], [], []
        pos = 0
        for b, g, t in specs:
            displs.append(pos)
            blocklens.append(b)
            types.append(t)
            pos += b * t.extent + g
        return dt.struct(blocklens, displs, types)

    small = st.integers(min_value=1, max_value=4)
    gap = st.integers(min_value=0, max_value=9)
    return st.one_of(
        st.builds(mk_contig, children, small),
        st.builds(mk_vector, children, small, small, gap),
        st.builds(mk_hvector, children, small, small, gap),
        st.builds(
            mk_indexed,
            children,
            st.lists(small, min_size=1, max_size=4),
            st.lists(gap, min_size=4, max_size=4),
        ),
        st.builds(
            mk_struct,
            st.lists(st.tuples(small, gap, children), min_size=1,
                     max_size=3),
        ),
    )


def datatype_trees(max_depth: int = 3) -> st.SearchStrategy[Datatype]:
    """Random, data-carrying datatype trees (monotonic by construction,
    so they are also legal filetypes over BYTE)."""
    return st.recursive(_leaf(), _combine, max_leaves=6).filter(
        lambda t: 0 < t.size <= 4096
    )


# ----------------------------------------------------------------------
# Deterministic sample types used across many tests
# ----------------------------------------------------------------------
@pytest.fixture
def sample_types():
    """A dict of representative datatypes covering every constructor."""
    vec = dt.vector(4, 2, 5, dt.DOUBLE)
    return {
        "basic": dt.DOUBLE,
        "contig": dt.contiguous(6, dt.INT),
        "vector": vec,
        "hvector": dt.hvector(3, 2, 50, dt.INT),
        "indexed": dt.indexed([3, 1, 2], [0, 5, 9], dt.INT),
        "hindexed": dt.hindexed([1, 2], [4, 40], dt.DOUBLE),
        "struct": dt.struct(
            [1, 1, 1], [0, 8, 200], [dt.LB, vec, dt.UB]
        ),
        "resized": dt.resized(vec, 0, 200),
        "subarray": dt.subarray([6, 6], [3, 2], [2, 1], dt.DOUBLE),
        "nested": dt.contiguous(2, dt.vector(3, 1, 2, dt.INT)),
    }


def fill_pattern(nbytes: int, seed: int = 0) -> np.ndarray:
    """Deterministic non-trivial byte pattern."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8)

"""The in-memory file object: POSIX read/write semantics and stats."""

import numpy as np
import pytest

from repro.errors import FileSystemError
from repro.fs import DeviceModel, SimFile, SimFileSystem, StripingConfig
from tests.conftest import fill_pattern


@pytest.fixture
def f():
    return SimFile("/t", DeviceModel(), StripingConfig())


class TestReadWrite:
    def test_write_then_read(self, f):
        data = fill_pattern(100)
        assert f.pwrite(0, data) == 100
        assert (f.pread(0, 100) == data).all()
        assert f.size == 100

    def test_read_past_eof_truncates(self, f):
        f.pwrite(0, fill_pattern(10))
        out = f.pread(5, 100)
        assert out.size == 5

    def test_read_at_eof_empty(self, f):
        f.pwrite(0, fill_pattern(10))
        assert f.pread(10, 4).size == 0
        assert f.pread(50, 4).size == 0

    def test_write_creates_hole(self, f):
        f.pwrite(100, fill_pattern(4, seed=1))
        assert f.size == 104
        assert (f.pread(0, 100) == 0).all()

    def test_sparse_overwrite(self, f):
        f.pwrite(0, np.full(64, 7, np.uint8))
        f.pwrite(16, np.full(8, 9, np.uint8))
        out = f.pread(0, 64)
        assert (out[:16] == 7).all()
        assert (out[16:24] == 9).all()
        assert (out[24:] == 7).all()

    def test_pread_into(self, f):
        data = fill_pattern(32)
        f.pwrite(0, data)
        buf = np.zeros(16, dtype=np.uint8)
        assert f.pread_into(8, buf) == 16
        assert (buf == data[8:24]).all()

    def test_growth_across_capacity(self, f):
        big = fill_pattern(100_000, seed=2)
        f.pwrite(0, big)
        assert (f.contents() == big).all()

    def test_negative_offset_rejected(self, f):
        with pytest.raises(FileSystemError):
            f.pwrite(-1, np.zeros(4, np.uint8))
        with pytest.raises(FileSystemError):
            f.pread(-1, 4)

    def test_non_byte_arrays_accepted(self, f):
        data = np.arange(8, dtype=np.float64)
        f.pwrite(0, data)
        assert (f.pread(0, 64).view(np.float64) == data).all()


class TestTruncate:
    def test_shrink(self, f):
        f.pwrite(0, fill_pattern(64))
        f.truncate(16)
        assert f.size == 16
        assert f.pread(0, 64).size == 16

    def test_shrink_then_regrow_zeroes(self, f):
        f.pwrite(0, np.full(64, 5, np.uint8))
        f.truncate(16)
        f.pwrite(32, np.full(4, 6, np.uint8))
        out = f.pread(0, 36)
        assert (out[16:32] == 0).all()

    def test_extend_zero_fills(self, f):
        f.pwrite(0, np.full(8, 3, np.uint8))
        f.truncate(32)
        assert f.size == 32
        assert (f.pread(8, 24) == 0).all()

    def test_negative_rejected(self, f):
        with pytest.raises(FileSystemError):
            f.truncate(-1)


class TestStats:
    def test_counters(self, f):
        f.pwrite(0, fill_pattern(100))
        f.pread(0, 50)
        s = f.stats.snapshot()
        assert s["n_writes"] == 1
        assert s["n_reads"] == 1
        assert s["bytes_written"] == 100
        assert s["bytes_read"] == 50
        assert s["sim_time"] > 0

    def test_device_model_time(self):
        dm = DeviceModel(read_bandwidth=1e6, write_bandwidth=1e6,
                         latency=1e-3)
        assert dm.read_time(1000) == pytest.approx(1e-3 + 1e-3)
        assert dm.write_time(0) == pytest.approx(1e-3)

    def test_striping_aggregates_bandwidth(self):
        dm = DeviceModel(latency=0.0, read_bandwidth=1e6)
        assert dm.read_time(1000, nstreams=4) == pytest.approx(
            dm.read_time(1000) / 4
        )

    def test_streams_for(self):
        s = StripingConfig(ndisks=4, stripe_size=100)
        assert s.streams_for(0, 50) == 1
        assert s.streams_for(0, 250) == 3
        assert s.streams_for(0, 10_000) == 4
        assert s.streams_for(90, 20) == 2

    def test_reset(self, f):
        f.pwrite(0, fill_pattern(10))
        f.stats.reset()
        assert f.stats.snapshot()["n_writes"] == 0


class TestFileSystem:
    def test_create_lookup(self):
        fs = SimFileSystem()
        f = fs.create("/a")
        assert fs.lookup("/a") is f
        assert fs.exists("/a")

    def test_create_exclusive(self):
        fs = SimFileSystem()
        fs.create("/a")
        with pytest.raises(FileSystemError):
            fs.create("/a", exist_ok=False)

    def test_lookup_missing(self):
        with pytest.raises(FileSystemError):
            SimFileSystem().lookup("/nope")

    def test_unlink(self):
        fs = SimFileSystem()
        fs.create("/a")
        fs.unlink("/a")
        assert not fs.exists("/a")
        with pytest.raises(FileSystemError):
            fs.unlink("/a")

    def test_listdir_sorted(self):
        fs = SimFileSystem()
        fs.create("/b")
        fs.create("/a")
        assert fs.listdir() == ["/a", "/b"]

    def test_total_sim_time(self):
        fs = SimFileSystem()
        fs.create("/a").pwrite(0, fill_pattern(10))
        fs.create("/b").pwrite(0, fill_pattern(10))
        assert fs.total_sim_time() > 0
        fs.reset_stats()
        assert fs.total_sim_time() == 0

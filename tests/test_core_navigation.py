"""``ff_size``/``ff_extent`` navigation functions (paper §3.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.core import ext_of_size, ff_extent, ff_size, size_of_ext
from repro.datatypes.packing import typemap_blocks
from repro.errors import FFError
from tests.conftest import datatype_trees


def oracle_size_of_ext(t, e, count=1):
    total = 0
    for off, ln in typemap_blocks(t, count):
        total += max(0, min(e - off, ln))
    return total


class TestExtOfSize:
    def test_block_starts(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        assert ext_of_size(v, 0) == 0
        assert ext_of_size(v, 16) == 40
        assert ext_of_size(v, 32) == 80

    def test_end_vs_start_at_boundary(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        assert ext_of_size(v, 16, end=True) == 16
        assert ext_of_size(v, 16, end=False) == 40

    def test_size_boundary(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        assert ext_of_size(v, 64, end=True) == 136

    def test_out_of_range_rejected(self):
        with pytest.raises(FFError):
            ext_of_size(dt.DOUBLE, 9)

    def test_multi_count(self):
        v = dt.vector(2, 1, 2, dt.INT)  # size 8, extent 12
        assert ext_of_size(v, 8, count=2) == 12
        assert ext_of_size(v, 12, count=2) == 20


class TestSizeOfExt:
    def test_matches_oracle(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0 or not t.is_monotonic:
                continue
            for e in range(0, t.true_ub + 2):
                assert size_of_ext(t, e) == oracle_size_of_ext(t, e), (
                    name, e,
                )

    def test_clamps_beyond_extent(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        assert size_of_ext(v, 10**6) == 64

    def test_negative_is_zero(self):
        assert size_of_ext(dt.DOUBLE, -5) == 0

    def test_multi_count(self):
        v = dt.vector(2, 1, 2, dt.INT)
        for e in range(0, 30):
            assert size_of_ext(v, e, count=2) == oracle_size_of_ext(
                v, e, count=2
            ), e


class TestFFExtentAndSize:
    def test_ff_extent_whole_type(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        assert ff_extent(v, 0, 64) == 136

    def test_ff_extent_interior(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        assert ff_extent(v, 16, 16) == 16
        assert ff_extent(v, 8, 16) == 40

    def test_ff_extent_zero_size(self):
        assert ff_extent(dt.vector(4, 2, 5, dt.DOUBLE), 10, 0) == 0

    def test_ff_size_whole_extent(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        assert ff_size(v, 0, 136) == 64

    def test_ff_size_window(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        assert ff_size(v, 8, 40) == 16

    def test_ff_size_non_positive_extent(self):
        assert ff_size(dt.DOUBLE, 0, 0) == 0
        assert ff_size(dt.DOUBLE, 0, -4) == 0

    @settings(max_examples=60, deadline=None)
    @given(
        datatype_trees().filter(lambda t: t.is_monotonic),
        st.data(),
    )
    def test_inverse_relation(self, t, data):
        """ff_size(skip, ff_extent(skip, n)) == n for any valid (skip, n):
        the extent spanned by n bytes contains exactly those n bytes."""
        skip = data.draw(st.integers(0, max(t.size - 1, 0)))
        n = data.draw(st.integers(1, t.size - skip))
        ext = ff_extent(t, skip, n)
        assert ff_size(t, skip, ext) == n

    @settings(max_examples=60, deadline=None)
    @given(
        datatype_trees().filter(lambda t: t.is_monotonic),
        st.data(),
    )
    def test_ff_size_monotone_in_extent(self, t, data):
        skip = data.draw(st.integers(0, max(t.size - 1, 0)))
        e1 = data.draw(st.integers(0, t.extent))
        e2 = data.draw(st.integers(e1, t.extent + 8))
        assert ff_size(t, skip, e1) <= ff_size(t, skip, e2)

    def test_independent_of_skip_magnitude(self):
        """Navigation cost must not grow with skipbytes (O(depth) claim);
        smoke-check via timing on a huge vector."""
        import time

        v = dt.vector(10**6, 1, 2, dt.DOUBLE)
        t0 = time.perf_counter()
        for _ in range(200):
            ff_extent(v, 7_900_000, 64)
        dt_hi = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(200):
            ff_extent(v, 0, 64)
        dt_lo = time.perf_counter() - t0
        # Allow generous noise; a linear scan would differ by ~10^6x.
        assert dt_hi < dt_lo * 50 + 0.05

"""Phase accounting: the Table-3-style overhead decomposition."""

import time

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd
from repro.obs.phases import BUCKETS, PhaseAccumulator, format_phase_table

FT = dt.vector(64, 8, 16, dt.BYTE)


class TestAccumulator:
    def test_add_and_total(self):
        acc = PhaseAccumulator()
        acc.add("plan", 0.25)
        acc.add("pack", 0.5)
        acc.add("plan", 0.25)
        assert acc.plan == 0.5
        assert acc.total == 1.0

    def test_unknown_bucket_rejected(self):
        with pytest.raises(AttributeError):
            PhaseAccumulator().add("warp_drive", 1.0)

    def test_timed_context_manager(self):
        acc = PhaseAccumulator()
        with acc.timed("file_io"):
            time.sleep(0.002)
        assert acc.file_io >= 0.001
        assert acc.total == acc.file_io

    def test_snapshot_keys_sorted_and_prefixed(self):
        snap = PhaseAccumulator().snapshot()
        assert list(snap) == sorted(f"phase_{b}" for b in BUCKETS)
        assert all(v == 0.0 for v in snap.values())

    def test_reset_merge_sum(self):
        a, b = PhaseAccumulator(), PhaseAccumulator()
        a.add("lock", 1.0)
        b.add("lock", 2.0)
        b.add("sync", 3.0)
        s = PhaseAccumulator.sum([a, b])
        assert s.lock == 3.0 and s.sync == 3.0
        a.reset()
        assert a.total == 0.0


def run_access(engine, collective, nreps=2, nprocs=2):
    """Per-rank (phase snapshot, access wall seconds) for write accesses.

    Phases are reset after set_view so only the accesses themselves are
    decomposed (view setup is traced, not bucketed).
    """
    fs = SimFileSystem()
    out = [None] * nprocs

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(r * 8, dt.BYTE, FT)
        buf = np.full(FT.size, r, dtype=np.uint8)
        fh.engine.stats.phases.reset()
        t0 = time.perf_counter()
        for rep in range(nreps):
            if collective:
                fh.write_at_all(rep * FT.size, buf)
            else:
                fh.write_at(rep * FT.size, buf)
        wall = time.perf_counter() - t0
        out[r] = (fh.engine.stats.phases.snapshot(), wall)
        fh.close()

    run_spmd(nprocs, worker)
    return out


class TestEngineDecomposition:
    @pytest.mark.parametrize("engine", ["list_based", "listless"])
    def test_collective_write_buckets_sum_to_wall(self, engine):
        """The buckets partition the access: their sum is positive and
        bounded by the measured wall time (tolerant upper bound — the
        clock reads themselves add a little)."""
        for snap, wall in run_access(engine, collective=True):
            total = sum(snap.values())
            assert total > 0.0
            assert total <= wall * 1.25, (total, wall, snap)

    @pytest.mark.parametrize("engine", ["list_based", "listless"])
    def test_collective_write_touches_expected_buckets(self, engine):
        for snap, _wall in run_access(engine, collective=True):
            assert snap["phase_plan"] > 0.0
            assert snap["phase_exchange"] > 0.0
            assert snap["phase_sync"] > 0.0
            assert snap["phase_file_io"] > 0.0

    @pytest.mark.parametrize("engine", ["list_based", "listless"])
    def test_independent_write_has_no_exchange(self, engine):
        for snap, _wall in run_access(engine, collective=False):
            assert snap["phase_exchange"] == 0.0
            assert snap["phase_sync"] == 0.0
            assert snap["phase_plan"] > 0.0
            assert snap["phase_file_io"] > 0.0

    def test_btio_result_carries_phases(self):
        from repro.bench import BTIOConfig, run_btio

        r = run_btio("listless",
                     BTIOConfig(cls="S", nprocs=4, nsteps=1))
        assert len(r.phases_by_rank) == 4
        assert set(r.phases) == set(r.phases_by_rank[0])
        assert sum(r.phases.values()) > 0.0
        for k, v in r.phases.items():
            assert v == pytest.approx(
                sum(row[k] for row in r.phases_by_rank)
            )


class TestPipelinedAttribution:
    """The ``pipeline_io`` bucket: offloaded window I/O is attributed to
    its own bucket, and on the simulated executor those seconds are
    *moved* out of ``file_io`` so the bucket sum still bounds wall."""

    @pytest.mark.parametrize("engine", ["list_based", "listless"])
    def test_pipeline_io_bucket_and_wall_bound(self, engine):
        from repro.io.hints import Hints
        from repro.mpi import run_spmd as _run_spmd

        fs = SimFileSystem()
        out = [None, None]
        hints = Hints(cb_buffer_size=64, cb_pipeline="on")

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine, hints=hints)
            fh.set_view(comm.rank * 8, dt.BYTE, FT)
            buf = np.full(FT.size, comm.rank + 1, dtype=np.uint8)
            fh.engine.stats.phases.reset()
            t0 = time.perf_counter()
            for rep in range(2):
                fh.write_at_all(rep * FT.size, buf)
            wall = time.perf_counter() - t0
            out[comm.rank] = (fh.engine.stats.phases.snapshot(), wall)
            fh.close()

        _run_spmd(2, worker)
        for snap, wall in out:
            assert snap["phase_pipeline_io"] > 0.0
            assert snap["phase_file_io"] >= 0.0
            assert sum(snap.values()) <= wall * 1.25, (snap, wall)


class TestPhaseTable:
    def test_format_contains_buckets_and_total(self):
        a = PhaseAccumulator()
        a.add("plan", 0.010)
        a.add("file_io", 0.030)
        out = format_phase_table([("listless", a.snapshot())])
        for b in BUCKETS:
            assert b in out
        assert "total" in out
        assert "listless [ms]" in out
        assert "10.000" in out and "30.000" in out
        assert "75.0" in out  # file_io share of the 40 ms total

    def test_bare_bucket_keys_accepted(self):
        out = format_phase_table([("x", {"plan": 0.001})])
        assert "1.000" in out

    def test_totals_override_denominator(self):
        a = PhaseAccumulator()
        a.add("plan", 0.010)
        out = format_phase_table([("x", a.snapshot())],
                                 totals={"x": 0.100})
        assert "10.0" in out  # 10 ms of a 100 ms wall

"""Compiled block programs: cache semantics, relocation, kernel parity.

The invariant under test: for any loop and range, the compiled program
translated by its base reproduces ``blocks_range`` exactly, and the
gather/scatter it executes is byte-identical to the cold traversal path
— including skipbytes landing mid-block at period boundaries, where the
residue-class reduction is easiest to get wrong.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.core import blockprog
from repro.core.blockprog import (
    _MAX_PROGRAMS_PER_LOOP,
    BlockProgram,
    BLOCKPROG_STATS,
    program_for,
)
from repro.core.ff_pack import ff_pack, ff_unpack, top_dataloop
from repro.core.gather import KERNEL_PATHS, gather_blocks, scatter_blocks
from repro.errors import FFError
from tests.conftest import datatype_trees, fill_pattern


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test sees an empty cache, zeroed counters, layer enabled."""
    prev = blockprog.set_enabled(True)
    blockprog.clear()
    BLOCKPROG_STATS.reset()
    KERNEL_PATHS.reset()
    yield
    blockprog.set_enabled(prev)
    blockprog.clear()


def periodic_type():
    """A ragged indexed type under a resized period — the worst case for
    relocation (mid-block cuts at every residue)."""
    lens = [3, 1, 7, 2]
    displs = [0, 5, 9, 20]
    return dt.resized(dt.indexed(lens, displs, dt.BYTE), 0, 32)


# ----------------------------------------------------------------------
# Translation equality: program + base == blocks_range
# ----------------------------------------------------------------------
class TestTranslation:
    @pytest.mark.parametrize("skip", [0, 1, 3, 12, 13, 26, 32, 45, 400])
    @pytest.mark.parametrize("n", [1, 5, 13, 40, 200])
    def test_materialize_matches_blocks_range(self, skip, n):
        t = periodic_type()
        count = 64
        loop = top_dataloop(t, count)
        n = min(n, loop.size - skip)
        if n <= 0:
            pytest.skip("range beyond data")
        ref_offs, ref_lens = loop.blocks_range(skip, skip + n)
        hit = program_for(loop, skip, skip + n)
        assert hit is not None
        prog, base = hit
        offs, lens = prog.materialize(base)
        assert offs.tolist() == ref_offs.tolist()
        assert lens.tolist() == ref_lens.tolist()

    def test_same_residue_shares_one_program(self):
        t = periodic_type()
        loop = top_dataloop(t, 64)
        progs = set()
        for period in range(8):
            hit = program_for(loop, 4 + period * t.size, 14 + period * t.size)
            progs.add(id(hit[0]))
        assert len(progs) == 1
        assert BLOCKPROG_STATS.misses == 1
        assert BLOCKPROG_STATS.hits == 7

    def test_distinct_shapes_get_distinct_programs(self):
        t = periodic_type()
        loop = top_dataloop(t, 64)
        a, _ = program_for(loop, 0, 10)
        b, _ = program_for(loop, 1, 11)  # different residue
        c, _ = program_for(loop, 0, 11)  # different length
        assert len({id(a), id(b), id(c)}) == 3
        assert BLOCKPROG_STATS.misses == 3


# ----------------------------------------------------------------------
# Cache behavior: toggles, bypasses, invalidation, LRU bound
# ----------------------------------------------------------------------
class TestCache:
    def test_disabled_returns_none(self):
        loop = top_dataloop(periodic_type(), 8)
        blockprog.set_enabled(False)
        assert program_for(loop, 0, 10) is None
        assert BLOCKPROG_STATS.misses == 0 and BLOCKPROG_STATS.hits == 0

    def test_per_call_override_beats_global(self):
        loop = top_dataloop(periodic_type(), 8)
        assert program_for(loop, 0, 10, use_programs=False) is None
        blockprog.set_enabled(False)
        assert program_for(loop, 0, 10, use_programs=True) is not None

    @pytest.mark.parametrize(
        "value,expect",
        [("0", False), ("false", False), ("off", False), ("", True),
         ("1", True), ("yes", True)],
    )
    def test_env_parsing(self, monkeypatch, value, expect):
        monkeypatch.setenv("REPRO_BLOCKPROG", value)
        assert blockprog._env_enabled() is expect

    def test_contiguous_loop_bypassed(self):
        loop = top_dataloop(dt.contiguous(64, dt.BYTE), 4)
        assert program_for(loop, 8, 40) is None
        assert BLOCKPROG_STATS.bypasses == 1

    def test_clear_forces_recompile(self):
        loop = top_dataloop(periodic_type(), 8)
        a, _ = program_for(loop, 0, 10)
        blockprog.clear()
        b, _ = program_for(loop, 0, 10)
        assert a is not b
        assert BLOCKPROG_STATS.misses == 2

    def test_lru_bounded_per_loop(self):
        t = periodic_type()
        loop = top_dataloop(t, 512)
        for n in range(1, _MAX_PROGRAMS_PER_LOOP + 20):
            program_for(loop, 0, n)
        progs = blockprog._cache.get(loop)
        assert len(progs) == _MAX_PROGRAMS_PER_LOOP
        # Oldest shapes were evicted: re-querying them misses again.
        BLOCKPROG_STATS.reset()
        program_for(loop, 0, 1)
        assert BLOCKPROG_STATS.misses == 1

    def test_planner_invalidate_clears_programs(self):
        loop = top_dataloop(periodic_type(), 8)
        program_for(loop, 0, 10)
        assert len(blockprog._cache.get(loop)) == 1

        class _Stub:  # minimal planner host
            pass

        from repro.plan.planner import Planner
        from repro.plan.stats import PlanStats

        planner = Planner(_Stub(), cacheable=True, stats=PlanStats())
        planner.invalidate()
        assert blockprog._cache.get(loop) is None


# ----------------------------------------------------------------------
# Kernel parity: every compiled dispatch kind vs the generic kernels
# ----------------------------------------------------------------------
class TestKernelParity:
    CASES = {
        "single": ([(3, 9)], 0),
        "small": ([(0, 3), (9, 1), (30, 7)], 0),
        "strided": ([(i * 8, 4) for i in range(24)], 0),
        "index": ([(i * 8 + (i % 3), 4) for i in range(24)], 0),
        "ragged_index": ([(i * 9, (i % 5) + 1) for i in range(24)], 0),
        "big": ([(i * 600, 512) for i in range(20)], 0),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    @pytest.mark.parametrize("base", [0, 64])
    def test_gather_scatter_match_generic(self, name, base):
        pairs, _ = self.CASES[name]
        offs = np.array([o for o, _ in pairs], dtype=np.int64)
        lens = np.array([ln for _, ln in pairs], dtype=np.int64)
        total = int(lens.sum())
        span = int(offs.max() + lens.max()) + base + 8
        src = fill_pattern(span, seed=3)
        prog = BlockProgram(offs, lens)

        got = np.zeros(total, dtype=np.uint8)
        assert prog.gather(src, base, got, 0) == total
        ref = np.zeros(total, dtype=np.uint8)
        gather_blocks(src, offs + base, lens, ref, 0)
        assert (got == ref).all()

        data = fill_pattern(total, seed=4)
        got_dst = np.zeros(span, dtype=np.uint8)
        assert prog.scatter(got_dst, base, data, 0) == total
        ref_dst = np.zeros(span, dtype=np.uint8)
        scatter_blocks(ref_dst, offs + base, lens, data, 0)
        assert (got_dst == ref_dst).all()

    def test_program_arrays_are_frozen_copies(self):
        offs = np.array([0, 10], dtype=np.int64)
        lens = np.array([4, 4], dtype=np.int64)
        prog = BlockProgram(offs, lens)
        offs[0] = 99  # caller's array must stay writable and unshared
        assert prog.offsets[0] == 0
        assert not prog.offsets.flags.writeable
        with pytest.raises(ValueError):
            prog.offsets[0] = 1


# ----------------------------------------------------------------------
# ff_pack / ff_unpack through the program path
# ----------------------------------------------------------------------
class TestFFIntegration:
    def test_counters_flow_through_ff_pack(self):
        t = periodic_type()
        src = fill_pattern(64 * t.extent + 8)
        out = np.zeros(40, dtype=np.uint8)
        for w in range(6):
            ff_pack(src, 64, t, 4 + w * t.size, out, 40)
        assert BLOCKPROG_STATS.misses == 1
        assert BLOCKPROG_STATS.hits == 5
        assert BLOCKPROG_STATS.translations == 6

    def test_traversal_corruption_raises_fferror(self, monkeypatch):
        import importlib

        # "repro.core.ff_pack" as an attribute is the *function* (the
        # package re-exports it); fetch the module itself to patch it.
        ffmod = importlib.import_module("repro.core.ff_pack")

        t = periodic_type()
        src = fill_pattern(8 * t.extent + 8)
        out = np.zeros(16, dtype=np.uint8)
        monkeypatch.setattr(ffmod, "gather_blocks", lambda *a, **k: -1)
        with pytest.raises(FFError, match="traversal corruption"):
            ff_pack(src, 8, t, 0, out, 16, use_programs=False)
        monkeypatch.setattr(ffmod, "scatter_blocks", lambda *a, **k: -1)
        with pytest.raises(FFError, match="traversal corruption"):
            ff_unpack(out, 16, np.zeros(src.size, np.uint8), 8, t, 0,
                      use_programs=False)

    # ------------------------------------------------------------------
    # Satellite 3: property tests — skipbytes mid-block at period
    # boundaries, hit path vs cold path, byte-identical.
    # ------------------------------------------------------------------
    @settings(max_examples=50, deadline=None)
    @given(
        tree=datatype_trees(),
        period=st.integers(0, 5),
        within=st.integers(-2, 2),
        size=st.integers(1, 64),
    )
    def test_pack_hit_equals_cold_at_period_boundaries(
        self, tree, period, within, size
    ):
        count = 8
        if tree.size == 0 or tree.extent <= 0:
            return
        # Skip positions straddling a period boundary: a whole number of
        # instances plus/minus a couple of bytes lands mid-block for most
        # trees (the residue reduction must cut blocks, not copy them).
        skip = period * tree.size + within
        if skip < 0 or skip >= count * tree.size:
            return
        span = (count - 1) * tree.extent + tree.true_ub + 8
        src = fill_pattern(span, seed=7)
        n = min(size, count * tree.size - skip)

        cold = np.zeros(n, dtype=np.uint8)
        got = ff_pack(src, count, tree, skip, cold, n,
                      use_programs=False)
        blockprog.clear()
        miss = np.zeros(n, dtype=np.uint8)
        assert ff_pack(src, count, tree, skip, miss, n,
                       use_programs=True) == got
        hit = np.zeros(n, dtype=np.uint8)
        assert ff_pack(src, count, tree, skip, hit, n,
                       use_programs=True) == got
        assert (miss == cold).all()
        assert (hit == cold).all()

    @settings(max_examples=50, deadline=None)
    @given(
        tree=datatype_trees(),
        period=st.integers(0, 5),
        within=st.integers(-2, 2),
        size=st.integers(1, 64),
    )
    def test_unpack_hit_equals_cold_at_period_boundaries(
        self, tree, period, within, size
    ):
        count = 8
        if tree.size == 0 or tree.extent <= 0:
            return
        skip = period * tree.size + within
        if skip < 0 or skip >= count * tree.size:
            return
        span = (count - 1) * tree.extent + tree.true_ub + 8
        n = min(size, count * tree.size - skip)
        data = fill_pattern(n, seed=9)

        cold = np.zeros(span, dtype=np.uint8)
        got = ff_unpack(data, n, cold, count, tree, skip,
                        use_programs=False)
        blockprog.clear()
        miss = np.zeros(span, dtype=np.uint8)
        assert ff_unpack(data, n, miss, count, tree, skip,
                         use_programs=True) == got
        hit = np.zeros(span, dtype=np.uint8)
        assert ff_unpack(data, n, hit, count, tree, skip,
                         use_programs=True) == got
        assert (miss == cold).all()
        assert (hit == cold).all()

"""Byte-range locks: exclusion, blocking, release."""

import threading
import time

import pytest

from repro.errors import LockError
from repro.fs.locks import RangeLockManager


class TestBasics:
    def test_lock_unlock(self):
        m = RangeLockManager()
        m.lock(0, 10)
        assert m.held_by_me() == [(0, 10)]
        m.unlock(0, 10)
        assert m.held_by_me() == []

    def test_empty_range_rejected(self):
        with pytest.raises(LockError):
            RangeLockManager().lock(5, 5)

    def test_unlock_not_held_rejected(self):
        with pytest.raises(LockError):
            RangeLockManager().unlock(0, 10)

    def test_same_thread_may_hold_overlapping(self):
        # Re-entrant by owner: the sieving loop locks window by window,
        # and atomic mode can nest a whole-access lock outside them.
        m = RangeLockManager()
        m.lock(0, 100)
        m.lock(10, 20)
        m.unlock(10, 20)
        m.unlock(0, 100)

    def test_disjoint_ranges_from_threads_dont_block(self):
        m = RangeLockManager()
        done = []

        def t1():
            m.lock(0, 10)
            time.sleep(0.05)
            done.append("t1")
            m.unlock(0, 10)

        def t2():
            m.lock(10, 20)
            done.append("t2")
            m.unlock(10, 20)

        a = threading.Thread(target=t1)
        b = threading.Thread(target=t2)
        a.start()
        time.sleep(0.01)
        b.start()
        b.join(timeout=1)
        a.join(timeout=1)
        assert "t2" in done and "t1" in done
        # t2 must not have waited for t1.
        assert done[0] == "t2"


class TestExclusion:
    def test_overlap_blocks_until_release(self):
        m = RangeLockManager()
        order = []
        m_acquired = threading.Event()

        def holder():
            m.lock(0, 100)
            m_acquired.set()
            time.sleep(0.08)
            order.append("holder-release")
            m.unlock(0, 100)

        def waiter():
            m_acquired.wait(timeout=1)
            m.lock(50, 150)  # overlaps [0,100)
            order.append("waiter-acquired")
            m.unlock(50, 150)

        a = threading.Thread(target=holder)
        b = threading.Thread(target=waiter)
        a.start()
        b.start()
        a.join(timeout=2)
        b.join(timeout=2)
        assert order == ["holder-release", "waiter-acquired"]

    def test_many_writers_serialize_on_same_range(self):
        m = RangeLockManager()
        counter = {"v": 0, "max_inside": 0}
        mu = threading.Lock()

        def writer():
            for _ in range(20):
                m.lock(0, 8)
                with mu:
                    counter["v"] += 1
                    counter["max_inside"] = max(
                        counter["max_inside"], counter["v"]
                    )
                with mu:
                    counter["v"] -= 1
                m.unlock(0, 8)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert counter["max_inside"] == 1

"""Byte-range locks: exclusion, blocking, release.

Covers both managers behind the same interface: the in-memory
:class:`RangeLockManager` of the simulated file system and the real
``fcntl``-backed :class:`FcntlRangeLockManager` of the proc backend.
POSIX ``fcntl`` semantics need careful bookkeeping — a process' locks
never conflict with themselves, and *unlocking a range drops every lock
the process holds over it* — so overlapping windows (sieving loop
inside an atomic-mode whole-access lock) must release only the bytes no
other held range still covers."""

import multiprocessing as mp
import fcntl
import os
import threading
import time

import pytest

from repro.errors import LockError
from repro.fs.locks import (
    FcntlRangeLockManager,
    RangeLockManager,
    _subtract_ranges,
)


class TestBasics:
    def test_lock_unlock(self):
        m = RangeLockManager()
        m.lock(0, 10)
        assert m.held_by_me() == [(0, 10)]
        m.unlock(0, 10)
        assert m.held_by_me() == []

    def test_empty_range_rejected(self):
        with pytest.raises(LockError):
            RangeLockManager().lock(5, 5)

    def test_unlock_not_held_rejected(self):
        with pytest.raises(LockError):
            RangeLockManager().unlock(0, 10)

    def test_same_thread_may_hold_overlapping(self):
        # Re-entrant by owner: the sieving loop locks window by window,
        # and atomic mode can nest a whole-access lock outside them.
        m = RangeLockManager()
        m.lock(0, 100)
        m.lock(10, 20)
        m.unlock(10, 20)
        m.unlock(0, 100)

    def test_disjoint_ranges_from_threads_dont_block(self):
        m = RangeLockManager()
        done = []

        def t1():
            m.lock(0, 10)
            time.sleep(0.05)
            done.append("t1")
            m.unlock(0, 10)

        def t2():
            m.lock(10, 20)
            done.append("t2")
            m.unlock(10, 20)

        a = threading.Thread(target=t1)
        b = threading.Thread(target=t2)
        a.start()
        time.sleep(0.01)
        b.start()
        b.join(timeout=1)
        a.join(timeout=1)
        assert "t2" in done and "t1" in done
        # t2 must not have waited for t1.
        assert done[0] == "t2"


class TestExclusion:
    def test_overlap_blocks_until_release(self):
        m = RangeLockManager()
        order = []
        m_acquired = threading.Event()

        def holder():
            m.lock(0, 100)
            m_acquired.set()
            time.sleep(0.08)
            order.append("holder-release")
            m.unlock(0, 100)

        def waiter():
            m_acquired.wait(timeout=1)
            m.lock(50, 150)  # overlaps [0,100)
            order.append("waiter-acquired")
            m.unlock(50, 150)

        a = threading.Thread(target=holder)
        b = threading.Thread(target=waiter)
        a.start()
        b.start()
        a.join(timeout=2)
        b.join(timeout=2)
        assert order == ["holder-release", "waiter-acquired"]

    def test_many_writers_serialize_on_same_range(self):
        m = RangeLockManager()
        counter = {"v": 0, "max_inside": 0}
        mu = threading.Lock()

        def writer():
            for _ in range(20):
                m.lock(0, 8)
                with mu:
                    counter["v"] += 1
                    counter["max_inside"] = max(
                        counter["max_inside"], counter["v"]
                    )
                with mu:
                    counter["v"] -= 1
                m.unlock(0, 8)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert counter["max_inside"] == 1


def _probe_range(path, lo, hi, out):
    """Child process: try a non-blocking exclusive lock on [lo, hi)."""
    fd = os.open(path, os.O_RDWR)
    try:
        fcntl.lockf(fd, fcntl.LOCK_EX | fcntl.LOCK_NB, hi - lo, lo,
                    os.SEEK_SET)
        out.put("acquired")
    except OSError:
        out.put("blocked")
    finally:
        os.close(fd)


class TestFcntlManager:
    """Regressions for the real-lock path of the proc backend.

    POSIX never blocks a process on its own locks, and a plain unlock
    over a range drops *every* lock the process holds there — the
    manager's multiset bookkeeping must keep residual bytes locked.
    The held/released distinction is only visible to *another* process,
    so assertions probe with a forked child doing LOCK_NB attempts.
    """

    @pytest.fixture
    def lockfile(self, tmp_path):
        path = str(tmp_path / "lk")
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
        os.ftruncate(fd, 4096)
        yield path, fd
        os.close(fd)

    @staticmethod
    def probe(path, lo, hi):
        q = mp.Queue()
        p = mp.Process(target=_probe_range, args=(path, lo, hi, q))
        p.start()
        result = q.get(timeout=10)
        p.join(timeout=10)
        return result

    def test_overlapping_same_process_locks_dont_self_deadlock(
            self, lockfile):
        # The sieving loop takes per-window locks while atomic mode
        # already holds a whole-access lock: must return immediately.
        path, fd = lockfile
        m = FcntlRangeLockManager(fd)
        done = []

        def body():
            m.lock(0, 100)
            m.lock(50, 150)  # overlaps — POSIX merges, must not block
            m.lock(0, 100)   # exact duplicate
            done.append(True)

        t = threading.Thread(target=body)
        t.start()
        t.join(timeout=5)
        assert done, "overlapping same-process lock deadlocked"
        assert sorted(m.held_by_me()) == [(0, 100), (0, 100), (50, 150)]

    def test_partial_unlock_keeps_residual_bytes_locked(self, lockfile):
        # The bug this pins: naive LOCK_UN over [0,100) would also drop
        # the [50,150) lock's claim on bytes [50,100).
        path, fd = lockfile
        m = FcntlRangeLockManager(fd)
        m.lock(0, 100)
        m.lock(50, 150)
        m.unlock(0, 100)
        assert m.held_by_me() == [(50, 150)]
        # Bytes of the released range not covered elsewhere are free...
        assert self.probe(path, 0, 50) == "acquired"
        # ...but the overlap is still held by the surviving lock.
        assert self.probe(path, 60, 90) == "blocked"
        assert self.probe(path, 100, 150) == "blocked"
        m.unlock(50, 150)
        assert self.probe(path, 60, 90) == "acquired"

    def test_duplicate_range_releases_on_last_unlock(self, lockfile):
        path, fd = lockfile
        m = FcntlRangeLockManager(fd)
        m.lock(10, 20)
        m.lock(10, 20)
        m.unlock(10, 20)
        # One logical lock remains: bytes stay locked.
        assert self.probe(path, 10, 20) == "blocked"
        m.unlock(10, 20)
        assert self.probe(path, 10, 20) == "acquired"

    def test_empty_range_rejected(self, lockfile):
        _, fd = lockfile
        with pytest.raises(LockError):
            FcntlRangeLockManager(fd).lock(5, 5)

    def test_unlock_not_held_rejected(self, lockfile):
        _, fd = lockfile
        with pytest.raises(LockError, match=r"does not hold"):
            FcntlRangeLockManager(fd).unlock(0, 10)

    def test_blocks_against_other_process_until_release(self, lockfile):
        path, fd = lockfile
        m = FcntlRangeLockManager(fd)
        m.lock(0, 64)
        assert self.probe(path, 0, 64) == "blocked"
        m.unlock(0, 64)
        assert self.probe(path, 0, 64) == "acquired"


class TestSubtractRanges:
    def test_middle_cut_splits(self):
        assert _subtract_ranges([(0, 100)], (20, 30)) == \
            [(0, 20), (30, 100)]

    def test_no_overlap_is_identity(self):
        assert _subtract_ranges([(0, 10), (20, 30)], (10, 20)) == \
            [(0, 10), (20, 30)]

    def test_full_cover_removes(self):
        assert _subtract_ranges([(5, 8)], (0, 100)) == []

    def test_edge_overlaps_trim(self):
        assert _subtract_ranges([(0, 10)], (5, 15)) == [(0, 5)]
        assert _subtract_ranges([(10, 20)], (5, 15)) == [(15, 20)]

"""SPMD runtime: point-to-point, collectives, failure handling, costs."""

import numpy as np
import pytest

from repro.errors import MPIRuntimeError
from repro.mpi import (
    ANY_TAG,
    MAX,
    MIN,
    PROD,
    SUM,
    NetworkModel,
    Status,
    payload_nbytes,
    run_spmd,
)


class TestPointToPoint:
    def test_ring(self):
        def worker(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            comm.send(nxt, comm.rank)
            return comm.recv(prv)

        assert run_spmd(4, worker) == [3, 0, 1, 2]

    def test_tags_match_selectively(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=2)
            elif comm.rank == 1:
                # Receive in reverse tag order.
                b = comm.recv(0, tag=2)
                a = comm.recv(0, tag=1)
                assert (a, b) == ("a", "b")

        run_spmd(2, worker)

    def test_fifo_per_tag(self):
        def worker(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(1, i)
            else:
                got = [comm.recv(0) for _ in range(10)]
                assert got == list(range(10))

        run_spmd(2, worker)

    def test_any_tag_and_status(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(16, np.uint8), tag=42)
            else:
                st = Status()
                comm.recv(0, tag=ANY_TAG, status=st)
                assert st.tag == 42
                assert st.source == 0
                assert st.nbytes == 16

        run_spmd(2, worker)

    def test_sendrecv(self):
        def worker(comm):
            other = 1 - comm.rank
            return comm.sendrecv(other, comm.rank * 10, other)

        assert run_spmd(2, worker) == [10, 0]

    def test_bad_rank_rejected(self):
        def worker(comm):
            comm.send(99, "x")

        with pytest.raises(MPIRuntimeError):
            run_spmd(2, worker)


class TestRecvAny:
    def test_arrival_order_completion(self):
        """recv_any completes from whichever expected peer lands first
        — the receive side of relaxed-synchronization rounds."""

        def worker(comm):
            if comm.rank > 0:
                comm.send(0, comm.rank * 11, tag=5)
                return None
            got = {}
            pending = {1, 2, 3}
            while pending:
                src, payload = comm.recv_any(sorted(pending), tag=5)
                got[src] = payload
                pending.discard(src)
            return got

        assert run_spmd(4, worker)[0] == {1: 11, 2: 22, 3: 33}

    def test_matches_tag_selectively(self):
        def worker(comm):
            if comm.rank == 1:
                comm.send(0, "wrong", tag=9)
                comm.send(0, "right", tag=5)
            elif comm.rank == 0:
                src, payload = comm.recv_any([1], tag=5)
                assert (src, payload) == (1, "right")
                assert comm.recv(1, tag=9) == "wrong"

        run_spmd(2, worker)

    def test_empty_sources_rejected(self):
        def worker(comm):
            comm.recv_any([])

        with pytest.raises(MPIRuntimeError, match="at least one source"):
            run_spmd(1, worker)

    def test_unblocks_on_peer_failure(self):
        def worker(comm):
            if comm.rank == 0:
                raise RuntimeError("dead peer")
            comm.recv_any([0], tag=1)

        with pytest.raises(RuntimeError, match="dead peer"):
            run_spmd(2, worker)


class TestCollectives:
    def test_bcast(self):
        def worker(comm):
            return comm.bcast("payload" if comm.rank == 1 else None, root=1)

        assert run_spmd(3, worker) == ["payload"] * 3

    def test_gather(self):
        def worker(comm):
            return comm.gather(comm.rank ** 2, root=2)

        res = run_spmd(3, worker)
        assert res[0] is None and res[1] is None
        assert res[2] == [0, 1, 4]

    def test_allgather(self):
        def worker(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        assert run_spmd(3, worker) == [["a", "b", "c"]] * 3

    def test_alltoall(self):
        def worker(comm):
            out = [(comm.rank, d) for d in range(comm.size)]
            return comm.alltoall(out)

        res = run_spmd(3, worker)
        for r, inbox in enumerate(res):
            assert inbox == [(s, r) for s in range(3)]

    def test_alltoall_wrong_length(self):
        def worker(comm):
            comm.alltoall([1])

        with pytest.raises(MPIRuntimeError):
            run_spmd(2, worker)

    @pytest.mark.parametrize(
        "op,expect", [(SUM, 6), (MAX, 3), (MIN, 0), (PROD, 0)]
    )
    def test_allreduce(self, op, expect):
        def worker(comm):
            return comm.allreduce(comm.rank, op)

        assert run_spmd(4, worker) == [expect] * 4

    def test_allreduce_arrays(self):
        def worker(comm):
            return comm.allreduce(np.full(3, comm.rank), SUM)

        res = run_spmd(3, worker)
        assert (res[0] == 3).all()

    def test_reduce(self):
        def worker(comm):
            return comm.reduce(comm.rank, SUM, root=0)

        assert run_spmd(3, worker) == [3, None, None]

    def test_scatter(self):
        def worker(comm):
            data = [i * 2 for i in range(comm.size)] if comm.rank == 0 \
                else None
            return comm.scatter(data, root=0)

        assert run_spmd(3, worker) == [0, 2, 4]

    def test_barrier_order(self):
        # All ranks must reach the barrier before any passes it.
        hits = []

        def worker(comm):
            hits.append(("pre", comm.rank))
            comm.barrier()
            hits.append(("post", comm.rank))

        run_spmd(3, worker)
        pres = [i for i, h in enumerate(hits) if h[0] == "pre"]
        posts = [i for i, h in enumerate(hits) if h[0] == "post"]
        assert max(pres) < min(posts)

    def test_consecutive_collectives(self):
        def worker(comm):
            a = comm.allgather(comm.rank)
            b = comm.allgather(comm.rank * 10)
            return (a, b)

        res = run_spmd(2, worker)
        assert res[0] == ([0, 1], [0, 10])


class TestFailureHandling:
    def test_exception_propagates(self):
        def worker(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(ValueError, match="boom"):
            run_spmd(3, worker)

    def test_blocked_recv_unblocks_on_failure(self):
        def worker(comm):
            if comm.rank == 0:
                raise RuntimeError("dead sender")
            comm.recv(0)

        with pytest.raises(RuntimeError, match="dead sender"):
            run_spmd(2, worker)

    def test_world_size_validation(self):
        with pytest.raises(MPIRuntimeError):
            run_spmd(0, lambda c: None)


class TestCostAccounting:
    def test_bytes_counted(self):
        worlds = []

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(1000, np.uint8))
            else:
                comm.recv(0)

        run_spmd(2, worker, world_out=worlds)
        w = worlds[0]
        assert w.bytes_sent[0] == 1000
        assert w.bytes_sent[1] == 0
        assert w.net_time[0] > w.net_time[1]

    def test_network_model(self):
        nm = NetworkModel(latency=1e-6, bandwidth=1e9)
        assert nm.transfer_time(0) == pytest.approx(1e-6)
        assert nm.transfer_time(10**9) == pytest.approx(1 + 1e-6)

    def test_payload_nbytes_kinds(self):
        from repro.flatten import OLList

        assert payload_nbytes(None) == 0
        assert payload_nbytes(np.zeros(10, np.uint8)) == 10
        assert payload_nbytes(b"abc") == 3
        assert payload_nbytes(5) == 8
        assert payload_nbytes([1, 2, 3]) == 24
        assert payload_nbytes({"k": 1}) == 9
        # The paper's 16-bytes-per-tuple accounting for ol-lists:
        assert payload_nbytes(OLList([(0, 4), (8, 4)])) == 32

    def test_ollist_exchange_dominates_small_payloads(self):
        """Paper §2.3: for 8-byte blocks the shipped list is twice the
        data volume."""
        from repro.flatten import OLList

        n = 100
        ol = OLList([(i * 16, 8) for i in range(n)])
        data = np.zeros(8 * n, np.uint8)
        assert payload_nbytes(ol) == 2 * payload_nbytes(data)

"""The striped multi-server backend (``repro.fs.sharded``).

Three layers of pinning:

* the shard mapper's arithmetic (offset round-trips, exact extent
  cover, size inversion) under hypothesis — the geometry every wire
  request depends on;
* the :class:`ShardedFile` / :class:`ShardedFileSystem` surfaces —
  round trips, sparse files, truncation, pickling across processes;
* the lock-scaling regression the paper's PVFS comparison motivates:
  sieved read-modify-write against N shards must take *per-shard*
  ranges on the owning servers only, and concurrent writers racing at
  stripe boundaries must never lose bytes.
"""

import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.fs import (
    ShardedFileSystem,
    SimFileSystem,
    StripingConfig,
    global_size,
    local_size,
    split_blocks,
    split_extent,
    to_global,
    to_local,
)
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi.runtime import Runtime

# ----------------------------------------------------------------------
# Shard-mapper properties
# ----------------------------------------------------------------------

geom = st.tuples(
    st.integers(min_value=0, max_value=1 << 20),   # offset
    st.integers(min_value=0, max_value=4096),      # nbytes
    st.integers(min_value=1, max_value=512),       # stripe_size
    st.integers(min_value=1, max_value=8),         # ndisks
)


class TestShardMapper:
    @settings(max_examples=200, deadline=None)
    @given(geom)
    def test_offset_round_trip(self, g):
        off, _n, ss, nd = g
        k, loc = to_local(off, ss, nd)
        assert 0 <= k < nd
        assert to_global(k, loc, ss, nd) == off

    @settings(max_examples=200, deadline=None)
    @given(geom)
    def test_split_extent_covers_exactly(self, g):
        off, n, ss, nd = g
        parts = split_extent(off, n, ss, nd)
        # data offsets tile [0, n) in order, without gaps or overlap
        pos = 0
        seen = []
        for k, lo, ln, doff in parts:
            assert 0 <= k < nd and ln > 0
            assert doff == pos
            pos += ln
            # every extent stays inside one stripe of its shard
            assert lo // ss == (lo + ln - 1) // ss
            seen.append((k, lo, ln, doff))
        assert pos == n
        # global bytes mapped by each extent are exactly [off, off+n)
        covered = []
        for k, lo, ln, doff in seen:
            g0 = to_global(k, lo, ss, nd)
            assert g0 == off + doff
            covered.append((g0, g0 + ln))
        covered.sort()
        for (a0, a1), (b0, b1) in zip(covered, covered[1:]):
            assert a1 == b0, "gap or overlap in global cover"

    @settings(max_examples=200, deadline=None)
    @given(geom)
    def test_split_blocks_matches_split_extent(self, g):
        off, n, ss, nd = g
        by_shard = split_blocks(
            np.array([off], dtype=np.int64), np.array([n], dtype=np.int64),
            ss, nd,
        )
        flat = {}
        for k, lo, ln, doff in split_extent(off, n, ss, nd):
            flat.setdefault(k, []).append((lo, ln, doff))
        assert set(by_shard) == set(flat)
        for k, (loffs, lens, doffs) in by_shard.items():
            assert [tuple(t) for t in zip(
                loffs.tolist(), lens.tolist(), doffs.tolist()
            )] == flat[k]

    @settings(max_examples=200, deadline=None)
    @given(geom)
    def test_sizes_invert(self, g):
        gsize, _n, ss, nd = g
        sizes = [local_size(k, gsize, ss, nd) for k in range(nd)]
        assert sum(sizes) == gsize
        assert global_size(sizes, ss, nd) == gsize

    @settings(max_examples=200, deadline=None)
    @given(geom)
    def test_local_size_counts_mapped_bytes(self, g):
        gsize, _n, ss, nd = g
        counts = {k: 0 for k in range(nd)}
        for k, _lo, ln, _d in split_extent(0, gsize, ss, nd):
            counts[k] += ln
        for k in range(nd):
            assert counts[k] == local_size(k, gsize, ss, nd)

    @settings(max_examples=100, deadline=None)
    @given(geom)
    def test_matches_striping_config(self, g):
        off, n, ss, nd = g
        cfg = StripingConfig(ndisks=nd, stripe_size=ss)
        # align_floor names the stripe to_local assigns the offset to
        stripe = cfg.align_floor(off) // ss
        k, loc = to_local(off, ss, nd)
        assert stripe % nd == k
        # an extent touches exactly the shards split_extent names,
        # bounded by the device model's stream count
        shards = {p[0] for p in split_extent(off, n, ss, nd)}
        if n:
            assert len(shards) <= cfg.streams_for(off, n)

    def test_degenerate_pins(self):
        # zero-length access maps to nothing
        assert split_extent(123, 0, 64, 4) == []
        assert split_blocks(np.array([5], dtype=np.int64),
                            np.array([0], dtype=np.int64), 16, 2) == {}
        # access inside one stripe stays one extent on one shard
        assert split_extent(130, 20, 64, 4) == [(2, 2, 20, 0)]
        # stripe_size=1 interleaves byte by byte
        parts = split_extent(0, 6, 1, 3)
        assert [(k, lo) for k, lo, _ln, _d in parts] == [
            (0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)
        ]
        assert all(ln == 1 for _k, _lo, ln, _d in parts)
        # sizes: empty file, single byte
        assert global_size([0, 0], 16, 2) == 0
        assert global_size([1, 0], 16, 2) == 1
        assert local_size(0, 1, 16, 2) == 1
        assert local_size(1, 1, 16, 2) == 0


# ----------------------------------------------------------------------
# File/namespace surface
# ----------------------------------------------------------------------

@pytest.fixture
def sharded_fs(tmp_path):
    fs = ShardedFileSystem(str(tmp_path / "store"), nshards=3,
                           stripe_size=16)
    yield fs
    fs.close()


class TestShardedSurface:
    def test_round_trip_and_size(self, sharded_fs):
        f = sharded_fs.create("f.dat")
        data = np.arange(200, dtype=np.uint8)
        assert f.pwrite(0, data) == 200
        assert f.size == 200
        assert np.array_equal(f.pread(0, 200), data)
        assert np.array_equal(f.pread(7, 150), data[7:157])

    def test_sparse_and_truncate(self, sharded_fs):
        f = sharded_fs.create("s.dat")
        f.pwrite(500, np.full(10, 7, dtype=np.uint8))
        assert f.size == 510
        c = f.contents()
        assert (c[:500] == 0).all() and (c[500:] == 7).all()
        f.truncate(100)
        assert f.size == 100
        f.truncate(0)
        assert f.size == 0

    def test_read_past_eof_zero_fills(self, sharded_fs):
        f = sharded_fs.create("e.dat")
        f.pwrite(0, np.full(10, 3, dtype=np.uint8))
        out = np.full(64, 9, dtype=np.uint8)
        got = f.pread_into(0, out)
        assert got == 10
        assert (out[:10] == 3).all() and (out[10:] == 0).all()

    def test_namespace(self, sharded_fs):
        sharded_fs.create("/a")
        sharded_fs.create("/b")
        assert sorted(sharded_fs.listdir()) == ["/a", "/b"]
        assert sharded_fs.exists("/a")
        sharded_fs.unlink("/a")
        assert not sharded_fs.exists("/a")
        assert sharded_fs.listdir() == ["/b"]

    def test_wire_accounting(self, sharded_fs):
        f = sharded_fs.create("w.dat")
        f.pwrite(0, np.zeros(48, dtype=np.uint8))  # 3 shards, 16 each
        tot = f.wire_totals()
        assert tot["requests"] == 3  # one write request per shard
        assert tot["payload_bytes"] >= 48
        per_shard = [w["payload_bytes"] for w in f.wire]
        assert sum(per_shard) >= 48

    def test_pickle_reopens_same_servers(self, sharded_fs):
        f = sharded_fs.create("p.dat")
        f.pwrite(0, np.arange(100, dtype=np.uint8))
        clone = pickle.loads(pickle.dumps(f))
        assert np.array_equal(clone.contents(), f.contents())
        clone.pwrite(100, np.arange(50, dtype=np.uint8))
        assert f.size == 150

    def test_server_introspection(self, sharded_fs):
        sharded_fs.create("i.dat").pwrite(0, np.zeros(64, dtype=np.uint8))
        for k in range(sharded_fs.nshards):
            assert sharded_fs.server_pid(k) > 0
            counters = sharded_fs.shard_counters(k)
            assert counters["requests"] > 0
        # no data op carried a round yet
        assert all(r == -1 for r in sharded_fs.shard_last_rounds())


# ----------------------------------------------------------------------
# Lock scaling + concurrent writers (paper §: per-server locking)
# ----------------------------------------------------------------------

class TestShardLockScaling:
    def test_lock_ranges_land_per_shard_only(self, sharded_fs):
        f = sharded_fs.create("l.dat")
        f.pwrite(0, np.zeros(96, dtype=np.uint8))
        # [8, 56) covers stripes 0..3: shard 0 gets local [8,16) from
        # stripe 0 plus [16,24) from stripe 3, coalesced into one range.
        f.lock_range(8, 56)
        expect = {0: [(8, 24)], 1: [(0, 16)], 2: [(0, 16)]}
        for k in range(3):
            held = sharded_fs.shard_locks_held(k, "l.dat")
            assert held["ranges"] == expect[k], (k, held)
            assert held["backing"] == expect[k], (k, held)
        f.unlock_range(8, 56)
        for k in range(3):
            held = sharded_fs.shard_locks_held(k, "l.dat")
            assert held["ranges"] == [] and held["backing"] == []

    def test_sieved_rmw_locks_scale_per_shard(self, tmp_path):
        """A sieved (rmw) write through the engine against 4 shards must
        acquire byte ranges on every involved shard server — and only
        local-coordinate ranges, never the global span."""
        fs = ShardedFileSystem(str(tmp_path / "rmw"), nshards=4,
                               stripe_size=16)
        try:
            def worker(comm, fs):
                fh = File.open(comm, fs, "/rmw.out",
                               MODE_CREATE | MODE_RDWR, engine="listless")
                # sparse view => rmw write window under lock
                fh.set_view(0, dt.BYTE, dt.vector(32, 1, 2, dt.BYTE))
                fh.write_at(0, np.full(32, 5, dtype=np.uint8))
                fh.close()

            Runtime("sim").run(1, worker, fs)
            acquires = [fs.shard_counters(k)["lock_acquires"]
                        for k in range(4)]
            lock_bytes = [fs.shard_counters(k)["lock_bytes"]
                          for k in range(4)]
            # the access extent [0, 63) spans all 4 shards: every shard
            # saw a lock, and each saw only its local share of the bytes
            assert all(a >= 1 for a in acquires), acquires
            assert sum(lock_bytes) == 63, lock_bytes
            assert all(b <= 16 for b in lock_bytes), lock_bytes
            # nothing left held
            for k in range(4):
                held = fs.shard_locks_held(k, "/rmw.out")
                assert held["ranges"] == [] and held["backing"] == []
            got = fs.lookup("/rmw.out").contents()
            assert (got[::2] == 5).all() and (got[1::2] == 0).all()
        finally:
            fs.close()

    def test_concurrent_writers_no_lost_bytes(self, tmp_path):
        """Two threads doing locked read-modify-write of interleaved
        bytes around a stripe boundary: every written byte must survive
        (the classic lost-update race the per-shard locks must close)."""
        fs = ShardedFileSystem(str(tmp_path / "race"), nshards=2,
                               stripe_size=16)
        try:
            f = fs.create("race.dat")
            f.pwrite(0, np.zeros(64, dtype=np.uint8))
            errs = []

            def rmw(which):
                try:
                    mine = pickle.loads(pickle.dumps(f))
                    for rep in range(20):
                        # each writer owns alternating bytes of [8, 40),
                        # which straddles the 16-byte stripe boundary
                        mine.lock_range(8, 40)
                        try:
                            window = mine.pread(8, 32)
                            window[which::2] = 100 + which
                            mine.pwrite(8, window)
                        finally:
                            mine.unlock_range(8, 40)
                except BaseException as exc:  # pragma: no cover
                    errs.append(exc)

            ts = [threading.Thread(target=rmw, args=(w,)) for w in (0, 1)]
            for t in ts:
                t.start()
            for t in ts:
                t.join(60)
            assert not errs, errs
            got = f.pread(8, 32)
            assert (got[0::2] == 100).all(), got
            assert (got[1::2] == 101).all(), got
        finally:
            fs.close()


# ----------------------------------------------------------------------
# Ship engagement: the hint actually reroutes the data plane
# ----------------------------------------------------------------------

class TestShipEngagement:
    @pytest.mark.parametrize("protocol", ["list", "dtype"])
    def test_collective_write_ships(self, tmp_path, protocol):
        fs = ShardedFileSystem(str(tmp_path / "ship"), nshards=2,
                               stripe_size=64)
        try:
            def worker(comm, fs):
                fh = File.open(
                    comm, fs, "/s.out", MODE_CREATE | MODE_RDWR,
                    engine="listless",
                    hints=Hints(ship_protocol=protocol),
                )
                ft = dt.resized(
                    dt.vector(6, 8, comm.size * 8, dt.BYTE),
                    0, 6 * comm.size * 8,
                )
                fh.set_view(comm.rank * 8, dt.BYTE, ft)
                buf = np.full(ft.size * 2, 1 + comm.rank, dtype=np.uint8)
                fh.write_at_all(0, buf)
                snap = {**fh.engine.stats.snapshot(),
                        **fh.engine.stats.phases.snapshot()}
                fh.close()
                return snap

            snaps = Runtime("sim").run(2, worker, fs)
            assert sum(s["ship_ops"] for s in snaps) > 0
            assert sum(s["ship_requests"] for s in snaps) > 0
            assert sum(s["ship_wire_request_bytes"] for s in snaps) > 0
            if protocol == "dtype":
                assert sum(s["ship_view_bytes"] for s in snaps) > 0
                dt_ops = sum(fs.shard_counters(k)["dt_writes"]
                             for k in range(2))
                assert dt_ops > 0
            assert sum(s["phase_ship"] for s in snaps) > 0
        finally:
            fs.close()

    def test_hint_ignored_on_plain_backend(self):
        """ship_protocol on a non-sharded backend is a silent no-op."""
        fs = SimFileSystem()

        def worker(comm, fs):
            fh = File.open(comm, fs, "/p.out", MODE_CREATE | MODE_RDWR,
                           engine="listless",
                           hints=Hints(ship_protocol="dtype"))
            fh.set_view(0, dt.BYTE, dt.vector(4, 2, 4, dt.BYTE))
            fh.write_at(0, np.full(8, 9, dtype=np.uint8))
            snap = fh.engine.stats.snapshot()
            fh.close()
            return snap

        (snap,) = Runtime("sim").run(1, worker, fs)
        assert snap["ship_ops"] == 0
        got = fs.lookup("/p.out").contents()
        assert (got[:2] == 9).all()

"""Basic (predefined) datatypes and bounds markers."""

import pytest

from repro import datatypes as dt
from repro.errors import DatatypeError


class TestBasicTypes:
    def test_byte_properties(self):
        assert dt.BYTE.size == 1
        assert dt.BYTE.extent == 1
        assert dt.BYTE.lb == 0 and dt.BYTE.ub == 1
        assert dt.BYTE.is_contiguous
        assert dt.BYTE.is_monotonic
        assert dt.BYTE.num_blocks == 1
        assert dt.BYTE.depth == 1

    @pytest.mark.parametrize(
        "t,size",
        [
            (dt.CHAR, 1),
            (dt.SHORT, 2),
            (dt.INT, 4),
            (dt.LONG, 8),
            (dt.LONG_LONG, 8),
            (dt.FLOAT, 4),
            (dt.DOUBLE, 8),
            (dt.LONG_DOUBLE, 16),
            (dt.COMPLEX, 8),
            (dt.DOUBLE_COMPLEX, 16),
            (dt.PACKED, 1),
        ],
    )
    def test_sizes(self, t, size):
        assert t.size == size
        assert t.extent == size
        assert t.true_extent == size

    def test_typemap_single_entry(self):
        assert list(dt.DOUBLE.typemap()) == [(0, 8)]

    def test_no_children(self):
        assert dt.INT.children() == ()

    def test_lookup_by_name(self):
        assert dt.basic_by_name("DOUBLE") is dt.DOUBLE
        assert dt.basic_by_name("LB") is dt.LB

    def test_lookup_unknown_raises(self):
        with pytest.raises(DatatypeError):
            dt.basic_by_name("QUADRUPLE")

    def test_invalid_width_rejected(self):
        from repro.datatypes.basic import BasicType

        with pytest.raises(DatatypeError):
            BasicType("BAD", 0)


class TestBoundsMarkers:
    def test_lb_is_empty(self):
        assert dt.LB.size == 0
        assert dt.LB.extent == 0
        assert dt.LB.num_blocks == 0
        assert list(dt.LB.typemap()) == []

    def test_lb_sets_explicit_bound(self):
        assert dt.LB.explicit_lb == 0
        assert dt.LB.explicit_ub is None

    def test_ub_sets_explicit_bound(self):
        assert dt.UB.explicit_ub == 0
        assert dt.UB.explicit_lb is None

    def test_marker_in_struct_controls_extent(self):
        t = dt.struct([1, 1, 1], [0, 8, 100], [dt.LB, dt.DOUBLE, dt.UB])
        assert t.lb == 0
        assert t.ub == 100
        assert t.extent == 100
        assert t.size == 8
        assert t.true_lb == 8 and t.true_ub == 16

    def test_marker_only_lb(self):
        t = dt.struct([1, 1], [4, 10], [dt.LB, dt.INT])
        assert t.lb == 4
        assert t.ub == 14  # data upper bound (no UB marker)

    def test_multiple_lb_markers_take_minimum(self):
        t = dt.struct([1, 1, 1], [12, 4, 8], [dt.LB, dt.LB, dt.INT])
        assert t.lb == 4

    def test_marker_survives_nesting(self):
        inner = dt.struct([1, 1], [0, 64], [dt.DOUBLE, dt.UB])
        assert inner.extent == 64
        outer = dt.contiguous(3, inner)
        # UB markers tile with the repetitions: max over placements.
        assert outer.ub == 2 * 64 + 64
        assert outer.extent == 3 * 64

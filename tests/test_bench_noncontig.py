"""The noncontig benchmark: datatype geometry, runs, and the paper's
qualitative claims at laptop scale."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench import NoncontigConfig, run_noncontig
from repro.bench.noncontig import (
    build_noncontig_filetype,
    build_noncontig_memtype,
)
from repro.flatten import flatten_datatype


class TestFiletypeGeometry:
    def test_fig4_structure(self):
        P, bl, bc = 4, 8, 16
        for r in range(P):
            ft = build_noncontig_filetype(P, r, bl, bc)
            assert ft.size == bl * bc
            assert ft.extent == P * bl * bc
            assert ft.lb == 0
            blocks = flatten_datatype(ft).to_pairs()
            assert len(blocks) == bc
            assert blocks[0] == (r * bl, bl)
            assert blocks[1][0] - blocks[0][0] == P * bl

    def test_views_tile_without_overlap(self):
        P, bl, bc = 3, 4, 5
        covered = np.zeros(P * bl * bc, dtype=int)
        for r in range(P):
            for off, ln in flatten_datatype(
                build_noncontig_filetype(P, r, bl, bc)
            ):
                covered[off : off + ln] += 1
        assert (covered == 1).all()

    def test_memtype_half_dense(self):
        mt = build_noncontig_memtype(8, 4)
        assert mt.size == 32
        assert mt.true_ub == 8 * (2 * 3 + 1)


class TestConfig:
    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            NoncontigConfig(nprocs=2, blocklen=8, blockcount=4,
                            pattern="x-y")

    def test_volumes(self):
        c = NoncontigConfig(nprocs=2, blocklen=8, blockcount=4, nreps=3)
        assert c.bytes_per_access == 32
        assert c.bytes_per_proc == 96
        assert c.file_bytes == 192


class TestRuns:
    @pytest.mark.parametrize("pattern", ["c-nc", "nc-c", "nc-nc"])
    @pytest.mark.parametrize("collective", [False, True])
    def test_verified_runs_both_engines(self, pattern, collective):
        cfg = NoncontigConfig(
            nprocs=2, blocklen=8, blockcount=64, pattern=pattern,
            collective=collective, nreps=2, verify=True,
        )
        for engine in ("listless", "list_based"):
            res = run_noncontig(engine, cfg)
            assert res.write_time.total > 0
            assert res.read_time.total > 0
            assert res.write_bpp > 0 and res.read_bpp > 0
            assert res.fs_stats["bytes_written"] >= cfg.file_bytes

    def test_listless_faster_for_fine_grained_access(self):
        """The paper's headline: for small blocks listless I/O wins by a
        large factor.  At Nblock=2048/Sblock=8 the Python gap is already
        well beyond noise."""
        cfg = NoncontigConfig(
            nprocs=2, blocklen=8, blockcount=2048, pattern="nc-nc",
            collective=False, nreps=2,
        )
        listless = run_noncontig("listless", cfg)
        listbased = run_noncontig("list_based", cfg)
        assert listless.write_bpp > 2 * listbased.write_bpp
        assert listless.read_bpp > 2 * listbased.read_bpp

    def test_collective_list_exchange_visible_in_comm_bytes(self):
        cfg = NoncontigConfig(
            nprocs=4, blocklen=8, blockcount=512, pattern="c-nc",
            collective=True, nreps=2,
        )
        listless = run_noncontig("listless", cfg)
        listbased = run_noncontig("list_based", cfg)
        assert listbased.comm_bytes > 1.5 * listless.comm_bytes

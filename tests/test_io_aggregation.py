"""The round-based aggregation layer: partitioning, schedule, bounds.

Unit-level properties of ``repro.io.aggregation`` (exact cover of the
pluggable file-domain partitioners, empty-domain handling in the round
schedule) plus end-to-end guarantees of the driver: byte-identity of
round-based against one-shot staging for every alignment strategy and
engine, and the O(cb_buffer_size x APs) bound on IOP staging memory
that the rounds exist to enforce.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.fs import SimFileSystem, StripingConfig
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.aggregation import (
    RoundSchedule,
    domain_skew,
    partition_domains_aligned,
    snap_to_blocks,
    snap_to_stripe,
)
from repro.io.hints import DOMAIN_ALIGNMENTS, Hints
from repro.io.two_phase import partition_domains
from repro.mpi import run_spmd
from repro.mpi.cost_model import choose_domain_align

ENGINES = ["list_based", "listless"]


# ----------------------------------------------------------------------
# Partitioning strategies: exact cover, no overlap
# ----------------------------------------------------------------------
class TestPartitionAligned:
    @given(
        lo=st.integers(0, 1 << 20),
        size=st.integers(0, 1 << 20),
        niops=st.integers(1, 9),
        align=st.sampled_from(DOMAIN_ALIGNMENTS),
        stripe=st.integers(1, 1 << 16),
        geoms=st.lists(
            st.tuples(st.integers(0, 4096), st.integers(0, 8192)),
            max_size=5,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_exact_cover_no_overlap(self, lo, size, niops, align,
                                    stripe, geoms):
        """Every strategy tiles [lo, hi) exactly: contiguous,
        monotone, no overlap, whatever the snapping inputs."""
        hi = lo + size
        domains = partition_domains_aligned(
            lo, hi, niops, align, stripe_size=stripe, geoms=geoms
        )
        assert len(domains) == niops
        assert domains[0][0] == lo
        assert domains[-1][1] == hi
        for (dlo, dhi), (nlo, _nhi) in zip(domains, domains[1:]):
            assert dlo <= dhi
            assert dhi == nlo  # contiguous: no gap, no overlap
        assert sum(dhi - dlo for dlo, dhi in domains) == size

    def test_even_matches_two_phase(self):
        assert partition_domains_aligned(0, 100, 3) == \
            partition_domains(0, 100, 3)

    def test_stripe_snaps_boundaries(self):
        domains = partition_domains_aligned(
            0, 40960, 4, "stripe", stripe_size=4096
        )
        for _dlo, dhi in domains[:-1]:
            assert dhi % 4096 == 0
        assert domains[-1][1] == 40960

    def test_block_snaps_to_view_edges(self):
        # One view: disp=8, extent=1000 -> edges 8, 1008, 2008, ...
        domains = partition_domains_aligned(
            0, 4000, 4, "block", geoms=[(8, 1000)]
        )
        for _dlo, dhi in domains[:-1]:
            assert (dhi - 8) % 1000 == 0
        assert domains[-1][1] == 4000

    def test_snap_helpers(self):
        assert snap_to_stripe(4097, 4096) == 4096
        assert snap_to_stripe(4096, 4096) == 4096
        assert snap_to_blocks(2500, [(8, 1000), (0, 300)]) == 2400
        assert snap_to_blocks(5, [(8, 1000)]) is None
        assert snap_to_blocks(5, [(0, 0)]) is None

    def test_domain_skew(self):
        assert domain_skew([]) == 0
        assert domain_skew([(0, 10), (10, 20)]) == 0
        assert domain_skew([(0, 4), (4, 20)]) == 12


class TestChooseDomainAlign:
    def test_single_iop_even(self):
        assert choose_domain_align(
            total_bytes=1 << 20, niops=1, ndisks=8,
            stripe_size=4096, max_ft_extent=1024,
        ) == "even"

    def test_striped_file_prefers_stripe(self):
        assert choose_domain_align(
            total_bytes=1 << 20, niops=4, ndisks=8,
            stripe_size=4096, max_ft_extent=0,
        ) == "stripe"

    def test_large_extent_prefers_block(self):
        assert choose_domain_align(
            total_bytes=1 << 20, niops=4, ndisks=1,
            stripe_size=1, max_ft_extent=4096,
        ) == "block"

    def test_small_access_falls_back_even(self):
        assert choose_domain_align(
            total_bytes=64, niops=4, ndisks=8,
            stripe_size=4096, max_ft_extent=4096,
        ) == "even"


# ----------------------------------------------------------------------
# Round schedule: empty domains sit out uniformly
# ----------------------------------------------------------------------
class TestRoundSchedule:
    def test_empty_domains_skipped(self):
        """A 2-byte range over 4 IOPs leaves two empty domains: they
        contribute no windows, no rounds, and never appear active."""
        domains = partition_domains(0, 2, 4)
        assert [dhi - dlo for dlo, dhi in domains] == [1, 1, 0, 0]
        sched = RoundSchedule(domains, cb_buffer_size=4)
        assert sched.nrounds == 1
        assert sched.window(2, 0) is None
        assert sched.window(3, 0) is None
        assert [iop for iop, _w in sched.active(0)] == [0, 1]

    def test_rank_beyond_iop_count_has_no_window(self):
        sched = RoundSchedule(partition_domains(0, 100, 2), 64)
        assert sched.window(5, 0) is None

    def test_nrounds_is_max_over_iops(self):
        # Domain 0: 100 B -> 2 windows at cb=64; domain 1: 10 B -> 1.
        sched = RoundSchedule([(0, 100), (100, 110)], 64)
        assert sched.nrounds == 2
        assert sched.window(1, 1) is None
        assert [iop for iop, _w in sched.active(1)] == [0]

    def test_no_domains_no_rounds(self):
        sched = RoundSchedule([], 64)
        assert sched.nrounds == 0


# ----------------------------------------------------------------------
# End-to-end: byte-identity and the staging bound
# ----------------------------------------------------------------------
NP = 4
BLOCK = 512
NBLOCKS = 32
PER_RANK = BLOCK * NBLOCKS
TOTAL = NP * PER_RANK


def _collective_run(engine, hints, *, preset=None):
    """One interleaved collective write+read on NP ranks.

    Returns (file contents, per-rank read buffers, per-rank stats).
    When ``preset`` is given the file starts with those bytes and the
    write phase is skipped (pure-read identity).
    """
    fs = SimFileSystem()
    f = fs.create(
        "/f", striping=StripingConfig(ndisks=2, stripe_size=2048)
    )
    f.truncate(TOTAL)
    if preset is not None:
        f.pwrite(0, preset)

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        ft = dt.vector(NBLOCKS, BLOCK, NP * BLOCK, dt.BYTE)
        fh.set_view(comm.rank * BLOCK, dt.BYTE, ft)
        rng = np.random.default_rng(comm.rank)
        wbuf = rng.integers(0, 256, PER_RANK, dtype=np.uint8)
        if preset is None:
            fh.write_at_all(0, wbuf)
        rbuf = np.zeros(PER_RANK, dtype=np.uint8)
        fh.read_at_all(0, rbuf)
        st = fh.engine.stats
        out = {
            "rbuf": rbuf,
            "peak_staging": st.plan.peak_staging_bytes,
            "rounds": st.coll_rounds,
            "pipelined_ops": st.plan.pipelined_file_ops,
            "idle_synced": st.plan.rounds_idle_synced,
        }
        fh.close()
        return out

    rows = run_spmd(NP, worker)
    return fs.lookup("/f").contents().copy(), rows


ONE_SHOT = Hints(cb_buffer_size=4 * TOTAL)
ROUND = Hints(cb_buffer_size=2048)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("align", [None, *DOMAIN_ALIGNMENTS])
def test_round_based_matches_one_shot(engine, align):
    """Small-window rounds must produce the same file bytes and the
    same read-back as a single whole-domain window, for every
    partitioning strategy (None = cost-model choice)."""
    one = ONE_SHOT.with_(cb_domain_align=align)
    rnd = ROUND.with_(cb_domain_align=align)
    data_one, rows_one = _collective_run(engine, one)
    data_rnd, rows_rnd = _collective_run(engine, rnd)
    assert np.array_equal(data_one, data_rnd)
    for a, b in zip(rows_one, rows_rnd):
        assert np.array_equal(a["rbuf"], b["rbuf"])
    assert rows_rnd[0]["rounds"] > rows_one[0]["rounds"]


@pytest.mark.parametrize("engine", ENGINES)
def test_strategies_byte_identical(engine):
    """All three alignment strategies write identical file contents."""
    images = [
        _collective_run(engine, ROUND.with_(cb_domain_align=a))[0]
        for a in DOMAIN_ALIGNMENTS
    ]
    for img in images[1:]:
        assert np.array_equal(images[0], img)


@pytest.mark.parametrize("engine", ENGINES)
def test_pure_read_identity(engine):
    """Round-based reads return the preset file bytes exactly."""
    rng = np.random.default_rng(99)
    preset = rng.integers(0, 256, TOTAL, dtype=np.uint8)
    _data, rows = _collective_run(engine, ROUND, preset=preset)
    for rank, row in enumerate(rows):
        expect = np.concatenate([
            preset[i * NP * BLOCK + rank * BLOCK:][:BLOCK]
            for i in range(NBLOCKS)
        ])
        assert np.array_equal(row["rbuf"], expect)


@pytest.mark.parametrize("engine", ENGINES)
def test_iop_staging_bounded_by_window(engine):
    """The refactor's memory guarantee: with cb_buffer_size windows an
    IOP stages at most O(cb x participating APs) bytes at any moment,
    while the one-shot configuration stages whole accesses."""
    cb = ROUND.cb_buffer_size
    _data, rows = _collective_run(engine, ROUND)
    peak_rnd = max(r["peak_staging"] for r in rows)
    assert peak_rnd <= NP * cb, (peak_rnd, NP * cb)

    _data, rows = _collective_run(engine, ONE_SHOT)
    peak_one = max(r["peak_staging"] for r in rows)
    assert peak_one >= PER_RANK, (peak_one, PER_RANK)
    assert peak_rnd < peak_one


def test_cost_model_uniform_across_ranks():
    """Unset cb_domain_align must resolve identically on every rank
    (the chosen strategy is a pure function of allgathered inputs) —
    asserted indirectly: the run completes and round counts agree."""
    _data, rows = _collective_run("listless", ROUND)
    assert len({r["rounds"] for r in rows}) == 1


# ----------------------------------------------------------------------
# Pipelined rounds: overlap without changing a single byte
# ----------------------------------------------------------------------
SERIAL = ROUND.with_(cb_pipeline="off")
PIPED = ROUND.with_(cb_pipeline="on")


class TestPipelinedRounds:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("align", [None, *DOMAIN_ALIGNMENTS])
    def test_pipelined_matches_serial_and_one_shot(self, engine, align):
        """The tentpole's correctness bar: one-shot, serial rounds and
        pipelined rounds produce identical file bytes and read-backs for
        every partitioning strategy and engine."""
        imgs, reads = [], []
        for hints in (ONE_SHOT, SERIAL, PIPED):
            data, rows = _collective_run(
                engine, hints.with_(cb_domain_align=align)
            )
            imgs.append(data)
            reads.append([r["rbuf"] for r in rows])
        for img in imgs[1:]:
            assert np.array_equal(imgs[0], img)
        for rbufs in reads[1:]:
            for a, b in zip(reads[0], rbufs):
                assert np.array_equal(a, b)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pipelined_keeps_staging_bound(self, engine):
        """Publication-at-drain keeps the live staging table identical
        to serial rounds — the O(cb x APs) bound must survive the
        pipeline (the in-flight window is tracked separately)."""
        cb = PIPED.cb_buffer_size
        _data, rows = _collective_run(engine, PIPED)
        assert max(r["peak_staging"] for r in rows) <= NP * cb
        assert any(r["pipelined_ops"] > 0 for r in rows)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pipelined_never_idle_syncs(self, engine):
        """Relaxed p2p synchronization: no rank ever blocks in a round
        it moves no bytes in."""
        _data, rows = _collective_run(engine, PIPED)
        assert all(r["idle_synced"] == 0 for r in rows)

    def test_auto_engages_on_multi_round(self):
        """cb_pipeline=auto (the default) pipelines once there is more
        than one round to overlap, and stays serial one-shot."""
        _data, rows = _collective_run("listless", ROUND)  # auto
        assert all(r["pipelined_ops"] > 0 for r in rows)
        _data, rows = _collective_run("listless", ONE_SHOT)  # 1 round
        assert all(r["pipelined_ops"] == 0 for r in rows)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pipelined_rmw_rounds_match_serial(self, engine):
        """Sparse writes leave uncovered window bytes -> rmw rounds,
        which must stay on the ordered synchronous path while covered
        rounds pipeline.  Gap bytes keep their preset contents."""
        rng = np.random.default_rng(3)
        preset = rng.integers(0, 256, TOTAL, dtype=np.uint8)
        images = []
        for hints in (SERIAL, PIPED):
            fs = SimFileSystem()
            f = fs.create("/f")
            f.truncate(TOTAL)
            f.pwrite(0, preset)

            def worker(comm, hints=hints):
                fh = File.open(comm, fs, "/f", MODE_RDWR,
                               engine=engine, hints=hints)
                # Half-filled blocks: every window keeps gap bytes.
                ft = dt.vector(NBLOCKS, BLOCK // 2, NP * BLOCK, dt.BYTE)
                fh.set_view(comm.rank * BLOCK, dt.BYTE, ft)
                wbuf = np.full(NBLOCKS * BLOCK // 2, comm.rank + 1,
                               dtype=np.uint8)
                fh.write_at_all(0, wbuf)
                fh.close()

            run_spmd(NP, worker)
            images.append(fs.lookup("/f").contents().copy())
        assert np.array_equal(images[0], images[1])
        # Gap bytes (second half of each rank's block) kept the preset.
        img = images[1].reshape(-1, BLOCK)
        assert np.array_equal(img[:, BLOCK // 2:].ravel(),
                              preset.reshape(-1, BLOCK)[:, BLOCK // 2:]
                              .ravel())

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pipelined_back_to_back_write_ordering(self, engine):
        """Two successive collective writes to the same region: the
        first run's pipeline must fully land before the second run's
        bytes (the plan's final drain closes the worker per run)."""
        images = []
        for hints in (SERIAL, PIPED):
            fs = SimFileSystem()
            f = fs.create("/f")
            f.truncate(TOTAL)

            def worker(comm, hints=hints):
                fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                               engine=engine, hints=hints)
                ft = dt.vector(NBLOCKS, BLOCK, NP * BLOCK, dt.BYTE)
                fh.set_view(comm.rank * BLOCK, dt.BYTE, ft)
                fh.write_at_all(
                    0, np.full(PER_RANK, 101, dtype=np.uint8))
                fh.write_at_all(
                    0, np.full(PER_RANK, comm.rank + 1, dtype=np.uint8))
                fh.close()

            run_spmd(NP, worker)
            images.append(fs.lookup("/f").contents().copy())
        assert np.array_equal(images[0], images[1])
        assert not (images[1] == 101).any()  # second write won

    def test_skewed_access_serial_syncs_idle_p2p_does_not(self):
        """A single-IOP collective where ranks 1..3 only touch the
        first window: serial alltoall synchronizes them through every
        remaining round, the relaxed p2p exchange lets them leave."""
        outs = {}
        for mode in ("off", "on"):
            fs = SimFileSystem()
            fs.create("/f").truncate(8192)
            hints = Hints(cb_buffer_size=1024, cb_nodes=1,
                          cb_pipeline=mode)

            def worker(comm, hints=hints):
                fh = File.open(comm, fs, "/f", MODE_RDWR,
                               engine="listless", hints=hints)
                r = comm.rank
                if r == 0:
                    fh.write_at_all(
                        256, np.full(4096 - 256, 9, dtype=np.uint8))
                else:
                    fh.write_at_all(
                        64 * r, np.full(64, r, dtype=np.uint8))
                st = fh.engine.stats
                out = (st.plan.rounds_idle_synced, st.coll_rounds)
                fh.close()
                return out

            outs[mode] = (run_spmd(NP, worker),
                          fs.lookup("/f").contents().copy())
        (rows_off, img_off), (rows_on, img_on) = \
            outs["off"], outs["on"]
        assert np.array_equal(img_off, img_on)
        nrounds = rows_off[0][1]
        assert nrounds > 1
        # Ranks 1..3 are active only in round 0 under serial alltoall.
        assert all(idle == nrounds - 1 for idle, _n in rows_off[1:])
        assert all(idle == 0 for idle, _n in rows_on)

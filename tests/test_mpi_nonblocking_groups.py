"""Nonblocking point-to-point, probe, and sub-communicators."""

import time

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd
from repro.mpi.communicator import GroupComm


class TestNonblocking:
    def test_irecv_wait(self):
        def worker(comm):
            if comm.rank == 0:
                req = comm.isend(1, "payload")
                assert req.test()
                assert req.wait() is None
            else:
                req = comm.irecv(0)
                assert req.wait() == "payload"

        run_spmd(2, worker)

    def test_irecv_test_polls(self):
        def worker(comm):
            if comm.rank == 1:
                req = comm.irecv(0, tag=5)
                # Nothing sent yet at first poll (usually); keep polling.
                deadline = time.time() + 5
                while not req.test():
                    assert time.time() < deadline
                assert req.wait() == 42
            else:
                time.sleep(0.02)
                comm.send(1, 42, tag=5)

        run_spmd(2, worker)

    def test_probe_then_recv(self):
        from repro.mpi import Status

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(64, np.uint8), tag=9)
            else:
                st = Status()
                comm.probe(0, tag=9, status=st)
                assert st.nbytes == 64
                # Message still there: recv must succeed instantly.
                got = comm.recv(0, tag=9)
                assert got.size == 64

        run_spmd(2, worker)

    def test_iprobe(self):
        def worker(comm):
            if comm.rank == 0:
                assert not comm.iprobe(1, tag=3)
                comm.send(1, "x", tag=3)
                comm.barrier()
            else:
                comm.barrier()
                assert comm.iprobe(0, tag=3)
                assert comm.recv(0, tag=3) == "x"

        run_spmd(2, worker)


class TestSplit:
    def test_split_two_groups(self):
        def worker(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            assert isinstance(sub, GroupComm)
            assert sub.size == 2
            # Group collectives see only group members.
            vals = sub.allgather(comm.rank)
            if comm.rank % 2 == 0:
                assert vals == [0, 2]
            else:
                assert vals == [1, 3]
            return sub.rank

        ranks = run_spmd(4, worker)
        assert ranks == [0, 0, 1, 1]

    def test_split_key_orders_ranks(self):
        def worker(comm):
            # Reverse ordering within the single group.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        assert run_spmd(3, worker) == [2, 1, 0]

    def test_split_undefined_color(self):
        def worker(comm):
            sub = comm.split(color=None if comm.rank == 2 else 0)
            if comm.rank == 2:
                assert sub is None
                return -1
            return sub.size

        assert run_spmd(3, worker) == [2, 2, -1]

    def test_group_p2p_translates_ranks(self):
        def worker(comm):
            sub = comm.split(color=comm.rank // 2, key=comm.rank)
            peer = 1 - sub.rank
            sub.send(peer, f"from-{comm.rank}", tag=11)
            got = sub.recv(peer, tag=11)
            expect_world = sub._group.members[peer]
            assert got == f"from-{expect_world}"

        run_spmd(4, worker)

    def test_dup_is_independent(self):
        def worker(comm):
            d = comm.dup()
            assert d.size == comm.size
            assert d.rank == comm.rank
            assert d.allgather(comm.rank) == list(range(comm.size))

        run_spmd(3, worker)

    def test_failure_breaks_group_barrier(self):
        def worker(comm):
            sub = comm.split(color=0, key=comm.rank)
            if comm.rank == 0:
                raise ValueError("group boom")
            sub.barrier()  # must not hang
            sub.barrier()

        with pytest.raises(ValueError, match="group boom"):
            run_spmd(3, worker)


class TestFileOnSubcommunicator:
    def test_subset_of_ranks_opens_a_file(self):
        """Only the even ranks open and collectively write a file —
        the classic use of MPI_Comm_split with MPI-IO."""
        fs = SimFileSystem()

        def worker(comm):
            color = 0 if comm.rank % 2 == 0 else None
            sub = comm.split(color, key=comm.rank)
            if sub is None:
                return
            fh = File.open(sub, fs, "/even.dat",
                           MODE_CREATE | MODE_RDWR, engine="listless")
            fh.set_view(sub.rank * 8, dt.BYTE, dt.BYTE)
            fh.write_at_all(0, np.full(8, comm.rank, dtype=np.uint8))
            fh.close()

        run_spmd(4, worker)
        data = fs.lookup("/even.dat").contents()
        assert (data[:8] == 0).all()
        assert (data[8:] == 2).all()


class TestPendingOpEdges:
    def test_irecv_any_tag_nonblocking(self):
        from repro.mpi import ANY_TAG

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "tagged", tag=77)
                comm.barrier()
            else:
                comm.barrier()
                req = comm.irecv(0, tag=ANY_TAG)
                assert req.test()
                assert req.wait() == "tagged"

        run_spmd(2, worker)

    def test_wait_idempotent(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, 5)
            else:
                req = comm.irecv(0)
                assert req.wait() == 5
                assert req.wait() == 5  # cached result

        run_spmd(2, worker)

    def test_isend_request_always_done(self):
        def worker(comm):
            if comm.rank == 0:
                req = comm.isend(1, "x")
                assert req.test() and req.wait() is None
            else:
                comm.recv(0)

        run_spmd(2, worker)


class TestRequestEdges:
    def test_unstarted_request_wait_raises(self):
        from repro.errors import IOEngineError
        from repro.io.request import Request

        import pytest as _pytest

        with _pytest.raises(IOEngineError):
            Request().wait()

    def test_phase_time_infinite_bandwidth_on_zero(self):
        from repro.bench.timing import PhaseTime

        t = PhaseTime(wall=0.0, fs_sim=0.0, net_sim=0.0)
        assert t.bandwidth(100) == float("inf")


class TestNestedSplit:
    def test_split_of_a_group(self):
        """Splitting a sub-communicator again must keep world-rank
        identities straight."""
        def worker(comm):
            # First split: evens vs odds.
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            # Second split within each group: singleton groups.
            subsub = sub.split(color=sub.rank, key=0)
            assert subsub.size == 1
            assert subsub.rank == 0
            # Collectives on the innermost group are local.
            assert subsub.allgather(comm.rank) == [comm.rank]
            return (sub.rank, subsub.size)

        res = run_spmd(4, worker)
        assert res == [(0, 1), (0, 1), (1, 1), (1, 1)]

    def test_nested_group_p2p(self):
        def worker(comm):
            sub = comm.split(color=0, key=comm.rank)  # all ranks
            inner = sub.split(color=sub.rank // 2, key=sub.rank)
            peer = 1 - inner.rank
            inner.send(peer, comm.rank * 10, tag=21)
            got = inner.recv(peer, tag=21)
            expected_world = inner._group.members[peer]
            assert got == expected_world * 10

        run_spmd(4, worker)

"""IOSession scoping: isolation, defaults, and file-identity keying.

The tentpole invariants of the session refactor:

* no active session → every layer uses the historical process-wide
  singletons (full backward compatibility);
* an active session sees *only* its own counters, program cache,
  metrics registry and flight recorder;
* cache keys carry the open file's identity, so two files with
  identical view geometry never serve each other's compiled programs,
  and one file's invalidation leaves the other's programs cached.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import datatypes as dt
from repro.core import blockprog
from repro.core.blockprog import BLOCKPROG_STATS, program_for
from repro.core.ff_pack import top_dataloop
from repro.core.gather import KERNEL_PATHS, active_kernel_paths
from repro.fs import SimFileSystem
from repro.io import MODE_CREATE, MODE_RDWR
from repro.io.file_handle import File
from repro.mpi import run_spmd
from repro.obs import flight, metrics
from repro.session import IOSession, current


@pytest.fixture(autouse=True)
def _fresh():
    prev = blockprog.set_enabled(True)
    blockprog.clear()
    BLOCKPROG_STATS.reset()
    KERNEL_PATHS.reset()
    yield
    blockprog.set_enabled(prev)
    blockprog.clear()


def _ragged():
    return dt.resized(dt.indexed([3, 1, 7, 2], [0, 5, 9, 20], dt.BYTE),
                      0, 32)


class TestActivation:
    def test_no_session_by_default(self):
        assert current() is None
        assert active_kernel_paths() is KERNEL_PATHS
        assert blockprog.active_stats() is BLOCKPROG_STATS
        assert metrics.active_registry() is metrics.REGISTRY
        assert flight.active_recorder() is flight.RECORDER

    def test_with_activates_and_restores(self):
        s = IOSession("t")
        with s:
            assert current() is s
            assert blockprog.active_stats() is s.prog_stats
            assert metrics.active_registry() is s.metrics
            assert flight.active_recorder() is s.flight
        assert current() is None

    def test_reentrant(self):
        a, b = IOSession("a"), IOSession("b")
        with a:
            with b:
                assert current() is b
            assert current() is a
        assert current() is None

    def test_new_threads_start_sessionless(self):
        import threading

        s = IOSession("t")
        seen = []
        with s:
            th = threading.Thread(
                target=lambda: seen.append(current()))
            th.start()
            th.join()
        assert seen == [None]


class TestCounterIsolation:
    def test_program_cache_and_stats_are_per_session(self):
        loop = top_dataloop(_ragged(), 64)
        a, b = IOSession("a"), IOSession("b")
        with a:
            program_for(loop, 0, 10)
            program_for(loop, 0, 10)
        with b:
            program_for(loop, 0, 10)
        assert a.prog_stats.misses == 1 and a.prog_stats.hits == 1
        assert b.prog_stats.misses == 1 and b.prog_stats.hits == 0
        # The process-default cache and counters never moved.
        assert BLOCKPROG_STATS.misses == 0
        assert blockprog._cache.get(loop) is None

    def test_session_snapshot_global_reads_session(self):
        loop = top_dataloop(_ragged(), 64)
        s = IOSession("t")
        with s:
            program_for(loop, 0, 10)
            snap = metrics.snapshot()
        assert snap["global"]["blockprog_misses"] == 1
        # Process-default snapshot stays untouched.
        assert metrics.REGISTRY.snapshot()["global"][
            "blockprog_misses"] == 0

    def test_session_reset_leaves_process_counters(self):
        loop = top_dataloop(_ragged(), 64)
        BLOCKPROG_STATS.misses = 7
        s = IOSession("t")
        with s:
            program_for(loop, 0, 10)
            metrics.reset()
        assert s.prog_stats.misses == 0
        assert BLOCKPROG_STATS.misses == 7

    def test_flight_recorders_are_separate(self):
        s = IOSession("t")
        with s:
            flight.note("inner", rank=0)
        flight.note("outer", rank=0)
        inner = s.flight.export_state()["crumbs"]
        outer = flight.RECORDER.export_state()["crumbs"]
        assert [c[1] for c in inner[0]] == ["inner"]
        assert any(c[1] == "outer" for c in outer[0])
        flight.RECORDER.clear()


class TestFileIdentityKeying:
    def _open_two(self, comm, fs):
        fa = File.open(comm, fs, "/a", MODE_CREATE | MODE_RDWR)
        fb = File.open(comm, fs, "/b", MODE_CREATE | MODE_RDWR)
        ft = dt.vector(8, 2, 4, dt.BYTE)
        fa.set_view(0, dt.BYTE, ft)
        fb.set_view(0, dt.BYTE, ft)
        return fa, fb

    def test_file_keys_are_distinct_and_stable(self):
        fs = SimFileSystem()

        def worker(comm):
            fa, fb = self._open_two(comm, fs)
            ka, kb = fa.shared.file_key, fb.shared.file_key
            fa.close(), fb.close()
            return ka, kb

        (ka, kb), = run_spmd(1, worker)
        assert ka != kb
        assert ka[0] == "/a" and kb[0] == "/b"

    def test_same_geometry_two_files_two_cache_entries(self):
        """Identical fileviews on two open files compile their block
        programs under distinct owners: invalidating one file's view
        drops only that file's programs."""
        fs = SimFileSystem()
        out = {}

        def worker(comm):
            s = IOSession("t")
            with s:
                fa, fb = self._open_two(comm, fs)
                buf = np.arange(16, dtype=np.uint8)
                fa.write_at(0, buf)
                fb.write_at(0, buf)
                misses_after_both = s.prog_stats.misses
                # Same geometry, second file: must NOT have hit the
                # first file's programs.
                assert misses_after_both >= 2
                # Invalidate /a only: /b's programs survive.
                s.prog_stats.reset()
                fa.set_view(0, dt.BYTE, dt.vector(8, 2, 4, dt.BYTE))
                fb.write_at(0, buf)
                out["b_misses_after_a_invalidate"] = \
                    s.prog_stats.misses
                fa.close(), fb.close()

        run_spmd(1, worker)
        assert out["b_misses_after_a_invalidate"] == 0

    def test_planner_fingerprint_includes_file_key(self):
        fs = SimFileSystem()

        def worker(comm):
            fa, fb = self._open_two(comm, fs)
            fpa = fa.engine.planner._fingerprint()
            fpb = fb.engine.planner._fingerprint()
            fa.close(), fb.close()
            return fpa, fpb

        (fpa, fpb), = run_spmd(1, worker)
        assert fpa != fpb
        assert fpa[0] != fpb[0]

    def test_owner_scoped_clear(self):
        loop = top_dataloop(_ragged(), 64)
        program_for(loop, 0, 10, owner=("f1", 1))
        program_for(loop, 0, 10, owner=("f2", 2))
        blockprog.clear(owner=("f1", 1))
        BLOCKPROG_STATS.reset()
        program_for(loop, 0, 10, owner=("f2", 2))
        assert BLOCKPROG_STATS.hits == 1
        program_for(loop, 0, 10, owner=("f1", 1))
        assert BLOCKPROG_STATS.misses == 1


class TestSessionedWorlds:
    def test_run_spmd_activates_session_in_ranks(self):
        s = IOSession("w")

        def worker(comm):
            return current() is s

        assert all(run_spmd(2, worker, session=s))

    def test_file_open_pins_session(self):
        fs = SimFileSystem()
        s = IOSession("w")

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
            fh.write_at(0, np.zeros(8, np.uint8))
            fh.close()

        run_spmd(1, worker, session=s)
        snap = s.metrics.snapshot()
        assert any(f["path"] == "/f" for f in snap["files"])
        assert not any(
            f["path"] == "/f"
            for f in metrics.REGISTRY.snapshot()["files"]
        )

    def test_abort_dumps_session_recorder(self, tmp_path, monkeypatch):
        import json

        s = IOSession("w")
        out = tmp_path / "flight.json"
        monkeypatch.setenv("REPRO_FLIGHT", str(out))

        def worker(comm):
            flight.note("pre_crash", rank=comm.rank)
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError):
            run_spmd(2, worker, session=s)
        rec = json.loads(out.read_text())
        crumbs = [c[1] for r in rec["ranks"].values()
                  for c in r["breadcrumbs"]]
        assert "pre_crash" in crumbs

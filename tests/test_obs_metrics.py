"""The unified metrics registry: labeling, scoping, schema, reset."""

import gc

import numpy as np
import pytest

from repro import datatypes as dt
from repro.core.blockprog import BLOCKPROG_STATS
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd
from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, metric_schema

FT = dt.vector(64, 8, 16, dt.BYTE)


def open_and_write(engine, fs, path="/f", nprocs=2, snap_box=None):
    """Collective write through ``engine``, snapshotting the registry
    inside the worker (engine entries are weakly referenced, so they
    are only visible while the handles are alive)."""

    def worker(comm):
        fh = File.open(comm, fs, path, MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(comm.rank * 8, dt.BYTE, FT)
        fh.write_at_all(0, np.zeros(256, dtype=np.uint8))
        if snap_box is not None and comm.rank == 0:
            snap_box["snap"] = metrics.snapshot()
        comm.barrier()
        fh.close()

    run_spmd(nprocs, worker)


class TestRegistration:
    def test_engine_labels(self):
        fs = SimFileSystem()
        box = {}
        open_and_write("listless", fs, snap_box=box)
        engines = box["snap"]["engines"]
        labels = [(e["path"], e["engine"], e["rank"]) for e in engines]
        assert ("/f", "listless", 0) in labels
        assert ("/f", "listless", 1) in labels

    def test_file_stats_registered(self):
        fs = SimFileSystem()
        box = {}
        open_and_write("listless", fs, snap_box=box)
        files = {f["path"]: f["counters"] for f in box["snap"]["files"]}
        assert files["/f"]["n_writes"] > 0

    def test_dead_engines_pruned(self):
        fs = SimFileSystem()
        open_and_write("listless", fs, path="/gone")
        gc.collect()  # engine<->file handle cycles need the collector
        snap = metrics.snapshot()
        assert not any(e["path"] == "/gone" for e in snap["engines"])


class TestScoping:
    """The satellite bug fix: process-global counters are reported once,
    under ``global``, never merged into per-engine snapshots."""

    def test_engine_snapshot_has_no_global_keys(self):
        fs = SimFileSystem()
        box = {}
        open_and_write("listless", fs, snap_box=box)
        for e in box["snap"]["engines"]:
            for k in e["counters"]:
                assert not k.startswith(("blockprog_", "kernel_path_")), k

    def test_no_double_report_across_two_files(self):
        """With two files open, the global counters appear exactly once
        in the snapshot — the old per-engine merge reported them per
        open file."""
        fs = SimFileSystem()
        box = {}

        def worker(comm):
            fh_a = File.open(comm, fs, "/a", MODE_CREATE | MODE_RDWR,
                             engine="listless")
            fh_b = File.open(comm, fs, "/b", MODE_CREATE | MODE_RDWR,
                             engine="listless")
            for fh in (fh_a, fh_b):
                fh.set_view(comm.rank * 8, dt.BYTE, FT)
                fh.write_at_all(0, np.zeros(256, dtype=np.uint8))
            if comm.rank == 0:
                box["snap"] = metrics.snapshot()
            comm.barrier()
            fh_a.close()
            fh_b.close()

        run_spmd(2, worker)
        snap = box["snap"]
        assert len(snap["engines"]) >= 4  # 2 files x 2 ranks
        assert "blockprog_translations" in snap["global"]
        # Exactly one global section regardless of open-file count, and
        # no blockprog_/kernel_path_ keys leaked into engine entries.
        assert "blockprog_" not in str(snap["engines"])

    def test_reset_clears_global_counters(self):
        fs = SimFileSystem()
        BLOCKPROG_STATS.reset()
        open_and_write("listless", fs)
        assert BLOCKPROG_STATS.translations + BLOCKPROG_STATS.bypasses > 0
        metrics.reset()
        snap = metrics.snapshot()
        assert all(v == 0 for v in snap["global"].values())

    def test_reset_clears_live_engine_and_file_stats(self):
        fs = SimFileSystem()
        checks = {}

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine="listless")
            fh.set_view(0, dt.BYTE, FT)
            fh.write_at_all(0, np.zeros(256, dtype=np.uint8))
            eng = fh.engine
            checks["before"] = (eng.stats.snapshot(),
                                eng.stats.phases.total)
            metrics.reset()
            checks["after"] = (eng.stats.snapshot(),
                               eng.stats.phases.total,
                               fs.lookup("/f").stats.snapshot()["n_writes"])
            fh.close()

        run_spmd(1, worker)
        counters, phase_total = checks["before"]
        assert any(v > 0 for v in counters.values())
        assert phase_total > 0
        counters, phase_total, n_writes = checks["after"]
        assert all(v == 0 for v in counters.values())
        assert phase_total == 0.0 and n_writes == 0


class TestSchema:
    def test_both_engines_same_schema(self):
        """The unified surface promises one metric schema regardless of
        engine — dashboards must not care which engine produced a run."""
        fs = SimFileSystem()
        boxes = {}
        for engine in ("list_based", "listless"):
            boxes[engine] = {}
            open_and_write(engine, fs, path=f"/{engine}",
                           snap_box=boxes[engine])
        schemas = {
            eng: metric_schema(boxes[eng]["snap"])["engines"][eng]
            for eng in boxes
        }
        assert schemas["list_based"] == schemas["listless"]

    def test_snapshot_deterministically_sorted(self):
        fs = SimFileSystem()
        box = {}
        open_and_write("list_based", fs, snap_box=box)
        snap = box["snap"]
        labels = [(e["path"], e["engine"], e["rank"])
                  for e in snap["engines"]]
        assert labels == sorted(labels)
        for e in snap["engines"]:
            assert list(e["counters"]) == sorted(e["counters"])
            assert list(e["phases"]) == sorted(e["phases"])
        assert list(snap["global"]) == sorted(snap["global"])

    def test_phase_keys_in_snapshot(self):
        fs = SimFileSystem()
        box = {}
        open_and_write("listless", fs, snap_box=box)
        for e in box["snap"]["engines"]:
            assert set(e["phases"]) == {
                "phase_exchange", "phase_file_io", "phase_lock",
                "phase_pack", "phase_pipeline_io", "phase_plan",
                "phase_ship", "phase_sync", "phase_unpack",
            }


class TestIsolatedRegistry:
    def test_clear_forgets_registrations(self):
        reg = MetricsRegistry()

        class FakeStats:
            def snapshot(self):
                return {"n": 1}

        st = FakeStats()
        reg.register_file("/x", st)
        assert reg.snapshot()["files"]
        reg.clear()
        assert reg.snapshot()["files"] == []

    def test_weakref_pruning(self):
        reg = MetricsRegistry()

        class FakeStats:
            def snapshot(self):
                return {"n": 1}

        st = FakeStats()
        reg.register_file("/x", st)
        del st
        gc.collect()
        assert reg.snapshot()["files"] == []

"""The File handle: modes, pointers, views, size management."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.errors import IOEngineError
from repro.fs import SimFileSystem
from repro.io import (
    File,
    MODE_APPEND,
    MODE_CREATE,
    MODE_DELETE_ON_CLOSE,
    MODE_EXCL,
    MODE_RDONLY,
    MODE_RDWR,
    MODE_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.mpi import run_spmd
from tests.conftest import fill_pattern

ENGINES = ["listless", "list_based"]


def spmd(n, fn):
    return run_spmd(n, fn)


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


class TestOpenModes:
    def test_create_and_write(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.write_at(0, fill_pattern(16))
            fh.close()

        spmd(2, worker)
        assert fs.lookup("/f").size == 16

    def test_open_missing_without_create(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            File.open(comm, fs, "/missing", MODE_RDWR, engine=engine)

        with pytest.raises(Exception):
            spmd(1, worker)

    def test_excl_on_existing(self, engine):
        fs = SimFileSystem()
        fs.create("/f")

        def worker(comm):
            File.open(comm, fs, "/f", MODE_CREATE | MODE_EXCL | MODE_RDWR,
                      engine=engine)

        with pytest.raises(Exception):
            spmd(1, worker)

    def test_rdonly_write_rejected(self, engine):
        fs = SimFileSystem()
        fs.create("/f")

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDONLY, engine=engine)
            with pytest.raises(IOEngineError):
                fh.write_at(0, np.zeros(4, np.uint8))
            fh.close()

        spmd(1, worker)

    def test_wronly_read_rejected(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_WRONLY,
                           engine=engine)
            with pytest.raises(IOEngineError):
                fh.read_at(0, np.zeros(4, np.uint8))
            fh.close()

        spmd(1, worker)

    def test_two_access_modes_rejected(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            File.open(comm, fs, "/f",
                      MODE_CREATE | MODE_RDONLY | MODE_RDWR, engine=engine)

        with pytest.raises(Exception):
            spmd(1, worker)

    def test_delete_on_close(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(
                comm, fs, "/tmpf",
                MODE_CREATE | MODE_RDWR | MODE_DELETE_ON_CLOSE,
                engine=engine,
            )
            fh.write_at(0, fill_pattern(4))
            fh.close()

        spmd(2, worker)
        assert not fs.exists("/tmpf")

    def test_append_positions_at_end(self, engine):
        fs = SimFileSystem()
        fs.create("/f").pwrite(0, fill_pattern(10))

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR | MODE_APPEND,
                           engine=engine)
            assert fh.tell() == 10
            fh.close()

        spmd(1, worker)

    def test_closed_handle_rejects_io(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.close()
            with pytest.raises(IOEngineError):
                fh.write_at(0, np.zeros(1, np.uint8))

        spmd(1, worker)


class TestPointers:
    def test_individual_pointer_advances_in_etypes(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.set_view(0, dt.DOUBLE, dt.DOUBLE)
            fh.write(np.arange(4, dtype=np.float64), 4, dt.DOUBLE)
            assert fh.tell() == 4
            fh.write(np.arange(2, dtype=np.float64), 2, dt.DOUBLE)
            assert fh.tell() == 6
            fh.seek(0)
            out = np.zeros(6, dtype=np.float64)
            fh.read(out, 6, dt.DOUBLE)
            assert list(out) == [0, 1, 2, 3, 0, 1]
            fh.close()

        spmd(1, worker)

    def test_seek_modes(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.set_view(0, dt.INT, dt.INT)
            fh.write_at(0, np.zeros(10, dtype=np.int32), 10, dt.INT)
            fh.seek(4, SEEK_SET)
            assert fh.tell() == 4
            fh.seek(2, SEEK_CUR)
            assert fh.tell() == 6
            fh.seek(-1, SEEK_END)
            assert fh.tell() == 9
            with pytest.raises(IOEngineError):
                fh.seek(-100, SEEK_SET)
            fh.close()

        spmd(1, worker)

    def test_set_view_resets_pointer(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.write(fill_pattern(8))
            assert fh.tell() == 8
            fh.set_view(0, dt.DOUBLE, dt.DOUBLE)
            assert fh.tell() == 0
            fh.close()

        spmd(1, worker)

    def test_shared_pointer_partitions_offsets(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            buf = np.full(4, comm.rank, dtype=np.uint8)
            fh.write_shared(buf)
            fh.close()

        spmd(4, worker)
        data = fs.lookup("/f").contents()
        assert data.size == 16
        # Each rank's 4-byte chunk lands at a distinct offset.
        chunks = sorted(data.reshape(4, 4)[:, 0].tolist())
        assert chunks == [0, 1, 2, 3]

    def test_seek_shared(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.seek_shared(8)
            if comm.rank == 0:
                fh.write_shared(fill_pattern(4, 9))
            fh.close()

        spmd(2, worker)
        assert fs.lookup("/f").size == 12

    def test_get_byte_offset(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            ft = dt.vector(4, 1, 2, dt.DOUBLE)
            fh.set_view(16, dt.DOUBLE, ft)
            assert fh.get_byte_offset(0) == 16
            assert fh.get_byte_offset(1) == 32
            # etype 4 = start of the next filetype instance
            # (extent = (3*2+1)*8 = 56 bytes)
            assert fh.get_byte_offset(4) == 16 + 56
            fh.close()

        spmd(1, worker)


class TestSizeManagement:
    def test_get_set_size(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.set_size(100)
            assert fh.get_size() == 100
            fh.set_size(10)
            assert fh.get_size() == 10
            fh.close()

        spmd(2, worker)

    def test_preallocate_never_shrinks(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.set_size(100)
            fh.preallocate(50)
            assert fh.get_size() == 100
            fh.preallocate(200)
            assert fh.get_size() == 200
            fh.close()

        spmd(2, worker)

    def test_nonblocking_requests_complete(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            req = fh.iwrite_at(0, fill_pattern(8))
            assert req.test()
            req.wait()
            out = np.zeros(8, np.uint8)
            fh.iread_at(0, out).wait()
            assert (out == fill_pattern(8)).all()
            fh.close()

        spmd(1, worker)

    def test_access_must_be_whole_etypes(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.set_view(0, dt.DOUBLE, dt.DOUBLE)
            with pytest.raises(IOEngineError):
                fh.write(np.zeros(3, np.uint8), 3, dt.BYTE)
            fh.close()

        spmd(1, worker)

"""The causal graph: critical-path bounds, wait attribution, and the
cross-process merge of span ids and edges.

The pinned invariants (see ``repro.obs.causal``): the critical path of
a traced run is **≤ the wall time** (paths accumulate disjoint forward
intervals) and **≥ the max per-rank self time** (each rank's own chain
is a candidate path); the graph is acyclic by construction; and the
graph *structure* — event kinds and matched keys, never timestamps —
is deterministic across runs of the same program.
"""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd
from repro.mpi.proc import run_spmd_proc
from repro.obs import causal, trace

#: Small buffer + pipelining: many rounds, background window I/O.
PIPE = Hints(cb_buffer_size=64, cb_pipeline="on")
SERIAL = Hints(cb_buffer_size=64, cb_pipeline="off")

EPS = 1e-6


@pytest.fixture(autouse=True)
def clean_tracer():
    prev = trace.set_tracing(False)
    trace.TRACER.clear()
    yield
    trace.set_tracing(prev)
    trace.TRACER.clear()


def traced_collective(engine, hints, nprocs=4):
    """One traced pipelined collective write+read on the sim runtime."""
    trace.set_tracing(True)
    trace.TRACER.clear()
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        ft = dt.vector(32, 4, 4 * comm.size, dt.BYTE)
        fh.set_view(comm.rank * 4, dt.BYTE, ft)
        buf = np.full(128, comm.rank + 1, dtype=np.uint8)
        fh.write_at_all(0, buf)
        out = np.zeros(128, dtype=np.uint8)
        fh.read_at_all(0, out)
        assert np.array_equal(out, buf)
        fh.close()

    run_spmd(nprocs, worker)
    return causal.build_graph()


class TestCriticalPath:
    @pytest.mark.parametrize("engine", ["list_based", "listless"])
    def test_bounds_pipelined_collective(self, engine):
        g = traced_collective(engine, PIPE)
        assert g.check_acyclic()
        cp = g.critical_path()
        assert cp["wall"] > 0.0
        assert cp["length"] <= cp["wall"] + EPS, cp
        assert cp["length"] >= cp["max_self"] - EPS, cp
        assert cp["segments"]
        # Segments walk forward in time.
        for a, b in zip(cp["segments"], cp["segments"][1:]):
            assert b["t1"] >= a["t0"] - EPS

    def test_wait_report_consistent(self):
        g = traced_collective("listless", PIPE)
        rep = g.wait_report()
        assert rep["wall"] > 0.0
        induced_total = sum(s for _r, s in rep["stragglers"])
        by_peer_total = 0.0
        for r, row in rep["per_rank"].items():
            assert row["wall"] <= rep["wall"] + EPS
            assert row["self"] + row["wait"] <= row["wall"] + EPS
            assert row["wait"] >= sum(row["by_class"].values()) - EPS
            by_peer_total += sum(row["by_peer"].values())
        # Every attributed wait names a blocker, and vice versa.
        assert induced_total == pytest.approx(by_peer_total)

    def test_exchange_waits_fold_into_rounds(self):
        g = traced_collective("listless", SERIAL)
        rep = g.wait_report()
        # The windowed schedule runs several exchange rounds; waits on
        # round-tagged p2p traffic must land in the per-round table.
        if any(row["by_class"]["exchange"] > 0.0
               for row in rep["per_rank"].values()):
            assert rep["rounds"]
            for row in rep["rounds"].values():
                assert row["skew"] <= row["exchange_wait"] + EPS


def _p2p_worker(comm):
    """Deterministic p2p + collective pattern for the proc tests."""
    with trace.span("work.step"):
        if comm.rank == 0:
            for dst in range(1, comm.size):
                comm.send(dst, np.arange(32, dtype=np.uint8), tag=5)
        else:
            comm.recv(0, tag=5)
    comm.allgather(comm.rank)
    comm.barrier()
    return True


class TestProcMerge:
    """4 real rank processes: ids/edges must ship back to the parent
    intact and merge into one matched, acyclic graph."""

    def _run(self):
        trace.set_tracing(True)
        trace.TRACER.clear()
        run_spmd_proc(4, _p2p_worker, timeout=60.0)
        return causal.build_graph()

    def test_edges_ship_and_match(self):
        g = self._run()
        assert sorted(g.ranks) == [0, 1, 2, 3]
        edges = g.edges
        assert {e.rank for e in edges} == {0, 1, 2, 3}
        sends = {e.key for e in edges if e.kind == "send"}
        recvs = [e for e in edges if e.kind == "recv"]
        assert len(recvs) >= 3
        for e in recvs:
            assert e.key in sends, e
        assert g.unmatched == 0
        assert g.check_acyclic()
        # Span ids survived the process hop: real ids, tree links.
        spans = [s for s in g.spans if s.rank != 0 or s.name != "spmd.rank"]
        assert all(s.sid >= 0 for s in g.spans)
        by_rank_sids = {}
        for s in g.spans:
            by_rank_sids.setdefault(s.rank, set()).add(s.sid)
        for r, sids in by_rank_sids.items():
            assert len(sids) == sum(1 for s in g.spans if s.rank == r)
        assert spans  # the worker's own spans arrived

    def test_structure_deterministic_across_runs(self):
        a = self._run().structure()
        b = self._run().structure()
        assert a == b
        assert a["matched"]


class TestSimStructure:
    def test_serial_collective_structure_deterministic(self):
        a = traced_collective("listless", SERIAL, nprocs=2).structure()
        b = traced_collective("listless", SERIAL, nprocs=2).structure()
        assert a == b

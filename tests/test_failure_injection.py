"""Failure injection: a rank failing mid-I/O must never deadlock the
world, locks must be released on error paths, and device faults must
propagate as exceptions, not corruption.  On the proc backend the
failures are real — a SIGKILLed rank process must surface as a
:class:`ReproError` on the survivors within the runtime timeout, never
as a hang."""

import json
import os
import signal

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.noncontig import build_noncontig_filetype
from repro.errors import (
    FileSystemError,
    IOEngineError,
    MPIRuntimeError,
    ReproError,
)
from repro.fs import (
    DeviceModel,
    ShardedFileSystem,
    SimFileSystem,
    StripingConfig,
)
from repro.fs.simfile import SimFile
from repro.io import File, MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd
from repro.mpi.proc import run_spmd_proc
from repro.mpi.runtime import Runtime

ENGINES = ["listless", "list_based"]


class FlakyFile(SimFile):
    """A SimFile whose n-th write (or read) raises."""

    def __init__(self, *a, fail_after_writes=None, fail_after_reads=None,
                 **kw):
        super().__init__(*a, **kw)
        self._writes_left = fail_after_writes
        self._reads_left = fail_after_reads

    def pwrite(self, offset, data):
        if self._writes_left is not None:
            if self._writes_left == 0:
                raise FileSystemError("injected write fault")
            self._writes_left -= 1
        return super().pwrite(offset, data)

    def pread_into(self, offset, out):
        if self._reads_left is not None:
            if self._reads_left == 0:
                raise FileSystemError("injected read fault")
            self._reads_left -= 1
        return super().pread_into(offset, out)


def flaky_fs(path="/f", **kw) -> SimFileSystem:
    fs = SimFileSystem()
    f = FlakyFile(path, DeviceModel(), StripingConfig(), **kw)
    fs._files[path] = f
    return fs


class TestDeviceFaults:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_write_fault_propagates_no_deadlock(self, engine):
        fs = flaky_fs(fail_after_writes=0)

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR, engine=engine)
            ft = build_noncontig_filetype(comm.size, comm.rank, 4, 8)
            fh.set_view(0, dt.BYTE, ft)
            fh.write_at_all(0, np.zeros(32, dtype=np.uint8))
            fh.close()

        with pytest.raises(FileSystemError, match="injected write fault"):
            run_spmd(4, worker)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_read_fault_propagates_no_deadlock(self, engine):
        fs = flaky_fs(fail_after_reads=1)
        fs.lookup("/f").truncate(1024)

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR, engine=engine)
            ft = build_noncontig_filetype(comm.size, comm.rank, 4, 16)
            fh.set_view(0, dt.BYTE, ft)
            out = np.zeros(64, dtype=np.uint8)
            fh.read_at_all(0, out)
            fh.close()

        with pytest.raises(FileSystemError, match="injected read fault"):
            run_spmd(4, worker)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_locks_released_after_write_fault(self, engine):
        """The sieving write path holds a range lock when the device
        faults; the lock must be released so later I/O proceeds."""
        fs = flaky_fs(fail_after_writes=0)
        f = fs.lookup("/f")

        def broken(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR, engine=engine)
            fh.set_view(0, dt.BYTE, dt.vector(8, 1, 2, dt.BYTE))
            fh.write_at(0, np.zeros(8, dtype=np.uint8))
            fh.close()

        with pytest.raises(FileSystemError):
            run_spmd(1, broken)
        # Device healed: nothing should block now.
        f._writes_left = None

        def healthy(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR, engine=engine)
            fh.set_view(0, dt.BYTE, dt.vector(8, 1, 2, dt.BYTE))
            fh.write_at(0, np.full(8, 5, dtype=np.uint8))
            fh.close()

        run_spmd(1, healthy)
        assert (f.contents()[::2] == 5).all()


class TestPipelinedFaults:
    """Device faults landing on the pipeline worker thread must surface
    on the main thread at the next drain — as the injected exception,
    never as a hang or a corrupted staging table."""

    PIPE = Hints(cb_buffer_size=64, cb_pipeline="on")

    @pytest.mark.parametrize("engine", ENGINES)
    def test_write_fault_mid_pipeline_no_hang(self, engine):
        fs = flaky_fs(fail_after_writes=2)

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR, engine=engine,
                           hints=self.PIPE)
            ft = build_noncontig_filetype(comm.size, comm.rank, 4, 64)
            fh.set_view(0, dt.BYTE, ft)
            fh.write_at_all(0, np.zeros(256, dtype=np.uint8))
            fh.close()

        with pytest.raises(FileSystemError, match="injected write fault"):
            run_spmd(4, worker)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_read_fault_mid_pipeline_no_hang(self, engine):
        fs = flaky_fs(fail_after_reads=2)
        fs.lookup("/f").truncate(4096)

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDWR, engine=engine,
                           hints=self.PIPE)
            ft = build_noncontig_filetype(comm.size, comm.rank, 4, 64)
            fh.set_view(0, dt.BYTE, ft)
            out = np.zeros(256, dtype=np.uint8)
            fh.read_at_all(0, out)
            fh.close()

        with pytest.raises(FileSystemError, match="injected read fault"):
            run_spmd(4, worker)


class TestRankFailures:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_one_rank_mode_error_unblocks_collective(self, engine):
        """Rank 1 hits a local error before its collective call; the
        others are already inside the collective and must be released."""
        fs = SimFileSystem()
        fs.create("/f")

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDONLY, engine=engine)
            if comm.rank == 1:
                # Erroneous local write on a read-only handle.
                fh.write_at(0, np.zeros(4, dtype=np.uint8))
            out = np.zeros(4, dtype=np.uint8)
            fh.read_at_all(0, out)
            fh.close()

        with pytest.raises(IOEngineError, match="not opened for writing"):
            run_spmd(3, worker)

    def test_open_failure_on_root_reaches_all(self):
        fs = SimFileSystem()  # no file, no MODE_CREATE

        def worker(comm):
            File.open(comm, fs, "/missing", MODE_RDWR)

        with pytest.raises(FileSystemError):
            run_spmd(4, worker)


def _killed_in_collective(comm):
    if comm.rank == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    comm.allgather(np.arange(256, dtype=np.uint8))
    comm.barrier()
    return True


def _killed_before_send(comm):
    if comm.rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    if comm.rank == 0:
        comm.recv(source=1)  # rank 1 is dead: must time out, not hang
    return True


def _raises_mid_collective(comm):
    if comm.rank == 1:
        raise ValueError("injected rank failure")
    comm.allgather(comm.rank)
    comm.barrier()
    return True


class TestProcRankDeath:
    """Real rank-process deaths under the proc backend.

    A rank SIGKILLed mid-collective cannot run *any* error path — the
    parent must notice the silent exit and abort the survivors, and
    every blocked wait (barrier, board read, queue recv) carries a
    deadline so the failure surfaces as a ReproError within the
    runtime timeout, never as a hang."""

    def test_sigkill_mid_collective_surfaces_promptly(self):
        with pytest.raises(ReproError, match="rank 2 died"):
            run_spmd_proc(4, _killed_in_collective, timeout=20.0)

    def test_sigkill_blocked_recv_times_out(self):
        with pytest.raises(MPIRuntimeError):
            run_spmd_proc(2, _killed_before_send, timeout=5.0)

    def test_rank_exception_propagates_across_processes(self):
        """A raising rank's exception (not a timeout shadow) wins as the
        reported failure."""
        with pytest.raises(ValueError, match="injected rank failure"):
            run_spmd_proc(3, _raises_mid_collective, timeout=20.0)


def _killed_after_rounds(comm):
    from repro.obs import flight

    flight.note_round(0, 3)
    comm.barrier()
    flight.note_round(1, 3)
    if comm.rank == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    comm.barrier()
    comm.allgather(comm.rank)
    return True


class TestFlightRecorder:
    """The crash flight recorder: a dying world must leave one parseable
    JSON artifact naming the failed rank and its last completed round —
    including ranks that died by SIGKILL and never ran an error path
    (their last round survives in the shared-memory beacon)."""

    def test_sigkill_writes_flight_record(self, tmp_path, monkeypatch):
        out = tmp_path / "flight.json"
        monkeypatch.setenv("REPRO_FLIGHT", str(out))
        with pytest.raises(ReproError, match="rank 2 died"):
            run_spmd_proc(4, _killed_after_rounds, timeout=20.0)
        doc = json.loads(out.read_text())
        assert doc["flight_version"] == 1
        assert doc["reason"] == "abort"
        assert doc["backend"] == "proc"
        assert doc["world_size"] == 4
        assert doc["failed_rank"] == 2
        assert 2 in doc["failed_ranks"]
        # The dead rank's beacon preserved its last completed round.
        assert doc["last_rounds"]["2"] == 1

    def test_sim_abort_writes_record_with_error(self, tmp_path,
                                                monkeypatch):
        out = tmp_path / "flight.json"
        monkeypatch.setenv("REPRO_FLIGHT", str(out))

        def worker(comm):
            from repro.obs import flight
            flight.note("collective", write=True, rounds=2)
            if comm.rank == 1:
                raise ValueError("sim rank blew up")
            comm.barrier()

        with pytest.raises(ValueError, match="sim rank blew up"):
            run_spmd(2, worker)
        doc = json.loads(out.read_text())
        assert doc["reason"] == "abort"
        assert doc["backend"] == "sim"
        assert doc["error"] == {"type": "ValueError",
                                "message": "sim rank blew up"}
        crumbs = [c for ent in doc["ranks"].values()
                  for c in ent["breadcrumbs"]]
        assert any(c[1] == "collective" for c in crumbs)

    def test_no_file_without_env(self, tmp_path, monkeypatch):
        from repro.obs import flight

        monkeypatch.delenv("REPRO_FLIGHT", raising=False)
        monkeypatch.chdir(tmp_path)

        def worker(comm):
            raise RuntimeError("quiet failure")

        with pytest.raises(RuntimeError):
            run_spmd(1, worker)
        assert list(tmp_path.iterdir()) == []
        # ... but the record is still stashed in memory for inspection.
        rec = flight.last_record()
        assert rec is not None and rec["reason"] == "abort"


def _interleave_view(size, rank):
    ft = dt.resized(dt.vector(6, 8, size * 8, dt.BYTE), 0, 6 * size * 8)
    return ft, rank * 8


class TestShardServerDeath:
    """SIGKILL a shard server mid-workload: the next touch of the dead
    shard must abort the world with a :class:`FileSystemError` naming
    the shard — promptly, never as a hang — the crash-safe beacon must
    still report the shard's last served round, the flight recorder must
    carry a ``ship_dead_shard`` breadcrumb, and no residual byte-range
    locks may survive on the other shard servers."""

    def test_sigkill_mid_collective_write_aborts_world(
            self, tmp_path, monkeypatch):
        out = tmp_path / "flight.json"
        monkeypatch.setenv("REPRO_FLIGHT", str(out))
        fs = ShardedFileSystem(str(tmp_path / "sh"), nshards=3,
                               stripe_size=16)
        victim = 1
        try:
            def worker(comm, fs):
                fh = File.open(comm, fs, "/w.out",
                               MODE_CREATE | MODE_RDWR, engine="listless",
                               hints=Hints(ship_protocol="list"))
                ft, disp = _interleave_view(comm.size, comm.rank)
                fh.set_view(disp, dt.BYTE, ft)
                buf = np.full(ft.size, 1 + comm.rank, dtype=np.uint8)
                fh.write_at_all(0, buf)  # warm-up: every shard serves
                comm.barrier()
                if comm.rank == 0:
                    os.kill(fs.server_pid(victim), signal.SIGKILL)
                comm.barrier()
                fh.write_at_all(ft.size, buf)  # touches the dead shard
                fh.close()

            with pytest.raises(FileSystemError,
                               match=f"shard {victim} server dead"):
                Runtime("sim").run(2, worker, fs)

            # The beacon survived the SIGKILL with a served round count.
            assert fs.shard_last_round(victim) >= 0
            # No residual locks on the surviving shard servers.
            for k in (0, 2):
                held = fs.shard_locks_held(k, "/w.out")
                assert held["ranges"] == [], (k, held)
                assert held["backing"] == [], (k, held)
            doc = json.loads(out.read_text())
            assert doc["reason"] == "abort"
            crumbs = [c for ent in doc["ranks"].values()
                      for c in ent["breadcrumbs"]]
            assert any(c[1] == "ship_dead_shard" for c in crumbs), crumbs
        finally:
            fs.close()

    def test_sigkill_mid_pipelined_read_aborts_world(self, tmp_path):
        fs = ShardedFileSystem(str(tmp_path / "shp"), nshards=3,
                               stripe_size=16)
        victim = 2
        try:
            def worker(comm, fs):
                fh = File.open(
                    comm, fs, "/r.out", MODE_CREATE | MODE_RDWR,
                    engine="listless",
                    hints=Hints(ship_protocol="list", cb_buffer_size=64,
                                cb_pipeline="on"))
                ft, disp = _interleave_view(comm.size, comm.rank)
                fh.set_view(disp, dt.BYTE, ft)
                buf = np.full(ft.size * 2, 1 + comm.rank, dtype=np.uint8)
                fh.write_at_all(0, buf)
                comm.barrier()
                if comm.rank == 0:
                    os.kill(fs.server_pid(victim), signal.SIGKILL)
                comm.barrier()
                got = np.zeros(ft.size * 2, dtype=np.uint8)
                fh.read_at_all(0, got)  # pipelined rounds hit the shard
                fh.close()

            with pytest.raises(FileSystemError,
                               match=f"shard {victim} server dead"):
                Runtime("sim").run(4, worker, fs)
        finally:
            fs.close()

    def test_locks_rolled_back_when_shard_dies_mid_rmw(self, tmp_path):
        """A sieved (rmw) write locks shards in ascending order; when a
        middle shard turns out dead the already-acquired ranges must be
        rolled back, or a second writer deadlocks on them."""
        fs = ShardedFileSystem(str(tmp_path / "shl"), nshards=3,
                               stripe_size=16)
        victim = 1
        try:
            def worker(comm, fs):
                fh = File.open(comm, fs, "/l.out",
                               MODE_CREATE | MODE_RDWR, engine="listless")
                # sparse view over [0, 47): rmw window spans shards 0..2
                fh.set_view(0, dt.BYTE, dt.vector(24, 1, 2, dt.BYTE))
                if comm.rank == 0:
                    os.kill(fs.server_pid(victim), signal.SIGKILL)
                fh.write_at(0, np.full(24, 5, dtype=np.uint8))
                fh.close()

            with pytest.raises(FileSystemError,
                               match=f"shard {victim} server dead"):
                Runtime("sim").run(1, worker, fs)

            for k in (0, 2):
                held = fs.shard_locks_held(k, "/l.out")
                assert held["ranges"] == [], (k, held)
                assert held["backing"] == [], (k, held)
        finally:
            fs.close()

    def test_sigkill_proc_runtime_surfaces_promptly(self, tmp_path):
        """Under the multi-process runtime every rank holds its own
        connections to the shard servers; a dead shard must surface as
        the original FileSystemError on the survivors, not a timeout
        shadow or a hang."""
        fs = ShardedFileSystem(str(tmp_path / "shd"), nshards=2,
                               stripe_size=16)
        try:
            def worker(comm, fs):
                fh = File.open(comm, fs, "/p.out",
                               MODE_CREATE | MODE_RDWR, engine="listless",
                               hints=Hints(ship_protocol="dtype"))
                ft, disp = _interleave_view(comm.size, comm.rank)
                fh.set_view(disp, dt.BYTE, ft)
                buf = np.full(ft.size, 7, dtype=np.uint8)
                fh.write_at_all(0, buf)
                comm.barrier()
                if comm.rank == 0:
                    os.kill(fs.server_pid(0), signal.SIGKILL)
                comm.barrier()
                fh.write_at_all(ft.size, buf)
                fh.close()

            with pytest.raises(FileSystemError,
                               match="shard 0 server dead"):
                Runtime("proc").run(2, worker, fs)
        finally:
            fs.close()


class TestShortReads:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_contiguous_read_past_eof_raises(self, engine):
        fs = SimFileSystem()
        fs.create("/f").pwrite(0, np.zeros(10, dtype=np.uint8))

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDONLY, engine=engine)
            out = np.zeros(100, dtype=np.uint8)
            fh.read_at(0, out)
            fh.close()

        with pytest.raises(IOEngineError, match="short read"):
            run_spmd(1, worker)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sieved_read_past_eof_zero_fills(self, engine):
        """Non-contiguous reads use sieving windows; past-EOF regions
        read as zero (MPI leaves them undefined; deterministic zeros make
        the behaviour testable)."""
        fs = SimFileSystem()
        fs.create("/f").pwrite(0, np.full(4, 9, dtype=np.uint8))

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_RDONLY, engine=engine)
            fh.set_view(0, dt.BYTE, dt.vector(8, 2, 4, dt.BYTE))
            out = np.full(16, 7, dtype=np.uint8)
            fh.read_at(0, out)
            assert (out[:2] == 9).all()
            assert (out[2:] == 0).all()
            fh.close()

        run_spmd(1, worker)

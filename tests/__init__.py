"""Test suite for the repro package (see conftest.py for shared strategies)."""

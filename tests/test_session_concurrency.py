"""Concurrent client worlds in one process: byte-identity to serial.

The point of the session refactor: two SPMD worlds, each with several
open files, run *simultaneously* in one process (each under its own
:class:`~repro.session.IOSession`) and produce exactly the file bytes
a serialized execution produces — no shared planner caches, compiled
programs, counters or flight records bleeding between them.

Tier-1 runs the small matrix; the ``soak``-marked sweep widens worlds,
engines and repetition.  The proc runtime gets the same treatment
(worlds as process groups are isolated by construction; the test pins
the *driver-side* concurrency — two run_spmd_proc calls in flight).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import OsFileSystem, SimFileSystem
from repro.io import MODE_CREATE, MODE_RDWR
from repro.io.file_handle import File
from repro.mpi import run_spmd
from repro.session import IOSession

NFILES = 2


def _pattern(seed: int, fidx: int, rank: int, n: int) -> np.ndarray:
    out = np.arange(n, dtype=np.int64) * (seed + 2) + fidx * 31 + rank * 7
    return (out % 256).astype(np.uint8)


def _world_worker(comm, fs, seed, engine, nblk=16, blk=8):
    """Open NFILES files, interleaved vector view each, collective
    write + read-back.  Returns per-file read-back arrays."""
    got = []
    for fidx in range(NFILES):
        fh = File.open(comm, fs, f"/w{fidx}", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = dt.vector(nblk, blk, blk * comm.size, dt.BYTE)
        fh.set_view(comm.rank * blk, dt.BYTE, ft)
        data = _pattern(seed, fidx, comm.rank, nblk * blk)
        fh.write_at_all(0, data)
        back = np.zeros_like(data)
        fh.read_at_all(0, back)
        fh.close()
        got.append(back)
    return got


def _file_images(fs):
    return {
        f"/w{i}": fs.lookup(f"/w{i}").contents().copy()
        for i in range(NFILES)
    }


def _run_world_sim(seed, engine, size):
    fs = SimFileSystem()
    sess = IOSession(f"world-{seed}")
    results = run_spmd(size, _world_worker, fs, seed, engine,
                       session=sess)
    return results, _file_images(fs), sess


class TestSimConcurrentWorlds:
    @pytest.mark.parametrize("engine", ["listless", "list_based"])
    def test_two_worlds_two_files_byte_identical(self, engine):
        serial = {
            seed: _run_world_sim(seed, engine, 2)[1] for seed in (3, 4)
        }
        out = {}
        errs = []

        def drive(seed):
            try:
                _res, images, _s = _run_world_sim(seed, engine, 2)
                out[seed] = images
            except BaseException as exc:  # noqa: BLE001
                errs.append(exc)

        threads = [threading.Thread(target=drive, args=(s,))
                   for s in (3, 4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errs, errs
        for seed in (3, 4):
            for path in serial[seed]:
                assert np.array_equal(out[seed][path],
                                      serial[seed][path]), \
                    f"world {seed} file {path} diverged"

    def test_concurrent_worlds_isolate_counters(self):
        boxes = {}
        errs = []

        def drive(seed):
            try:
                _res, _img, sess = _run_world_sim(seed, "listless", 2)
                boxes[seed] = sess.metrics.snapshot()
            except BaseException as exc:  # noqa: BLE001
                errs.append(exc)

        threads = [threading.Thread(target=drive, args=(s,))
                   for s in (5, 6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errs, errs
        for seed in (5, 6):
            snap = boxes[seed]
            # Each world saw exactly its own files...
            assert {f["path"] for f in snap["files"]} == \
                {f"/w{i}" for i in range(NFILES)}
            # ...and its own kernel activity (nonzero, not doubled by
            # the sibling world: both ran the identical workload, so
            # identical counts prove isolation).
            assert snap["global"]["blockprog_translations"] == \
                boxes[5]["global"]["blockprog_translations"]

    @pytest.mark.soak
    @pytest.mark.parametrize("engine", ["listless", "list_based"])
    @pytest.mark.parametrize("size", [2, 4])
    @pytest.mark.parametrize("nworlds", [2, 4])
    def test_world_sweep(self, engine, size, nworlds):
        seeds = list(range(10, 10 + nworlds))
        serial = {
            s: _run_world_sim(s, engine, size)[1] for s in seeds
        }
        out = {}
        errs = []

        def drive(seed):
            try:
                out[seed] = _run_world_sim(seed, engine, size)[1]
            except BaseException as exc:  # noqa: BLE001
                errs.append(exc)

        threads = [threading.Thread(target=drive, args=(s,))
                   for s in seeds]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errs, errs
        for s in seeds:
            for path in serial[s]:
                assert np.array_equal(out[s][path], serial[s][path])


class TestProcConcurrentWorlds:
    def _run_world_proc(self, tmp_path, seed, size=2):
        from repro.mpi.proc import run_spmd_proc

        fs = OsFileSystem(str(tmp_path / f"world-{seed}"))
        run_spmd_proc(size, _world_worker, fs, seed, "listless",
                      timeout=60.0)
        return _file_images(fs)

    def test_two_proc_worlds_byte_identical(self, tmp_path):
        serial = {
            seed: self._run_world_proc(tmp_path / "serial", seed)
            for seed in (3, 4)
        }
        out = {}
        errs = []

        def drive(seed):
            try:
                out[seed] = self._run_world_proc(
                    tmp_path / "conc", seed)
            except BaseException as exc:  # noqa: BLE001
                errs.append(exc)

        threads = [threading.Thread(target=drive, args=(s,))
                   for s in (3, 4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errs, errs
        for seed in (3, 4):
            for path in serial[seed]:
                assert np.array_equal(out[seed][path],
                                      serial[seed][path])

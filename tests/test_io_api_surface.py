"""Remaining MPI_File API surface and the footnote-4 file-system mode."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.errors import IOEngineError
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd


class TestPositionQueries:
    def test_get_position_tracks_pointer(self):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
            fh.set_view(0, dt.DOUBLE, dt.DOUBLE)
            assert fh.get_position() == 0
            fh.write(np.zeros(3, dtype=np.float64), 3, dt.DOUBLE)
            assert fh.get_position() == 3
            fh.close()

        run_spmd(1, worker)

    def test_get_position_shared(self):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
            fh.write_shared(np.zeros(4, dtype=np.uint8))
            comm.barrier()
            assert fh.get_position_shared() == 8
            fh.close()

        run_spmd(2, worker)

    def test_get_amode(self):
        fs = SimFileSystem()

        def worker(comm):
            amode = MODE_CREATE | MODE_RDWR
            fh = File.open(comm, fs, "/f", amode)
            assert fh.get_amode() == amode
            fh.close()

        run_spmd(1, worker)


class TestInfo:
    def test_get_info_returns_hints(self):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           hints=Hints(cb_nodes=2))
            assert fh.get_info().cb_nodes == 2
            fh.close()

        run_spmd(1, worker)

    def test_set_info_replaces(self):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
            fh.set_info({"cb_buffer_size": 65536})
            assert fh.get_info().cb_buffer_size == 65536
            fh.set_info(hints=Hints(cb_nodes=1))
            assert fh.get_info().cb_nodes == 1
            with pytest.raises(IOEngineError):
                fh.set_info({"cb_nodes": 1}, hints=Hints())
            fh.close()

        run_spmd(2, worker)

    def test_get_type_extent(self):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
            assert fh.get_type_extent(dt.vector(4, 2, 5, dt.DOUBLE)) == 136
            fh.close()

        run_spmd(1, worker)


class TestFootnote4Mode:
    """File systems that require ol-lists even under listless I/O."""

    def test_listless_creates_lists_on_nfs_like_fs(self):
        fs = SimFileSystem(requires_ol_lists=True)
        ft_box = []

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine="listless")
            ft = dt.vector(64, 1, 2, dt.DOUBLE)
            if comm.rank == 0:
                ft_box.append(ft)
            fh.set_view(0, dt.DOUBLE, ft)
            fh.write_at(0, np.zeros(64, dtype=np.float64), 64, dt.DOUBLE)
            fh.close()

        run_spmd(1, worker)
        # The list was created (and cached on the type)...
        assert getattr(ft_box[0], "_ollist_cache", None) is not None
        assert len(ft_box[0]._ollist_cache) == 64

    def test_listless_skips_lists_on_normal_fs(self):
        fs = SimFileSystem()
        ft_box = []

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine="listless")
            ft = dt.vector(64, 1, 2, dt.DOUBLE)
            if comm.rank == 0:
                ft_box.append(ft)
            fh.set_view(0, dt.DOUBLE, ft)
            fh.write_at(0, np.zeros(64, dtype=np.float64), 64, dt.DOUBLE)
            fh.close()

        run_spmd(1, worker)
        assert getattr(ft_box[0], "_ollist_cache", None) is None

    def test_io_results_identical_either_way(self):
        imgs = {}
        for nfs in (False, True):
            fs = SimFileSystem(requires_ol_lists=nfs)

            def worker(comm):
                fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                               engine="listless")
                ft = dt.vector(8, 2, 4, dt.DOUBLE)
                fh.set_view(0, dt.DOUBLE, ft)
                fh.write_at(0, np.arange(16, dtype=np.float64), 16,
                            dt.DOUBLE)
                fh.close()

            run_spmd(1, worker)
            imgs[nfs] = fs.lookup("/f").contents()
        assert (imgs[True] == imgs[False]).all()

"""Compact fileviews: navigation through a tiled view, cache mechanics."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.core.fileview_cache import CompactFileview, FileviewCache
from repro.datatypes.packing import typemap_blocks
from repro.errors import FFError


def brute_view_blocks(ft, disp, ninst):
    """Absolute (offset, length) blocks of `ninst` tiled instances."""
    out = []
    for inst in range(ninst):
        base = disp + inst * ft.extent
        for off, ln in typemap_blocks(ft, 1):
            out.append((base + off, ln))
    return out


@pytest.fixture
def cv():
    ft = dt.vector(4, 2, 5, dt.DOUBLE)  # blocks of 16B at 0/40/80/120
    return CompactFileview.from_view(100, dt.DOUBLE, ft)


class TestNavigation:
    def test_abs_of_data_start(self, cv):
        assert cv.abs_of_data(0) == 100
        assert cv.abs_of_data(16) == 140
        assert cv.abs_of_data(64) == 100 + 136  # next instance start

    def test_abs_of_data_end(self, cv):
        assert cv.abs_of_data(16, end=True) == 116
        assert cv.abs_of_data(64, end=True) == 236
        assert cv.abs_of_data(0, end=True) == 100

    def test_data_of_abs_roundtrip(self, cv):
        for d in range(0, 200, 7):
            a = cv.abs_of_data(d)
            assert cv.data_of_abs(a) == d

    def test_data_of_abs_before_disp(self, cv):
        assert cv.data_of_abs(0) == 0
        assert cv.data_of_abs(100) == 0

    def test_data_in_range_brute_force(self, cv):
        blocks = brute_view_blocks(cv.filetype, 100, 4)
        for lo in range(90, 500, 13):
            for span in (1, 10, 100):
                hi = lo + span
                want = sum(
                    max(0, min(hi, b + ln) - max(lo, b))
                    for b, ln in blocks
                )
                assert cv.data_in_range(lo, hi) == want, (lo, hi)

    def test_blocks_for_data_match_brute(self, cv):
        offs, lens = cv.blocks_for_data(0, 64 * 2)  # two instances
        got = list(zip(offs.tolist(), lens.tolist()))
        assert got == brute_view_blocks(cv.filetype, 100, 2)

    def test_blocks_for_data_partial(self, cv):
        offs, lens = cv.blocks_for_data(8, 24)
        assert list(zip(offs.tolist(), lens.tolist())) == [
            (108, 8), (140, 8),
        ]


class TestCompactness:
    def test_wire_size_independent_of_nblock(self):
        small = CompactFileview.from_view(
            0, dt.BYTE, dt.vector(4, 1, 2, dt.BYTE)
        )
        huge = CompactFileview.from_view(
            0, dt.BYTE, dt.vector(4 * 10**6, 1, 2, dt.BYTE)
        )
        assert small.wire_bytes == huge.wire_bytes

    def test_receiver_rebuilds_lazily(self):
        src = CompactFileview.from_view(
            8, dt.DOUBLE, dt.vector(3, 1, 2, dt.DOUBLE)
        )
        # Simulate the wire: only the trees travel.
        dst = CompactFileview(
            disp=src.disp,
            etype_tree=src.etype_tree,
            filetype_tree=src.filetype_tree,
        )
        assert dst.filetype.size == src.filetype.size
        assert dst.abs_of_data(8) == src.abs_of_data(8)


class TestCache:
    def test_install_and_lookup(self):
        cache = FileviewCache()
        views = {
            r: CompactFileview.from_view(
                r, dt.BYTE, dt.vector(2, 1, 2, dt.BYTE)
            )
            for r in range(3)
        }
        cache.install(views)
        assert len(cache) == 3
        assert cache.view_of(1).disp == 1
        assert cache.exchange_bytes == sum(
            v.wire_bytes for v in views.values()
        )

    def test_missing_rank_raises(self):
        cache = FileviewCache()
        cache.install({})
        with pytest.raises(FFError):
            cache.view_of(0)

    def test_reinstall_replaces(self):
        cache = FileviewCache()
        v0 = CompactFileview.from_view(0, dt.BYTE, dt.BYTE)
        v1 = CompactFileview.from_view(64, dt.BYTE, dt.BYTE)
        cache.install({0: v0})
        cache.install({0: v1})
        assert cache.view_of(0).disp == 64

"""Engine equivalence over hypothesis-generated fileview datatypes.

The structured tests exercise the Fig.-4 / BTIO view families; here
arbitrary monotonic datatype trees become fileviews, with ranks displaced
so their accesses stay disjoint, and both engines must produce identical
files and reads — independent and collective, across window sizes.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.datatypes.validation import validate_filetype
from repro.errors import DatatypeError
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd
from tests.conftest import datatype_trees


def _legal_filetype(t) -> bool:
    try:
        validate_filetype(t, dt.BYTE)
    except DatatypeError:
        return False
    return True


def run_random_view(engine, ftype, collective, bufsize, ninst):
    """Two ranks, same filetype, disjoint displacements; write then read
    ``ninst`` instances; returns (file bytes, reads)."""
    fs = SimFileSystem()
    span = ninst * ftype.extent
    hints = Hints(
        ind_rd_buffer_size=bufsize,
        ind_wr_buffer_size=bufsize,
        cb_buffer_size=bufsize,
    )
    A = ftype.size * ninst
    reads = [None, None]

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        fh.set_view(r * span, dt.BYTE, ftype)
        rng = np.random.default_rng(50 + r)
        buf = rng.integers(0, 256, A, dtype=np.uint8)
        if collective:
            fh.write_at_all(0, buf)
        else:
            fh.write_at(0, buf)
        out = np.zeros(A, dtype=np.uint8)
        if collective:
            fh.read_at_all(0, out)
        else:
            fh.read_at(0, out)
        assert (out == buf).all(), "self-roundtrip failed"
        reads[r] = out
        fh.close()

    run_spmd(2, worker)
    return fs.lookup("/f").contents(), reads


@settings(max_examples=20, deadline=None)
@given(
    datatype_trees().filter(_legal_filetype),
    st.booleans(),
    st.sampled_from([48, 1 << 16]),
    st.integers(1, 3),
)
def test_random_fileviews_engines_agree(ftype, collective, bufsize, ninst):
    assume(ftype.size >= 1)
    file_a, _ = run_random_view("listless", ftype, collective, bufsize,
                                ninst)
    file_b, _ = run_random_view("list_based", ftype, collective, bufsize,
                                ninst)
    assert file_a.size == file_b.size
    assert (file_a == file_b).all()


@settings(max_examples=15, deadline=None)
@given(datatype_trees().filter(_legal_filetype))
def test_random_fileview_write_places_bytes_per_typemap(ftype):
    """Independent single-rank write must land bytes exactly where the
    type map says (oracle-level check of the whole I/O stack)."""
    fs = SimFileSystem()
    A = ftype.size
    payload = np.arange(A, dtype=np.uint8)

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine="listless")
        fh.set_view(0, dt.BYTE, ftype)
        fh.write_at(0, payload.copy())
        fh.close()

    run_spmd(1, worker)
    data = fs.lookup("/f").contents()
    pos = 0
    for off, ln in ftype.typemap():
        assert (data[off : off + ln] == payload[pos : pos + ln]).all()
        pos += ln

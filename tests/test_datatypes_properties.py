"""Property-based invariants of the datatype engine (hypothesis).

These tie the compositional aggregates (computed in O(descriptor) at
construction) to the ground-truth type map (materialized only here, in
tests): sizes, bounds, Nblock, monotonicity, and contiguity must all
agree with what the type map says.
"""

import numpy as np
from hypothesis import given, settings

from repro import datatypes as dt
from repro.datatypes.packing import pack_typemap, typemap_blocks
from tests.conftest import datatype_trees, fill_pattern

COMMON = dict(max_examples=80, deadline=None)


@settings(**COMMON)
@given(datatype_trees())
def test_size_equals_typemap_total(t):
    assert t.size == sum(ln for _, ln in t.typemap())


@settings(**COMMON)
@given(datatype_trees())
def test_true_bounds_match_typemap(t):
    entries = list(t.typemap())
    assert t.true_lb == min(off for off, _ in entries)
    assert t.true_ub == max(off + ln for off, ln in entries)


@settings(**COMMON)
@given(datatype_trees())
def test_num_blocks_matches_coalesced_typemap(t):
    assert t.num_blocks == len(typemap_blocks(t, 1))


@settings(**COMMON)
@given(datatype_trees())
def test_monotonic_flag_matches_typemap_order(t):
    entries = list(t.typemap())
    sorted_nonoverlap = all(
        a_off + a_len <= b_off
        for (a_off, a_len), (b_off, b_len) in zip(entries, entries[1:])
    )
    if t.is_monotonic:
        assert sorted_nonoverlap
    else:
        assert not sorted_nonoverlap


@settings(**COMMON)
@given(datatype_trees())
def test_contiguous_flag_means_single_full_run(t):
    if t.is_contiguous:
        assert t.num_blocks == 1
        assert t.size == t.extent
        assert t.lb == t.true_lb


@settings(**COMMON)
@given(datatype_trees())
def test_seq_first_last_match_typemap(t):
    entries = list(t.typemap())
    assert t.seq_first == entries[0][0]
    assert t.seq_last_end == entries[-1][0] + entries[-1][1]


@settings(**COMMON)
@given(datatype_trees())
def test_tiling_two_instances_matches_shifted_typemap(t):
    """contiguous(2, t) must place instance 1 at offset t.extent."""
    c = dt.contiguous(2, t)
    one = list(t.typemap())
    two = list(c.typemap())
    assert two[: len(one)] == one
    shifted = [(off + t.extent, ln) for off, ln in one]
    assert two[len(one):] == shifted


@settings(**COMMON)
@given(datatype_trees())
def test_pack_unpack_roundtrip(t):
    span = t.true_ub + 8
    src = fill_pattern(span, seed=11)
    packed = pack_typemap(src, 1, t)
    dst = np.zeros(span, dtype=np.uint8)
    from repro.datatypes.packing import unpack_typemap

    unpack_typemap(packed, dst, 1, t)
    assert (pack_typemap(dst, 1, t) == packed).all()


@settings(**COMMON)
@given(datatype_trees())
def test_resized_changes_only_bounds(t):
    r = dt.resized(t, -8, t.extent + 16)
    assert r.size == t.size
    assert list(r.typemap()) == list(t.typemap())
    assert r.lb == -8
    assert r.extent == t.extent + 16
    assert r.num_blocks == t.num_blocks

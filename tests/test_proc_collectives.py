"""Property tests for the proc backend's shared-memory collectives.

Hypothesis drives the shared-memory data plane (segment wire format,
out-of-band numpy buffers, ragged and zero-length contributions) and the
collective algorithms over it: alltoall round-trips, allgather ordering,
barrier reentrancy.  World sizes stay small — the properties concern
payload shapes, not scheduling scale.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MPIRuntimeError
from repro.mpi import shm
from repro.mpi.runtime import Runtime


def run_proc(size, fn, *args):
    return Runtime("proc").run(size, fn, *args)


# ----------------------------------------------------------------------
# Wire format (no processes needed: same-process write/read round-trip)
# ----------------------------------------------------------------------
payloads = st.recursive(
    st.one_of(
        st.none(),
        st.integers(-(2 ** 40), 2 ** 40),
        st.binary(max_size=64),
        st.text(max_size=32),
        st.builds(
            lambda n, seed: np.random.default_rng(seed).integers(
                0, 256, n, dtype=np.uint8
            ),
            st.integers(0, 512),
            st.integers(0, 2 ** 16),
        ),
    ),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=3),
    ),
    max_leaves=8,
)


def _eq(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and bool((a == b).all())
        )
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    return a == b


@settings(max_examples=40, deadline=None)
@given(payloads)
def test_segment_roundtrip(obj):
    name = "rptest_seg_rt"
    shm.unlink_segment(name)
    shm.write_segment(name, obj)
    try:
        got = shm.read_segment(name)
        assert _eq(got, obj)
    finally:
        shm.unlink_segment(name)


def test_segment_copies_are_writable_and_independent():
    name = "rptest_seg_mut"
    shm.unlink_segment(name)
    src = np.arange(32, dtype=np.uint8)
    shm.write_segment(name, src)
    try:
        a = shm.read_segment(name)
        b = shm.read_segment(name)
        a[...] = 0  # must not raise, must not affect b
        assert (b == src).all()
    finally:
        shm.unlink_segment(name)


def test_stale_segment_raises():
    name = "rptest_seg_stale"
    shm.unlink_segment(name)
    shm.write_segment(name, 1)
    try:
        with pytest.raises(MPIRuntimeError, match="already exists"):
            shm.write_segment(name, 2)
    finally:
        shm.unlink_segment(name)


# ----------------------------------------------------------------------
# Collectives over real processes
# ----------------------------------------------------------------------
def _alltoall_worker(comm, lengths):
    # lengths[src][dst] bytes from src to dst; ragged incl. zero-length.
    me = comm.rank
    out = [
        np.full(lengths[me][dst], (me * comm.size + dst) % 251,
                dtype=np.uint8)
        for dst in range(comm.size)
    ]
    got = comm.alltoall(out)
    for src in range(comm.size):
        want = np.full(lengths[src][me], (src * comm.size + me) % 251,
                       dtype=np.uint8)
        assert got[src].size == want.size
        assert (got[src] == want).all()
    return True


@settings(max_examples=6, deadline=None)
@given(
    st.integers(2, 3),
    st.data(),
)
def test_alltoall_ragged_roundtrip(size, data):
    lengths = [
        [data.draw(st.integers(0, 200)) for _ in range(size)]
        for _ in range(size)
    ]
    assert all(run_proc(size, _alltoall_worker, lengths))


def _allgather_worker(comm, sizes):
    me = comm.rank
    mine = np.full(sizes[me], 100 + me, dtype=np.uint8)
    board = comm.allgather(mine)
    assert len(board) == comm.size
    for r, item in enumerate(board):
        assert item.size == sizes[r]
        assert (item == 100 + r).all()
    return True


@settings(max_examples=6, deadline=None)
@given(st.integers(2, 4), st.data())
def test_allgather_ordering(size, data):
    """board[r] is always rank r's contribution, whatever the sizes."""
    sizes = [data.draw(st.integers(0, 300)) for _ in range(size)]
    assert all(run_proc(size, _allgather_worker, sizes))


def _barrier_reentry_worker(comm, rounds):
    # Reentrancy: the same mp.Barrier object is reused back-to-back with
    # no draining gap; a generation mix-up would deadlock or mismatch.
    total = 0
    for i in range(rounds):
        board = comm.allgather((i, comm.rank))
        assert board == [(i, r) for r in range(comm.size)]
        comm.barrier()
        total += 1
    comm.barrier()
    comm.barrier()  # two bare barriers in a row
    return total


@pytest.mark.parametrize("size", [2, 4])
def test_barrier_reentrancy(size):
    rounds = 7
    assert run_proc(size, _barrier_reentry_worker, rounds) == \
        [rounds] * size


def _mixed_worker(comm):
    # bcast + allreduce + split interplay after heavy alltoall traffic.
    x = comm.bcast(np.arange(64, dtype=np.int64) if comm.rank == 0
                   else None, root=0)
    assert (x == np.arange(64)).all()
    s = comm.allreduce(comm.rank + 1, lambda a, b: a + b)
    assert s == comm.size * (comm.size + 1) // 2
    sub = comm.split(color=comm.rank % 2, key=comm.rank)
    vals = sub.allgather(comm.rank)
    assert vals == sorted(r for r in range(comm.size)
                          if r % 2 == comm.rank % 2)
    ctr = sub.make_shared_counter()
    ctr.add(1)
    sub.barrier()
    assert ctr.get() == sub.size
    return True


def test_mixed_collectives_and_group_counter():
    assert all(run_proc(4, _mixed_worker))


def _zero_length_everything(comm):
    empty = np.empty(0, dtype=np.uint8)
    board = comm.allgather(empty)
    assert all(item.size == 0 for item in board)
    got = comm.alltoall([empty] * comm.size)
    assert all(item.size == 0 for item in got)
    assert comm.bcast(empty if comm.rank == 0 else None, root=0).size == 0
    return True


def test_zero_length_collectives():
    assert all(run_proc(3, _zero_length_everything))


def _recv_any_worker(comm):
    if comm.rank > 0:
        comm.send(0, int(comm.rank) * 7, tag=3)
        return None
    got = {}
    pending = {1, 2, 3}
    while pending:
        src, payload = comm.recv_any(sorted(pending), tag=3)
        got[src] = payload
        pending.discard(src)
    return got


def test_recv_any_arrival_order():
    """Cross-process recv_any: completion in arrival order from a set
    of expected peers (the relaxed-sync receive primitive)."""
    out = run_proc(4, _recv_any_worker)
    assert out[0] == {1: 7, 2: 14, 3: 21}

"""Ordered-mode collectives: rank-order data at the shared pointer."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.errors import IOEngineError
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd

ENGINES = ["listless", "list_based"]


@pytest.mark.parametrize("engine", ENGINES)
def test_write_ordered_lands_in_rank_order(engine):
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        buf = np.full(4 + comm.rank, comm.rank + 1, dtype=np.uint8)
        fh.write_ordered(buf)
        fh.close()

    run_spmd(3, worker)
    data = fs.lookup("/f").contents()
    expect = np.concatenate(
        [np.full(4 + r, r + 1, dtype=np.uint8) for r in range(3)]
    )
    assert (data == expect).all()


@pytest.mark.parametrize("engine", ENGINES)
def test_ordered_advances_shared_pointer(engine):
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.write_ordered(np.full(8, comm.rank, dtype=np.uint8))
        comm.barrier()
        assert fh.get_position_shared() == 8 * comm.size
        # A second ordered write appends after the first round.
        fh.write_ordered(np.full(8, 10 + comm.rank, dtype=np.uint8))
        fh.close()

    run_spmd(2, worker)
    data = fs.lookup("/f").contents()
    assert data.size == 32
    assert (data[:8] == 0).all() and (data[8:16] == 1).all()
    assert (data[16:24] == 10).all() and (data[24:] == 11).all()


@pytest.mark.parametrize("engine", ENGINES)
def test_read_ordered_roundtrip(engine):
    fs = SimFileSystem()
    fs.create("/f").pwrite(0, np.arange(48, dtype=np.uint8))

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_RDWR, engine=engine)
        out = np.zeros(16, dtype=np.uint8)
        fh.read_ordered(out)
        assert (out == np.arange(16) + 16 * comm.rank).all()
        fh.close()

    run_spmd(3, worker)


@pytest.mark.parametrize("engine", ENGINES)
def test_ordered_through_noncontig_view(engine):
    """Ordered access composes with a non-contiguous fileview: offsets
    count in etypes *through the view*."""
    fs = SimFileSystem()
    # Shared view for all ranks: every other double of the file (one
    # double of data in a 16-byte extent).
    ft = dt.resized(dt.DOUBLE, 0, 16)

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(0, dt.DOUBLE, ft)
        buf = np.full(2, float(comm.rank + 1))
        fh.write_ordered(buf, 2, dt.DOUBLE)
        fh.close()

    run_spmd(2, worker)
    doubles = fs.lookup("/f").contents().view(np.float64)
    # View exposes file doubles 0, 2, 4, 6...; rank 0 wrote the first
    # two visible slots, rank 1 the next two.
    assert doubles[0] == 1.0 and doubles[2] == 1.0
    assert doubles[4] == 2.0 and doubles[6] == 2.0


def test_ordered_partial_etype_rejected():
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
        fh.set_view(0, dt.DOUBLE, dt.DOUBLE)
        with pytest.raises(IOEngineError):
            fh.write_ordered(np.zeros(3, dtype=np.uint8), 3, dt.BYTE)
        fh.close()

    run_spmd(1, worker)


@pytest.mark.parametrize("engine", ENGINES)
def test_ordered_with_unequal_and_zero_sizes(engine):
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        n = 0 if comm.rank == 1 else 4
        fh.write_ordered(np.full(n, comm.rank + 1, dtype=np.uint8))
        fh.close()

    run_spmd(3, worker)
    data = fs.lookup("/f").contents()
    assert (data[:4] == 1).all()
    assert (data[4:8] == 3).all()
    assert data.size == 8

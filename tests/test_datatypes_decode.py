"""Datatype introspection and the compact tree serialization."""

import pytest
from hypothesis import given, settings

from repro import datatypes as dt
from repro.datatypes import decode
from tests.conftest import datatype_trees


class TestEnvelope:
    def test_combiner_names(self, sample_types):
        assert decode.get_envelope(sample_types["basic"]) == "basic:DOUBLE"
        assert decode.get_envelope(sample_types["contig"]) == "contiguous"
        assert decode.get_envelope(sample_types["vector"]) == "hvector"
        assert decode.get_envelope(sample_types["indexed"]) == "hindexed"
        assert decode.get_envelope(sample_types["struct"]) == "struct"
        assert decode.get_envelope(sample_types["resized"]) == "resized"

    def test_contents_roundtrip_vector(self):
        v = dt.vector(4, 2, 5, dt.DOUBLE)
        c = decode.get_contents(v)
        rebuilt = dt.hvector(c["count"], c["blocklen"] // 1, 0, dt.DOUBLE)
        assert c["count"] == 4
        assert c["stride"] == 40
        assert c["base"] is dt.DOUBLE
        assert rebuilt.size == v.size


class TestTreeSerialization:
    def test_roundtrip_preserves_typemap(self, sample_types):
        for name, t in sample_types.items():
            t2 = decode.from_tree(decode.to_tree(t))
            assert list(t2.typemap()) == list(t.typemap()), name
            assert t2.extent == t.extent, name
            assert t2.lb == t.lb, name
            assert t2.num_blocks == t.num_blocks, name

    def test_tree_is_hashable(self, sample_types):
        for t in sample_types.values():
            hash(decode.to_tree(t))

    @settings(max_examples=60, deadline=None)
    @given(datatype_trees())
    def test_roundtrip_random_trees(self, t):
        t2 = decode.from_tree(decode.to_tree(t))
        assert t2.size == t.size
        assert t2.extent == t.extent
        assert list(t2.typemap()) == list(t.typemap())

    def test_wire_size_independent_of_nblock(self):
        small = dt.vector(4, 1, 2, dt.DOUBLE)
        huge = dt.vector(4 * 10**5, 1, 2, dt.DOUBLE)
        assert decode.tree_nbytes(decode.to_tree(small)) == \
            decode.tree_nbytes(decode.to_tree(huge))

    def test_wire_size_proportional_to_descriptor(self):
        ix_small = dt.indexed([1] * 4, list(range(0, 8, 2)), dt.INT)
        ix_big = dt.indexed([1] * 64, list(range(0, 128, 2)), dt.INT)
        assert decode.tree_nbytes(decode.to_tree(ix_big)) > \
            decode.tree_nbytes(decode.to_tree(ix_small))

    def test_unknown_node_kind_rejected(self):
        from repro.errors import DatatypeError

        with pytest.raises(DatatypeError):
            decode.from_tree(("mystery", 1))

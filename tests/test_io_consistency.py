"""Concurrency and consistency: locking under interleaved sieved writes,
atomic mode, and cross-engine interoperability on one file."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.noncontig import build_noncontig_filetype
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd

ENGINES = ["listless", "list_based"]


@pytest.mark.parametrize("engine", ENGINES)
def test_concurrent_sieved_writers_dont_clobber(engine):
    """Independent writers with interleaved (disjoint) views perform
    read-modify-write over overlapping windows; the range locks must
    keep every byte correct.  Repeated to give races a chance."""
    P, blocklen, blockcount = 4, 4, 64
    A = blocklen * blockcount
    for attempt in range(3):
        fs = SimFileSystem()
        hints = Hints(ind_wr_buffer_size=256)  # many overlapping windows

        def worker(comm):
            r = comm.rank
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine, hints=hints)
            ft = build_noncontig_filetype(P, r, blocklen, blockcount)
            fh.set_view(0, dt.BYTE, ft)
            # No barrier: writers race deliberately.
            fh.write_at(0, np.full(A, r + 1, dtype=np.uint8))
            fh.close()

        run_spmd(P, worker)
        data = fs.lookup("/f").contents()
        for b in range(blockcount):
            for r in range(P):
                blk = data[(b * P + r) * blocklen : (b * P + r + 1) *
                           blocklen]
                assert (blk == r + 1).all(), (attempt, b, r)


@pytest.mark.parametrize("engine", ENGINES)
def test_atomic_mode_serializes_whole_accesses(engine):
    """In atomic mode each access appears indivisible: concurrent writers
    to the SAME region leave one writer's complete data, never a mix
    (checked at sieving-window granularity)."""
    fs = SimFileSystem()
    n = 4096
    hints = Hints(ind_wr_buffer_size=128)

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        # Non-contiguous view over the same region for both ranks.
        ft = dt.vector(n // 8, 4, 8, dt.BYTE)
        fh.set_view(0, dt.BYTE, ft)
        fh.set_atomicity(True)
        fh.write_at(0, np.full(n // 2, comm.rank + 1, dtype=np.uint8))
        fh.close()

    run_spmd(2, worker)
    data = fs.lookup("/f").contents()
    written = data[::8]  # first byte of each 4-byte block
    values = set(np.unique(written).tolist())
    assert values <= {1, 2}
    assert len(values) == 1, "atomic accesses interleaved"


def test_engines_interoperate_on_one_file():
    """A file written by one engine reads back identically via the other
    (they implement the same format: plain bytes)."""
    fs = SimFileSystem()
    P, blocklen, blockcount = 2, 8, 16
    A = blocklen * blockcount

    def writer(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine="list_based")
        ft = build_noncontig_filetype(P, comm.rank, blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        fh.write_at_all(0, np.full(A, comm.rank + 7, dtype=np.uint8))
        fh.close()

    def reader(comm):
        fh = File.open(comm, fs, "/f", MODE_RDWR, engine="listless")
        ft = build_noncontig_filetype(P, comm.rank, blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        out = np.zeros(A, dtype=np.uint8)
        fh.read_at_all(0, out)
        assert (out == comm.rank + 7).all()
        fh.close()

    run_spmd(P, writer)
    run_spmd(P, reader)


@pytest.mark.parametrize("engine", ENGINES)
def test_view_change_midfile(engine):
    """set_view may be called repeatedly; pointers and mappings reset."""
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(0, dt.BYTE, dt.BYTE)
        fh.write_at(0, np.arange(64, dtype=np.uint8))
        # Re-view the same file as strided doubles from byte 8.
        ft = dt.vector(3, 1, 2, dt.DOUBLE)
        fh.set_view(8, dt.DOUBLE, ft)
        out = np.zeros(3, dtype=np.float64)
        fh.read_at(0, out, 3, dt.DOUBLE)
        raw = np.arange(64, dtype=np.uint8)
        expect = np.concatenate(
            [raw[8 + i * 16 : 16 + i * 16] for i in range(3)]
        ).view(np.float64)
        assert (out == expect).all()
        fh.close()

    run_spmd(2, worker)


@pytest.mark.parametrize("engine", ENGINES)
def test_mixed_independent_and_collective(engine):
    """Alternating access kinds on one handle stay consistent."""
    fs = SimFileSystem()
    P, blocklen, blockcount = 2, 4, 8
    A = blocklen * blockcount

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        fh.write_at_all(0, np.full(A, 1 + r, dtype=np.uint8))
        comm.barrier()
        fh.write_at(A, np.full(A, 11 + r, dtype=np.uint8))
        comm.barrier()
        out = np.zeros(2 * A, dtype=np.uint8)
        fh.read_at_all(0, out)
        assert (out[:A] == 1 + r).all()
        assert (out[A:] == 11 + r).all()
        fh.close()

    run_spmd(P, worker)

"""Multi-node network topology model."""

import numpy as np
import pytest

from repro.mpi import NetworkModel, run_spmd


class TestNetworkModel:
    def test_uniform_by_default(self):
        nm = NetworkModel()
        assert not nm.is_inter_node(0, 7)
        assert nm.transfer_time(1000, 0, 7) == nm.transfer_time(1000, 0, 0)

    def test_node_boundaries(self):
        nm = NetworkModel(ranks_per_node=4)
        assert not nm.is_inter_node(0, 3)
        assert nm.is_inter_node(3, 4)
        assert nm.is_inter_node(0, 7)
        assert not nm.is_inter_node(5, 6)

    def test_inter_node_costs_more(self):
        nm = NetworkModel(ranks_per_node=2)
        intra = nm.transfer_time(10_000, 0, 1)
        inter = nm.transfer_time(10_000, 0, 2)
        assert inter > intra

    def test_custom_inter_params(self):
        nm = NetworkModel(
            ranks_per_node=1, inter_latency=1e-3, inter_bandwidth=1e6
        )
        assert nm.transfer_time(1000, 0, 1) == pytest.approx(1e-3 + 1e-3)


class TestWorldAccounting:
    def test_inter_node_traffic_charged_more(self):
        def worker(comm):
            # Every rank sends the same payload to its intra-node peer
            # and to a remote-node peer.
            if comm.rank == 0:
                comm.send(1, np.zeros(100_000, np.uint8))  # same node
                comm.send(2, np.zeros(100_000, np.uint8))  # other node
            elif comm.rank in (1, 2):
                comm.recv(0)

        w_uniform = []
        run_spmd(4, worker, network=NetworkModel(), world_out=w_uniform)
        w_multi = []
        run_spmd(
            4, worker,
            network=NetworkModel(ranks_per_node=2),
            world_out=w_multi,
        )
        assert w_multi[0].net_time[0] > w_uniform[0].net_time[0]

    def test_collectives_use_topology(self):
        def worker(comm):
            comm.allgather(np.zeros(10_000, np.uint8))

        w_uniform = []
        run_spmd(4, worker, network=NetworkModel(), world_out=w_uniform)
        w_multi = []
        run_spmd(
            4, worker,
            network=NetworkModel(ranks_per_node=2),
            world_out=w_multi,
        )
        # Same bytes, more expensive wire.
        assert w_multi[0].total_bytes_sent() == \
            w_uniform[0].total_bytes_sent()
        assert w_multi[0].max_net_time() > w_uniform[0].max_net_time()

"""Planner edge cases: degenerate types, optimization decisions, lock
placement, and plan-cache behaviour across view changes."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd
from repro.plan.ops import FileWriteOp, LockOp, UnlockOp

ENGINES = ["listless", "list_based"]

#: Fine-grained interleaved filetype: sieving clearly wins.
FINE = dict(blockcount=64, blocklen=1, stride=2)


def fine_vector():
    return dt.vector(FINE["blockcount"], FINE["blocklen"], FINE["stride"],
                     dt.BYTE)


def open_one(fs, engine, info=None):
    return lambda comm: File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                                  engine=engine, info=info)


class TestDegenerateAccesses:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_byte_access_is_an_empty_plan(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = open_one(fs, engine)(comm)
            fh.set_view(0, dt.BYTE, fine_vector())
            mem = fh._mem(np.zeros(0, dtype=np.uint8), None, None)
            plan = fh.engine.plan_write_independent(mem, 0)
            assert len(plan) == 0
            fh.write_at(0, np.zeros(0, dtype=np.uint8))
            fh.read_at(0, np.zeros(0, dtype=np.uint8))
            fh.close()

        run_spmd(1, worker)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_length_blocks_in_filetype(self, engine):
        """Zero blocklens in an indexed filetype contribute no data and
        must be invisible to planning."""
        fs = SimFileSystem()
        ft = dt.indexed([0, 4, 0, 4, 0], [0, 8, 16, 24, 40], dt.BYTE)

        def worker(comm):
            fh = open_one(fs, engine)(comm)
            fh.set_view(0, dt.BYTE, ft)
            w = np.arange(1, 9, dtype=np.uint8)
            fh.write_at(0, w)
            r = np.zeros(8, dtype=np.uint8)
            fh.read_at(0, r)
            assert (r == w).all()
            fh.close()

        run_spmd(1, worker)
        data = fs.lookup("/f").contents()
        assert (data[8:12] == [1, 2, 3, 4]).all()
        assert (data[24:28] == [5, 6, 7, 8]).all()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_skipbytes_mid_struct_with_tiny_windows(self, engine):
        """A data-free gap inside a struct, accessed with sieving buffers
        small enough that windows start and end inside the gap."""
        fs = SimFileSystem()
        ft = dt.resized(
            dt.struct([8, 8], [0, 48], [dt.BYTE, dt.BYTE]), 0, 64
        )
        info = {"ind_wr_buffer_size": "16", "ind_rd_buffer_size": "16"}

        def worker(comm):
            fh = open_one(fs, engine, info)(comm)
            fh.set_view(0, dt.BYTE, ft)
            w = (np.arange(2 * ft.size) % 251 + 1).astype(np.uint8)
            fh.write_at(0, w)
            r = np.zeros_like(w)
            fh.read_at(0, r)
            assert (r == w).all()
            fh.close()

        run_spmd(1, worker)
        # The skip bytes [8, 48) of each struct instance stay zero.
        data = fs.lookup("/f").contents()
        assert (data[8:48] == 0).all()
        assert (data[72:112] == 0).all()


class TestLockPlacement:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_sieved_write_locks_every_rmw_window(self, engine):
        fs = SimFileSystem()

        def worker(comm):
            fh = open_one(fs, engine)(comm)
            fh.set_view(0, dt.BYTE, fine_vector())
            mem = fh._mem(np.zeros(FINE["blockcount"], dtype=np.uint8),
                          None, None)
            plan = fh.engine.plan_write_independent(mem, 0)
            locked = set()
            for op in plan.ops:
                if isinstance(op, LockOp):
                    locked.add((op.lo, op.hi))
                elif isinstance(op, FileWriteOp) and op.mode == "rmw":
                    assert (op.lo, op.hi) in locked, \
                        "rmw window written without a preceding lock"
                elif isinstance(op, UnlockOp):
                    locked.discard((op.lo, op.hi))
            assert any(isinstance(op, LockOp) for op in plan.ops)
            fh.engine.run_plan(plan, mem)
            snap = fh.engine.stats.snapshot()
            assert snap["executed_locks"] >= 1
            assert snap["planned_windows"] >= 1
            fh.close()

        run_spmd(1, worker)

    def test_overlapping_rmw_windows_do_not_lose_updates(self):
        """Two ranks sieve-write interleaved blocks of the same region;
        the rmw windows overlap byte-for-byte, so only the planned locks
        keep the concurrent read-modify-writes from clobbering."""
        fs = SimFileSystem()
        P, n = 2, 64

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR)
            ft = dt.vector(n, 1, P, dt.BYTE)
            fh.set_view(comm.rank, dt.BYTE, ft)
            fh.write_at(0, np.full(n, comm.rank + 1, dtype=np.uint8))
            fh.close()

        run_spmd(P, worker)
        data = fs.lookup("/f").contents()
        assert (data[0 : P * n : P] == 1).all()
        assert (data[1 : P * n : P] == 2).all()


class TestPlanCache:
    @staticmethod
    def snap(fh):
        return fh.engine.stats.snapshot()

    def test_repeated_access_hits_cache_listless(self):
        fs = SimFileSystem()
        box = {}

        def worker(comm):
            fh = open_one(fs, "listless")(comm)
            fh.set_view(0, dt.BYTE, fine_vector())
            buf = np.zeros(FINE["blockcount"], dtype=np.uint8)
            fh.write_at(0, buf)
            for _ in range(3):
                fh.read_at(0, buf)
            box["mid"] = self.snap(fh)
            # A new view must invalidate every cached plan, even an
            # identical one: misses grow, hits stay flat.
            fh.set_view(0, dt.BYTE, fine_vector())
            fh.read_at(0, buf)
            box["after"] = self.snap(fh)
            fh.close()

        run_spmd(1, worker)
        mid, after = box["mid"], box["after"]
        assert mid["plan_cache_hits"] >= 2
        assert after["plan_cache_hits"] == mid["plan_cache_hits"]
        assert after["plan_cache_misses"] > mid["plan_cache_misses"]
        assert after["plans_built"] > mid["plans_built"]

    def test_collective_plan_cached_listless(self):
        fs = SimFileSystem()
        P = 2
        hits = [0] * P

        def worker(comm):
            fh = open_one(fs, "listless")(comm)
            ft = dt.vector(32, 4, 4 * P, dt.BYTE)
            fh.set_view(comm.rank * 4, dt.BYTE, ft)
            buf = np.full(128, comm.rank + 1, dtype=np.uint8)
            for _ in range(3):
                fh.write_at_all(0, buf)
            hits[comm.rank] = self.snap(fh)["plan_cache_hits"]
            fh.close()

        run_spmd(P, worker)
        assert all(h >= 2 for h in hits)

    def test_list_based_never_serves_cached_plans(self):
        """The conventional engine re-expands its ol-lists per access;
        its planner must rebuild every time."""
        fs = SimFileSystem()
        box = {}

        def worker(comm):
            fh = open_one(fs, "list_based")(comm)
            fh.set_view(0, dt.BYTE, fine_vector())
            buf = np.zeros(FINE["blockcount"], dtype=np.uint8)
            fh.write_at(0, buf)
            for _ in range(3):
                fh.read_at(0, buf)
            box["s"] = self.snap(fh)
            fh.close()

        run_spmd(1, worker)
        assert box["s"]["plan_cache_hits"] == 0
        assert box["s"]["plans_built"] >= 4


class TestReplayFastPath:
    """The epoch-stable replay path: one relocatable plan per
    (residue, size) shape, re-bound per access by a scalar file
    translation, skipping planner entry entirely."""

    @staticmethod
    def snap(fh):
        return fh.engine.stats.snapshot()

    def test_period_translated_accesses_replay(self):
        fs = SimFileSystem()
        box = {}

        def worker(comm):
            fh = open_one(fs, "listless")(comm)
            fh.set_view(0, dt.BYTE, fine_vector())
            A = FINE["blockcount"]
            rng = np.random.default_rng(3)
            for k in range(4):
                buf = rng.integers(0, 256, A, dtype=np.uint8)
                fh.write_at(k * A, buf)
                got = np.zeros(A, dtype=np.uint8)
                fh.read_at(k * A, got)
                assert (got == buf).all(), k
            box["s"] = self.snap(fh)
            fh.close()

        run_spmd(1, worker)
        s = box["s"]
        # First write and first read plan from scratch; the 3 later
        # periods replay both shapes (6 replays, also counted as hits).
        assert s["plan_replays"] >= 6
        assert s["plan_cache_hits"] >= s["plan_replays"]
        assert s["plans_built"] <= 3

    def test_staggered_residues_plan_from_scratch(self):
        fs = SimFileSystem()
        box = {}

        def worker(comm):
            fh = open_one(fs, "listless")(comm)
            fh.set_view(0, dt.BYTE, fine_vector())
            A = FINE["blockcount"]
            buf = np.zeros(A, dtype=np.uint8)
            for k in range(4):
                fh.write_at(k * A + k, buf)  # distinct residues
            box["s"] = self.snap(fh)
            fh.close()

        run_spmd(1, worker)
        assert box["s"]["plan_replays"] == 0
        assert box["s"]["plans_built"] >= 4

    def test_view_change_clears_replay_table(self):
        fs = SimFileSystem()
        box = {}

        def worker(comm):
            fh = open_one(fs, "listless")(comm)
            fh.set_view(0, dt.BYTE, fine_vector())
            A = FINE["blockcount"]
            buf = np.zeros(A, dtype=np.uint8)
            fh.write_at(0, buf)
            fh.write_at(A, buf)
            box["mid"] = self.snap(fh)
            fh.set_view(0, dt.BYTE, fine_vector())
            fh.write_at(2 * A, buf)  # same shape, new epoch: no replay
            box["after"] = self.snap(fh)
            fh.close()

        run_spmd(1, worker)
        assert box["mid"]["plan_replays"] == 1
        assert box["after"]["plan_replays"] == box["mid"]["plan_replays"]
        assert box["after"]["plans_built"] > box["mid"]["plans_built"]


class TestHintFingerprint:
    """Regression: the plan cache and replay table key on a fingerprint
    of the planning-relevant hints, so a ``set_info`` change — which
    does not bump the view epoch — can never serve a plan built under
    the old hints."""

    @staticmethod
    def snap(fh):
        return fh.engine.stats.snapshot()

    def test_set_info_sieve_toggle_is_not_served_stale(self):
        fs = SimFileSystem()
        box = {}

        def worker(comm):
            fh = open_one(fs, "listless")(comm)
            fh.set_view(0, dt.BYTE, fine_vector())
            A = FINE["blockcount"]
            buf = np.zeros(A, dtype=np.uint8)
            mem = fh._mem(buf, None, None)
            sieved = fh.engine.plan_write_independent(mem, 0)
            assert any(isinstance(op, LockOp) for op in sieved.ops)
            fh.write_at(0, buf)
            locks_before = self.snap(fh)["executed_locks"]
            # Disabling write sieving changes what a correct plan
            # contains; with epoch-only keys the stale sieved plan
            # would be replayed here.
            fh.set_info({"ds_write": "false"})
            direct = fh.engine.plan_write_independent(mem, 0)
            assert not any(isinstance(op, LockOp) for op in direct.ops)
            fh.write_at(0, buf)
            box["locks"] = (locks_before,
                            self.snap(fh)["executed_locks"])
            fh.close()

        run_spmd(1, worker)
        before, after = box["locks"]
        assert before > 0
        assert after == before  # the direct write took no locks

    def test_set_info_blockprog_toggle_stops_replay(self):
        fs = SimFileSystem()
        box = {}

        def worker(comm):
            fh = open_one(fs, "listless")(comm)
            fh.set_view(0, dt.BYTE, fine_vector())
            A = FINE["blockcount"]
            buf = np.zeros(A, dtype=np.uint8)
            for k in range(3):
                fh.write_at(k * A, buf)
            box["mid"] = self.snap(fh)
            fh.set_info({"ff_block_programs": "false"})
            for k in range(3):
                fh.write_at(k * A, buf)
            box["after"] = self.snap(fh)
            fh.close()

        run_spmd(1, worker)
        assert box["mid"]["plan_replays"] >= 2
        assert box["after"]["plan_replays"] == box["mid"]["plan_replays"]

"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_exist(self):
        p = build_parser()
        for argv in (
            ["noncontig"],
            ["btio"],
            ["characterize"],
            ["inspect", "DOUBLE"],
        ):
            args = p.parse_args(argv)
            assert callable(args.fn)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_pattern_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["noncontig", "--pattern", "zz"])


class TestCommands:
    def test_characterize(self, capsys):
        assert main(["characterize", "--cls", "B", "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "5202" in out and "2040" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "vector(64, 1, 2, DOUBLE)"]) == 0
        out = capsys.readouterr().out
        assert "Nblock" in out and "64" in out

    def test_inspect_bad_expression(self):
        with pytest.raises(SystemExit):
            main(["inspect", "import os"])

    def test_noncontig_small(self, capsys):
        assert main([
            "noncontig", "--nblock", "32", "--nreps", "1",
            "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "listless" in out and "list_based" in out

    def test_btio_small(self, capsys):
        assert main([
            "btio", "--cls", "S", "--nsteps", "1", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "r_io" in out


class TestWorkloadsCommand:
    def test_single_workload(self, capsys):
        assert main([
            "workloads", "--only", "tiled_matrix", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "tiled_matrix" in out and "speedup" in out

    def test_unknown_workload_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["workloads", "--only", "nope", "--repeats", "1"])

"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_exist(self):
        p = build_parser()
        for argv in (
            ["noncontig"],
            ["btio"],
            ["characterize"],
            ["inspect", "DOUBLE"],
        ):
            args = p.parse_args(argv)
            assert callable(args.fn)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_pattern_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["noncontig", "--pattern", "zz"])


class TestCommands:
    def test_characterize(self, capsys):
        assert main(["characterize", "--cls", "B", "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "5202" in out and "2040" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "vector(64, 1, 2, DOUBLE)"]) == 0
        out = capsys.readouterr().out
        assert "Nblock" in out and "64" in out

    def test_inspect_bad_expression(self):
        with pytest.raises(SystemExit):
            main(["inspect", "import os"])

    def test_noncontig_small(self, capsys):
        assert main([
            "noncontig", "--nblock", "32", "--nreps", "1",
            "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "listless" in out and "list_based" in out

    def test_btio_small(self, capsys):
        assert main([
            "btio", "--cls", "S", "--nsteps", "1", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "r_io" in out

    def test_btio_phase_report(self, capsys):
        assert main([
            "btio", "--cls", "S", "--nsteps", "1", "--repeats", "1",
            "--report", "phases",
        ]) == 0
        out = capsys.readouterr().out
        assert "per-phase decomposition" in out
        for bucket in ("plan", "exchange", "sync", "total"):
            assert bucket in out

    def test_plan_dump_counters_and_trace(self, capsys):
        assert main([
            "plan-dump", "vector(16, 4, 8, BYTE)", "--nbytes", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "plan_cache_hits" in out
        assert "blockprog_translations" in out
        assert "kernel_path_strided_view" in out
        assert "trace summary" in out
        assert "plan.independent" in out

    def test_trace_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "t.json"
        assert main([
            "trace", "--cls", "S", "--nprocs", "4", "--nsteps", "1",
            "--export", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "rank tracks" in out
        doc = json.loads(path.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs
        assert {e["tid"] for e in xs} == {0, 1, 2, 3}

    def test_trace_causal_reports(self, capsys):
        assert main([
            "trace", "--cls", "S", "--nprocs", "4", "--nsteps", "1",
            "--critical-path", "--waits",
        ]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "per-rank self time:" in out
        assert "wait attribution" in out

    def test_flight_dump(self, capsys, tmp_path):
        import json

        path = tmp_path / "flight.json"
        assert main([
            "flight", "--cls", "S", "--nprocs", "4", "--nsteps", "1",
            "--out", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "flight record" in out
        doc = json.loads(path.read_text())
        assert doc["flight_version"] == 1
        assert doc["reason"] == "on_demand"
        assert len(doc["last_rounds"]) == 4
        assert doc["ranks"]

    def test_trace_restores_disabled_state(self):
        from repro.obs import trace

        prev = trace.set_tracing(False)
        try:
            assert main([
                "trace", "--cls", "S", "--nprocs", "4", "--nsteps", "1",
            ]) == 0
            assert not trace.enabled()
        finally:
            trace.set_tracing(prev)


class TestWorkloadsCommand:
    def test_single_workload(self, capsys):
        assert main([
            "workloads", "--only", "tiled_matrix", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "tiled_matrix" in out and "speedup" in out

    def test_unknown_workload_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["workloads", "--only", "nope", "--repeats", "1"])

"""Mergeview: the list-free collective-write contiguity check."""

import pytest

from repro import datatypes as dt
from repro.core.fileview_cache import CompactFileview
from repro.core.mergeview import build_mergeview


def noncontig_views(P, blocklen, blockcount, disp=0):
    """The P interleaving Fig.-4 views (complete tiling, no overlap)."""
    from repro.bench.noncontig import build_noncontig_filetype

    return [
        CompactFileview.from_view(
            disp, dt.BYTE, build_noncontig_filetype(P, r, blocklen,
                                                    blockcount)
        )
        for r in range(P)
    ]


class TestBuild:
    def test_identical_disps_required(self):
        views = noncontig_views(2, 4, 3)
        views[1].disp = 8
        assert build_mergeview(views) is None

    def test_empty(self):
        assert build_mergeview([]) is None

    def test_period_is_lcm(self):
        views = noncontig_views(3, 4, 5)
        mv = build_mergeview(views)
        assert mv.period == views[0].filetype.extent

    def test_fully_dense_when_views_tile(self):
        mv = build_mergeview(noncontig_views(4, 8, 6))
        assert mv.is_fully_dense

    def test_not_dense_with_holes(self):
        # Two of four interleave positions unused.
        views = noncontig_views(4, 8, 6)[:2]
        mv = build_mergeview(views)
        assert not mv.is_fully_dense


class TestCoverage:
    def test_complete_tiling_covers_everything(self):
        mv = build_mergeview(noncontig_views(4, 8, 6))
        assert mv.covers(0, 4 * 8 * 6)
        assert mv.covers(13, 77)

    def test_partial_views_do_not_cover(self):
        views = noncontig_views(2, 8, 4)[:1]  # only rank 0's view
        mv = build_mergeview(views)
        assert not mv.covers(0, 2 * 8 * 4)
        # ...but rank 0's own blocks are covered.
        assert mv.covers(0, 8)

    def test_data_in_range_additive(self):
        views = noncontig_views(2, 4, 4)
        mv = build_mergeview(views)
        lo, hi = 0, views[0].filetype.extent
        assert mv.data_in_range(lo, hi) == sum(
            v.data_in_range(lo, hi) for v in views
        )

    def test_covers_respects_disp(self):
        mv = build_mergeview(noncontig_views(2, 4, 4, disp=64))
        assert mv.covers(64, 64 + 32)

    def test_empty_range_covered(self):
        mv = build_mergeview(noncontig_views(2, 4, 4))
        assert mv.covers(10, 10)

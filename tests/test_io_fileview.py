"""FileView and MemDescriptor semantics."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.errors import DatatypeError, IOEngineError
from repro.io.fileview import FileView, MemDescriptor, default_view


class TestFileView:
    def test_default_view_is_byte_stream(self):
        v = default_view()
        assert v.esize == 1
        assert v.is_contiguous

    def test_negative_disp_rejected(self):
        with pytest.raises(IOEngineError):
            FileView(-1, dt.BYTE, dt.BYTE)

    def test_illegal_filetype_rejected(self):
        with pytest.raises(DatatypeError):
            FileView(0, dt.DOUBLE, dt.contiguous(3, dt.INT))

    def test_noncontig_view_not_contiguous(self):
        v = FileView(0, dt.BYTE, dt.vector(2, 1, 2, dt.BYTE))
        assert not v.is_contiguous

    def test_dense_filetype_contiguous(self):
        v = FileView(8, dt.DOUBLE, dt.contiguous(4, dt.DOUBLE))
        assert v.is_contiguous
        assert v.ft_size == v.ft_extent == 32

    def test_data_bytes_of_etypes(self):
        v = FileView(0, dt.DOUBLE, dt.vector(2, 1, 2, dt.DOUBLE))
        assert v.data_bytes_of_etypes(3) == 24


class TestMemDescriptor:
    def test_contiguous_bytes(self):
        buf = np.arange(4, dtype=np.int32)
        m = MemDescriptor(buf, 16, dt.BYTE)
        assert m.nbytes == 16
        assert m.is_contiguous
        assert (m.contiguous_slice(4, 8) == buf.view(np.uint8)[4:12]).all()

    def test_typed_count(self):
        buf = np.zeros(8, dtype=np.float64)
        m = MemDescriptor(buf, 8, dt.DOUBLE)
        assert m.nbytes == 64

    def test_negative_count_rejected(self):
        with pytest.raises(IOEngineError):
            MemDescriptor(np.zeros(4, np.uint8), -1, dt.BYTE)

    def test_origin_defaults_to_zero_for_plain_types(self):
        m = MemDescriptor(np.zeros(8, np.uint8), 1, dt.BYTE)
        assert m.origin == 0

    def test_origin_compensates_negative_lb(self):
        t = dt.resized(dt.INT, -4, 12)
        m = MemDescriptor(np.zeros(16, np.uint8), 1, t)
        assert m.origin == 4

    def test_noncontig_memtype(self):
        m = MemDescriptor(np.zeros(32, np.uint8), 1,
                          dt.vector(2, 4, 8, dt.BYTE))
        assert not m.is_contiguous
        assert m.nbytes == 8

"""The workload-pattern library: partition properties and roundtrips."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.workloads import WORKLOADS, make_workload
from repro.datatypes.packing import typemap_blocks
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd

P = 4


class TestPartitionProperties:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_views_partition_the_file(self, name):
        """Across ranks, every workload's filetypes tile the file region
        exactly once (no byte unowned, none owned twice)."""
        w0 = make_workload(name, 0, P)
        covered = np.zeros(w0.file_bytes, dtype=np.int16)
        for rank in range(P):
            w = make_workload(name, rank, P)
            for off, ln in typemap_blocks(w.filetype, 1):
                covered[off : off + ln] += 1
        assert (covered == 1).all(), name

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_memtype_matches_filetype_size(self, name):
        for rank in range(P):
            w = make_workload(name, rank, P)
            assert w.count * w.memtype.size == w.data_bytes
            assert w.filetype.size == w.data_bytes
            assert w.memtype.extent * w.count <= w.buffer_bytes \
                or w.memtype.true_ub <= w.buffer_bytes

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            make_workload("nope", 0, P)

    def test_tiled_matrix_requires_square(self):
        with pytest.raises(ValueError):
            make_workload("tiled_matrix", 0, 3)

    def test_ghost_grid_requires_divisible(self):
        with pytest.raises(ValueError):
            make_workload("ghost_grid3d", 0, 5)


class TestRoundtrips:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("engine", ["listless", "list_based"])
    def test_write_read_roundtrip(self, name, engine):
        fs = SimFileSystem()

        def worker(comm):
            w = make_workload(name, comm.rank, comm.size)
            etype = dt.DOUBLE if w.filetype.size % 8 == 0 else dt.BYTE
            fh = File.open(comm, fs, "/w", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.set_view(0, etype, w.filetype)
            rng = np.random.default_rng(comm.rank + 100)
            buf = rng.integers(0, 256, w.buffer_bytes, dtype=np.uint8)
            fh.write_at_all(0, buf, w.count, w.memtype)
            out = np.zeros(w.buffer_bytes, dtype=np.uint8)
            fh.read_at_all(0, out, w.count, w.memtype)
            # Compare through the memtype's own projection.
            from repro.datatypes.packing import pack_typemap

            want = pack_typemap(buf, w.count, w.memtype)
            got = pack_typemap(out, w.count, w.memtype)
            assert (got == want).all()
            fh.close()

        run_spmd(P, worker)
        assert fs.lookup("/w").size == make_workload(name, 0, P).file_bytes


class TestDarrayRegularity:
    def test_cyclic_rows_compile_to_shallow_loop(self):
        """The cyclic darray must compile to a vector-shaped dataloop,
        not a struct of per-row pieces (the regression behind the
        row_cyclic slowdown)."""
        from repro.core.dataloop import compile_dataloop

        w = make_workload("row_cyclic", 1, P)
        loop = compile_dataloop(w.filetype)
        assert loop.depth <= 3

"""The listless dense-range fast path: a non-contiguous view whose
accessed range happens to be fully dense (e.g. a k-plane of a subarray)
bypasses data sieving entirely — one plain file access, no pre-read, no
lock — while remaining byte-identical to the general path."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.mpi import run_spmd

N = 16


def plane_type(axis: int, index: int) -> dt.Datatype:
    sizes = [N, N, N]
    subsizes = [N, N, N]
    starts = [0, 0, 0]
    subsizes[axis] = 1
    starts[axis] = index
    return dt.subarray(sizes, subsizes, starts, dt.DOUBLE)


class TestDenseWrite:
    def test_kplane_write_no_preread_no_lock(self):
        fs = SimFileSystem()
        fs.create("/g").truncate(N ** 3 * 8)
        f = fs.lookup("/g")
        f.stats.reset()

        def worker(comm):
            fh = File.open(comm, fs, "/g", MODE_RDWR, engine="listless")
            fh.set_view(0, dt.DOUBLE, plane_type(0, 3))
            fh.write_at(0, np.full(N * N, 7.0), N * N, dt.DOUBLE)
            fh.close()

        run_spmd(1, worker)
        s = f.stats.snapshot()
        assert s["n_reads"] == 0
        assert s["n_writes"] == 1
        assert s["n_locks"] == 0
        grid = f.contents().view(np.float64).reshape(N, N, N)
        assert (grid[3] == 7.0).all()
        assert (grid[:3] == 0).all() and (grid[4:] == 0).all()

    def test_iplane_write_still_sieves(self):
        fs = SimFileSystem()
        fs.create("/g").truncate(N ** 3 * 8)
        f = fs.lookup("/g")
        f.stats.reset()

        def worker(comm):
            fh = File.open(comm, fs, "/g", MODE_RDWR, engine="listless")
            fh.set_view(0, dt.DOUBLE, plane_type(2, 3))
            fh.write_at(0, np.full(N * N, 7.0), N * N, dt.DOUBLE)
            fh.close()

        run_spmd(1, worker)
        s = f.stats.snapshot()
        assert s["n_reads"] >= 1  # read-modify-write
        assert s["n_locks"] >= 1
        grid = f.contents().view(np.float64).reshape(N, N, N)
        assert (grid[:, :, 3] == 7.0).all()
        assert (grid[:, :, 4] == 0).all()

    def test_dense_with_noncontig_memtype(self):
        fs = SimFileSystem()
        fs.create("/g").truncate(N ** 3 * 8)

        def worker(comm):
            fh = File.open(comm, fs, "/g", MODE_RDWR, engine="listless")
            fh.set_view(0, dt.DOUBLE, plane_type(0, 0))
            mt = dt.vector(N * N, 1, 2, dt.DOUBLE)
            buf = np.arange(2 * N * N, dtype=np.float64)
            fh.write_at(0, buf, 1, mt)
            fh.close()

        run_spmd(1, worker)
        grid = fs.lookup("/g").contents().view(np.float64).reshape(
            N, N, N
        )
        assert (grid[0].reshape(-1) ==
                np.arange(2 * N * N, dtype=np.float64)[::2]).all()


class TestDenseRead:
    def test_kplane_read_single_op(self):
        fs = SimFileSystem()
        grid = np.arange(N ** 3, dtype=np.float64)
        fs.create("/g").pwrite(0, grid)
        f = fs.lookup("/g")
        f.stats.reset()
        out = np.zeros(N * N, dtype=np.float64)

        def worker(comm):
            fh = File.open(comm, fs, "/g", MODE_RDONLY, engine="listless")
            fh.set_view(0, dt.DOUBLE, plane_type(0, 5))
            fh.read_at(0, out, N * N, dt.DOUBLE)
            fh.close()

        run_spmd(1, worker)
        s = f.stats.snapshot()
        assert s["n_reads"] == 1
        assert s["bytes_read"] == N * N * 8  # exactly the plane
        assert (out == grid.reshape(N, N, N)[5].reshape(-1)).all()

    def test_partial_access_inside_dense_region(self):
        """An access covering only part of a dense region still uses the
        fast path and reads the right bytes at an etype offset."""
        fs = SimFileSystem()
        grid = np.arange(N ** 3, dtype=np.float64)
        fs.create("/g").pwrite(0, grid)
        out = np.zeros(N, dtype=np.float64)

        def worker(comm):
            fh = File.open(comm, fs, "/g", MODE_RDONLY, engine="listless")
            fh.set_view(0, dt.DOUBLE, plane_type(0, 2))
            fh.read_at(7 * N, out, N, dt.DOUBLE)  # row 7 of plane 2
            fh.close()

        run_spmd(1, worker)
        assert (out == grid.reshape(N, N, N)[2, 7]).all()

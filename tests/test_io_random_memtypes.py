"""Engine equivalence over hypothesis-generated *memtypes*.

The memory side of an access may be any datatype (including layouts that
would be illegal as fileviews); both engines must project exactly the
same bytes between user buffers and the file, for random memtype trees
against a fixed non-contiguous fileview.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.bench.noncontig import build_noncontig_filetype
from repro.datatypes.packing import pack_typemap
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd
from tests.conftest import datatype_trees


def run_with_memtype(engine, memtype, count, collective, seed):
    """Write `count` instances of `memtype` through interleaved views;
    returns (file bytes, per-rank projected read-back)."""
    P = 2
    fs = SimFileSystem()
    nbytes = count * memtype.size
    # Fileview granularity: one byte etype; per-rank interleave sized so
    # the access spans several filetype instances.
    ft_block = max(nbytes // 8, 1)
    results = [None] * P
    hints = Hints(ind_wr_buffer_size=64, ind_rd_buffer_size=64,
                  cb_buffer_size=64)

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        ft = build_noncontig_filetype(P, r, ft_block, 4)
        fh.set_view(0, dt.BYTE, ft)
        span = (count - 1) * max(memtype.extent, 0) + memtype.true_ub + 8
        rng = np.random.default_rng(seed + r)
        buf = rng.integers(0, 256, max(span, 1), dtype=np.uint8)
        write = fh.write_at_all if collective else fh.write_at
        read = fh.read_at_all if collective else fh.read_at
        write(0, buf, count, memtype)
        out = np.zeros_like(buf)
        read(0, out, count, memtype)
        # Compare through the memtype's projection (gaps are undefined).
        want = pack_typemap(buf, count, memtype)
        got = pack_typemap(out, count, memtype)
        assert (got == want).all()
        results[r] = got
        fh.close()

    run_spmd(P, worker)
    return fs.lookup("/f").contents(), results


# Monotonic memtypes only: reading back into overlapping positions is
# order-dependent and MPI leaves it undefined.
MEMTYPES = datatype_trees().filter(
    lambda t: t.is_monotonic and t.true_lb >= 0 and 0 < t.size <= 512
)


@settings(max_examples=15, deadline=None)
@given(MEMTYPES, st.integers(1, 2), st.booleans(), st.integers(0, 99))
def test_random_memtypes_engines_agree(memtype, count, collective, seed):
    file_a, reads_a = run_with_memtype(
        "listless", memtype, count, collective, seed
    )
    file_b, reads_b = run_with_memtype(
        "list_based", memtype, count, collective, seed
    )
    assert file_a.size == file_b.size
    assert (file_a == file_b).all()
    for ra, rb in zip(reads_a, reads_b):
        assert (ra == rb).all()


@settings(max_examples=15, deadline=None)
@given(MEMTYPES, st.integers(0, 99))
def test_random_memtype_write_projects_typemap(memtype, seed):
    """Single rank, contiguous file: the file must contain exactly the
    memtype's packed projection."""
    fs = SimFileSystem()
    span = memtype.true_ub + 8
    rng = np.random.default_rng(seed)
    buf = rng.integers(0, 256, span, dtype=np.uint8)

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine="listless")
        fh.write_at(0, buf, 1, memtype)
        fh.close()

    run_spmd(1, worker)
    data = fs.lookup("/f").contents()
    assert (data == pack_typemap(buf, 1, memtype)).all()

"""Cross-cutting property tests of the listless core (hypothesis).

These tie the compact machinery (dataloops, compact fileviews,
mergeview) to brute-force oracles over random datatype trees and random
view ensembles.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.core.fileview_cache import CompactFileview
from repro.core.mergeview import build_mergeview
from repro.datatypes.packing import typemap_blocks
from repro.datatypes.validation import validate_filetype
from repro.errors import DatatypeError
from tests.conftest import datatype_trees

COMMON = dict(max_examples=50, deadline=None)


def _legal_filetype(t) -> bool:
    try:
        validate_filetype(t, dt.BYTE)
    except DatatypeError:
        return False
    return True


def brute_view_data_in_range(ft, disp, lo, hi, ninst=None):
    """Oracle: data bytes of the tiled view within [lo, hi)."""
    if hi <= lo:
        return 0
    ninst = ninst or ((hi - disp) // ft.extent + 2)
    total = 0
    for inst in range(ninst):
        base = disp + inst * ft.extent
        for off, ln in typemap_blocks(ft, 1):
            a, b = base + off, base + off + ln
            total += max(0, min(b, hi) - max(a, lo))
    return total


class TestCompactFileviewProperties:
    @settings(**COMMON)
    @given(datatype_trees().filter(_legal_filetype), st.data())
    def test_data_in_range_matches_brute_force(self, ft, data):
        disp = data.draw(st.integers(0, 32))
        cv = CompactFileview.from_view(disp, dt.BYTE, ft)
        span = 3 * ft.extent
        lo = data.draw(st.integers(0, disp + span))
        hi = data.draw(st.integers(lo, disp + span))
        assert cv.data_in_range(lo, hi) == brute_view_data_in_range(
            ft, disp, lo, hi
        )

    @settings(**COMMON)
    @given(datatype_trees().filter(_legal_filetype), st.data())
    def test_abs_data_roundtrip(self, ft, data):
        disp = data.draw(st.integers(0, 16))
        cv = CompactFileview.from_view(disp, dt.BYTE, ft)
        d = data.draw(st.integers(0, 3 * ft.size))
        a = cv.abs_of_data(d)
        assert cv.data_of_abs(a) == d

    @settings(**COMMON)
    @given(datatype_trees().filter(_legal_filetype), st.data())
    def test_blocks_for_data_cover_exactly_the_range(self, ft, data):
        cv = CompactFileview.from_view(0, dt.BYTE, ft)
        d_lo = data.draw(st.integers(0, 2 * ft.size))
        d_hi = data.draw(st.integers(d_lo, 2 * ft.size + ft.size))
        offs, lens = cv.blocks_for_data(d_lo, d_hi)
        assert int(lens.sum()) == d_hi - d_lo
        # Monotone, non-overlapping, within the view's data positions.
        ends = offs + lens
        assert (offs[1:] >= ends[:-1]).all()

    @settings(**COMMON)
    @given(datatype_trees().filter(_legal_filetype))
    def test_end_vs_start_bracket_data(self, ft):
        cv = CompactFileview.from_view(0, dt.BYTE, ft)
        for d in range(0, min(ft.size, 64) + 1):
            if 0 < d:
                assert cv.abs_of_data(d, end=True) <= cv.abs_of_data(d)


class TestMergeviewProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 4),
        st.integers(1, 6),
        st.integers(1, 12),
        st.data(),
    )
    def test_coverage_matches_brute_force(self, P, blocklen, blockcount,
                                          data):
        from repro.bench.noncontig import build_noncontig_filetype

        views = [
            CompactFileview.from_view(
                0, dt.BYTE,
                build_noncontig_filetype(P, r, blocklen, blockcount),
            )
            for r in range(P)
        ]
        # Drop a random subset of views to create holes.
        keep = data.draw(
            st.lists(st.booleans(), min_size=P, max_size=P)
        )
        assume(any(keep))
        kept = [v for v, k in zip(views, keep) if k]
        mv = build_mergeview(kept)
        span = views[0].filetype.extent
        lo = data.draw(st.integers(0, span))
        hi = data.draw(st.integers(lo, span))
        brute = sum(
            brute_view_data_in_range(v.filetype, 0, lo, hi) for v in kept
        )
        assert mv.data_in_range(lo, hi) == brute
        assert mv.covers(lo, hi) == (brute >= hi - lo)

    def test_full_ensemble_always_covers(self):
        from repro.bench.noncontig import build_noncontig_filetype

        for P in (2, 3, 5):
            views = [
                CompactFileview.from_view(
                    0, dt.BYTE, build_noncontig_filetype(P, r, 4, 6)
                )
                for r in range(P)
            ]
            mv = build_mergeview(views)
            span = views[0].filetype.extent
            for lo in range(0, span, 7):
                assert mv.covers(lo, span)

"""Differential conformance: the proc backend against the simulated ranks.

The multi-process runtime must be *observationally identical* to the
thread-based simulation: the same worker, run on both backends, must
leave byte-identical file contents and fill byte-identical read buffers.
The suite drives every access kind the paper's workloads use (explicit
offsets, independent and collective) through both engines and several
world sizes, over a family of fileview generators, and diffs sim
(SimFileSystem) against proc (OsFileSystem over a temp directory).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.bench.btio import BTIOConfig, run_btio
from repro.datatypes.validation import validate_filetype
from repro.errors import DatatypeError
from repro.fs import OsFileSystem, ShardedFileSystem, SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi.runtime import Runtime
from tests.conftest import datatype_trees

ENGINES = ["listless", "list_based"]
SIZES = [1, 2, 4]

# -- fileview generators (parametrized like test_io_random_fileviews) --


def _interleaved(size, rank):
    """Fig.-4 style interleave: each rank owns every size-th 8-byte
    block.  Resized so instances tile the full P-rank period and the
    ranks stay disjoint across instances."""
    ft = dt.resized(dt.vector(6, 8, size * 8, dt.BYTE), 0, 6 * size * 8)
    return ft, rank * 8


def _strided_gap(size, rank):
    """Sparse blocks with never-written gap bytes between the ranks'
    interleaved runs (period ``3·size + 5``, ranks fill the first
    ``3·size``)."""
    stride = 3 * size + 5
    ft = dt.resized(dt.vector(4, 3, stride, dt.BYTE), 0, 4 * stride)
    return ft, rank * 3


def _irregular(size, rank):
    """Indexed blocks of varying lengths; ranks own disjoint segments
    (displacement strides past both instances)."""
    ft = dt.indexed([2, 5, 1, 4], [0, 4, 13, 17], dt.BYTE)
    return ft, rank * 2 * ft.extent


def _contig(size, rank):
    """Plain contiguous segments, rank-disjoint across both instances."""
    return dt.contiguous(32, dt.BYTE), rank * 64


VIEWS = {
    "interleaved": _interleaved,
    "strided_gap": _strided_gap,
    "irregular": _irregular,
    "contig": _contig,
}


def _worker(comm, view_name, engine, kind, seed, hints=None):
    make = VIEWS[view_name]
    ft, disp = make(comm.size, comm.rank)
    A = ft.size * 2

    def body(fs):
        fh = File.open(comm, fs, "/eq.out", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        fh.set_view(disp, dt.BYTE, ft)
        rng = np.random.default_rng(seed + comm.rank)
        buf = rng.integers(0, 256, A, dtype=np.uint8)
        if kind == "write_at":
            fh.write_at(0, buf)
        elif kind == "write_at_all":
            fh.write_at_all(0, buf)
        else:  # reads need content on disk first
            fh.write_at_all(0, buf)
            # MPI consistency: data another rank physically wrote during
            # the collective is only guaranteed visible after a sync
            # barrier (on proc the race is real, not just theoretical).
            comm.barrier()
            buf[...] = 0
            got = np.zeros(A, dtype=np.uint8)
            if kind == "read_at":
                fh.read_at(0, got)
            else:
                fh.read_at_all(0, got)
            fh.close()
            return got
        fh.close()
        return None

    return body


def run_equivalence(view_name, engine, kind, size, tmp_path, seed=7,
                    hints=None):
    """Run the same worker on both backends; return (sim, proc) results
    as (file bytes, per-rank read buffers)."""

    def worker(comm, fs):
        return _worker(comm, view_name, engine, kind, seed, hints)(fs)

    sim_fs = SimFileSystem()
    sim_reads = Runtime("sim").run(size, worker, sim_fs)
    sim_bytes = bytes(sim_fs.lookup("/eq.out").contents())

    proc_fs = OsFileSystem(str(tmp_path / f"{view_name}-{engine}-{kind}"))
    proc_reads = Runtime("proc").run(size, worker, proc_fs)
    proc_bytes = bytes(proc_fs.lookup("/eq.out").contents())
    proc_fs.close()
    return (sim_bytes, sim_reads), (proc_bytes, proc_reads)


def assert_identical(sim, proc):
    (sim_bytes, sim_reads), (proc_bytes, proc_reads) = sim, proc
    assert sim_bytes == proc_bytes, (
        f"file contents diverge: sim {len(sim_bytes)}B vs "
        f"proc {len(proc_bytes)}B"
    )
    assert len(sim_reads) == len(proc_reads)
    for r, (a, b) in enumerate(zip(sim_reads, proc_reads)):
        if a is None and b is None:
            continue
        assert (a == b).all(), f"rank {r} read buffers diverge"


KINDS = ["write_at", "read_at", "write_at_all", "read_at_all"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("view_name", ["interleaved", "irregular"])
def test_backends_agree(view_name, kind, engine, tmp_path):
    """4 access kinds x 2 engines x 2 view families at P=2 — the core
    conformance matrix (16 cases)."""
    sim, proc = run_equivalence(view_name, engine, kind, 2, tmp_path)
    assert_identical(sim, proc)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("view_name", ["strided_gap", "contig"])
def test_backends_agree_across_world_sizes(view_name, engine, size,
                                           tmp_path):
    """Collective writes across world sizes 1/2/4 on both engines (12
    cases)."""
    sim, proc = run_equivalence(view_name, engine, "write_at_all", size,
                                tmp_path)
    assert_identical(sim, proc)


ALIGNS = ["even", "stripe", "block"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("align", ALIGNS)
def test_backends_agree_domain_alignment(align, engine, tmp_path):
    """Round-based collectives under every file-domain partitioning
    strategy: sim and proc stay byte-identical when a small
    cb_buffer_size forces the multi-round exchange (6 cases x 2
    kinds)."""
    hints = Hints(cb_buffer_size=64, cb_domain_align=align)
    for kind in ("write_at_all", "read_at_all"):
        sim, proc = run_equivalence("interleaved", engine, kind, 4,
                                    tmp_path, hints=hints)
        assert_identical(sim, proc)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("align", ALIGNS)
def test_backends_agree_pipelined(align, engine, tmp_path):
    """Pipelined collective rounds (background file I/O, relaxed p2p
    round synchronization) must stay byte-identical across runtimes —
    the proc backend's recv_any completion path is the real test here
    (6 cases x 2 kinds)."""
    hints = Hints(cb_buffer_size=64, cb_domain_align=align,
                  cb_pipeline="on")
    for kind in ("write_at_all", "read_at_all"):
        sim, proc = run_equivalence("interleaved", engine, kind, 4,
                                    tmp_path, hints=hints)
        assert_identical(sim, proc)


@pytest.mark.parametrize("view_name", ["strided_gap", "contig"])
def test_backends_agree_pipelined_views(view_name, tmp_path):
    """Pipelined rounds over sparse (rmw) and contiguous views, both
    runtimes, collective write+read."""
    hints = Hints(cb_buffer_size=64, cb_pipeline="on")
    for kind in ("write_at_all", "read_at_all"):
        sim, proc = run_equivalence(view_name, "listless", kind, 4,
                                    tmp_path, hints=hints)
        assert_identical(sim, proc)


@pytest.mark.soak
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("align", ALIGNS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("view_name", ["interleaved", "strided_gap"])
def test_backends_agree_alignment_sweep(view_name, engine, align, size,
                                        tmp_path):
    """Alignment strategies across world sizes 1/2/4 on both engines
    (36 cases; soak: CI's runtime-proc job runs it)."""
    hints = Hints(cb_buffer_size=64, cb_domain_align=align)
    sim, proc = run_equivalence(view_name, engine, "write_at_all", size,
                                tmp_path, hints=hints)
    assert_identical(sim, proc)


def _legal_filetype(t) -> bool:
    try:
        validate_filetype(t, dt.BYTE)
    except DatatypeError:
        return False
    return True


@settings(max_examples=8, deadline=None)
@given(datatype_trees().filter(_legal_filetype), st.booleans())
def test_random_fileviews_backends_agree(tmp_path_factory, ftype,
                                         collective):
    """Hypothesis differential: arbitrary monotonic fileviews, both
    backends, byte-identical files and self-roundtripping reads."""
    assume(ftype.size >= 1)
    tmp = tmp_path_factory.mktemp("rteq")
    span = 2 * ftype.extent
    A = ftype.size * 2
    hints = Hints(ind_rd_buffer_size=1 << 16, ind_wr_buffer_size=1 << 16,
                  cb_buffer_size=1 << 16)

    def worker(comm, fs):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine="listless", hints=hints)
        fh.set_view(comm.rank * span, dt.BYTE, ftype)
        rng = np.random.default_rng(50 + comm.rank)
        buf = rng.integers(0, 256, A, dtype=np.uint8)
        if collective:
            fh.write_at_all(0, buf)
        else:
            fh.write_at(0, buf)
        out = np.zeros(A, dtype=np.uint8)
        if collective:
            fh.read_at_all(0, out)
        else:
            fh.read_at(0, out)
        assert (out == buf).all(), "self-roundtrip failed"
        fh.close()
        return out

    sim_fs = SimFileSystem()
    sim_reads = Runtime("sim").run(2, worker, sim_fs)
    proc_fs = OsFileSystem(str(tmp))
    proc_reads = Runtime("proc").run(2, worker, proc_fs)
    assert bytes(sim_fs.lookup("/f").contents()) == \
        bytes(proc_fs.lookup("/f").contents())
    for a, b in zip(sim_reads, proc_reads):
        assert (a == b).all()
    proc_fs.close()


def test_replay_fast_path_backends_agree(tmp_path):
    """Period-translated repeated accesses ride the planner's replay
    fast path (one relocatable plan, re-bound by a scalar file delta
    per access — including its lock ranges); sim and proc must stay
    byte-identical, and the replay must actually engage on both."""
    ft = dt.resized(dt.vector(6, 8, 16, dt.BYTE), 0, 6 * 16)

    def worker(comm, fs):
        fh = File.open(comm, fs, "/rp.out", MODE_CREATE | MODE_RDWR,
                       engine="listless")
        fh.set_view(comm.rank * 8, dt.BYTE, ft)
        A = ft.size
        rng = np.random.default_rng(11 + comm.rank)
        outs = []
        for rep in range(4):
            buf = rng.integers(0, 256, A, dtype=np.uint8)
            fh.write_at(rep * A, buf)
            got = np.zeros(A, dtype=np.uint8)
            fh.read_at(rep * A, got)
            assert (got == buf).all(), "replay roundtrip failed"
            outs.append(got)
        nreplays = fh.engine.stats.plan.plan_replays
        fh.close()
        return np.concatenate(outs), nreplays

    sim_fs = SimFileSystem()
    sim = Runtime("sim").run(2, worker, sim_fs)
    proc_fs = OsFileSystem(str(tmp_path / "replay"))
    proc = Runtime("proc").run(2, worker, proc_fs)
    assert bytes(sim_fs.lookup("/rp.out").contents()) == \
        bytes(proc_fs.lookup("/rp.out").contents())
    for r, ((a, ra), (b, rb)) in enumerate(zip(sim, proc)):
        assert (a == b).all(), f"rank {r} read buffers diverge"
        assert ra == rb, f"rank {r} replay counts diverge"
        # reps 2-4 replay both the write and the read plan.
        assert ra >= 6, (r, ra)
    proc_fs.close()


def test_btio_class_s_byte_identical(tmp_path):
    """The acceptance check: a 4-rank class-S BT-IO run writes the same
    bytes under both runtimes, for both engines."""
    cfg = BTIOConfig(cls="S", nprocs=4, nsteps=1, compute_sweeps=0,
                     verify=True)
    for engine in ENGINES:
        sim_fs = SimFileSystem()
        run_btio(engine, cfg, fs=sim_fs, runtime="sim")
        sim_bytes = bytes(sim_fs.lookup("/btio.out").contents())

        proc_fs = OsFileSystem(str(tmp_path / f"btio-{engine}"))
        run_btio(engine, cfg, fs=proc_fs, runtime="proc")
        proc_bytes = bytes(proc_fs.lookup("/btio.out").contents())
        proc_fs.close()
        assert sim_bytes == proc_bytes, f"{engine}: BTIO output diverges"


@pytest.mark.soak
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("view_name", sorted(VIEWS))
def test_backends_agree_full_sweep(view_name, kind, engine, size,
                                   tmp_path):
    """The full 4 x 4 x 2 x 3 = 96-case matrix (soak: excluded from
    tier-1; CI's runtime-proc job runs it)."""
    sim, proc = run_equivalence(view_name, engine, kind, size, tmp_path)
    assert_identical(sim, proc)


# -- sharded backend: request shipping vs the plain single backend -----

SHIP_PROTOCOLS = ["list", "dtype"]


def run_sharded_equivalence(view_name, engine, kind, size, nshards,
                            protocol, tmp_path, seed=7, runtime="sim"):
    """Run the same worker on a plain SimFileSystem (no shipping) and on
    a ShardedFileSystem with ``ship_protocol`` set; return (plain,
    sharded) results in the :func:`assert_identical` shape."""

    def base_worker(comm, fs):
        return _worker(comm, view_name, engine, kind, seed)(fs)

    def ship_worker(comm, fs):
        return _worker(comm, view_name, engine, kind, seed,
                       hints=Hints(ship_protocol=protocol))(fs)

    sim_fs = SimFileSystem()
    sim_reads = Runtime("sim").run(size, base_worker, sim_fs)
    sim_bytes = bytes(sim_fs.lookup("/eq.out").contents())

    sh_fs = ShardedFileSystem(
        str(tmp_path / f"sh{nshards}-{protocol}-{engine}-{kind}"),
        nshards=nshards, stripe_size=64)
    try:
        sh_reads = Runtime(runtime).run(size, ship_worker, sh_fs)
        sh_bytes = bytes(sh_fs.lookup("/eq.out").contents())
    finally:
        sh_fs.close()
    return (sim_bytes, sim_reads), (sh_bytes, sh_reads)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("protocol", SHIP_PROTOCOLS)
@pytest.mark.parametrize("kind", KINDS)
def test_sharded_backend_agrees(kind, protocol, engine, tmp_path):
    """Request shipping to 2 shard servers — both protocols (list-I/O
    and datatype-I/O), both engines, all four access kinds — must leave
    bytes identical to the plain single-backend run (16 cases)."""
    plain, sharded = run_sharded_equivalence(
        "interleaved", engine, kind, 2, 2, protocol, tmp_path)
    assert_identical(plain, sharded)


def test_sharded_backend_agrees_proc_runtime(tmp_path):
    """The sharded backend under the multi-process runtime: each rank
    process reconnects to the shard servers through a pickled handle;
    the result must still match the plain in-process run."""
    plain, sharded = run_sharded_equivalence(
        "interleaved", "listless", "write_at_all", 2, 2, "dtype",
        tmp_path, runtime="proc")
    assert_identical(plain, sharded)


@pytest.mark.soak
@pytest.mark.parametrize("nshards", [1, 2, 4])
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("protocol", SHIP_PROTOCOLS)
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("view_name", ["interleaved", "strided_gap"])
def test_sharded_backend_full_sweep(view_name, kind, protocol, engine,
                                    nshards, tmp_path):
    """The sharded sweep: 2 views x 4 kinds x 2 protocols x 2 engines x
    {1,2,4} shards at P=4 (96 cases; soak: CI's shipping job runs it)."""
    plain, sharded = run_sharded_equivalence(
        view_name, engine, kind, 4, nshards, protocol, tmp_path)
    assert_identical(plain, sharded)

"""Derived-type constructors: sizes, extents, Nblock, monotonicity."""

import pytest

from repro import datatypes as dt
from repro.errors import DatatypeError


class TestContiguous:
    def test_basic(self):
        t = dt.contiguous(5, dt.INT)
        assert t.size == 20
        assert t.extent == 20
        assert t.is_contiguous
        assert t.num_blocks == 1
        assert t.is_monotonic

    def test_zero_count(self):
        t = dt.contiguous(0, dt.INT)
        assert t.size == 0
        assert t.extent == 0
        assert t.num_blocks == 0

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            dt.contiguous(-1, dt.INT)

    def test_of_noncontiguous_base_merges_at_seams(self):
        # A vector's extent ends flush with its last block, so tiling
        # merges the seam blocks: 2*3 - 2 = 4 maximal blocks.
        v = dt.vector(2, 1, 2, dt.INT)
        t = dt.contiguous(3, v)
        assert t.size == 3 * v.size
        assert t.num_blocks == 4
        assert t.extent == 3 * v.extent
        assert list(t.flat_blocks()) == [(0, 4), (8, 8), (20, 8), (32, 4)]

    def test_of_noncontiguous_base_with_trailing_gap(self):
        # With a trailing gap (resized extent) no seam merge happens.
        v = dt.resized(dt.vector(2, 1, 2, dt.INT), 0, 16)
        t = dt.contiguous(3, v)
        assert t.num_blocks == 6
        assert t.extent == 48

    def test_typemap(self):
        t = dt.contiguous(3, dt.SHORT)
        assert list(t.typemap()) == [(0, 2), (2, 2), (4, 2)]


class TestVector:
    def test_gapped(self):
        t = dt.vector(4, 2, 5, dt.DOUBLE)
        assert t.size == 64
        assert t.num_blocks == 4
        assert t.extent == (3 * 5 + 2) * 8
        assert not t.is_contiguous
        assert t.is_monotonic

    def test_dense_vector_collapses_to_one_block(self):
        t = dt.vector(4, 2, 2, dt.DOUBLE)
        assert t.num_blocks == 1
        assert t.is_contiguous
        assert t.size == t.extent == 64

    def test_hvector_bytes_stride(self):
        t = dt.hvector(3, 1, 100, dt.INT)
        assert t.size == 12
        assert t.extent == 204
        assert t.num_blocks == 3

    def test_overlapping_stride_not_monotonic(self):
        t = dt.hvector(3, 2, 4, dt.INT)  # 8-byte blocks, 4-byte stride
        assert not t.is_monotonic

    def test_negative_stride_not_monotonic(self):
        t = dt.hvector(3, 1, -16, dt.DOUBLE)
        assert not t.is_monotonic
        assert t.true_lb == -32
        assert t.size == 24

    def test_vector_nblock_large_is_O1(self):
        # Constructing a million-block vector must be instant - the whole
        # point of avoiding explicit flattening at construction time.
        t = dt.vector(10**6, 1, 2, dt.DOUBLE)
        assert t.num_blocks == 10**6
        assert t.size == 8 * 10**6


class TestIndexed:
    def test_element_displacements(self):
        t = dt.indexed([2, 1], [0, 4], dt.INT)
        assert list(t.flat_blocks()) == [(0, 8), (16, 4)]
        assert t.num_blocks == 2

    def test_hindexed_byte_displacements(self):
        t = dt.hindexed([2, 1], [0, 16], dt.INT)
        assert list(t.flat_blocks()) == [(0, 8), (16, 8 - 4)]
        assert t.size == 12

    def test_adjacent_blocks_merge_in_nblock(self):
        t = dt.indexed([2, 2], [0, 2], dt.INT)
        assert t.num_blocks == 1
        assert t.is_contiguous

    def test_indexed_block(self):
        t = dt.indexed_block(2, [0, 3, 6], dt.INT)
        assert t.size == 24
        assert t.num_blocks == 3

    def test_hindexed_block(self):
        t = dt.hindexed_block(1, [0, 100], dt.DOUBLE)
        assert list(t.flat_blocks()) == [(0, 8), (100, 8)]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DatatypeError):
            dt.indexed([1, 2], [0], dt.INT)

    def test_unsorted_displacements_not_monotonic(self):
        t = dt.indexed([1, 1], [5, 0], dt.INT)
        assert not t.is_monotonic
        assert t.size == 8

    def test_seq_first_last_for_unsorted(self):
        t = dt.indexed([1, 1], [5, 0], dt.INT)
        # Type-map order starts at element 5, ends after element 0.
        assert t.seq_first == 20
        assert t.seq_last_end == 4


class TestStruct:
    def test_mixed_types(self):
        t = dt.struct([2, 1], [0, 12], [dt.INT, dt.DOUBLE])
        assert t.size == 16
        assert t.true_ub == 20
        assert t.num_blocks == 2

    def test_adjacent_fields_merge(self):
        t = dt.struct([1, 1], [0, 4], [dt.INT, dt.INT])
        assert t.num_blocks == 1
        assert t.is_contiguous

    def test_empty_field_skipped(self):
        t = dt.struct([0, 1], [0, 8], [dt.DOUBLE, dt.INT])
        assert t.size == 4
        assert t.num_blocks == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatatypeError):
            dt.struct([1], [0, 1], [dt.INT])


class TestResized:
    def test_extends_extent(self):
        t = dt.resized(dt.INT, 0, 16)
        assert t.size == 4
        assert t.extent == 16
        assert not t.is_contiguous  # data does not fill the extent

    def test_shrinks_extent(self):
        v = dt.vector(2, 1, 2, dt.INT)
        t = dt.resized(v, 0, 8)
        assert t.extent == 8
        assert t.size == 8

    def test_negative_lb(self):
        t = dt.resized(dt.INT, -4, 12)
        assert t.lb == -4
        assert t.ub == 8
        assert t.true_lb == 0

    def test_tiling_uses_resized_extent(self):
        t = dt.resized(dt.INT, 0, 10)
        c = dt.contiguous(3, t)
        assert list(c.flat_blocks()) == [(0, 4), (10, 4), (20, 4)]


class TestAtOffsetAndDup:
    def test_at_offset(self):
        t = dt.at_offset(dt.DOUBLE, 24)
        assert list(t.flat_blocks()) == [(24, 8)]
        assert t.true_lb == 24

    def test_dup_same_typemap(self, sample_types):
        for name, t in sample_types.items():
            d = dt.dup(t)
            assert list(d.typemap()) == list(t.typemap()), name
            assert d.extent == t.extent, name
            assert d.lb == t.lb, name

    def test_dup_is_new_object(self):
        t = dt.vector(2, 1, 2, dt.INT)
        assert dt.dup(t) is not t


class TestDepth:
    def test_depth_grows_with_nesting(self):
        t = dt.DOUBLE
        prev = t.depth
        for _ in range(4):
            t = dt.vector(2, 1, 2, t)
            assert t.depth > prev
            prev = t.depth

    def test_depth_independent_of_counts(self):
        small = dt.vector(2, 1, 2, dt.DOUBLE)
        big = dt.vector(10**5, 1, 2, dt.DOUBLE)
        assert small.depth == big.depth

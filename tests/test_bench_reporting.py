"""Reporting and timing helpers."""

import pytest

from repro.bench.reporting import (
    fmt_bytes,
    format_series,
    format_table,
    mb_per_s,
)
from repro.bench.timing import PhaseClock, PhaseTime
from repro.fs import SimFileSystem
from repro.mpi.runtime import World


class TestFormatting:
    def test_mb_per_s(self):
        assert mb_per_s(2_000_000) == 2.0

    @pytest.mark.parametrize(
        "n,expect",
        [(10, "10 B"), (2048, "2.05 kB"), (3.2e6, "3.2 MB"),
         (1.7e9, "1.7 GB")],
    )
    def test_fmt_bytes(self, n, expect):
        assert fmt_bytes(n) == expect

    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [(1, 2.5), (33, 4.0)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_series(self):
        out = format_series("x", [1, 2], [("c1", [10, 20]),
                                          ("c2", [30, 40])])
        assert "c1" in out and "40" in out
        assert out.splitlines()[2].split()[0] == "1"


class TestPhaseClock:
    def test_combines_components(self):
        import numpy as np

        fs = SimFileSystem()
        world = World(1)
        clk = PhaseClock(fs, world)
        clk.start()
        fs.create("/x").pwrite(0, np.zeros(1000, dtype=np.uint8))
        world.account(0, 500)
        t = clk.stop()
        assert t.wall > 0
        assert t.fs_sim > 0
        assert t.net_sim > 0
        assert t.total == pytest.approx(t.wall + t.fs_sim + t.net_sim)

    def test_bandwidth(self):
        t = PhaseTime(wall=1.0, fs_sim=0.5, net_sim=0.5)
        assert t.bandwidth(4_000_000) == pytest.approx(2_000_000)

    def test_excludes_prior_activity(self):
        import numpy as np

        fs = SimFileSystem()
        world = World(1)
        fs.create("/x").pwrite(0, np.zeros(10_000, "u1"))
        clk = PhaseClock(fs, world)
        clk.start()
        t = clk.stop()
        assert t.fs_sim == 0
        assert t.net_sim == 0

"""MPI-IO hints: parsing, validation, defaults."""

import pytest

from repro.errors import HintError
from repro.io.hints import Hints


class TestDefaults:
    def test_romio_like_defaults(self):
        h = Hints()
        assert h.ind_rd_buffer_size == 4 * 1024 * 1024
        assert h.ind_wr_buffer_size == 512 * 1024
        assert h.cb_buffer_size == 4 * 1024 * 1024
        assert h.cb_nodes is None
        assert h.ds_read and h.ds_write

    def test_effective_cb_nodes_default_all(self):
        assert Hints().effective_cb_nodes(8) == 8

    def test_effective_cb_nodes_clamped(self):
        assert Hints(cb_nodes=4).effective_cb_nodes(2) == 2
        assert Hints(cb_nodes=2).effective_cb_nodes(8) == 2


class TestValidation:
    @pytest.mark.parametrize(
        "field", ["ind_rd_buffer_size", "ind_wr_buffer_size",
                  "cb_buffer_size"]
    )
    def test_positive_required(self, field):
        with pytest.raises(HintError):
            Hints(**{field: 0})

    def test_cb_nodes_positive(self):
        with pytest.raises(HintError):
            Hints(cb_nodes=0)

    def test_cb_domain_align_enum(self):
        from repro.io.hints import DOMAIN_ALIGNMENTS

        for v in DOMAIN_ALIGNMENTS:
            assert Hints(cb_domain_align=v).cb_domain_align == v
        assert Hints().cb_domain_align is None
        with pytest.raises(HintError):
            Hints(cb_domain_align="diagonal")

    def test_cb_pipeline_enum(self):
        from repro.io.hints import PIPELINE_MODES

        for v in PIPELINE_MODES:
            assert Hints(cb_pipeline=v).cb_pipeline == v
        assert Hints().cb_pipeline == "auto"
        with pytest.raises(HintError):
            Hints(cb_pipeline="maybe")


class TestFromMapping:
    def test_none_gives_defaults(self):
        assert Hints.from_mapping(None) == Hints()

    def test_string_values_coerced(self):
        h = Hints.from_mapping(
            {"cb_buffer_size": "65536", "ds_write": "false"}
        )
        assert h.cb_buffer_size == 65536
        assert h.ds_write is False

    def test_unknown_key_rejected(self):
        with pytest.raises(HintError):
            Hints.from_mapping({"cb_buffr_size": 1})

    def test_malformed_value_rejected(self):
        """Coercion failures surface as HintError naming the key, not
        as a bare ValueError from int()."""
        with pytest.raises(HintError, match="cb_buffer_size"):
            Hints.from_mapping({"cb_buffer_size": "lots"})

    def test_string_domain_align_passes_through(self):
        h = Hints.from_mapping({"cb_domain_align": "stripe"})
        assert h.cb_domain_align == "stripe"
        with pytest.raises(HintError):
            Hints.from_mapping({"cb_domain_align": "diag"})

    def test_string_pipeline_passes_through(self):
        h = Hints.from_mapping({"cb_pipeline": "on"})
        assert h.cb_pipeline == "on"
        with pytest.raises(HintError, match="cb_pipeline"):
            Hints.from_mapping({"cb_pipeline": "fast"})

    def test_pipeline_in_fingerprint(self):
        """A set_info pipeline toggle must never replay a plan built
        under the other mode (the plan shapes differ)."""
        assert Hints(cb_pipeline="on").fingerprint() != \
            Hints(cb_pipeline="off").fingerprint()

    def test_with_(self):
        h = Hints().with_(cb_nodes=3)
        assert h.cb_nodes == 3
        assert h.cb_buffer_size == Hints().cb_buffer_size


class TestStripingHints:
    def test_defaults_none(self):
        h = Hints()
        assert h.striping_factor is None
        assert h.striping_unit is None

    def test_validation(self):
        import pytest as _pytest

        with _pytest.raises(HintError):
            Hints(striping_factor=0)
        with _pytest.raises(HintError):
            Hints(striping_unit=0)

    def test_applied_at_creation(self):
        import numpy as np

        from repro.fs import SimFileSystem
        from repro.io import File, MODE_CREATE, MODE_RDWR
        from repro.mpi import run_spmd

        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(
                comm, fs, "/striped", MODE_CREATE | MODE_RDWR,
                hints=Hints(striping_factor=4, striping_unit=1024),
            )
            fh.write_at(0, np.zeros(8192, dtype=np.uint8))
            fh.close()

        run_spmd(2, worker)
        f = fs.lookup("/striped")
        assert f.striping.ndisks == 4
        assert f.striping.stripe_size == 1024
        # A large access engages all four stripes.
        assert f.striping.streams_for(0, 8192) == 4

    def test_ignored_for_existing_file(self):
        import numpy as np

        from repro.fs import SimFileSystem
        from repro.io import File, MODE_CREATE, MODE_RDWR
        from repro.mpi import run_spmd

        fs = SimFileSystem()
        fs.create("/old")

        def worker(comm):
            fh = File.open(
                comm, fs, "/old", MODE_CREATE | MODE_RDWR,
                hints=Hints(striping_factor=8),
            )
            fh.close()

        run_spmd(1, worker)
        assert fs.lookup("/old").striping.ndisks == 1

    def test_striping_speeds_up_big_access(self):
        """The device model must credit striped files with aggregated
        bandwidth."""
        import numpy as np

        from repro.fs import DeviceModel, SimFileSystem, StripingConfig

        fs = SimFileSystem(device=DeviceModel(latency=0.0))
        plain = fs.create("/plain")
        striped = fs.create(
            "/striped", striping=StripingConfig(ndisks=8,
                                                stripe_size=4096)
        )
        data = np.zeros(1 << 20, dtype=np.uint8)
        plain.pwrite(0, data)
        striped.pwrite(0, data)
        assert striped.stats.sim_time < plain.stats.sim_time / 4

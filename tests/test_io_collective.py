"""Two-phase collective I/O: correctness, optimization behaviour, costs."""

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.noncontig import (
    build_noncontig_filetype,
    build_noncontig_memtype,
)
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd

ENGINES = ["listless", "list_based"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("P", [1, 2, 4])
@pytest.mark.parametrize("bufsize", [128, 4096])
def test_collective_write_read_roundtrip(engine, P, bufsize):
    blocklen, blockcount = 8, 16
    A = blocklen * blockcount
    fs = SimFileSystem()
    hints = Hints(cb_buffer_size=bufsize)

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        buf = np.random.default_rng(r).integers(0, 256, A, dtype=np.uint8)
        fh.write_at_all(0, buf)
        out = np.zeros(A, dtype=np.uint8)
        fh.read_at_all(0, out)
        assert (out == buf).all()
        fh.close()

    run_spmd(P, worker)
    assert fs.lookup("/f").size == P * A


@pytest.mark.parametrize("engine", ENGINES)
def test_collective_with_noncontig_memory(engine):
    P, blocklen, blockcount = 3, 4, 8
    A = blocklen * blockcount
    fs = SimFileSystem()

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        mt = build_noncontig_memtype(blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        buf = np.random.default_rng(10 + r).integers(
            0, 256, 2 * A, dtype=np.uint8
        )
        fh.write_at_all(0, buf, 1, mt)
        out = np.zeros(2 * A, dtype=np.uint8)
        fh.read_at_all(0, out, 1, mt)
        mask = np.zeros(2 * A, dtype=bool)
        for b in range(blockcount):
            mask[2 * b * blocklen : (2 * b + 1) * blocklen] = True
        assert (out[mask] == buf[mask]).all()
        fh.close()

    run_spmd(P, worker)


@pytest.mark.parametrize("engine", ENGINES)
def test_zero_size_participants(engine):
    """Ranks with nothing to contribute must still complete the
    collective (MPI requires all ranks call it)."""
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(0, dt.BYTE, dt.BYTE)
        if comm.rank == 0:
            fh.write_at_all(0, np.arange(16, dtype=np.uint8))
        else:
            fh.write_at_all(0, np.zeros(0, dtype=np.uint8))
        fh.close()

    run_spmd(3, worker)
    assert fs.lookup("/f").size == 16


@pytest.mark.parametrize("engine", ENGINES)
def test_all_empty_collective(engine):
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.write_at_all(0, np.zeros(0, dtype=np.uint8))
        fh.close()

    run_spmd(2, worker)
    assert fs.lookup("/f").size == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_cb_nodes_restricts_iops(engine):
    """With cb_nodes=1 only rank 0 touches the file."""
    fs = SimFileSystem()
    hints = Hints(cb_nodes=1)
    P, blocklen, blockcount = 4, 4, 8
    A = blocklen * blockcount

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        buf = np.full(A, r + 1, dtype=np.uint8)
        fh.write_at_all(0, buf)
        out = np.zeros(A, dtype=np.uint8)
        fh.read_at_all(0, out)
        assert (out == r + 1).all()
        fh.close()

    run_spmd(P, worker)
    assert fs.lookup("/f").size == P * A


@pytest.mark.parametrize("engine", ENGINES)
def test_full_coverage_write_skips_preread(engine):
    """A collective write that tiles its range completely must not read
    the file first (ROMIO's merge optimization / the mergeview check)."""
    fs = SimFileSystem()
    P, blocklen, blockcount = 2, 8, 32
    A = blocklen * blockcount

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        fh.write_at_all(0, np.full(A, r + 1, dtype=np.uint8))
        fh.close()

    run_spmd(P, worker)
    stats = fs.lookup("/f").stats.snapshot()
    assert stats["n_reads"] == 0
    assert stats["bytes_written"] == P * A


@pytest.mark.parametrize("engine", ENGINES)
def test_partial_coverage_write_does_preread(engine):
    """If only half the interleave slots are written, the gaps force a
    read-modify-write, and pre-existing data must survive."""
    fs = SimFileSystem()
    P, blocklen, blockcount = 2, 8, 8
    A = blocklen * blockcount
    # Pre-fill the file region with a sentinel.
    fs.create("/f").pwrite(0, np.full(2 * P * A, 0xEE, dtype=np.uint8))

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        # Both ranks use rank-0-style views covering only slot 0 of each
        # stride: slot 1 is never written.
        ft = build_noncontig_filetype(P, 0, blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        if r == 0:
            fh.write_at_all(0, np.full(A, 0x11, dtype=np.uint8))
        else:
            fh.write_at_all(0, np.zeros(0, dtype=np.uint8))
        fh.close()

    run_spmd(P, worker)
    data = fs.lookup("/f").contents()
    stats = fs.lookup("/f").stats.snapshot()
    assert stats["n_reads"] >= 1
    for b in range(blockcount):
        s = b * P * blocklen
        assert (data[s : s + blocklen] == 0x11).all()
        assert (data[s + blocklen : s + 2 * blocklen] == 0xEE).all()


def test_listless_exchanges_no_lists():
    """Fileview caching: after set_view, collective accesses move only
    file data (+ small headers) — never per-access ol-lists."""
    P, blocklen, blockcount = 4, 8, 256
    A = blocklen * blockcount
    results = {}
    for engine in ENGINES:
        fs = SimFileSystem()
        worlds = []

        def worker(comm):
            r = comm.rank
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            ft = build_noncontig_filetype(P, r, blocklen, blockcount)
            fh.set_view(0, dt.BYTE, ft)
            buf = np.full(A, r, dtype=np.uint8)
            for rep in range(4):
                fh.write_at_all(rep * A, buf)
            fh.close()

        run_spmd(P, worker, world_out=worlds)
        results[engine] = worlds[0].total_bytes_sent()
    # The list-based engine ships 16 bytes of ol-list per 8-byte block on
    # top of the data; listless ships the data (once) plus compact views.
    assert results["list_based"] > 2 * results["listless"]


@pytest.mark.parametrize("engine", ENGINES)
def test_repeated_collective_appends(engine):
    """BTIO-style: one collective write per step at advancing offsets."""
    fs = SimFileSystem()
    P, blocklen, blockcount = 2, 4, 4
    A = blocklen * blockcount
    steps = 3

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        for s in range(steps):
            fh.write_at_all(s * A, np.full(A, 10 * s + r, dtype=np.uint8))
        fh.close()

    run_spmd(P, worker)
    data = fs.lookup("/f").contents()
    assert data.size == steps * P * A
    for s in range(steps):
        seg = data[s * P * A : (s + 1) * P * A]
        for b in range(blockcount):
            for r in range(P):
                blk = seg[(b * P + r) * blocklen : (b * P + r + 1) * blocklen]
                assert (blk == 10 * s + r).all(), (s, b, r)


@pytest.mark.parametrize("engine", ENGINES)
def test_more_iops_than_bytes(engine):
    """Degenerate aggregation: more IOPs than file bytes leaves some
    IOPs with empty domains; the access must still complete exactly."""
    fs = SimFileSystem()

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(0, dt.BYTE, dt.BYTE)
        if comm.rank == 0:
            fh.write_at_all(0, np.array([7, 8], dtype=np.uint8))
        else:
            fh.write_at_all(0, np.zeros(0, dtype=np.uint8))
        out = np.zeros(2, dtype=np.uint8)
        fh.read_at_all(0, out)
        assert (out == [7, 8]).all()
        fh.close()

    run_spmd(4, worker)
    assert fs.lookup("/f").size == 2


@pytest.mark.parametrize("engine", ENGINES)
def test_single_byte_windows(engine):
    """cb_buffer_size=1: the two-phase window loop runs per byte and
    must still assemble everything correctly."""
    fs = SimFileSystem()
    P, blocklen, blockcount = 2, 3, 4
    A = blocklen * blockcount
    hints = Hints(cb_buffer_size=1)

    def worker(comm):
        r = comm.rank
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine=engine, hints=hints)
        ft = build_noncontig_filetype(P, r, blocklen, blockcount)
        fh.set_view(0, dt.BYTE, ft)
        buf = np.full(A, r + 1, dtype=np.uint8)
        fh.write_at_all(0, buf)
        out = np.zeros(A, dtype=np.uint8)
        fh.read_at_all(0, out)
        assert (out == r + 1).all()
        fh.close()

    run_spmd(P, worker)
    data = fs.lookup("/f").contents()
    for b in range(blockcount):
        for r in range(P):
            blk = data[(b * P + r) * blocklen : (b * P + r + 1) * blocklen]
            assert (blk == r + 1).all()

"""The tracer: span recording, the zero-cost off path, export formats."""

import json

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd
from repro.obs import chrome_trace, export_chrome_trace, text_summary, trace
from repro.obs.trace import _NOOP, Tracer


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts with tracing off and an empty ring."""
    prev = trace.set_tracing(False)
    trace.TRACER.clear()
    yield
    trace.set_tracing(prev)
    trace.TRACER.clear()


class TestOffPath:
    def test_span_returns_shared_noop(self):
        # The off path must allocate nothing: every call returns the
        # same singleton context manager.
        a = trace.span("x", bytes=4)
        b = trace.span("y")
        assert a is _NOOP and b is _NOOP

    def test_no_spans_recorded_when_off(self):
        with trace.span("off.span"):
            pass
        trace.add_span("off.manual", trace.now())
        assert len(trace.TRACER) == 0

    def test_engine_run_records_nothing_when_off(self):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine="listless")
            fh.set_view(0, dt.BYTE, dt.vector(32, 4, 8, dt.BYTE))
            fh.write_at_all(0, np.zeros(128, dtype=np.uint8))
            fh.close()

        run_spmd(2, worker)
        assert len(trace.TRACER) == 0

    def test_set_tracing_returns_previous(self):
        assert trace.set_tracing(True) is False
        assert trace.set_tracing(False) is True
        assert not trace.enabled()


class TestRecording:
    def test_span_records_name_and_args(self):
        trace.set_tracing(True)
        with trace.span("unit.test", bytes=17):
            pass
        spans = trace.TRACER.spans()
        assert len(spans) == 1
        s = spans[0]
        assert s.name == "unit.test"
        assert s.args == {"bytes": 17}
        assert s.duration >= 0.0

    def test_nesting_depth(self):
        trace.set_tracing(True)
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        by_name = {s.name: s for s in trace.TRACER.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_manual_add_span(self):
        trace.set_tracing(True)
        t0 = trace.now()
        trace.add_span("manual.stamp", t0, bytes=3)
        (s,) = trace.TRACER.spans()
        assert s.name == "manual.stamp" and s.args == {"bytes": 3}

    def test_ring_is_bounded(self):
        tr = Tracer(max_spans_per_rank=4)
        for i in range(10):
            tr.add(f"s{i}", trace.now(), rank=0)
        spans = tr.spans()
        assert len(spans) == 4
        assert [s.name for s in spans] == ["s6", "s7", "s8", "s9"]

    def test_clear_restarts_epoch(self):
        trace.set_tracing(True)
        with trace.span("a"):
            pass
        trace.TRACER.clear()
        assert len(trace.TRACER) == 0
        assert trace.TRACER.ranks() == []

    def test_per_rank_rings_under_spmd(self):
        trace.set_tracing(True)
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine="listless")
            fh.set_view(0, dt.BYTE, dt.vector(32, 4, 8, dt.BYTE))
            fh.write_at_all(0, np.zeros(128, dtype=np.uint8))
            fh.close()

        run_spmd(4, worker)
        assert trace.TRACER.ranks() == [0, 1, 2, 3]
        for r in range(4):
            names = {s.name for s in trace.TRACER.spans(rank=r)}
            assert "spmd.rank" in names
            assert "listless.write_collective" in names

    def test_env_parsing(self, monkeypatch):
        from repro.obs.trace import _env_enabled

        for v, want in (("1", True), ("0", False), ("false", False),
                        ("off", False), ("yes", True), ("", False)):
            monkeypatch.setenv("REPRO_TRACE", v)
            assert _env_enabled() is want, v


class TestObsTraceHint:
    def test_hint_enables_tracing(self):
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine="listless",
                           hints=Hints(obs_trace=True))
            fh.write_at(0, np.zeros(16, dtype=np.uint8))
            fh.close()

        run_spmd(1, worker)
        assert trace.enabled()
        assert len(trace.TRACER) > 0

    def test_hint_coerced_from_info_mapping(self):
        h = Hints.from_mapping({"obs_trace": "true"})
        assert h.obs_trace is True
        assert Hints().obs_trace is False


class TestExport:
    def _traced_run(self, nprocs=2):
        trace.set_tracing(True)
        fs = SimFileSystem()

        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine="listless")
            fh.set_view(0, dt.BYTE, dt.vector(16, 4, 8, dt.BYTE))
            fh.write_at_all(0, np.zeros(64, dtype=np.uint8))
            fh.close()

        run_spmd(nprocs, worker)

    def test_chrome_trace_structure(self):
        self._traced_run()
        doc = chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        evs = doc["traceEvents"]
        xs = [e for e in evs if e["ph"] == "X"]
        ms = [e for e in evs if e["ph"] == "M"]
        assert xs and ms
        # One name + one sort-index metadata record per rank track.
        assert {e["tid"] for e in xs} == {0, 1}
        assert len(ms) == 4
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["cat"] == e["name"].split(".", 1)[0]

    def test_export_file_is_loadable_json(self, tmp_path):
        self._traced_run()
        path = tmp_path / "trace.json"
        n = export_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert n == sum(
            1 for e in doc["traceEvents"] if e["ph"] == "X"
        ) > 0

    def test_text_summary_aggregates(self):
        self._traced_run()
        out = text_summary()
        assert "spmd.rank" in out
        assert "count" in out and "total [ms]" in out

    def test_text_summary_hint_when_empty(self):
        assert "no spans" in text_summary(tracer=Tracer())


class TestCategories:
    """REPRO_TRACE=exec,fs-style narrowing: only named categories (the
    span-name prefix before the first dot) record; everything else takes
    the off path."""

    def test_filter_records_only_matching(self):
        trace.set_tracing(True, categories=("exec",))
        with trace.span("exec.round"):
            pass
        with trace.span("ff.pack"):
            pass
        trace.add_span("ff.unpack", trace.now())
        trace.add_span("exec.op", trace.now())
        assert {s.name for s in trace.TRACER.spans()} == {
            "exec.round", "exec.op"
        }

    def test_filtered_span_takes_noop_path(self):
        trace.set_tracing(True, categories=("exec",))
        assert trace.span("ff.pack") is _NOOP
        assert trace.span("exec.x") is not _NOOP

    def test_set_tracing_round_trips_categories(self):
        trace.set_tracing(True, categories=("exec", "fs"))
        prev = trace.set_tracing(False)
        assert prev == frozenset({"exec", "fs"})
        assert trace.set_tracing(prev) is False
        assert trace.TRACE_ON == frozenset({"exec", "fs"})

    def test_comma_string_accepted(self):
        trace.set_tracing("aggregation, exec")
        assert trace.TRACE_ON == frozenset({"aggregation", "exec"})

    def test_env_comma_list(self, monkeypatch):
        from repro.obs.trace import _env_enabled

        monkeypatch.setenv("REPRO_TRACE", "exec, fs")
        assert _env_enabled() == frozenset({"exec", "fs"})

    def test_hot_kernel_stays_dark_when_ff_filtered(self):
        """The ff_pack hot guard is tri-state aware: with category
        ``ff`` excluded the kernel records nothing at all."""
        from repro.core.ff_pack import ff_pack

        src = np.arange(64, dtype=np.uint8)
        dst = np.zeros(64, dtype=np.uint8)
        vt = dt.vector(8, 4, 8, dt.BYTE)
        trace.set_tracing(True, categories=("exec",))
        assert ff_pack(src, 1, vt, 0, dst, 32) == 32
        assert len(trace.TRACER) == 0
        trace.set_tracing(True)
        assert ff_pack(src, 1, vt, 0, dst, 32) == 32
        assert {s.name for s in trace.TRACER.spans()} == {"ff.pack"}


class TestEdgesAndOverflow:
    def test_add_edge_off_is_noop(self):
        trace.add_edge("send", (0, 1, 5, 0), peer=1)
        assert trace.TRACER.edges() == []

    def test_edges_survive_category_narrowing(self):
        # Edges feed the causal graph; narrowing span categories must
        # not drop them.
        trace.set_tracing(True, categories=("exec",))
        trace.add_edge("send", (0, 1, 5, 0), peer=1)
        (e,) = trace.TRACER.edges()
        assert e.kind == "send" and e.key == (0, 1, 5, 0)

    def test_snapshot_counts_dropped_spans(self):
        tr = Tracer(max_spans_per_rank=2)
        for i in range(5):
            tr.add(f"s{i}", trace.now(), rank=0)
        snap = tr.snapshot()
        assert snap["spans"][0] == 2
        assert snap["spans_dropped"][0] == 3
        assert tr.dropped(0) == 3
        assert tr.dropped() == {0: 3}

    def test_flow_events_for_matched_edge_pairs(self):
        trace.set_tracing(True)
        t = trace.now()
        trace.TRACER.edge("send", (0, 1, 7, 0), peer=1, rank=0,
                          t0=t, t1=t)
        trace.TRACER.edge("recv", (0, 1, 7, 0), peer=0, rank=1,
                          t0=t, t1=t + 1e-4)
        trace.TRACER.edge("recv", (3, 1, 9, 0), peer=3, rank=1,
                          t0=t, t1=t)  # unmatched: no flow
        doc = chrome_trace()
        flows = [e for e in doc["traceEvents"] if e.get("cat") == "flow"]
        assert len(flows) == 2
        s, f = flows
        assert s["ph"] == "s" and s["tid"] == 0
        assert f["ph"] == "f" and f["tid"] == 1 and f["bp"] == "e"
        assert s["id"] == f["id"]
        assert f["ts"] >= s["ts"]

    def test_export_state_ships_ids_edges_and_dropped(self):
        tr = Tracer(max_spans_per_rank=2)
        t = trace.now()
        for i in range(3):
            tr.add(f"s{i}", t, rank=1)
        tr.edge("send", (1, 0, 5, 0), peer=0, rank=1, t0=t, t1=t)
        sink = Tracer()
        sink.ingest_state(tr.export_state())
        assert [s.name for s in sink.spans()] == ["s1", "s2"]
        assert sink.spans()[0].sid >= 0
        (e,) = sink.edges()
        assert e.kind == "send" and e.rank == 1 and e.peer == 0
        assert sink.dropped(1) == 1

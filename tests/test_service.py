"""The multi-tenant IOP service: admission, batching, the server.

Layered like the subsystem itself:

* :class:`TestAdmission` — the controller alone (queue-full
  backpressure, in-flight byte budgets, weighted-fair DRR dequeue,
  the unfair baseline), driven with dummy request objects;
* :class:`TestBatching` — ``plan_batches`` alone (write exact-tiling,
  overlap fallback, read gap merging, the merge-off baseline);
* :class:`TestServer` — the running service end to end (byte-identity,
  per-tenant metrics, the batching counter proof, proc workers,
  worker-kill fault injection);
* :class:`TestSoak` — the concurrent-clients harness (small tier-1
  point + ``soak``-marked 32-client runs).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import (
    ServiceError,
    ServiceQueueFull,
    ServiceWorkerError,
)
from repro.server import (
    AdmissionController,
    IOPServer,
    ServiceClient,
    plan_batches,
    run_soak,
)
from repro.server.soak import SoakConfig


@dataclass
class _Req:
    """Stand-in request for admission/batching unit tests."""

    path: str = "/f"
    write: bool = True
    offset: int = 0
    nbytes: int = 0
    tag: str = ""


def _post_n(adm, tenant, n, nbytes, **kw):
    reqs = [_Req(nbytes=nbytes, tag=f"{tenant}{i}", **kw)
            for i in range(n)]
    for r in reqs:
        adm.post(tenant, r, r.nbytes)
    return reqs


class TestAdmission:
    def test_queue_full_rejects_at_post(self):
        adm = AdmissionController()
        t = adm.register("a", queue_depth=2)
        _post_n(adm, "a", 2, 10)
        with pytest.raises(ServiceQueueFull):
            adm.post("a", _Req(nbytes=10), 10)
        assert t.stats.posted == 3
        assert t.stats.admitted == 2
        assert t.stats.rejected_queue_full == 1
        # The rejected request was never enqueued.
        assert len(t.queue) == 2

    def test_byte_budget_caps_in_flight(self):
        adm = AdmissionController(quantum=1000)
        t = adm.register("a", byte_budget=100)
        _post_n(adm, "a", 3, 60)
        first = adm.take()
        # 60 in flight; +60 would breach the 100-byte budget.
        assert len(first) == 1
        assert t.in_flight_bytes == 60
        assert t.stats.budget_stalls == 1
        assert adm.take() == []
        adm.complete("a", 60, ok=True)
        second = adm.take()
        assert len(second) == 1
        assert t.in_flight_bytes == 60

    def test_oversized_request_is_not_starved(self):
        adm = AdmissionController(quantum=1000)
        adm.register("a", byte_budget=100)
        adm.post("a", _Req(nbytes=700), 700)
        # Bigger than the whole budget, but nothing is in flight:
        # it must dispatch (possibly after accruing DRR credit).
        out = adm.take()
        assert len(out) == 1

    def test_weighted_fair_dequeue_is_drr(self):
        """Dispatch *bandwidth* tracks weight: with quantum-sized
        requests, weight 2 drains twice as fast as weight 1."""
        q = 64
        adm = AdmissionController(quantum=q)
        a = adm.register("a", weight=2, byte_budget=1 << 30)
        b = adm.register("b", weight=1, byte_budget=1 << 30)
        _post_n(adm, "a", 12, q)
        _post_n(adm, "b", 12, q)
        for _ in range(4):
            adm.take()
        assert a.stats.dispatched == 8
        assert b.stats.dispatched == 4

    def test_idle_tenant_carries_no_deficit(self):
        q = 64
        adm = AdmissionController(quantum=q)
        a = adm.register("a", byte_budget=1 << 30)
        # Several empty passes must not bank credit for a burst.
        for _ in range(10):
            adm.take()
        assert a.deficit == 0
        _post_n(adm, "a", 5, q)
        out = adm.take()
        # One rotation's worth (1 quantum => 1 request), not 10.
        assert len(out) == 1

    def test_unfair_mode_is_arrival_order_without_budgets(self):
        adm = AdmissionController(fair=False)
        adm.register("a", byte_budget=1)
        adm.register("b", byte_budget=1)
        ra = _Req(nbytes=500, tag="a0")
        rb = _Req(nbytes=500, tag="b0")
        ra2 = _Req(nbytes=500, tag="a1")
        adm.post("a", ra, 500)
        adm.post("b", rb, 500)
        adm.post("a", ra2, 500)
        out = adm.take()
        # Budgets (1 byte!) ignored; strict global arrival order.
        assert [r.tag for r in out] == ["a0", "b0", "a1"]

    def test_duplicate_tenant_rejected(self):
        adm = AdmissionController()
        adm.register("a")
        with pytest.raises(ServiceError):
            adm.register("a")


class TestBatching:
    def test_tiling_writes_merge(self):
        items = [_Req(write=True, offset=o, nbytes=10)
                 for o in (20, 0, 10)]
        (b,) = plan_batches(items)
        assert (b.lo, b.hi, b.write) == (0, 30, True)
        assert len(b.items) == 3

    def test_gapped_writes_split(self):
        items = [_Req(write=True, offset=0, nbytes=10),
                 _Req(write=True, offset=11, nbytes=10)]
        bs = plan_batches(items)
        assert [(b.lo, b.hi) for b in bs] == [(0, 10), (11, 21)]

    def test_overlapping_writes_fall_back_to_arrival_order(self):
        items = [_Req(write=True, offset=0, nbytes=10, tag="first"),
                 _Req(write=True, offset=5, nbytes=10, tag="second")]
        bs = plan_batches(items)
        assert [b.items[0].tag for b in bs] == ["first", "second"]
        assert all(len(b.items) == 1 for b in bs)

    def test_reads_merge_within_gap(self):
        items = [_Req(write=False, offset=0, nbytes=10),
                 _Req(write=False, offset=30, nbytes=10)]
        (b,) = plan_batches(items, max_read_gap=32)
        assert (b.lo, b.hi) == (0, 40)
        bs = plan_batches(items, max_read_gap=4)
        assert len(bs) == 2

    def test_paths_and_kinds_never_mix(self):
        items = [_Req(path="/a", write=True, offset=0, nbytes=10),
                 _Req(path="/b", write=True, offset=10, nbytes=10),
                 _Req(path="/a", write=False, offset=10, nbytes=10)]
        bs = plan_batches(items)
        assert len(bs) == 3

    def test_merge_off_is_one_batch_per_request(self):
        items = [_Req(write=True, offset=o, nbytes=10)
                 for o in (0, 10, 20)]
        bs = plan_batches(items, merge=False)
        assert len(bs) == 3
        assert [b.items[0].offset for b in bs] == [0, 10, 20]


class TestServer:
    def test_write_read_byte_identity(self):
        with IOPServer(workers=2) as srv:
            srv.register_tenant("a")
            cl = ServiceClient(srv, "a")
            data = np.arange(4096, dtype=np.int64).astype(np.uint8)
            cl.write("/f", 100, data, timeout=30.0)
            got = cl.read("/f", 100, data.nbytes, timeout=30.0)
            assert np.array_equal(got, data)

    def test_read_past_eof_zero_fills(self):
        with IOPServer(workers=1) as srv:
            srv.register_tenant("a")
            cl = ServiceClient(srv, "a")
            cl.write("/f", 0, np.full(8, 7, np.uint8), timeout=30.0)
            got = cl.read("/f", 4, 16, timeout=30.0)
            assert np.array_equal(got[:4], np.full(4, 7, np.uint8))
            assert not got[4:].any()

    def test_zero_byte_posts_complete_immediately(self):
        with IOPServer(workers=1) as srv:
            srv.register_tenant("a")
            cl = ServiceClient(srv, "a")
            r = cl.iread("/f", 0, 0)
            assert r.test()
            assert r.wait(1.0).size == 0
            w = cl.iwrite("/f", 0, np.empty(0, np.uint8))
            assert w.wait(1.0) is None

    def test_write_payload_copied_at_post(self):
        with IOPServer(workers=1, worker_delay=0.05) as srv:
            srv.register_tenant("a")
            cl = ServiceClient(srv, "a")
            buf = np.full(64, 1, np.uint8)
            r = cl.iwrite("/f", 0, buf)
            buf[:] = 9  # client reuses its buffer immediately
            r.wait(30.0)
            got = cl.read("/f", 0, 64, timeout=30.0)
            assert np.array_equal(got, np.full(64, 1, np.uint8))

    def test_queue_full_surfaces_from_post(self):
        with IOPServer(workers=1) as srv:
            srv.register_tenant("a", queue_depth=0)
            cl = ServiceClient(srv, "a")
            with pytest.raises(ServiceQueueFull):
                cl.iwrite("/f", 0, np.zeros(8, np.uint8))

    def test_per_tenant_metrics_in_service_section(self):
        with IOPServer(workers=1) as srv:
            srv.register_tenant("a")
            srv.register_tenant("b")
            ca = ServiceClient(srv, "a")
            ca.write("/f", 0, np.zeros(100, np.uint8), timeout=30.0)
            ca.read("/f", 0, 100, timeout=30.0)
            snap = srv.metrics_snapshot()
            by_tenant = {e["tenant"]: e["counters"]
                         for e in snap["service"]}
            assert by_tenant["a"]["completed"] == 2
            assert by_tenant["a"]["bytes_written"] == 100
            assert by_tenant["a"]["bytes_read"] == 100
            assert by_tenant["b"]["posted"] == 0
            assert snap["server"]["requests_executed"] == 2

    def test_batching_reduces_file_accesses(self):
        """The acceptance counter: concurrently posted tiling writes
        execute in fewer file accesses than requests."""
        with IOPServer(workers=1, worker_delay=0.05) as srv:
            srv.register_tenant("a")
            cl = ServiceClient(srv, "a")
            nb = 512
            # A plug request occupies the single worker, so the
            # following posts pile up in one scheduling window.
            plug = cl.iwrite("/plug", 0, np.zeros(8, np.uint8))
            reqs = [
                cl.iwrite("/f", i * nb, np.full(nb, i + 1, np.uint8))
                for i in range(8)
            ]
            plug.wait(30.0)
            for r in reqs:
                r.wait(30.0)
            snap = srv.counters.snapshot()
            assert snap["requests_executed"] == 9
            assert snap["file_accesses"] < snap["requests_executed"]
            assert snap["batch_merged_requests"] >= 2
            # Merged execution is still byte-identical.
            got = cl.read("/f", 0, 8 * nb, timeout=30.0)
            want = np.concatenate([
                np.full(nb, i + 1, np.uint8) for i in range(8)
            ])
            assert np.array_equal(got, want)

    def test_batching_off_is_one_access_per_request(self):
        with IOPServer(workers=1, batching=False,
                       worker_delay=0.02) as srv:
            srv.register_tenant("a")
            cl = ServiceClient(srv, "a")
            reqs = [
                cl.iwrite("/f", i * 64, np.full(64, i, np.uint8))
                for i in range(4)
            ]
            for r in reqs:
                r.wait(30.0)
            snap = srv.counters.snapshot()
            assert snap["file_accesses"] == snap["requests_executed"]
            assert snap["batch_merged_requests"] == 0

    def test_proc_workers_write_read(self, tmp_path):
        with IOPServer(workers=2, worker_mode="proc",
                       root=str(tmp_path)) as srv:
            srv.register_tenant("a")
            cl = ServiceClient(srv, "a")
            data = np.arange(2048, dtype=np.int64).astype(np.uint8)
            cl.write("/f", 64, data, timeout=30.0)
            got = cl.read("/f", 64, data.nbytes, timeout=30.0)
            assert np.array_equal(got, data)
            # The bytes really are on disk, not in server memory.
            on_disk = (tmp_path / "f").read_bytes()
            assert on_disk[64:] == data.tobytes()

    def test_proc_mode_requires_root(self):
        with pytest.raises(ServiceError):
            IOPServer(worker_mode="proc")

    def test_worker_kill_fails_promptly_and_respawns(self, tmp_path):
        """SIGKILL an IOP worker mid-request: exactly that request
        fails with ServiceWorkerError, the flight recorder gets a
        ``service.worker_dead`` breadcrumb, the worker respawns, and
        the next request succeeds."""
        with IOPServer(workers=1, worker_mode="proc",
                       root=str(tmp_path), worker_delay=0.4) as srv:
            srv.register_tenant("a")
            cl = ServiceClient(srv, "a")
            r = cl.iwrite("/f", 0, np.full(128, 3, np.uint8))
            # Let the request reach the worker, then kill it.
            deadline = time.time() + 5.0
            t = srv.tenant("a")
            while t.stats.dispatched == 0 and time.time() < deadline:
                time.sleep(0.01)
            time.sleep(0.1)
            os.kill(srv._proc_workers[0].process.pid, signal.SIGKILL)
            with pytest.raises(ServiceWorkerError):
                r.wait(30.0)
            crumbs = [
                c[1]
                for rk in srv.session.flight.export_state()[
                    "crumbs"].values()
                for c in rk
            ]
            assert "service.worker_dead" in crumbs
            assert srv.counters.snapshot()["worker_respawns"] == 1
            assert t.stats.failed == 1
            # Recovery: the respawned worker serves the retry.
            srv.worker_delay = 0.0
            for w in srv._proc_workers:
                w.delay = 0.0
            cl.write("/f", 0, np.full(128, 5, np.uint8), timeout=30.0)
            got = cl.read("/f", 0, 128, timeout=30.0)
            assert np.array_equal(got, np.full(128, 5, np.uint8))

    def test_stop_drains_before_shutdown(self):
        srv = IOPServer(workers=1, worker_delay=0.02).start()
        srv.register_tenant("a")
        cl = ServiceClient(srv, "a")
        reqs = [cl.iwrite("/f", i * 16, np.full(16, i, np.uint8))
                for i in range(4)]
        srv.stop(drain=True)
        for r in reqs:
            assert r.test()


class TestSoak:
    def test_small_soak_thread(self):
        res = run_soak(SoakConfig(nclients=8, nfiles=4, ntenants=2,
                                  rounds=2, req_bytes=512, workers=2))
        assert res.ok
        assert res.mismatches == 0
        assert res.requests == 8 * 2 * 2

    def test_small_soak_proc(self, tmp_path):
        res = run_soak(SoakConfig(nclients=6, nfiles=3, ntenants=2,
                                  rounds=1, req_bytes=256, workers=2,
                                  worker_mode="proc",
                                  root=str(tmp_path)))
        assert res.ok
        assert res.mismatches == 0

    @pytest.mark.soak
    @pytest.mark.parametrize("fair", [True, False])
    @pytest.mark.parametrize("batching", [True, False])
    def test_soak_32_clients(self, fair, batching):
        res = run_soak(SoakConfig(nclients=32, nfiles=8, ntenants=4,
                                  rounds=3, req_bytes=4096, workers=4,
                                  fair=fair, batching=batching))
        assert res.ok
        assert res.mismatches == 0

    @pytest.mark.soak
    def test_soak_weighted_tenants(self):
        res = run_soak(SoakConfig(nclients=32, nfiles=8, ntenants=4,
                                  rounds=2, weights=[4, 2, 1, 1]))
        assert res.ok

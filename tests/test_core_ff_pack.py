"""``ff_pack``/``ff_unpack`` against the typemap oracle.

The critical property is *segment consistency*: packing a buffer in
arbitrary (skipbytes, packsize) segments must produce exactly the bytes
of a whole-type oracle pack, for any segmentation — that is what the
engine's bounded-buffer loops rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import datatypes as dt
from repro.core import ff_pack, ff_unpack, iter_segments
from repro.datatypes.packing import pack_typemap, unpack_typemap
from repro.errors import FFError
from tests.conftest import datatype_trees, fill_pattern


class TestFFPackWhole:
    def test_matches_oracle(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0:
                continue
            src = fill_pattern(t.true_ub + 8, seed=1)
            ref = pack_typemap(src, 1, t)
            out = np.zeros(t.size, dtype=np.uint8)
            n = ff_pack(src, 1, t, 0, out, t.size)
            assert n == t.size, name
            assert (out == ref).all(), name

    def test_multi_count(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0 or t.extent <= 0:
                continue
            count = 3
            span = (count - 1) * t.extent + t.true_ub + 8
            src = fill_pattern(span, seed=2)
            ref = pack_typemap(src, count, t)
            out = np.zeros(ref.size, dtype=np.uint8)
            n = ff_pack(src, count, t, 0, out, ref.size)
            assert n == ref.size and (out == ref).all(), name

    def test_zero_count(self):
        out = np.zeros(8, dtype=np.uint8)
        assert ff_pack(np.zeros(8, np.uint8), 0, dt.DOUBLE, 0, out, 8) == 0

    def test_origin(self):
        src = fill_pattern(40)
        t = dt.vector(2, 1, 2, dt.DOUBLE)
        out = np.zeros(16, dtype=np.uint8)
        ff_pack(src, 1, t, 0, out, 16, origin=8)
        assert (out == pack_typemap(src, 1, t, origin=8)).all()

    def test_negative_skip_rejected(self):
        with pytest.raises(FFError):
            ff_pack(np.zeros(8, np.uint8), 1, dt.DOUBLE, -1,
                    np.zeros(8, np.uint8), 8)


class TestFFPackSegments:
    @pytest.mark.parametrize("seg", [1, 3, 7, 16, 1000])
    def test_any_segmentation_equals_whole(self, seg, sample_types):
        for name, t in sample_types.items():
            if t.size == 0:
                continue
            count = 2 if t.extent > 0 else 1
            span = (count - 1) * max(t.extent, 0) + t.true_ub + 8
            src = fill_pattern(span, seed=5)
            ref = pack_typemap(src, count, t)
            got = np.zeros(ref.size, dtype=np.uint8)
            for skip, n in iter_segments(ref.size, seg):
                buf = np.zeros(n, dtype=np.uint8)
                copied = ff_pack(src, count, t, skip, buf, n)
                assert copied == n
                got[skip : skip + n] = buf
            assert (got == ref).all(), (name, seg)

    def test_packsize_larger_than_remaining(self):
        t = dt.contiguous(8, dt.BYTE)
        src = fill_pattern(8)
        buf = np.zeros(100, dtype=np.uint8)
        assert ff_pack(src, 1, t, 6, buf, 100) == 2

    def test_skip_at_end_returns_zero(self):
        t = dt.contiguous(8, dt.BYTE)
        buf = np.zeros(4, dtype=np.uint8)
        assert ff_pack(fill_pattern(8), 1, t, 8, buf, 4) == 0

    @settings(max_examples=60, deadline=None)
    @given(datatype_trees(), st.data())
    def test_random_skip_size(self, t, data):
        src = fill_pattern(t.true_ub + 8, seed=9)
        ref = pack_typemap(src, 1, t)
        skip = data.draw(st.integers(0, t.size))
        size = data.draw(st.integers(0, t.size - skip))
        buf = np.zeros(max(size, 1), dtype=np.uint8)
        copied = ff_pack(src, 1, t, skip, buf, size)
        assert copied == size
        assert (buf[:size] == ref[skip : skip + size]).all()


class TestFFUnpack:
    def test_roundtrip_whole(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0:
                continue
            src = fill_pattern(t.true_ub + 8, seed=3)
            packed = pack_typemap(src, 1, t)
            dst = np.zeros(t.true_ub + 8, dtype=np.uint8)
            n = ff_unpack(packed, t.size, dst, 1, t, 0)
            assert n == t.size
            assert (pack_typemap(dst, 1, t) == packed).all(), name

    def test_matches_oracle_unpack(self, sample_types):
        for name, t in sample_types.items():
            if t.size == 0 or not t.is_monotonic:
                continue
            packed = fill_pattern(t.size, seed=4)
            dst_ff = np.zeros(t.true_ub + 8, dtype=np.uint8)
            dst_ref = np.zeros(t.true_ub + 8, dtype=np.uint8)
            ff_unpack(packed, t.size, dst_ff, 1, t, 0)
            unpack_typemap(packed, dst_ref, 1, t)
            assert (dst_ff == dst_ref).all(), name

    @pytest.mark.parametrize("seg", [1, 5, 13])
    def test_segmented_unpack(self, seg):
        t = dt.vector(5, 3, 7, dt.INT)
        packed = fill_pattern(t.size, seed=6)
        dst = np.zeros(t.true_ub + 4, dtype=np.uint8)
        for skip, n in iter_segments(t.size, seg):
            ff_unpack(packed[skip : skip + n], n, dst, 1, t, skip)
        ref = np.zeros_like(dst)
        unpack_typemap(packed, ref, 1, t)
        assert (dst == ref).all()

    def test_readonly_destination_rejected(self):
        t = dt.contiguous(4, dt.BYTE)
        dst = np.zeros(4, dtype=np.uint8)
        dst.flags.writeable = False
        with pytest.raises(FFError):
            ff_unpack(fill_pattern(4), 4, dst, 1, t, 0)


class TestIterSegments:
    def test_basic(self):
        assert list(iter_segments(10, 4)) == [(0, 4), (4, 4), (8, 2)]

    def test_start(self):
        assert list(iter_segments(10, 4, start=7)) == [(7, 3)]

    def test_zero_total(self):
        assert list(iter_segments(0, 4)) == []

    def test_bad_segment_size(self):
        with pytest.raises(ValueError):
            list(iter_segments(10, 0))

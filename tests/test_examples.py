"""Every example script must run cleanly (they are executable docs)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES / f"{name}.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "listless" in out and "list_based" in out
        assert "bytes on the wire" in out

    def test_matrix_checkpoint(self, capsys):
        load_example("matrix_checkpoint").main()
        out = capsys.readouterr().out
        assert "verified" in out

    def test_particle_io(self, capsys):
        load_example("particle_io").main()
        out = capsys.readouterr().out
        assert "data sieving ON" in out
        assert "data sieving OFF" in out

    def test_posix_vs_mpiio(self, capsys):
        load_example("posix_vs_mpiio").main()
        out = capsys.readouterr().out
        assert "POSIX seek+read loop" in out
        assert "MPI-IO collective" in out

    def test_btio_demo(self, capsys, monkeypatch):
        mod = load_example("btio_demo")
        monkeypatch.setattr(mod, "REPEATS", 1)
        monkeypatch.setattr(mod, "NSTEPS", 2)
        mod.main()
        out = capsys.readouterr().out
        assert "r_io" in out
        assert "verified" in out

    def test_all_examples_have_docstrings_and_main(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            mod = load_example(path.stem)
            assert mod.__doc__, path.name
            assert hasattr(mod, "main"), path.name

    def test_transpose(self, capsys):
        load_example("transpose").main()
        out = capsys.readouterr().out
        assert "transposed" in out and "OK" in out

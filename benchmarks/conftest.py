"""pytest configuration for the benchmark suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benchmark sweeps at the paper's full parameter ranges "
        "(slow); default is a scaled-down grid with identical shape",
    )


@pytest.fixture
def paper_scale(request):
    return request.config.getoption("--paper-scale")

"""Regenerate every paper table and figure in one go.

Usage::

    python benchmarks/run_all.py [--paper-scale]

``--paper-scale`` sweeps the paper's full parameter ranges (slow on a
small machine); the default uses scaled-down grids with the same shape.
Output is the figure series and tables in the format of
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys

from benchmarks import (
    bench_ablation_overheads,
    bench_ablation_sieving,
    bench_ext_environments,
    bench_ext_multidim,
    bench_ext_workloads,
    bench_fig5_nblock_independent,
    bench_fig6_nblock_collective,
    bench_fig7_sblock_independent,
    bench_fig8_procs_collective,
    bench_table1_btio_volume,
    bench_table2_btio_pattern,
    bench_table3_btio_timing,
)


def main() -> None:
    paper_scale = "--paper-scale" in sys.argv
    bench_fig5_nblock_independent.main(paper_scale)
    bench_fig6_nblock_collective.main(paper_scale)
    bench_fig7_sblock_independent.main(paper_scale)
    bench_fig8_procs_collective.main(paper_scale)
    bench_table1_btio_volume.main()
    bench_table2_btio_pattern.main()
    bench_table3_btio_timing.main(paper_scale)
    bench_ablation_overheads.main()
    bench_ablation_sieving.main()
    bench_ext_environments.main()
    bench_ext_multidim.main()
    bench_ext_workloads.main()


if __name__ == "__main__":
    main()

"""Golden-key check of the unified metrics schema.

The observability layer promises a fixed, deterministic key set: both
engines expose the *same* counter and phase keys, file stats and the
process-global counters (block programs, kernel paths) have stable
names, and snapshots are sorted.  CI runs this script to catch
accidental schema drift — a renamed counter silently breaks every
dashboard and recorded ``BENCH_*.json``.

Check against the golden record (exit 1 on drift)::

    python benchmarks/check_metrics_schema.py

Regenerate the golden after an *intentional* schema change::

    python benchmarks/check_metrics_schema.py --update

``--flight PATH`` validates a flight-recorder artifact instead (the
JSON ``repro flight`` or an aborting world wrote — see
``repro.obs.flight``): version, required keys, breadcrumb shape.  CI's
failure-injection job runs this over the record it uploads, so a
schema-breaking change to the recorder fails the build rather than
silently shipping unreadable post-mortems::

    python benchmarks/check_metrics_schema.py --flight flight.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from benchmarks._common import probe_metric_schema

GOLDEN = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results", "METRICS_SCHEMA.json",
)


def _diff(want: dict, got: dict, path: str = "") -> list:
    """Human-readable differences between two schema trees."""
    out = []
    if isinstance(want, dict) and isinstance(got, dict):
        for k in sorted(set(want) | set(got)):
            p = f"{path}.{k}" if path else k
            if k not in got:
                out.append(f"missing: {p}")
            elif k not in want:
                out.append(f"unexpected: {p}")
            else:
                out.extend(_diff(want[k], got[k], p))
    elif want != got:
        out.append(f"changed: {path}: {want!r} -> {got!r}")
    return out


#: Exact top-level key set of a flight record (repro.obs.flight).
_FLIGHT_KEYS = frozenset((
    "flight_version", "reason", "backend", "world_size", "error",
    "failed_rank", "failed_ranks", "last_rounds", "ranks", "counters",
    "spans_dropped", "recent_spans",
))


def validate_flight_record(doc) -> list:
    """Problems with a flight-recorder artifact (empty list = valid).

    Nullable fields (``backend``, ``world_size``, ``failed_rank``,
    ``error``) stay null in on-demand dumps — only abort-path records
    carry them — so null is always accepted there.
    """
    probs = []
    if not isinstance(doc, dict):
        return ["record is not a JSON object"]
    for k in sorted(_FLIGHT_KEYS - set(doc)):
        probs.append(f"missing key: {k}")
    for k in sorted(set(doc) - _FLIGHT_KEYS):
        probs.append(f"unexpected key: {k}")
    if probs:
        return probs
    if doc["flight_version"] != 1:
        probs.append(f"flight_version {doc['flight_version']!r} != 1")
    if not isinstance(doc["reason"], str) or not doc["reason"]:
        probs.append("reason must be a non-empty string")
    for k, t in (("backend", str), ("world_size", int),
                 ("failed_rank", int)):
        v = doc[k]
        if v is not None and not isinstance(v, t):
            probs.append(f"{k} must be {t.__name__} or null, got {v!r}")
    err = doc["error"]
    if err is not None and not (
        isinstance(err, dict)
        and isinstance(err.get("type"), str)
        and isinstance(err.get("message"), str)
    ):
        probs.append("error must be null or {type, message} strings")
    if not (isinstance(doc["failed_ranks"], list)
            and all(isinstance(r, int) for r in doc["failed_ranks"])):
        probs.append("failed_ranks must be a list of ints")
    lr = doc["last_rounds"]
    if not (isinstance(lr, dict)
            and all(isinstance(k, str) and isinstance(v, int)
                    for k, v in lr.items())):
        probs.append("last_rounds must map rank strings to round ints")
    ranks = doc["ranks"]
    if not isinstance(ranks, dict):
        probs.append("ranks must be an object")
        ranks = {}
    for r, ent in sorted(ranks.items()):
        crumbs = ent.get("breadcrumbs") if isinstance(ent, dict) else None
        if not isinstance(crumbs, list):
            probs.append(f"ranks[{r}] has no breadcrumbs list")
            continue
        for i, c in enumerate(crumbs):
            if not (isinstance(c, list) and len(c) == 3
                    and isinstance(c[0], (int, float))
                    and isinstance(c[1], str)
                    and (c[2] is None or isinstance(c[2], dict))):
                probs.append(
                    f"ranks[{r}].breadcrumbs[{i}] is not "
                    f"[t, kind, info|null]: {c!r}")
                break
    for k in ("counters", "spans_dropped", "recent_spans"):
        if not isinstance(doc[k], dict):
            probs.append(f"{k} must be an object")
    return probs


def check_flight(path: str) -> int:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"cannot read flight record {path}: {exc}", file=sys.stderr)
        return 1
    probs = validate_flight_record(doc)
    if probs:
        print(f"invalid flight record {path}:", file=sys.stderr)
        for p in probs:
            print(f"  {p}", file=sys.stderr)
        return 1
    nr = len(doc["ranks"])
    print(f"flight record {os.path.relpath(path)} valid "
          f"(reason={doc['reason']!r}, {nr} rank(s), "
          f"failed_rank={doc['failed_rank']})")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the golden record instead of checking")
    ap.add_argument("--golden", default=GOLDEN,
                    help="path of the golden schema JSON")
    ap.add_argument("--flight", metavar="PATH",
                    help="validate a flight-recorder JSON instead")
    args = ap.parse_args(argv)

    if args.flight:
        return check_flight(args.flight)

    got = probe_metric_schema()

    # The schema contract: both engines expose identical key sets.
    names = sorted(got["engines"])
    for a, b in zip(names, names[1:]):
        if got["engines"][a] != got["engines"][b]:
            print(f"engine schema mismatch: {a} != {b}", file=sys.stderr)
            return 1

    if args.update:
        with open(args.golden, "w") as f:
            json.dump(got, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.golden}")
        return 0

    try:
        with open(args.golden) as f:
            want = json.load(f)
    except FileNotFoundError:
        print(f"no golden record at {args.golden}; run with --update",
              file=sys.stderr)
        return 1

    drift = _diff(want, got)
    if drift:
        print("metrics schema drift vs golden:", file=sys.stderr)
        for line in drift:
            print(f"  {line}", file=sys.stderr)
        print("(if intentional, regenerate with --update)",
              file=sys.stderr)
        return 1
    print(f"metrics schema matches {os.path.relpath(args.golden)} "
          f"({len(want['engines'])} engines, "
          f"{len(want['global'])} global counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Golden-key check of the unified metrics schema.

The observability layer promises a fixed, deterministic key set: both
engines expose the *same* counter and phase keys, file stats and the
process-global counters (block programs, kernel paths) have stable
names, and snapshots are sorted.  CI runs this script to catch
accidental schema drift — a renamed counter silently breaks every
dashboard and recorded ``BENCH_*.json``.

Check against the golden record (exit 1 on drift)::

    python benchmarks/check_metrics_schema.py

Regenerate the golden after an *intentional* schema change::

    python benchmarks/check_metrics_schema.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from benchmarks._common import probe_metric_schema

GOLDEN = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results", "METRICS_SCHEMA.json",
)


def _diff(want: dict, got: dict, path: str = "") -> list:
    """Human-readable differences between two schema trees."""
    out = []
    if isinstance(want, dict) and isinstance(got, dict):
        for k in sorted(set(want) | set(got)):
            p = f"{path}.{k}" if path else k
            if k not in got:
                out.append(f"missing: {p}")
            elif k not in want:
                out.append(f"unexpected: {p}")
            else:
                out.extend(_diff(want[k], got[k], p))
    elif want != got:
        out.append(f"changed: {path}: {want!r} -> {got!r}")
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the golden record instead of checking")
    ap.add_argument("--golden", default=GOLDEN,
                    help="path of the golden schema JSON")
    args = ap.parse_args(argv)

    got = probe_metric_schema()

    # The schema contract: both engines expose identical key sets.
    names = sorted(got["engines"])
    for a, b in zip(names, names[1:]):
        if got["engines"][a] != got["engines"][b]:
            print(f"engine schema mismatch: {a} != {b}", file=sys.stderr)
            return 1

    if args.update:
        with open(args.golden, "w") as f:
            json.dump(got, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.golden}")
        return 0

    try:
        with open(args.golden) as f:
            want = json.load(f)
    except FileNotFoundError:
        print(f"no golden record at {args.golden}; run with --update",
              file=sys.stderr)
        return 1

    drift = _diff(want, got)
    if drift:
        print("metrics schema drift vs golden:", file=sys.stderr)
        for line in drift:
            print(f"  {line}", file=sys.stderr)
        print("(if intentional, regenerate with --update)",
              file=sys.stderr)
        return 1
    print(f"metrics schema matches {os.path.relpath(args.golden)} "
          f"({len(want['engines'])} engines, "
          f"{len(want['global'])} global counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

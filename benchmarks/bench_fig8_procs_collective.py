"""Paper Figure 8: Bpp vs process count P — collective access.

noncontig benchmark, Sblock = 2048 bytes, 16 < Nblock < 128, P = 1 … 8.

Paper result: the listless/list-based ratio stays roughly constant across
P; nc-c performance is nearly identical (large blocks), c-nc ratio ≈ 3–4,
nc-nc ratio ≈ 8–10; accumulated bandwidth saturates the file system so
Bpp falls as 1/P for both engines.  Regenerate::

    python benchmarks/bench_fig8_procs_collective.py [--paper-scale]
"""

from __future__ import annotations

import statistics
import sys

import pytest

from benchmarks._common import (
    ENGINES,
    PATTERNS,
    curve_name,
    median_bpp,
    print_figure,
)
from repro.bench import NoncontigConfig, mb_per_s, run_noncontig

SBLOCK = 2048
NBLOCK = 64  # the paper keeps 16 < Nblock < 128
NREPS = 2

PROCS_QUICK = [1, 2, 4]
PROCS_PAPER = [1, 2, 3, 4, 5, 6, 7, 8]


def config(p: int) -> NoncontigConfig:
    return NoncontigConfig(
        nprocs=p, blocklen=SBLOCK, blockcount=NBLOCK,
        collective=True, nreps=NREPS,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("p", [2, 4])
def test_fig8_procs(benchmark, engine, pattern, p):
    cfg = NoncontigConfig(
        nprocs=p, blocklen=SBLOCK, blockcount=NBLOCK, pattern=pattern,
        collective=True, nreps=NREPS,
    )
    result = benchmark.pedantic(
        lambda: run_noncontig(engine, cfg), rounds=3, iterations=1
    )
    benchmark.extra_info["write_MBps"] = result.write_bpp / 1e6


def test_fig8_shape_ncc_parity_at_large_blocks():
    """Paper: for nc-c at Sblock = 2 kB the engines are nearly identical
    (within a small factor — the copy loop no longer dominates)."""
    cfg = NoncontigConfig(
        nprocs=2, blocklen=SBLOCK, blockcount=NBLOCK, pattern="nc-c",
        collective=True, nreps=NREPS,
    )
    ll = median_bpp("listless", cfg, "write", repeats=5)
    lb = median_bpp("list_based", cfg, "write", repeats=5)
    assert ll > 0.4 * lb  # never significantly worse (noise margin)
    assert ll < 20 * lb  # and no runaway gap at 2 kB blocks


def test_fig8_shape_ncnc_gap_exceeds_cnc_gap():
    """Paper: nc-nc suffers the extra AP-side list copies, so its ratio
    (≈8–10 on the SX) exceeds the c-nc ratio (≈3–4).  In this substrate
    the two ratios are close at 2 kB blocks, so assert the ordering with
    a generous noise margin over well-repeated medians."""
    def ratio(pattern):
        cfg = NoncontigConfig(
            nprocs=4, blocklen=256, blockcount=NBLOCK, pattern=pattern,
            collective=True, nreps=NREPS,
        )
        return (
            median_bpp("listless", cfg, "write", repeats=5)
            / median_bpp("list_based", cfg, "write", repeats=5)
        )

    assert ratio("nc-nc") > 0.55 * ratio("c-nc")


def main(paper_scale: bool = False) -> None:
    xs = PROCS_PAPER if paper_scale else PROCS_QUICK
    for phase in ("write", "read"):
        curves = {}
        for engine in ENGINES:
            for pattern in PATTERNS:
                name = curve_name(engine, pattern)
                vals = []
                for p in xs:
                    cfg = NoncontigConfig(
                        nprocs=p, blocklen=SBLOCK, blockcount=NBLOCK,
                        pattern=pattern, collective=True, nreps=NREPS,
                    )
                    vals.append(median_bpp(engine, cfg, phase))
                curves[name] = vals
        print_figure(
            f"Figure 8 ({phase}): Bpp [MB/s] vs P — collective, "
            f"Sblock={SBLOCK}B, Nblock={NBLOCK}",
            "P", xs, curves,
        )


if __name__ == "__main__":
    main(paper_scale="--paper-scale" in sys.argv)

"""Benchmark harness package: one module per paper table/figure plus
ablations and extensions.  See benchmarks/README.md."""

"""Paper Figure 5: Bpp vs vector length Nblock — independent access.

noncontig benchmark, Sblock = 8 bytes, P = 2, Nblock = 16 … 16k; six
curves (list-based/listless × nc-nc, nc-c, c-nc), write (left panel) and
read (right panel).

Paper result: list-based bandwidth is flat and low (< 10 MB/s for
non-contiguous files); listless is 3.6–330× faster.  Regenerate with::

    python benchmarks/bench_fig5_nblock_independent.py [--paper-scale]
"""

from __future__ import annotations

import sys

import pytest

from benchmarks._common import (
    ENGINES,
    PATTERNS,
    median_bpp,
    print_figure,
    sweep_noncontig,
)
from repro.bench import NoncontigConfig

SBLOCK = 8
P = 2
NREPS = 2

#: Scaled-down grid (same shape); --paper-scale uses the paper's full axis.
NBLOCKS_QUICK = [16, 128, 1024, 4096]
NBLOCKS_PAPER = [16, 64, 256, 1024, 4096, 16384]


def config(nblock: int) -> NoncontigConfig:
    return NoncontigConfig(
        nprocs=P, blocklen=SBLOCK, blockcount=nblock,
        collective=False, nreps=NREPS,
    )


# ----------------------------------------------------------------------
# pytest-benchmark cases: representative points of each curve
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("nblock", [128, 2048])
def test_fig5_write(benchmark, engine, pattern, nblock):
    from repro.bench import run_noncontig

    cfg = NoncontigConfig(
        nprocs=P, blocklen=SBLOCK, blockcount=nblock, pattern=pattern,
        collective=False, nreps=NREPS,
    )
    result = benchmark.pedantic(
        lambda: run_noncontig(engine, cfg), rounds=3, iterations=1
    )
    benchmark.extra_info["write_MBps"] = result.write_bpp / 1e6
    benchmark.extra_info["read_MBps"] = result.read_bpp / 1e6


def test_fig5_shape_listless_wins_fine_grained():
    """The figure's qualitative content: at Sblock = 8 B the listless
    curves lie far above the list-based ones for nc file patterns."""
    for pattern in ("nc-nc", "c-nc"):
        cfg = NoncontigConfig(
            nprocs=P, blocklen=SBLOCK, blockcount=2048, pattern=pattern,
            collective=False, nreps=NREPS,
        )
        ll = median_bpp("listless", cfg, "write")
        lb = median_bpp("list_based", cfg, "write")
        assert ll > 2 * lb, (pattern, ll, lb)


def main(paper_scale: bool = False) -> None:
    xs = NBLOCKS_PAPER if paper_scale else NBLOCKS_QUICK
    for phase in ("write", "read"):
        curves = sweep_noncontig(xs, config, phase)
        print_figure(
            f"Figure 5 ({phase}): Bpp [MB/s] vs Nblock — independent, "
            f"Sblock={SBLOCK}B, P={P}",
            "Nblock", xs, curves,
        )


if __name__ == "__main__":
    main(paper_scale="--paper-scale" in sys.argv)

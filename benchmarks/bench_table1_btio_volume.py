"""Paper Table 1: BTIO's I/O data volume per class.

| Class | Grid        | Dstep  | Drun   |
|-------|-------------|--------|--------|
| B     | 102³        | 42 MB  | 1.7 GB |
| C     | 162³        | 170 MB | 6.8 GB |

These are analytic identities of the decomposition (Dstep = 40·N³ bytes,
Drun = 40 steps × Dstep); the test asserts the paper's numbers exactly
and a benchmark case verifies a *measured* run writes exactly Dstep per
step.  Regenerate the table::

    python benchmarks/bench_table1_btio_volume.py
"""

from __future__ import annotations

import pytest

from repro.bench import BTIOConfig, btio_characterize, run_btio
from repro.bench.reporting import fmt_bytes, format_table
from repro.fs import SimFileSystem


@pytest.mark.parametrize(
    "cls,dstep_mb,drun_gb", [("B", 42, 1.7), ("C", 170, 6.8)]
)
def test_table1_values_match_paper(cls, dstep_mb, drun_gb):
    c = btio_characterize(cls, 4, nsteps=40)
    assert round(c["dstep"] / 1e6) == dstep_mb
    assert round(c["drun"] / 1e9, 1) == drun_gb


def test_measured_volume_matches_characterization(benchmark):
    """A real class-S run writes exactly Dstep bytes per step."""
    cfg = BTIOConfig(cls="S", nprocs=4, nsteps=2, compute_sweeps=0)

    def run():
        fs = SimFileSystem()
        run_btio("listless", cfg, fs=fs)
        return fs.lookup("/btio.out").stats.snapshot()

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    c = btio_characterize("S", 4, nsteps=2)
    assert stats["bytes_written"] == c["drun"]


def main() -> None:
    rows = []
    for cls in ("S", "W", "A", "B", "C", "D"):
        c = btio_characterize(cls, 4, nsteps=40)
        rows.append(
            (
                cls,
                f"{c['grid']}^3",
                fmt_bytes(c["dstep"]),
                fmt_bytes(c["drun"]),
            )
        )
    print("=== Table 1: BTIO I/O data volume (Nstep = 40) ===")
    print(format_table(["Class", "Grid", "Dstep", "Drun"], rows))
    print("(paper reports classes B and C: 42 MB/1.7 GB and "
          "170 MB/6.8 GB)")


if __name__ == "__main__":
    main()

"""Per-layer perf-budget gate for the windowed block-program bench.

The committed ``results/BENCH_blockprog.json`` records, for the
end-to-end engine case, how its wall time decomposes into *kernel*
(batched pack/unpack copies), *io* (simulated device) and *engine
overhead* (planning, op dispatch, Python glue).  The engine-overhead
share of wall time is the budget: the listless speedup only survives
end-to-end while the engine layer stays thin, so CI treats the recorded
share like a perf baseline and fails when a fresh run regresses past it
by more than the slack.

Usage (CI bench-smoke, after the bench wrote a fresh record)::

    python benchmarks/check_perf_budget.py --bench BENCH_blockprog.json

Shares are wall-time ratios, so the check is robust to the absolute
speed of the CI box; the default slack (0.15 absolute) absorbs
scheduler noise on loaded runners.

``--collective`` gates the round-overlap record of
``bench_collective_rounds`` instead: every (engine, alignment) cell's
pipelined effective time must stay within ``1 + collective-slack`` of
its one-shot cell, every pipelined cell must hide *some* device time
(overlap efficiency > 0), and the round modes' peak staging must
respect the O(cb_buffer_size x APs) bound the aggregation layer
exists to enforce::

    python benchmarks/check_perf_budget.py \
        --collective BENCH_collective.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).resolve().parent.parent / "results" / (
    "BENCH_blockprog.json"
)


def _engine_share(record: dict, which: str) -> float:
    try:
        d = record["cases"]["engine"]["decomposition"]["enabled"]
        return float(d[which])
    except (KeyError, TypeError):
        raise SystemExit(
            f"record has no engine decomposition ({which}) — "
            "was the bench run with this tree's bench script?"
        )


def check_collective(path: str, slack: float) -> int:
    """Round-overlap gate over a fresh BENCH_collective.json."""
    with open(path) as f:
        rec = json.load(f)
    bound = rec["acceptance"]["bound_bytes"]
    limit = 1.0 + slack
    failed = []
    for name, cell in rec["cells"].items():
        ratio = cell["pipelined_vs_one_shot"]
        overlap = cell["overlap_efficiency"]
        peak = max(cell["serial"]["peak_staging"],
                   cell["pipelined"]["peak_staging"])
        ok = ratio <= limit and overlap > 0.0 and peak <= bound
        print(f"  {name:>18}: pipelined/one-shot {ratio:.3f} "
              f"(limit {limit:.2f})  overlap {overlap:.2f}  "
              f"round peak {peak} B (bound {bound} B)"
              f"{'' if ok else '  <-- FAIL'}")
        if not ok:
            failed.append(name)
    if failed:
        print(f"FAIL: round-overlap gate broken in {len(failed)} "
              f"cell(s): {', '.join(failed)}", file=sys.stderr)
        return 1
    print("PASS: pipelined rounds within the one-shot budget in every "
          "cell, staging bound held")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench",
                    help="fresh BENCH_blockprog.json to check")
    ap.add_argument("--baseline", default=str(BASELINE),
                    help="committed record holding the budget")
    ap.add_argument("--slack", type=float, default=0.15,
                    help="allowed absolute engine-share regression")
    ap.add_argument("--collective", metavar="JSON",
                    help="gate a fresh BENCH_collective.json "
                         "(round-overlap) instead")
    ap.add_argument("--collective-slack", type=float, default=0.05,
                    help="allowed pipelined-vs-one-shot excess")
    args = ap.parse_args()

    if args.collective:
        return check_collective(args.collective, args.collective_slack)
    if not args.bench:
        ap.error("one of --bench or --collective is required")

    with open(args.bench) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    fresh_share = _engine_share(fresh, "engine_share")
    base_share = _engine_share(base, "engine_share")
    budget = base_share + args.slack
    ratio = _engine_share(fresh, "engine_kernel_ratio")
    print(f"engine-layer share: fresh {fresh_share:.3f}  "
          f"baseline {base_share:.3f}  budget {budget:.3f}  "
          f"(engine:kernel {ratio:.2f})")
    if fresh_share > budget:
        print("FAIL: engine-layer share regressed past the recorded "
              "baseline + slack", file=sys.stderr)
        return 1
    print("PASS: engine-layer share within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())

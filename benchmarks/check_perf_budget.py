"""Per-layer perf-budget gate for the windowed block-program bench.

The committed ``results/BENCH_blockprog.json`` records, for the
end-to-end engine case, how its wall time decomposes into *kernel*
(batched pack/unpack copies), *io* (simulated device) and *engine
overhead* (planning, op dispatch, Python glue).  The engine-overhead
share of wall time is the budget: the listless speedup only survives
end-to-end while the engine layer stays thin, so CI treats the recorded
share like a perf baseline and fails when a fresh run regresses past it
by more than the slack.

Usage (CI bench-smoke, after the bench wrote a fresh record)::

    python benchmarks/check_perf_budget.py --bench BENCH_blockprog.json

Shares are wall-time ratios, so the check is robust to the absolute
speed of the CI box; the default slack (0.15 absolute) absorbs
scheduler noise on loaded runners.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).resolve().parent.parent / "results" / (
    "BENCH_blockprog.json"
)


def _engine_share(record: dict, which: str) -> float:
    try:
        d = record["cases"]["engine"]["decomposition"]["enabled"]
        return float(d[which])
    except (KeyError, TypeError):
        raise SystemExit(
            f"record has no engine decomposition ({which}) — "
            "was the bench run with this tree's bench script?"
        )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True,
                    help="fresh BENCH_blockprog.json to check")
    ap.add_argument("--baseline", default=str(BASELINE),
                    help="committed record holding the budget")
    ap.add_argument("--slack", type=float, default=0.15,
                    help="allowed absolute engine-share regression")
    args = ap.parse_args()

    with open(args.bench) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    fresh_share = _engine_share(fresh, "engine_share")
    base_share = _engine_share(base, "engine_share")
    budget = base_share + args.slack
    ratio = _engine_share(fresh, "engine_kernel_ratio")
    print(f"engine-layer share: fresh {fresh_share:.3f}  "
          f"baseline {base_share:.3f}  budget {budget:.3f}  "
          f"(engine:kernel {ratio:.2f})")
    if fresh_share > budget:
        print("FAIL: engine-layer share regressed past the recorded "
              "baseline + slack", file=sys.stderr)
        return 1
    print("PASS: engine-layer share within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Per-layer perf-budget gate for the windowed block-program bench.

The committed ``results/BENCH_blockprog.json`` records, for the
end-to-end engine case, how its wall time decomposes into *kernel*
(batched pack/unpack copies), *io* (simulated device) and *engine
overhead* (planning, op dispatch, Python glue).  The engine-overhead
share of wall time is the budget: the listless speedup only survives
end-to-end while the engine layer stays thin, so CI treats the recorded
share like a perf baseline and fails when a fresh run regresses past it
by more than the slack.

Usage (CI bench-smoke, after the bench wrote a fresh record)::

    python benchmarks/check_perf_budget.py --bench BENCH_blockprog.json

Shares are wall-time ratios, so the check is robust to the absolute
speed of the CI box; the default slack (0.15 absolute) absorbs
scheduler noise on loaded runners.

``--collective`` gates the round-overlap record of
``bench_collective_rounds`` instead: every (engine, alignment) cell's
pipelined effective time must stay within ``1 + collective-slack`` of
its one-shot cell, every pipelined cell must hide *some* device time
(overlap efficiency > 0), and the round modes' peak staging must
respect the O(cb_buffer_size x APs) bound the aggregation layer
exists to enforce::

    python benchmarks/check_perf_budget.py \
        --collective BENCH_collective.json

``--trace-overhead`` gates the cost of the tracing layer itself on the
windowed pack microbench (``bench_blockprog_windowed.run_pack_windowed``
— one hot-guard span per window call).  Three configs are timed:
tracing off (the baseline every production run pays), category-filtered
on with the hot ``ff`` category excluded (the guard fires but the span
is rejected at record), and fully on.  Gates: the filtered config must
stay within 2% of off — the promise that narrowing ``REPRO_TRACE`` to
the categories you need keeps hot kernels effectively untraced — and
fully-on within 10%::

    python benchmarks/check_perf_budget.py --trace-overhead
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).resolve().parent.parent / "results" / (
    "BENCH_blockprog.json"
)


def _engine_share(record: dict, which: str) -> float:
    try:
        d = record["cases"]["engine"]["decomposition"]["enabled"]
        return float(d[which])
    except (KeyError, TypeError):
        raise SystemExit(
            f"record has no engine decomposition ({which}) — "
            "was the bench run with this tree's bench script?"
        )


def check_collective(path: str, slack: float) -> int:
    """Round-overlap gate over a fresh BENCH_collective.json."""
    with open(path) as f:
        rec = json.load(f)
    bound = rec["acceptance"]["bound_bytes"]
    limit = 1.0 + slack
    failed = []
    for name, cell in rec["cells"].items():
        ratio = cell["pipelined_vs_one_shot"]
        overlap = cell["overlap_efficiency"]
        peak = max(cell["serial"]["peak_staging"],
                   cell["pipelined"]["peak_staging"])
        ok = ratio <= limit and overlap > 0.0 and peak <= bound
        print(f"  {name:>18}: pipelined/one-shot {ratio:.3f} "
              f"(limit {limit:.2f})  overlap {overlap:.2f}  "
              f"round peak {peak} B (bound {bound} B)"
              f"{'' if ok else '  <-- FAIL'}")
        if not ok:
            failed.append(name)
    if failed:
        print(f"FAIL: round-overlap gate broken in {len(failed)} "
              f"cell(s): {', '.join(failed)}", file=sys.stderr)
        return 1
    print("PASS: pipelined rounds within the one-shot budget in every "
          "cell, staging bound held")
    return 0


def check_trace_overhead(iters: int, repeats: int, off_limit: float,
                         on_limit: float) -> int:
    """Tracing-cost gate on the windowed pack microbench (see module
    docstring).  The three configs are timed *interleaved* — one repeat
    of each per round, min-of-repeats compared — so slow drift in box
    load (frequency scaling, a neighbour job) hits every config alike
    instead of landing on whichever block ran during the bad stretch."""
    try:
        from benchmarks.bench_blockprog_windowed import run_pack_windowed
    except ImportError:  # run as a script: benchmarks/ is sys.path[0]
        from bench_blockprog_windowed import run_pack_windowed
    from repro.obs import trace

    # A collective-buffer-sized window (128 periods = 256 KiB of file
    # range, the default cb_buffer_size) so one span weighs against the
    # kernel work a production pack call actually does per stamp.
    win_periods = 128

    # Hot spans are category ``ff``; the filtered config excludes them
    # while keeping exec/aggregation recordable (satellite promise: a
    # narrowed REPRO_TRACE leaves hot kernels effectively untraced).
    configs = [
        ("off", False),
        ("filtered", frozenset(("exec", "aggregation"))),
        ("on", True),
    ]
    vals: dict = {name: [] for name, _ in configs}
    run_pack_windowed(4, win_periods=win_periods)  # warm caches untimed
    for _ in range(repeats):
        for name, config in configs:
            prev = trace.set_tracing(config)
            try:
                trace.TRACER.clear()
                vals[name].append(run_pack_windowed(
                    iters, win_periods=win_periods))
            finally:
                trace.set_tracing(prev)
    base = min(vals["off"])
    filtered = min(vals["filtered"])
    full = min(vals["on"])
    ov_filtered = filtered / base - 1.0
    ov_full = full / base - 1.0
    print(f"trace overhead on windowed pack ({iters} windows, best of "
          f"{repeats}):")
    print(f"  off      {base * 1e3:8.2f} ms  (baseline)")
    print(f"  filtered {filtered * 1e3:8.2f} ms  "
          f"(+{max(ov_filtered, 0.0) * 100:.2f}%, limit "
          f"{off_limit * 100:.0f}%)")
    print(f"  on       {full * 1e3:8.2f} ms  "
          f"(+{max(ov_full, 0.0) * 100:.2f}%, limit "
          f"{on_limit * 100:.0f}%)")
    failed = []
    if ov_filtered >= off_limit:
        failed.append("category-filtered tracing exceeds the "
                      f"{off_limit * 100:.0f}% budget")
    if ov_full >= on_limit:
        failed.append(f"full tracing exceeds the {on_limit * 100:.0f}% "
                      "budget")
    if failed:
        print("FAIL: " + "; ".join(failed), file=sys.stderr)
        return 1
    print("PASS: tracing overhead within budget")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench",
                    help="fresh BENCH_blockprog.json to check")
    ap.add_argument("--baseline", default=str(BASELINE),
                    help="committed record holding the budget")
    ap.add_argument("--slack", type=float, default=0.15,
                    help="allowed absolute engine-share regression")
    ap.add_argument("--collective", metavar="JSON",
                    help="gate a fresh BENCH_collective.json "
                         "(round-overlap) instead")
    ap.add_argument("--collective-slack", type=float, default=0.05,
                    help="allowed pipelined-vs-one-shot excess")
    ap.add_argument("--trace-overhead", action="store_true",
                    dest="trace_overhead",
                    help="gate tracing cost on the windowed pack "
                         "microbench instead")
    ap.add_argument("--trace-iters", type=int, default=400,
                    help="windows per timed run of the trace gate")
    ap.add_argument("--trace-repeats", type=int, default=9,
                    help="repeats per config (min is compared)")
    ap.add_argument("--trace-off-limit", type=float, default=0.02,
                    help="allowed overhead of category-filtered tracing")
    ap.add_argument("--trace-on-limit", type=float, default=0.10,
                    help="allowed overhead of full tracing")
    args = ap.parse_args()

    if args.trace_overhead:
        return check_trace_overhead(args.trace_iters, args.trace_repeats,
                                    args.trace_off_limit,
                                    args.trace_on_limit)
    if args.collective:
        return check_collective(args.collective, args.collective_slack)
    if not args.bench:
        ap.error("one of --bench, --collective or --trace-overhead is "
                 "required")

    with open(args.bench) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    fresh_share = _engine_share(fresh, "engine_share")
    base_share = _engine_share(base, "engine_share")
    budget = base_share + args.slack
    ratio = _engine_share(fresh, "engine_kernel_ratio")
    print(f"engine-layer share: fresh {fresh_share:.3f}  "
          f"baseline {base_share:.3f}  budget {budget:.3f}  "
          f"(engine:kernel {ratio:.2f})")
    if fresh_share > budget:
        print("FAIL: engine-layer share regressed past the recorded "
              "baseline + slack", file=sys.stderr)
        return 1
    print("PASS: engine-layer share within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Extension (paper §5): multi-dimensional arrays "accessed in different
manners".

A 3-D double array of shape N³ is stored canonically (C order, k slowest).
Reading an N×N *slice* through it has a completely different access
granularity depending on its orientation:

* **k-plane** (fix k): one contiguous run of N² doubles — the trivial
  case, both engines reduce to a plain read;
* **j-plane** (fix j): N runs of N doubles (row-strided) — moderate
  granularity;
* **i-plane** (fix i): N² runs of a *single* double — the pathological
  fine-grained case the paper's techniques target.

The listless/list-based ratio must grow from ~1 (k-plane) through
moderate (j-plane) to large (i-plane), tracing the same Sblock story as
Fig. 7 but arising from a real multi-dimensional workload via
``subarray`` filetypes.  Regenerate::

    python benchmarks/bench_ext_multidim.py
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.reporting import format_table
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.mpi import run_spmd

N = 48  # grid edge; slices are N^2 doubles = 18 kB


def slice_filetype(axis: int, index: int) -> dt.Datatype:
    """Subarray filetype selecting plane ``index`` along ``axis``."""
    sizes = [N, N, N]
    subsizes = [N, N, N]
    starts = [0, 0, 0]
    subsizes[axis] = 1
    starts[axis] = index
    return dt.subarray(sizes, subsizes, starts, dt.DOUBLE)


def make_grid(fs: SimFileSystem) -> np.ndarray:
    grid = np.arange(N ** 3, dtype=np.float64).reshape(N, N, N)
    f = fs.create("/grid.dat")
    f.pwrite(0, grid.reshape(-1))
    f.stats.reset()
    return grid


def read_plane(engine: str, axis: int, index: int,
               fs: SimFileSystem) -> np.ndarray:
    out = np.zeros(N * N, dtype=np.float64)

    def worker(comm):
        fh = File.open(comm, fs, "/grid.dat", MODE_RDONLY, engine=engine)
        fh.set_view(0, dt.DOUBLE, slice_filetype(axis, index))
        fh.read_at(0, out, N * N, dt.DOUBLE)
        fh.close()

    run_spmd(1, worker)
    return out


def time_plane_reads(engine: str, axis: int, fs: SimFileSystem,
                     nreads: int = 16) -> float:
    """Seconds per plane read, timed inside one open handle so the
    measurement excludes open/set_view/thread-spawn fixed costs (a plane
    is re-read ``nreads`` times, best-of semantics per read)."""
    import time

    box = {}

    def worker(comm):
        fh = File.open(comm, fs, "/grid.dat", MODE_RDONLY, engine=engine)
        fh.set_view(0, dt.DOUBLE, slice_filetype(axis, N // 2))
        out = np.zeros(N * N, dtype=np.float64)
        fh.read_at(0, out, N * N, dt.DOUBLE)  # warm caches
        best = float("inf")
        for _ in range(nreads):
            t0 = time.perf_counter()
            fh.read_at(0, out, N * N, dt.DOUBLE)
            best = min(best, time.perf_counter() - t0)
        box["t"] = best
        fh.close()

    run_spmd(1, worker)
    return box["t"]


AXES = {"k-plane (contiguous)": 0, "j-plane (N runs)": 1,
        "i-plane (N^2 runs)": 2}


# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,axis", list(AXES.items()))
@pytest.mark.parametrize("engine", ["listless", "list_based"])
def test_ext_multidim_planes(benchmark, name, axis, engine):
    fs = SimFileSystem()
    grid = make_grid(fs)

    result = benchmark.pedantic(
        lambda: read_plane(engine, axis, N // 2, fs),
        rounds=3, iterations=1,
    )
    expect = np.take(grid, N // 2, axis=axis).reshape(-1)
    assert (result == expect).all()


def test_ext_multidim_correct_all_axes():
    fs = SimFileSystem()
    grid = make_grid(fs)
    for axis in range(3):
        for engine in ("listless", "list_based"):
            got = read_plane(engine, axis, 3, fs)
            expect = np.take(grid, 3, axis=axis).reshape(-1)
            assert (got == expect).all(), (axis, engine)


def test_ext_multidim_gap_grows_with_fineness():
    """The engine gap must be larger for the i-plane (single-double
    runs) than for the k-plane (one contiguous run), and listless must
    not lose anywhere once setup costs are excluded."""
    fs = SimFileSystem()
    make_grid(fs)
    gap_coarse = (
        time_plane_reads("list_based", 0, fs)
        / time_plane_reads("listless", 0, fs)
    )
    gap_fine = (
        time_plane_reads("list_based", 2, fs)
        / time_plane_reads("listless", 2, fs)
    )
    assert gap_fine > gap_coarse
    assert gap_fine > 2.0


def main() -> None:
    fs = SimFileSystem()
    make_grid(fs)
    rows = []
    for name, axis in AXES.items():
        med = {}
        for engine in ("list_based", "listless"):
            med[engine] = min(
                time_plane_reads(engine, axis, fs) for _ in range(3)
            )
        rows.append(
            (
                name,
                f"{med['list_based']*1e3:.2f}",
                f"{med['listless']*1e3:.2f}",
                f"{med['list_based'] / med['listless']:.1f}x",
            )
        )
    print(f"=== Extension: slicing a {N}^3 double array along each axis "
          "===")
    print(format_table(
        ["slice orientation", "list-based ms", "listless ms",
         "listless speedup"],
        rows,
    ))
    print("(the finer the runs the larger the listless win — the Fig. 7 "
          "effect arising from a real multi-dimensional access pattern)")


if __name__ == "__main__":
    main()

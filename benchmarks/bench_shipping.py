"""Request shipping on the sharded backend: list-I/O vs datatype-I/O.

The shipping layer (``repro.io.shipping``, ``repro.fs.sharded``) moves
noncontiguous accesses to the shard servers under one of two wire
protocols: ``list`` explodes each access into per-shard offset/length
lists (every extent costs wire bytes), ``dtype`` installs the compact
fileview descriptor once per (shard, view) and then ships only the
access parameters, letting the servers flatten on the fly — the
list-I/O vs datatype-I/O comparison of "Noncontiguous I/O through
PVFS".  This bench drives the Fig-5-style strided pattern (P ranks
interleaved at Sblock = 8 bytes, data sieving off so accesses stay in
direct mode and ship) across stripe counts and both protocols, and
records the wire-cost decomposition: request bytes, payload bytes,
installed view bytes, request counts, per-shard spread, and effective
time.

The headline is the request-description cost: the list protocol's
request bytes grow linearly in the extent count, the dtype protocol's
stay O(1) per access after the one-time view install.  Acceptance pins
exactly that — at every stripe count, dtype request + view bytes must
not exceed list request bytes.  Standalone run writes the
machine-readable record::

    python benchmarks/bench_shipping.py --quick \
        --out results/BENCH_shipping.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import ShardedFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import SHIP_PROTOCOLS, Hints
from repro.mpi.runtime import Runtime

#: Ranks in the run (also the interleave period, in blocks).
NPROCS = 4
#: Contiguous block size of the strided pattern (paper Fig. 5: 8 B).
SBLOCK = 8
#: Blocks per rank per access (quick mode divides this down).
NBLOCK = 2048
#: Stripe counts swept (the backend's server processes).
NSHARDS = (1, 2, 4)
#: Stripe size of the sharded backend.
STRIPE = 1 << 16
#: Timed write+read pairs (after one untimed warm-up pair that fills
#: the plan cache and, for dtype, installs the fileviews).
NREPS = 2


def _pattern(size: int, rank: int, nblock: int):
    """Fig-5 interleave: rank r owns every ``size``-th SBLOCK block."""
    ft = dt.resized(
        dt.vector(nblock, SBLOCK, size * SBLOCK, dt.BYTE),
        0, nblock * size * SBLOCK,
    )
    return ft, rank * SBLOCK


def _run_cell(protocol: str, nshards: int, nblock: int) -> dict:
    """One warmed, timed write+read pair on ``NPROCS`` sim ranks against
    ``nshards`` shard servers; returns time plus the wire-cost delta of
    the timed pairs."""
    root = tempfile.mkdtemp(prefix="bench-ship-")
    fs = ShardedFileSystem(root, nshards=nshards, stripe_size=STRIPE)
    try:
        hints = Hints(ship_protocol=protocol, ds_read=False,
                      ds_write=False)

        def worker(comm, fs):
            ft, disp = _pattern(comm.size, comm.rank, nblock)
            fh = File.open(comm, fs, "/ship.out", MODE_CREATE | MODE_RDWR,
                           engine="listless", hints=hints)
            fh.set_view(disp, dt.BYTE, ft)
            wbuf = np.full(ft.size, comm.rank + 1, dtype=np.uint8)
            rbuf = np.zeros(ft.size, dtype=np.uint8)
            # Warm-up pair: plan cache, shard connections, and (dtype)
            # the per-shard fileview installs.
            fh.write_at(0, wbuf)
            fh.read_at(0, rbuf)
            comm.barrier()
            base = dict(fh.simfile.wire_totals())
            t0 = time.perf_counter()
            for _ in range(NREPS):
                fh.write_at(0, wbuf)
                fh.read_at(0, rbuf)
            wall = (time.perf_counter() - t0) / NREPS
            comm.barrier()
            assert np.array_equal(rbuf, wbuf)
            st = fh.engine.stats.plan
            out = {
                "wall": wall,
                "wire": {k: v - base[k]
                         for k, v in fh.simfile.wire_totals().items()}
                if comm.rank == 0 else None,
                "per_shard": [dict(w) for w in fh.simfile.wire]
                if comm.rank == 0 else None,
                "ship_ops": st.ship_ops,
                "ship_requests": st.ship_requests,
                "dtype_fallbacks": st.ship_dtype_fallbacks,
                "view_bytes": st.ship_view_bytes,
            }
            fh.close()
            return out

        rows = Runtime("sim").run(NPROCS, worker, fs)
        wire = next(r["wire"] for r in rows if r["wire"] is not None)
        per_shard = next(r["per_shard"] for r in rows
                         if r["per_shard"] is not None)
        # The sim ranks share one ShardedFile, so ``wire`` is already
        # the world aggregate over the timed pairs.  View bytes are a
        # one-time cost charged at warm-up; report the installed total.
        view_bytes = sum(w["view_bytes"] for w in per_shard)
        return {
            "time": max(r["wall"] for r in rows),
            "requests": wire["requests"],
            "request_bytes": wire["request_bytes"],
            "payload_bytes": wire["payload_bytes"],
            "view_bytes": view_bytes,
            "ship_ops": sum(r["ship_ops"] for r in rows),
            "ship_requests": sum(r["ship_requests"] for r in rows),
            "dtype_fallbacks": sum(r["dtype_fallbacks"] for r in rows),
            "per_shard_request_bytes": [w["request_bytes"]
                                        for w in per_shard],
            "per_shard_payload_bytes": [w["payload_bytes"]
                                        for w in per_shard],
        }
    finally:
        fs.close()
        shutil.rmtree(root, ignore_errors=True)


def collect(quick: bool) -> dict:
    nblock = NBLOCK // (8 if quick else 1)
    cells: dict = {}
    acceptance = []
    for nshards in NSHARDS:
        row = {}
        for protocol in SHIP_PROTOCOLS:
            row[protocol] = _run_cell(protocol, nshards, nblock)
        # The paper's point: the datatype protocol's request
        # description (params + one-time view install) must undercut
        # the list protocol's exploded per-extent lists.
        dtype_desc = (row["dtype"]["request_bytes"]
                      + row["dtype"]["view_bytes"])
        list_desc = row["list"]["request_bytes"]
        row["dtype_vs_list_request_bytes"] = dtype_desc / max(1, list_desc)
        acceptance.append(dtype_desc <= list_desc)
        cells[str(nshards)] = row
    record = {
        "bench": "shipping",
        "quick": quick,
        "config": {
            "nprocs": NPROCS,
            "sblock": SBLOCK,
            "nblock": nblock,
            "stripe_size": STRIPE,
            "nshards": list(NSHARDS),
            "nreps": NREPS,
        },
        "cells": cells,
        "acceptance": {
            # dtype request+view bytes <= list request bytes, per
            # stripe count, plus: no dtype piece fell back to lists.
            "dtype_wire_wins": acceptance,
            "dtype_fallbacks": [cells[str(n)]["dtype"]["dtype_fallbacks"]
                                for n in NSHARDS],
            "pass": bool(all(acceptance)),
        },
    }
    try:
        from benchmarks._common import obs_record
    except ImportError:  # run as a script: benchmarks/ is sys.path[0]
        from _common import obs_record
    record["observability"] = obs_record()
    return record


# ----------------------------------------------------------------------
# pytest cases
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", SHIP_PROTOCOLS)
def test_shipping_engages_and_roundtrips(protocol):
    """Both protocols ship the strided pattern (nonzero ship ops and
    wire traffic) and round-trip it byte-exactly (asserted inside the
    worker)."""
    cell = _run_cell(protocol, 2, 128)
    assert cell["ship_ops"] > 0
    assert cell["requests"] > 0
    assert cell["payload_bytes"] > 0


def test_dtype_request_bytes_undercut_list():
    """The acceptance inequality at one representative stripe count:
    compact views + params beat exploded ol-lists on the wire."""
    lst = _run_cell("list", 2, 256)
    dty = _run_cell("dtype", 2, 256)
    assert dty["dtype_fallbacks"] == 0, dty
    assert (dty["request_bytes"] + dty["view_bytes"]
            <= lst["request_bytes"]), (dty, lst)


# ----------------------------------------------------------------------
def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="smaller access (CI smoke)")
    ap.add_argument("--out", default=None,
                    help="write the JSON record to this path")
    args = ap.parse_args()

    rec = collect(args.quick)
    cfg = rec["config"]
    print("=== Request shipping: list-I/O vs datatype-I/O "
          f"({'quick' if rec['quick'] else 'full'}) ===")
    print(f"P={cfg['nprocs']}, Sblock={cfg['sblock']} B, "
          f"Nblock={cfg['nblock']}, stripe={cfg['stripe_size']} B")
    hdr = (f"{'shards':>7} {'proto':>6} {'time [ms]':>10} "
           f"{'req bytes':>10} {'view bytes':>11} {'payload':>10} "
           f"{'reqs':>6} {'fallbacks':>9}")
    print(hdr)
    for nshards, row in rec["cells"].items():
        for proto in SHIP_PROTOCOLS:
            c = row[proto]
            print(f"{nshards:>7} {proto:>6} {c['time']*1e3:>10.2f} "
                  f"{c['request_bytes']:>10} {c['view_bytes']:>11} "
                  f"{c['payload_bytes']:>10} {c['requests']:>6} "
                  f"{c['dtype_fallbacks']:>9}")
        print(f"{'':>7} dtype/list request-description bytes: "
              f"{row['dtype_vs_list_request_bytes']:.3f}")
    acc = rec["acceptance"]
    print(f"acceptance (dtype request+view <= list request bytes at "
          f"every stripe count): {'PASS' if acc['pass'] else 'FAIL'} "
          f"{acc['dtype_wire_wins']}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(rec, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()

"""Paper Table 2: BTIO's non-contiguous file access pattern.

Nblock and Sblock per process for classes B and C at P ∈ {4, 9, 16, 25}.
The characterization is analytic; the benchmark case additionally
flattens a real class-S fileview and confirms the structural block count
matches.  Regenerate::

    python benchmarks/bench_table2_btio_pattern.py
"""

from __future__ import annotations

import pytest

from repro.bench import btio_characterize
from repro.bench.btio import BTIO_CLASSES, build_process_filetype
from repro.bench.reporting import format_table
from repro.flatten import flatten_datatype

PAPER_TABLE2 = [
    ("B", 4, 5202, 2040),
    ("B", 9, 3468, 1360),
    ("B", 16, 2601, 1020),
    ("B", 25, 2080, 816),
    ("C", 4, 13122, 3240),
    ("C", 9, 8748, 2160),
    ("C", 16, 6561, 1620),
    ("C", 25, 5248, 1296),
]


@pytest.mark.parametrize("cls,P,nblock,sblock", PAPER_TABLE2)
def test_table2_matches_paper_exactly(cls, P, nblock, sblock):
    c = btio_characterize(cls, P)
    assert c["nblock"] == nblock
    assert c["sblock"] == sblock


def test_flattened_fileview_matches_characterization(benchmark):
    """Flatten a real class-S view; Nblock must equal q·(N/q)² up to the
    (at most q−1) seams where a rank's diagonal-adjacent cells touch in
    the file and their boundary blocks coalesce."""
    def flatten_all():
        return [
            len(flatten_datatype(build_process_filetype(12, 4, r)))
            for r in range(4)
        ]

    counts = benchmark.pedantic(flatten_all, rounds=3, iterations=1)
    expect = btio_characterize("S", 4)["nblock"]
    for c in counts:
        assert expect - 1 <= c <= expect


def main() -> None:
    rows = []
    for cls in ("B", "C"):
        for P in (4, 9, 16, 25):
            c = btio_characterize(cls, P)
            rows.append((cls, P, c["nblock"], c["sblock"]))
    print("=== Table 2: BTIO non-contiguous access pattern ===")
    print(format_table(["Class", "P", "Nblock", "Sblock[B]"], rows))


if __name__ == "__main__":
    main()

"""Ablation: data sieving vs multiple file accesses (paper §5 outlook).

The paper's closing discussion names "the decision on the trade-off
between data sieving and multiple file accesses" as the remaining
optimization knob for independent non-contiguous I/O.  This bench
quantifies that trade-off on the simulated device:

* **sieving on** — few large file operations, but gap bytes are read
  (and read-modify-written under a lock for writes);
* **sieving off** — exactly the payload bytes move, but one file
  operation (with its latency) per contiguous block.

The crossover depends on the *duty cycle* Sblock/stride of the view: for
dense views sieving reads little extra; for sparse views it drags in
mostly gaps.  Regenerate the table::

    python benchmarks/bench_ablation_sieving.py
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import datatypes as dt
from repro.bench.reporting import format_table
from repro.fs import DeviceModel, SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd

NBLOCK = 512
SBLOCK = 64


def run_read(duty_denominator: int, ds_read: bool):
    """One rank reads NBLOCK blocks whose stride is
    ``duty_denominator * SBLOCK``; returns the file stats snapshot."""
    fs = SimFileSystem()
    stride = duty_denominator * SBLOCK
    span = NBLOCK * stride
    fs.create("/f").truncate(span)
    hints = Hints(ds_read=ds_read)

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine="listless", hints=hints)
        ft = dt.vector(NBLOCK, SBLOCK, stride, dt.BYTE)
        fh.set_view(0, dt.BYTE, ft)
        out = np.zeros(NBLOCK * SBLOCK, dtype=np.uint8)
        fh.read_at(0, out)
        fh.close()

    run_spmd(1, worker)
    return fs.lookup("/f").stats.snapshot()


# ----------------------------------------------------------------------
@pytest.mark.parametrize("ds", [True, False])
def test_ablation_sieving_read(benchmark, ds):
    stats = benchmark.pedantic(
        lambda: run_read(4, ds), rounds=3, iterations=1
    )
    if ds:
        assert stats["n_reads"] <= 2
    else:
        assert stats["n_reads"] == NBLOCK


def test_sieving_wins_for_dense_views():
    """At 1/2 duty cycle the gap overhead is small and the saved
    latencies dominate: sieving must cost less simulated device time."""
    on = run_read(2, True)
    off = run_read(2, False)
    assert on["sim_time"] < off["sim_time"]
    assert on["n_reads"] < off["n_reads"] / 50


def test_blockwise_moves_fewer_bytes_for_sparse_views():
    """At 1/64 duty cycle sieving reads ~64x the payload."""
    on = run_read(64, True)
    off = run_read(64, False)
    assert off["bytes_read"] == NBLOCK * SBLOCK
    assert on["bytes_read"] > 32 * off["bytes_read"]


def main() -> None:
    rows = []
    for denom in (1, 2, 4, 16, 64, 256):
        on = run_read(denom, True)
        off = run_read(denom, False)
        rows.append(
            (
                f"1/{denom}",
                on["n_reads"],
                f"{on['bytes_read']:,}",
                f"{on['sim_time']*1e3:.2f}",
                off["n_reads"],
                f"{off['bytes_read']:,}",
                f"{off['sim_time']*1e3:.2f}",
                "sieve" if on["sim_time"] < off["sim_time"] else "block",
            )
        )
    print("=== Ablation: data sieving vs per-block access "
          f"(read, Nblock={NBLOCK}, Sblock={SBLOCK}B) ===")
    print(
        format_table(
            [
                "duty",
                "ops(sieve)",
                "bytes(sieve)",
                "dev ms(sieve)",
                "ops(block)",
                "bytes(block)",
                "dev ms(block)",
                "winner",
            ],
            rows,
        )
    )
    print("(device model: 8 GB/s reads, 50 us/op — the crossover moves "
          "with the latency/bandwidth ratio)")


if __name__ == "__main__":
    main()

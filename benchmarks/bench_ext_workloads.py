"""Extension: engine comparison across realistic application workloads.

Runs every family of :mod:`repro.bench.workloads` as a collective
write+read through both engines and reports bandwidths — the "behavior
in complex applications" sweep the paper's outlook asks for.  Each
family exercises a different corner of the datatype machinery:

=================  ==================================================
tiled_matrix        darray block views, row-sized runs
row_cyclic          darray cyclic views, large strides
column_blocks       subarray views with element-sized runs (worst case)
scatter_records     irregular indexed_block views
ghost_grid3d        nested subarray memtype + filetype (BTIO's shape)
=================  ==================================================

Regenerate::

    python benchmarks/bench_ext_workloads.py
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

from repro.bench.reporting import fmt_bytes, format_table
from repro.bench.workloads import WORKLOADS, make_workload
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd

NPROCS = 4
ENGINES = ("list_based", "listless")


def run_workload(name: str, engine: str) -> dict:
    """Collective write + read of one workload; returns timings/stats."""
    fs = SimFileSystem()
    box = {}

    def worker(comm):
        w = make_workload(name, comm.rank, comm.size)
        fh = File.open(comm, fs, "/w", MODE_CREATE | MODE_RDWR,
                       engine=engine)
        fh.set_view(0, _etype_for(w), w.filetype)
        rng = np.random.default_rng(comm.rank)
        buf = rng.integers(0, 256, w.buffer_bytes, dtype=np.uint8)
        comm.barrier()
        if comm.rank == 0:
            box["t0"] = time.perf_counter()
        comm.barrier()
        fh.write_at_all(0, buf, w.count, w.memtype)
        out = np.zeros(w.buffer_bytes, dtype=np.uint8)
        fh.read_at_all(0, out, w.count, w.memtype)
        comm.barrier()
        if comm.rank == 0:
            box["wall"] = time.perf_counter() - box["t0"]
        fh.close()

    run_spmd(NPROCS, worker)
    w0 = make_workload(name, 0, NPROCS)
    box["moved"] = 2 * w0.data_bytes * NPROCS
    box["fs"] = fs.lookup("/w").stats.snapshot()
    return box


def _etype_for(w) -> "object":
    """Etype choice per family: DOUBLE for numeric grids, BYTE for raw
    records (must divide the filetype size)."""
    from repro import datatypes as dt

    return dt.DOUBLE if w.filetype.size % 8 == 0 else dt.BYTE


# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("engine", ENGINES)
def test_ext_workloads(benchmark, name, engine):
    result = benchmark.pedantic(
        lambda: run_workload(name, engine), rounds=3, iterations=1
    )
    assert result["fs"]["bytes_written"] > 0


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_ext_workload_files_identical_across_engines(name):
    imgs = {}
    for engine in ENGINES:
        fs = SimFileSystem()

        def worker(comm):
            w = make_workload(name, comm.rank, comm.size)
            fh = File.open(comm, fs, "/w", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.set_view(0, _etype_for(w), w.filetype)
            rng = np.random.default_rng(comm.rank)
            buf = rng.integers(0, 256, w.buffer_bytes, dtype=np.uint8)
            fh.write_at_all(0, buf, w.count, w.memtype)
            fh.close()

        run_spmd(NPROCS, worker)
        imgs[engine] = fs.lookup("/w").contents()
    assert imgs["listless"].size == imgs["list_based"].size
    assert (imgs["listless"] == imgs["list_based"]).all(), name


def test_ext_column_blocks_is_listless_territory():
    """The element-granular workload must show a clear listless win."""
    t = {}
    for engine in ENGINES:
        vals = [run_workload("column_blocks", engine)["wall"]
                for _ in range(3)]
        t[engine] = min(vals)
    assert t["listless"] < t["list_based"]


def main() -> None:
    rows = []
    for name in WORKLOADS:
        med = {}
        for engine in ENGINES:
            vals = [run_workload(name, engine)["wall"] for _ in range(3)]
            med[engine] = min(vals)
        w0 = make_workload(name, 0, NPROCS)
        rows.append(
            (
                name,
                fmt_bytes(w0.file_bytes),
                w0.filetype.num_blocks,
                f"{med['list_based']*1e3:.1f}",
                f"{med['listless']*1e3:.1f}",
                f"{med['list_based'] / med['listless']:.1f}x",
            )
        )
    print(f"=== Extension: application workloads (P={NPROCS}, collective "
          "write+read) ===")
    print(format_table(
        ["workload", "file", "Nblock/rank", "list-based ms",
         "listless ms", "listless speedup"],
        rows,
    ))


if __name__ == "__main__":
    main()

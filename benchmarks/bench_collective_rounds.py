"""Round-based aggregation: staging bound, and pipelined-round overlap.

The round-based collective driver (``repro.io.aggregation``) walks each
I/O-process domain in ``cb_buffer_size`` windows and ships only the
current window's bytes per exchange, so an aggregator never stages more
than O(cb_buffer_size x participating APs) at once.  This bench pins
that bound against the *one-shot* configuration (``cb_buffer_size``
large enough that every domain is a single window — the pre-refactor
behaviour), sweeps the pluggable file-domain partitioning strategies
(``cb_domain_align`` in even/stripe/block), and measures what the
pipelined plan shape (``cb_pipeline=on``: deferred window I/O, relaxed
p2p round synchronization) buys back of the wall time serial rounds pay
for their bounded staging.

Timing follows the repo's substitution rule (DESIGN.md §5.5): effective
time = measured wall + charged simulated device seconds, where the
pipelined executor charges only the *unhidden* device time
(``device_sync_seconds + device_stall_seconds``) — offloaded window I/O
the device worked off behind round CPU costs nothing.  The device model
is deliberately slow (a few MB/s per rank, microsecond access latency:
one round's window costs a few ms, commensurate with one round of CPU)
because that is the regime aggregated I/O exists for; with a device
much faster than the CPU there is nothing to overlap, with one much
slower nothing can hide it.  Plans are warmed before timing — the
paper's collectives replay cached plans, so steady-state cells must not
pay one-time planning.

Cells per (engine, strategy): ``one_shot``, ``serial``
(``cb_pipeline=off``) and ``pipelined`` (``cb_pipeline=on``), each with
effective time, peak staging, the pipelined cell's *overlap
efficiency* — the fraction of total device time hidden behind round
CPU, ``(device_async - device_stall) / (device_sync + device_async)`` —
and per-round *skew* columns: the cross-rank spread of each timed
round's wall (and exchange) seconds, worst round and mean, from the
per-rank round logs.  Skew is the per-round face of what ``repro trace
--waits`` attributes causally: a rank whose rounds persistently run
long shows up both here and as the straggler the others wait on.
Standalone run writes the machine-readable record::

    python benchmarks/bench_collective_rounds.py --quick \
        --out results/BENCH_collective.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import DeviceModel, SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import DOMAIN_ALIGNMENTS, Hints
from repro.mpi import run_spmd

#: Ranks in the collective; every rank is both AP and IOP by default.
NPROCS = 4
#: Bytes each rank contributes per collective access.
BYTES_PER_RANK = 1 << 19
#: Interleave granularity (one vector block).
BLOCK = 1 << 10
#: Round-based window; one-shot mode uses the whole aggregate range.
ROUND_CB = 1 << 15

#: Device model of the measured cells: a slow store whose per-window
#: time is a few ms — the regime where hiding window I/O behind round
#: CPU is visible.  Latency is kept tiny so the pipelined mode's extra
#: per-window accesses (16 windows vs one-shot's single access) do not
#: drown the comparison in seek charges.
DEVICE = dict(read_bandwidth=6e6, write_bandwidth=6e6, latency=1e-5)

#: Timed write+read pairs per run (after one untimed warm-up pair that
#: populates the plan cache).  Cell times take the *fastest* of REPEATS
#: runs (as bench_ext_multidim does): the cells are compared as ratios,
#: and a best-of estimate suppresses the threaded scheduler's one-sided
#: noise far better than a median.
NREPS = 2
REPEATS = 6


def _run_once(engine: str, cb: int, align, nbytes: int,
              pipeline: str = "off") -> dict:
    """One warmed, repeated collective write+read pair on ``NPROCS``
    ranks.

    Returns per-pair effective seconds plus the per-rank maxima of the
    staging and round counters and the rank-summed device-time
    decomposition.
    """
    fs = SimFileSystem(device=DeviceModel(**DEVICE))
    nblocks = nbytes // BLOCK
    fs.create("/coll").truncate(NPROCS * nbytes)

    def worker(comm):
        fh = File.open(
            comm, fs, "/coll", MODE_CREATE | MODE_RDWR, engine=engine,
            hints=Hints(cb_buffer_size=cb, cb_domain_align=align,
                        cb_pipeline=pipeline),
        )
        ft = dt.vector(nblocks, BLOCK, NPROCS * BLOCK, dt.BYTE)
        fh.set_view(comm.rank * BLOCK, dt.BYTE, ft)
        wbuf = np.full(nbytes, comm.rank + 1, dtype=np.uint8)
        rbuf = np.zeros(nbytes, dtype=np.uint8)
        # Warm-up pair: populates the plan cache (and the executor's
        # worker), so the timed pairs measure steady-state replay.
        fh.write_at_all(0, wbuf)
        fh.read_at_all(0, rbuf)
        st = fh.engine.stats
        base = (st.plan.device_sync_seconds, st.plan.device_async_seconds,
                st.plan.device_stall_seconds)
        nwarm_rounds = len(st.rounds)
        t0 = time.perf_counter()
        for _ in range(NREPS):
            fh.write_at_all(0, wbuf)
            fh.read_at_all(0, rbuf)
        wall = (time.perf_counter() - t0) / NREPS
        assert np.array_equal(rbuf, wbuf)
        dsync, dasync, dstall = (
            b - a for a, b in zip(base, (
                st.plan.device_sync_seconds,
                st.plan.device_async_seconds,
                st.plan.device_stall_seconds,
            ))
        )
        timed_rounds = st.rounds.snapshot()[nwarm_rounds:]
        out = {
            "wall": wall,
            "device": (dsync + dstall) / NREPS,
            "dev_hidden": dasync - dstall,
            "dev_total": dsync + dasync,
            "peak_staging": st.plan.peak_staging_bytes,
            "rounds": st.coll_rounds,
            "domain_skew": st.coll_domain_skew,
            "pipelined_ops": st.plan.pipelined_file_ops,
            "idle_synced": st.plan.rounds_idle_synced,
            "round_walls": [r["wall"] for r in timed_rounds],
            "round_exchanges": [r["exchange"] for r in timed_rounds],
        }
        fh.close()
        return out

    rows = run_spmd(NPROCS, worker)

    def skews(key: str) -> list:
        # Ranks replay the same deterministic round schedule, so the
        # i-th timed round row on every rank is the same round: the
        # cross-rank spread of its per-round seconds is the skew the
        # wait-attribution report explains (straggler ranks).
        series = [r[key] for r in rows]
        n = min(len(s) for s in series)
        return [max(s[i] for s in series) - min(s[i] for s in series)
                for i in range(n)]

    wall_skew = skews("round_walls")
    exch_skew = skews("round_exchanges")
    return {
        # Effective pair time: slowest rank's wall + slowest rank's
        # charged (unhidden) device seconds — ranks drive their domain
        # devices in parallel, like the per-rank wire-time convention.
        "time": max(r["wall"] for r in rows)
        + max(r["device"] for r in rows),
        "dev_hidden": sum(r["dev_hidden"] for r in rows),
        "dev_total": sum(r["dev_total"] for r in rows),
        "peak_staging": max(r["peak_staging"] for r in rows),
        "rounds": max(r["rounds"] for r in rows),
        "domain_skew": max(r["domain_skew"] for r in rows),
        "pipelined_ops": sum(r["pipelined_ops"] for r in rows),
        "idle_synced": sum(r["idle_synced"] for r in rows),
        "round_skew": max(wall_skew) if wall_skew else 0.0,
        "round_skew_mean": (sum(wall_skew) / len(wall_skew)
                            if wall_skew else 0.0),
        "exchange_skew": max(exch_skew) if exch_skew else 0.0,
    }


def _cell(engine: str, cb: int, align, nbytes: int,
          pipeline: str = "off", repeats: int = REPEATS) -> dict:
    runs = [_run_once(engine, cb, align, nbytes, pipeline)
            for _ in range(repeats)]
    mid = min(runs, key=lambda r: r["time"])
    out = {
        "time": mid["time"],
        "peak_staging": max(r["peak_staging"] for r in runs),
        "rounds": runs[0]["rounds"],
        "domain_skew": runs[0]["domain_skew"],
        "pipelined_ops": runs[0]["pipelined_ops"],
        "idle_synced": runs[0]["idle_synced"],
        # Skew columns ride the best run: the per-round cross-rank
        # spread of wall/exchange seconds (worst round, and the
        # per-round mean for the wall spread).
        "round_skew": mid["round_skew"],
        "round_skew_mean": mid["round_skew_mean"],
        "exchange_skew": mid["exchange_skew"],
    }
    out["overlap_efficiency"] = (
        mid["dev_hidden"] / mid["dev_total"] if mid["dev_total"] > 0
        else 0.0
    )
    return out


def collect(quick: bool) -> dict:
    nbytes = BYTES_PER_RANK // (4 if quick else 1)
    one_shot_cb = 4 * NPROCS * nbytes  # any window >= the aggregate range
    # Tame the GIL's 5 ms default handoff latency for the measurement:
    # per-round cross-rank wakeups otherwise dominate the (threaded)
    # round CPU and swamp the overlap signal with scheduler noise.
    swi = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    try:
        cells: dict = {}
        for engine in ("list_based", "listless"):
            for align in DOMAIN_ALIGNMENTS:
                one = _cell(engine, one_shot_cb, align, nbytes)
                ser = _cell(engine, ROUND_CB, align, nbytes, "off")
                pipe = _cell(engine, ROUND_CB, align, nbytes, "on")
                cells[f"{engine}/{align}"] = {
                    "one_shot": one,
                    "serial": ser,
                    "pipelined": pipe,
                    "staging_ratio": one["peak_staging"]
                    / max(1, pipe["peak_staging"]),
                    "overlap_efficiency": pipe["overlap_efficiency"],
                    "pipelined_vs_one_shot": pipe["time"] / one["time"],
                    "pipelined_vs_serial": pipe["time"] / ser["time"],
                }
    finally:
        sys.setswitchinterval(swi)
    bound = NPROCS * ROUND_CB
    worst = max(
        max(c["serial"]["peak_staging"], c["pipelined"]["peak_staging"])
        for c in cells.values()
    )
    worst_ratio = max(c["pipelined_vs_one_shot"] for c in cells.values())
    min_overlap = min(c["overlap_efficiency"] for c in cells.values())
    record = {
        "bench": "collective_rounds",
        "quick": quick,
        "config": {
            "nprocs": NPROCS,
            "bytes_per_rank": nbytes,
            "block": BLOCK,
            "round_cb": ROUND_CB,
            "one_shot_cb": one_shot_cb,
            "device": DEVICE,
            "nreps": NREPS,
        },
        "cells": cells,
        "acceptance": {
            "bound_bytes": bound,
            "worst_round_peak": worst,
            "worst_pipelined_vs_one_shot": worst_ratio,
            "min_overlap_efficiency": min_overlap,
            # Pipelining must claw back the serial rounds' wall-time
            # loss: no cell may run meaningfully slower than one-shot,
            # every cell must actually hide some device time, and the
            # staging bound must survive untouched.
            "pass": bool(worst <= bound and worst_ratio <= 1.05
                         and min_overlap > 0.0),
        },
    }
    try:
        from benchmarks._common import obs_record
    except ImportError:  # run as a script: benchmarks/ is sys.path[0]
        from _common import obs_record
    record["observability"] = obs_record()
    return record


# ----------------------------------------------------------------------
# pytest cases
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["list_based", "listless"])
def test_round_based_bounds_peak_staging(engine):
    """The aggregator's staging must stay within O(cb x APs) in round
    mode — pipelined or not — and the one-shot run must stage at least
    a whole rank's access (the contrast the refactor exists to
    create)."""
    nbytes = BYTES_PER_RANK // 8
    one = _run_once(engine, 4 * NPROCS * nbytes, None, nbytes)
    for pipeline in ("off", "on"):
        rnd = _run_once(engine, ROUND_CB, None, nbytes, pipeline)
        assert rnd["peak_staging"] <= NPROCS * ROUND_CB, rnd
        assert rnd["rounds"] > one["rounds"]
    assert one["peak_staging"] >= nbytes, one


@pytest.mark.parametrize("align", DOMAIN_ALIGNMENTS)
def test_strategies_complete(align):
    """Every partitioning strategy round-trips the interleaved pattern
    under the pipelined plan shape (byte-identity is asserted inside
    the worker), without a single synchronizing fallback round."""
    out = _run_once("listless", ROUND_CB, align, BYTES_PER_RANK // 16,
                    "on")
    assert out["rounds"] > 0
    assert out["pipelined_ops"] > 0
    assert out["idle_synced"] == 0


def test_pipelined_hides_device_time():
    """The pipelined cells must hide real device time behind round CPU
    (positive overlap efficiency), and the serial cells must not charge
    any async device time at all."""
    pipe = _run_once("listless", ROUND_CB, None, BYTES_PER_RANK // 16,
                     "on")
    assert pipe["dev_hidden"] > 0
    ser = _run_once("listless", ROUND_CB, None, BYTES_PER_RANK // 16,
                    "off")
    assert ser["dev_total"] > 0
    assert ser["dev_hidden"] == 0


# ----------------------------------------------------------------------
def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="smaller access (CI smoke)")
    ap.add_argument("--out", default=None,
                    help="write the JSON record to this path")
    args = ap.parse_args()

    rec = collect(args.quick)
    cfg = rec["config"]
    print("=== Round-based aggregation: one-shot vs serial vs pipelined "
          f"({'quick' if rec['quick'] else 'full'}) ===")
    print(f"P={cfg['nprocs']}, {cfg['bytes_per_rank']} B/rank, "
          f"round cb={cfg['round_cb']} B, device "
          f"{cfg['device']['read_bandwidth']/1e6:.0f} MB/s")
    hdr = (f"{'cell':>18} {'mode':>10} {'time [ms]':>10} "
           f"{'peak staging [B]':>17} {'rounds':>7} {'overlap':>8} "
           f"{'skew [ms]':>10}")
    print(hdr)
    for name, c in rec["cells"].items():
        for mode in ("one_shot", "serial", "pipelined"):
            m = c[mode]
            eff = (f"{m['overlap_efficiency']:>8.2f}"
                   if mode == "pipelined" else f"{'-':>8}")
            print(f"{name:>18} {mode:>10} {m['time']*1e3:>10.2f} "
                  f"{m['peak_staging']:>17} {m['rounds']:>7} {eff} "
                  f"{m['round_skew']*1e3:>10.3f}")
        print(f"{'':>18} staging ratio one-shot/pipelined: "
              f"{c['staging_ratio']:.1f}x   "
              f"pipelined/one-shot: {c['pipelined_vs_one_shot']:.2f} "
              f"  pipelined/serial: {c['pipelined_vs_serial']:.2f}")
    acc = rec["acceptance"]
    print(f"acceptance (round peak <= P x cb = {acc['bound_bytes']} B, "
          f"pipelined <= 1.05 x one-shot, overlap > 0): "
          f"{'PASS' if acc['pass'] else 'FAIL'} "
          f"(worst peak {acc['worst_round_peak']} B, worst ratio "
          f"{acc['worst_pipelined_vs_one_shot']:.2f}, min overlap "
          f"{acc['min_overlap_efficiency']:.2f})")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(rec, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()

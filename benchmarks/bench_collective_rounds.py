"""Round-based aggregation: IOP peak buffering vs one-shot staging.

The round-based collective driver (``repro.io.aggregation``) walks each
I/O-process domain in ``cb_buffer_size`` windows and ships only the
current window's bytes per exchange, so an aggregator never stages more
than O(cb_buffer_size x participating APs) at once.  This bench pins
that bound against the *one-shot* configuration (``cb_buffer_size``
large enough that every domain is a single window — the pre-refactor
behaviour) and sweeps the pluggable file-domain partitioning strategies
(``cb_domain_align`` in even/stripe/block).

For every (engine, strategy, mode) cell it records the wall time of one
collective write+read pair over an interleaved view and the maximum
``peak_staging_bytes`` any rank observed.  Standalone run writes the
machine-readable record::

    python benchmarks/bench_collective_rounds.py --quick \
        --out results/BENCH_collective.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import numpy as np
import pytest

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import DOMAIN_ALIGNMENTS, Hints
from repro.mpi import run_spmd

#: Ranks in the collective; every rank is both AP and IOP by default.
NPROCS = 4
#: Bytes each rank contributes per collective access.
BYTES_PER_RANK = 1 << 18
#: Interleave granularity (one vector block).
BLOCK = 1 << 10
#: Round-based window; one-shot mode uses the whole aggregate range.
ROUND_CB = 1 << 15

REPEATS = 3


def _run_once(engine: str, cb: int, align, nbytes: int) -> dict:
    """One collective write+read pair on ``NPROCS`` ranks.

    Returns wall seconds plus the per-rank maxima of the staging and
    round counters.
    """
    fs = SimFileSystem()
    nblocks = nbytes // BLOCK
    fs.create("/coll").truncate(NPROCS * nbytes)

    def worker(comm):
        fh = File.open(
            comm, fs, "/coll", MODE_CREATE | MODE_RDWR, engine=engine,
            hints=Hints(cb_buffer_size=cb, cb_domain_align=align),
        )
        ft = dt.vector(nblocks, BLOCK, NPROCS * BLOCK, dt.BYTE)
        fh.set_view(comm.rank * BLOCK, dt.BYTE, ft)
        wbuf = np.full(nbytes, comm.rank + 1, dtype=np.uint8)
        rbuf = np.zeros(nbytes, dtype=np.uint8)
        t0 = time.perf_counter()
        fh.write_at_all(0, wbuf)
        fh.read_at_all(0, rbuf)
        wall = time.perf_counter() - t0
        assert np.array_equal(rbuf, wbuf)
        st = fh.engine.stats
        out = {
            "wall": wall,
            "peak_staging": st.plan.peak_staging_bytes,
            "rounds": st.coll_rounds,
            "domain_skew": st.coll_domain_skew,
        }
        fh.close()
        return out

    rows = run_spmd(NPROCS, worker)
    return {
        "wall": max(r["wall"] for r in rows),
        "peak_staging": max(r["peak_staging"] for r in rows),
        "rounds": max(r["rounds"] for r in rows),
        "domain_skew": max(r["domain_skew"] for r in rows),
    }


def _cell(engine: str, cb: int, align, nbytes: int,
          repeats: int = REPEATS) -> dict:
    runs = [_run_once(engine, cb, align, nbytes) for _ in range(repeats)]
    return {
        "wall": statistics.median(r["wall"] for r in runs),
        "peak_staging": max(r["peak_staging"] for r in runs),
        "rounds": runs[0]["rounds"],
        "domain_skew": runs[0]["domain_skew"],
    }


def collect(quick: bool) -> dict:
    nbytes = BYTES_PER_RANK // (4 if quick else 1)
    one_shot_cb = 4 * NPROCS * nbytes  # any window >= the aggregate range
    cells: dict = {}
    for engine in ("list_based", "listless"):
        for align in DOMAIN_ALIGNMENTS:
            one = _cell(engine, one_shot_cb, align, nbytes)
            rnd = _cell(engine, ROUND_CB, align, nbytes)
            cells[f"{engine}/{align}"] = {
                "one_shot": one,
                "round_based": rnd,
                "staging_ratio": one["peak_staging"]
                / max(1, rnd["peak_staging"]),
            }
    bound = NPROCS * ROUND_CB
    worst = max(
        c["round_based"]["peak_staging"] for c in cells.values()
    )
    record = {
        "bench": "collective_rounds",
        "quick": quick,
        "config": {
            "nprocs": NPROCS,
            "bytes_per_rank": nbytes,
            "block": BLOCK,
            "round_cb": ROUND_CB,
            "one_shot_cb": one_shot_cb,
        },
        "cells": cells,
        "acceptance": {
            "bound_bytes": bound,
            "worst_round_peak": worst,
            "pass": worst <= bound,
        },
    }
    try:
        from benchmarks._common import obs_record
    except ImportError:  # run as a script: benchmarks/ is sys.path[0]
        from _common import obs_record
    record["observability"] = obs_record()
    return record


# ----------------------------------------------------------------------
# pytest cases
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["list_based", "listless"])
def test_round_based_bounds_peak_staging(engine):
    """The aggregator's staging must stay within O(cb x APs) in round
    mode and the one-shot run must stage at least a whole rank's access
    (the contrast the refactor exists to create)."""
    nbytes = BYTES_PER_RANK // 4
    one = _run_once(engine, 4 * NPROCS * nbytes, None, nbytes)
    rnd = _run_once(engine, ROUND_CB, None, nbytes)
    assert rnd["peak_staging"] <= NPROCS * ROUND_CB, rnd
    assert one["peak_staging"] >= nbytes, one
    assert rnd["rounds"] > one["rounds"]


@pytest.mark.parametrize("align", DOMAIN_ALIGNMENTS)
def test_strategies_complete(align):
    """Every partitioning strategy round-trips the interleaved pattern
    (byte-identity is asserted inside the worker)."""
    out = _run_once("listless", ROUND_CB, align, BYTES_PER_RANK // 8)
    assert out["rounds"] > 0


# ----------------------------------------------------------------------
def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="smaller access (CI smoke)")
    ap.add_argument("--out", default=None,
                    help="write the JSON record to this path")
    args = ap.parse_args()

    rec = collect(args.quick)
    cfg = rec["config"]
    print("=== Round-based aggregation: peak staging vs one-shot "
          f"({'quick' if rec['quick'] else 'full'}) ===")
    print(f"P={cfg['nprocs']}, {cfg['bytes_per_rank']} B/rank, "
          f"round cb={cfg['round_cb']} B")
    hdr = (f"{'cell':>18} {'mode':>12} {'wall [ms]':>10} "
           f"{'peak staging [B]':>17} {'rounds':>7}")
    print(hdr)
    for name, c in rec["cells"].items():
        for mode in ("one_shot", "round_based"):
            m = c[mode]
            print(f"{name:>18} {mode:>12} {m['wall']*1e3:>10.2f} "
                  f"{m['peak_staging']:>17} {m['rounds']:>7}")
        print(f"{'':>18} staging ratio one-shot/round: "
              f"{c['staging_ratio']:.1f}x")
    acc = rec["acceptance"]
    print(f"acceptance (round peak <= P x cb = {acc['bound_bytes']} B): "
          f"{'PASS' if acc['pass'] else 'FAIL'} "
          f"(worst {acc['worst_round_peak']} B)")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(rec, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()

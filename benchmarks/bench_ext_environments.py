"""Extension experiments from the paper's outlook (§5): different file
systems and communication topologies.

"The higher the bandwidth of the used file system is in relation to the
bandwidth of the memory system and message passing interconnect, the more
important listless I/O is" — and — "This performance analysis needs to
include different file systems and different communication topologies."

Two sweeps quantify both statements on the simulated substrates:

* **File systems**: the collective nc-nc noncontig benchmark under three
  device models — an SX-class local FS (the default), a mid-range PFS,
  and an NFS-class slow device.  The listless/list-based ratio must
  *grow* with device bandwidth: a slow device hides the CPU-side list
  overheads.
* **Topologies**: the same benchmark on a uniform (single-node) network
  vs a 2-ranks-per-node cluster network.  The list-based engine ships
  ol-lists across the (more expensive) inter-node links on every access,
  so its accounted wire time rises disproportionately.

Regenerate the tables::

    python benchmarks/bench_ext_environments.py
"""

from __future__ import annotations

import statistics

import pytest

from repro.bench import NoncontigConfig, mb_per_s, run_noncontig
from repro.bench.reporting import format_table
from repro.fs import DeviceModel, SimFileSystem, StripingConfig
from repro.mpi import NetworkModel

CFG = NoncontigConfig(
    nprocs=4, blocklen=8, blockcount=2048, pattern="nc-nc",
    collective=True, nreps=2,
)

DEVICES = {
    "SX-local (8 GB/s)": DeviceModel(),
    "PFS (1 GB/s, striped)": DeviceModel(
        read_bandwidth=1e9, write_bandwidth=0.8e9, latency=200e-6
    ),
    "NFS (50 MB/s)": DeviceModel(
        read_bandwidth=50e6, write_bandwidth=40e6, latency=2e-3
    ),
}


def ratio_for_device(device: DeviceModel, repeats: int = 3) -> float:
    """listless/list-based write-bandwidth ratio under one device."""
    med = {}
    for engine in ("listless", "list_based"):
        vals = []
        for _ in range(repeats):
            fs = SimFileSystem(device=device)
            vals.append(run_noncontig(engine, CFG, fs=fs).write_bpp)
        med[engine] = statistics.median(vals)
    return med["listless"] / med["list_based"]


# ----------------------------------------------------------------------
def test_ext_ratio_grows_with_device_bandwidth():
    """The paper's §5 claim: a faster file system makes listless I/O more
    important (the list overhead cannot hide behind device time)."""
    fast = ratio_for_device(DEVICES["SX-local (8 GB/s)"])
    slow = ratio_for_device(DEVICES["NFS (50 MB/s)"])
    # Device time hides part (not all) of the CPU-side list overhead.
    assert fast > 1.3 * slow


@pytest.mark.parametrize("name", list(DEVICES))
def test_ext_devices_run(benchmark, name):
    device = DEVICES[name]

    def run():
        fs = SimFileSystem(device=device)
        return run_noncontig("listless", CFG, fs=fs)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["write_MBps"] = result.write_bpp / 1e6


def test_ext_topology_inflates_list_exchange_cost():
    """On a multi-node network the per-access ol-list exchange of the
    list-based engine pays inter-node prices; its accounted wire time
    must exceed the listless engine's by more than the data ratio."""
    from repro.bench.noncontig import build_noncontig_filetype
    from repro import datatypes as dt
    from repro.io import File, MODE_CREATE, MODE_RDWR
    from repro.mpi import run_spmd
    import numpy as np

    # A slow cluster interconnect (Fast-Ethernet era): here the list
    # *volume* matters, not just message latency.
    net = NetworkModel(ranks_per_node=2, inter_latency=50e-6,
                       inter_bandwidth=100e6)
    times = {}
    for engine in ("listless", "list_based"):
        fs = SimFileSystem()
        worlds = []

        def worker(comm):
            r = comm.rank
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            # Fine-grained enough that the shipped lists (16 B per
            # 8 B block) dominate over per-message latency.
            ft = build_noncontig_filetype(4, r, 8, 16384)
            fh.set_view(0, dt.BYTE, ft)
            buf = np.zeros(8 * 16384, dtype=np.uint8)
            for rep in range(4):
                fh.write_at_all(rep * buf.size, buf)
            fh.close()

        run_spmd(4, worker, network=net, world_out=worlds)
        times[engine] = worlds[0].max_net_time()
    assert times["list_based"] > 1.5 * times["listless"]


def main() -> None:
    rows = []
    for name, device in DEVICES.items():
        med = {}
        for engine in ("listless", "list_based"):
            vals = []
            for _ in range(3):
                fs = SimFileSystem(device=device)
                vals.append(run_noncontig(engine, CFG, fs=fs).write_bpp)
            med[engine] = statistics.median(vals)
        rows.append(
            (
                name,
                f"{mb_per_s(med['list_based']):.2f}",
                f"{mb_per_s(med['listless']):.2f}",
                f"{med['listless'] / med['list_based']:.1f}x",
            )
        )
    print("=== Extension: engine gap vs file-system speed "
          "(collective nc-nc, Sblock=8B, Nblock=2048, P=4) ===")
    print(format_table(
        ["file system", "list-based MB/s", "listless MB/s", "ratio"],
        rows,
    ))
    print("(paper §5: the faster the file system relative to memory/"
          "network, the more important listless I/O)")

    rows2 = []
    for label, net in [
        ("single node (SX shared memory)", NetworkModel()),
        ("cluster, 100 MB/s inter-node",
         NetworkModel(ranks_per_node=2, inter_latency=50e-6,
                      inter_bandwidth=100e6)),
    ]:
        wt = {}
        for engine in ("listless", "list_based"):
            from repro.bench.noncontig import build_noncontig_filetype
            from repro import datatypes as dt
            from repro.io import File, MODE_CREATE, MODE_RDWR
            from repro.mpi import run_spmd
            import numpy as np

            fs = SimFileSystem()
            worlds = []

            def worker(comm):
                r = comm.rank
                fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                               engine=engine)
                ft = build_noncontig_filetype(4, r, 8, 16384)
                fh.set_view(0, dt.BYTE, ft)
                buf = np.zeros(8 * 16384, dtype=np.uint8)
                for rep in range(4):
                    fh.write_at_all(rep * buf.size, buf)
                fh.close()

            run_spmd(4, worker, network=net, world_out=worlds)
            wt[engine] = worlds[0].max_net_time()
        rows2.append(
            (
                label,
                f"{wt['list_based']*1e3:.2f}",
                f"{wt['listless']*1e3:.2f}",
                f"{wt['list_based'] / wt['listless']:.1f}x",
            )
        )
    print("\n=== Extension: accounted wire time vs topology "
          "(collective write x4, Nblock=16384) ===")
    print(format_table(
        ["network", "list-based ms", "listless ms", "ratio"], rows2
    ))


if __name__ == "__main__":
    main()

"""Paper Figure 6: Bpp vs vector length Nblock — collective access.

noncontig benchmark, Sblock = 8 bytes, P = 8, Nblock = 16 … 16k.

Paper result: list-based collective access to non-contiguous files never
exceeds 1 MB/s (the per-access ol-list exchange dominates); listless is
8.6–540× faster, additionally helped by fileview caching.  Regenerate::

    python benchmarks/bench_fig6_nblock_collective.py [--paper-scale]
"""

from __future__ import annotations

import sys

import pytest

from benchmarks._common import (
    ENGINES,
    PATTERNS,
    median_bpp,
    print_figure,
    sweep_noncontig,
)
from repro.bench import NoncontigConfig, run_noncontig

SBLOCK = 8
P = 8
NREPS = 2

NBLOCKS_QUICK = [16, 128, 1024]
NBLOCKS_PAPER = [16, 64, 256, 1024, 4096, 16384]


def config(nblock: int) -> NoncontigConfig:
    return NoncontigConfig(
        nprocs=P, blocklen=SBLOCK, blockcount=nblock,
        collective=True, nreps=NREPS,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("nblock", [128, 1024])
def test_fig6_collective(benchmark, engine, pattern, nblock):
    cfg = NoncontigConfig(
        nprocs=P, blocklen=SBLOCK, blockcount=nblock, pattern=pattern,
        collective=True, nreps=NREPS,
    )
    result = benchmark.pedantic(
        lambda: run_noncontig(engine, cfg), rounds=3, iterations=1
    )
    benchmark.extra_info["write_MBps"] = result.write_bpp / 1e6
    benchmark.extra_info["read_MBps"] = result.read_bpp / 1e6


def test_fig6_shape_collective_gap_exceeds_independent_gap():
    """Collective list-based access pays the ol-list exchange on top of
    the copy overhead, so the listless advantage is at least comparable
    to the independent case and the absolute list-based bandwidth is
    very low (paper: < 1 MB/s on the SX; qualitatively: far below the
    listless engine here)."""
    cfg = NoncontigConfig(
        nprocs=4, blocklen=SBLOCK, blockcount=1024, pattern="nc-nc",
        collective=True, nreps=NREPS,
    )
    ll = median_bpp("listless", cfg, "write")
    lb = median_bpp("list_based", cfg, "write")
    assert ll > 2 * lb


def test_fig6_comm_volume_dominated_by_lists():
    """Paper §2.3: the shipped ol-lists can match or exceed the data
    volume (16 bytes of tuple per 8-byte element)."""
    cfg = NoncontigConfig(
        nprocs=4, blocklen=8, blockcount=1024, pattern="c-nc",
        collective=True, nreps=1,
    )
    lb = run_noncontig("list_based", cfg)
    ll = run_noncontig("listless", cfg)
    # One write + one read phase: the data alone crosses the wire twice.
    moved_data = 2 * cfg.file_bytes
    assert ll.comm_bytes < 1.5 * moved_data
    # List-based additionally ships 16 B of tuple per 8 B block, per
    # phase, so its volume is far beyond the data volume.
    assert lb.comm_bytes > 2.0 * moved_data
    assert lb.comm_bytes > 2.0 * ll.comm_bytes


def main(paper_scale: bool = False) -> None:
    xs = NBLOCKS_PAPER if paper_scale else NBLOCKS_QUICK
    for phase in ("write", "read"):
        curves = sweep_noncontig(xs, config, phase)
        print_figure(
            f"Figure 6 ({phase}): Bpp [MB/s] vs Nblock — collective, "
            f"Sblock={SBLOCK}B, P={P}",
            "Nblock", xs, curves,
        )


if __name__ == "__main__":
    main(paper_scale="--paper-scale" in sys.argv)

"""Windowed reuse: compiled block programs vs flattening every call.

Periodic access patterns — a sieving loop marching window by window
through a tiled view, the two-phase exchange repeating the same window
shape per round — re-issue the *same* ``blocks_range`` query shifted by
whole periods.  The block-program layer (``repro.core.blockprog``)
compiles the query once and replays it with a scalar translation; this
bench measures what that saves at steady state against the cold path
(re-traversing the dataloop and rebuilding index machinery per call).

Three cases, each A/B-toggled via ``blockprog.set_enabled``:

* **pack** / **unpack** — raw ``ff_pack``/``ff_unpack`` of a recurring
  window over a ragged periodic type (the kernel in isolation);
* **engine** — windowed ``read_at``/``write_at`` through the listless
  engine with a non-contiguous memtype, showing the layer composes with
  plan caching end to end.

Standalone run writes the machine-readable record::

    python benchmarks/bench_blockprog_windowed.py --quick \
        --out results/BENCH_blockprog.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import numpy as np
import pytest

from repro import datatypes as dt
from repro.core import blockprog
from repro.core.blockprog import BLOCKPROG_STATS
from repro.core.ff_pack import ff_pack, ff_unpack
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd

#: Ragged periodic pattern: 48 blocks of 1..16 B at uneven displacements
#: inside a 2 KiB period — ugly enough that the cold path must take the
#: ragged-index kernel and rebuild its byte-index array every window.
_K = 48
_PERIOD = 2048
_COUNT = 512
#: A window spans 4 periods and marches one period per iteration, so
#: every window shape repeats with a translated base.
_WIN_PERIODS = 4

REPEATS = 3


def _ragged_type():
    lens = [(i % 16) + 1 for i in range(_K)]
    displs, pos = [], 0
    for ln in lens:
        displs.append(pos)
        pos += ln + 7
    return dt.resized(dt.hindexed(lens, displs, dt.BYTE), 0, _PERIOD)


# ----------------------------------------------------------------------
# Case 1/2: raw ff_pack / ff_unpack windowed loops
# ----------------------------------------------------------------------
def run_pack_windowed(iters: int, unpack: bool = False,
                      win_periods: int = _WIN_PERIODS) -> float:
    """Seconds for ``iters`` windowed ff_pack (or ff_unpack) calls.

    ``win_periods`` widens the window (more packed bytes per call) —
    the trace-overhead gate uses a wider, collective-buffer-sized
    window so the per-call span cost is weighed against representative
    kernel work, not the deliberately tiny program-compilation window.
    """
    t = _ragged_type()
    src = np.zeros(_COUNT * _PERIOD + 64, dtype=np.uint8)
    win = win_periods * t.size
    buf = np.empty(win, dtype=np.uint8)
    nwin = _COUNT - win_periods
    # Warm both the dataloop cache and (when enabled) the program cache
    # so steady state is measured, not compilation.
    for w in range(2):
        if unpack:
            ff_unpack(buf, win, src, _COUNT, t, w * t.size)
        else:
            ff_pack(src, _COUNT, t, w * t.size, buf, win)
    t0 = time.perf_counter()
    for w in range(iters):
        skip = (w % nwin) * t.size
        if unpack:
            ff_unpack(buf, win, src, _COUNT, t, skip)
        else:
            ff_pack(src, _COUNT, t, skip, buf, win)
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# Case 3: windowed access through the listless engine
# ----------------------------------------------------------------------
def run_engine_windowed(windows: int, detail: dict = None) -> float:
    """Seconds of engine time for ``windows`` read+write pairs over a
    periodic fileview with a non-contiguous memtype.

    ``detail`` (optional dict) receives the per-layer decomposition of
    the timed loop: the PR-3 phase buckets split into *kernel* time
    (pack+unpack batched copies), *io* time (file ops against the
    simulated device) and *engine overhead* (everything else: planning,
    op dispatch, Python glue) — the engine:kernel ratio CI budgets.
    """
    fs = SimFileSystem()
    ft = _ragged_type()
    fs.create("/f").truncate(_COUNT * _PERIOD)
    mt = dt.vector(_WIN_PERIODS * _K // 2, 1, 2, dt.contiguous(8, dt.BYTE))
    elapsed = [0.0]

    def worker(comm):
        fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                       engine="listless")
        fh.set_view(0, dt.BYTE, ft)
        buf = np.zeros(2 * mt.extent, dtype=np.uint8)
        win = ft.size  # one period of data bytes per access
        fh.write_at(0, buf, count=2, memtype=mt)  # warm plan + programs
        ph = fh.engine.stats.phases
        base = {b: getattr(ph, b) for b in
                ("plan", "pack", "unpack", "file_io")}
        t0 = time.perf_counter()
        for w in range(windows):
            off = (w % (_COUNT - 1)) * win
            fh.write_at(off, buf, count=2, memtype=mt)
            fh.read_at(off, buf, count=2, memtype=mt)
        elapsed[0] = time.perf_counter() - t0
        if detail is not None:
            wall = elapsed[0]
            kernel = (ph.pack - base["pack"]) + (ph.unpack - base["unpack"])
            io = ph.file_io - base["file_io"]
            overhead = max(wall - kernel - io, 0.0)
            detail.update(
                wall=wall,
                kernel=kernel,
                io=io,
                plan=ph.plan - base["plan"],
                engine_overhead=overhead,
                engine_share=overhead / wall if wall else 0.0,
                engine_kernel_ratio=(overhead / kernel) if kernel else 0.0,
            )
        fh.close()

    run_spmd(1, worker)
    return elapsed[0]


# ----------------------------------------------------------------------
# A/B harness
# ----------------------------------------------------------------------
def _ab(fn, *args) -> dict:
    """Run ``fn`` with programs disabled then enabled; median seconds."""
    out = {}
    for label, flag in (("disabled", False), ("enabled", True)):
        prev = blockprog.set_enabled(flag)
        try:
            blockprog.clear()
            vals = [fn(*args) for _ in range(REPEATS)]
        finally:
            blockprog.set_enabled(prev)
        out[label] = statistics.median(vals)
    out["speedup"] = out["disabled"] / out["enabled"]
    return out


def _ab_engine(windows: int) -> dict:
    """A/B the engine case, recording the per-layer decomposition of
    each arm's final repeat (the steady-state run)."""
    out = {"decomposition": {}}
    for label, flag in (("disabled", False), ("enabled", True)):
        prev = blockprog.set_enabled(flag)
        try:
            blockprog.clear()
            vals = []
            for rep in range(REPEATS):
                detail = {} if rep == REPEATS - 1 else None
                vals.append(run_engine_windowed(windows, detail))
            out["decomposition"][label] = detail
        finally:
            blockprog.set_enabled(prev)
        out[label] = statistics.median(vals)
    out["speedup"] = out["disabled"] / out["enabled"]
    return out


def collect(quick: bool) -> dict:
    iters = 120 if quick else 400
    windows = 60 if quick else 200
    BLOCKPROG_STATS.reset()
    record = {
        "bench": "blockprog_windowed",
        "quick": quick,
        "pattern": {
            "blocks_per_period": _K,
            "period_bytes": _PERIOD,
            "count": _COUNT,
            "window_periods": _WIN_PERIODS,
        },
        "cases": {
            "pack": _ab(run_pack_windowed, iters, False),
            "unpack": _ab(run_pack_windowed, iters, True),
            "engine": _ab_engine(windows),
        },
        "stats": blockprog.blockprog_stats(),
    }
    try:
        from benchmarks._common import obs_record
    except ImportError:  # run as a script: benchmarks/ is sys.path[0]
        from _common import obs_record
    record["observability"] = obs_record()
    record["acceptance"] = {
        "threshold": 3.0,
        "pack_speedup": record["cases"]["pack"]["speedup"],
        "unpack_speedup": record["cases"]["unpack"]["speedup"],
        "engine_speedup": record["cases"]["engine"]["speedup"],
        "pass": record["cases"]["pack"]["speedup"] >= 3.0
        and record["cases"]["unpack"]["speedup"] >= 3.0
        and record["cases"]["engine"]["speedup"] >= 3.0,
    }
    return record


# ----------------------------------------------------------------------
# pytest cases
# ----------------------------------------------------------------------
@pytest.mark.parametrize("unpack", [False, True])
def test_windowed_pack_program_speedup(unpack):
    """Steady-state windowed pack must be several times faster with the
    program cache; assert a conservative floor (the recorded runs show
    >3x — see results/BENCH_blockprog.json) so scheduler noise on a
    loaded CI box cannot flake the suite."""
    res = _ab(run_pack_windowed, 120, unpack)
    assert res["speedup"] > 1.5, res

    # And the cache actually served the loop: one compile per window
    # shape, everything else hits.
    BLOCKPROG_STATS.reset()
    prev = blockprog.set_enabled(True)
    try:
        blockprog.clear()
        run_pack_windowed(120, unpack)
    finally:
        blockprog.set_enabled(prev)
    assert BLOCKPROG_STATS.hits > 100
    assert BLOCKPROG_STATS.compiled <= _WIN_PERIODS + 2


def test_windowed_engine_runs_both_modes():
    """End-to-end engine speedup with the program layer on.  Recorded
    runs show >4x (see results/BENCH_blockprog.json — replay fast path
    + fused data-plane copies); assert a conservative floor so
    scheduler noise on a loaded CI box cannot flake the suite."""
    res = _ab_engine(20)
    assert res["enabled"] > 0 and res["disabled"] > 0
    assert res["speedup"] > 1.5, res
    d = res["decomposition"]["enabled"]
    assert d["kernel"] > 0 and d["engine_overhead"] >= 0


def test_hint_forces_cold_path():
    """ff_block_programs=false must keep the engine's memtype pack/unpack
    off the program cache even when the layer is globally enabled (the
    file/view side is governed by the global toggle, so some program
    traffic remains — the hint run must show strictly less)."""
    from repro.io.hints import Hints

    fs = SimFileSystem()
    fs.create("/f").truncate(_COUNT * _PERIOD)
    mt = dt.vector(8, 1, 2, dt.contiguous(8, dt.BYTE))

    def run(hint: bool) -> int:
        def worker(comm):
            fh = File.open(comm, fs, "/f", MODE_CREATE | MODE_RDWR,
                           engine="listless",
                           hints=Hints(ff_block_programs=hint))
            fh.set_view(0, dt.BYTE, _ragged_type())
            buf = np.zeros(mt.extent, dtype=np.uint8)
            for w in range(4):
                fh.write_at(w * _K, buf, count=1, memtype=mt)
            fh.close()

        prev = blockprog.set_enabled(True)
        try:
            blockprog.clear()
            BLOCKPROG_STATS.reset()
            run_spmd(1, worker)
        finally:
            blockprog.set_enabled(prev)
        return BLOCKPROG_STATS.hits + BLOCKPROG_STATS.misses

    with_hint = run(True)
    without = run(False)
    assert without < with_hint, (without, with_hint)


# ----------------------------------------------------------------------
def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="fewer iterations (CI smoke)")
    ap.add_argument("--out", default=None,
                    help="write the JSON record to this path")
    args = ap.parse_args()

    rec = collect(args.quick)
    print("=== Windowed reuse: compiled block programs "
          f"({'quick' if args.quick else 'full'}) ===")
    for name, c in rec["cases"].items():
        print(f"{name:>8}: disabled {c['disabled']*1e3:8.2f} ms   "
              f"enabled {c['enabled']*1e3:8.2f} ms   "
              f"speedup {c['speedup']:.2f}x")
    s = rec["stats"]
    print(f"programs: {s['blockprog_compiled']} compiled, "
          f"{s['blockprog_hits']} hits, {s['blockprog_misses']} misses, "
          f"{s['blockprog_translations']} translations")
    print("engine-case decomposition (steady-state repeat):")
    for label, d in rec["cases"]["engine"]["decomposition"].items():
        if not d:
            continue
        print(f"  {label:>8}: kernel {d['kernel']*1e3:7.2f} ms   "
              f"io {d['io']*1e3:7.2f} ms   "
              f"engine {d['engine_overhead']*1e3:7.2f} ms   "
              f"(share {d['engine_share']:.2f}, "
              f"engine:kernel {d['engine_kernel_ratio']:.2f})")
    acc = rec["acceptance"]
    print(f"acceptance (>= {acc['threshold']}x pack, unpack & engine): "
          f"{'PASS' if acc['pass'] else 'FAIL'}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(rec, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()

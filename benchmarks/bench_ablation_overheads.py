"""Ablation: the individual ol-list overheads of paper §2.4 and the
listless counterparts that eliminate them (§3.3).

Five micro-benchmarks isolate each overhead:

1. *Representation build*: explicit flattening O(Nblock) vs dataloop
   compilation O(tree).
2. *Representation memory*: 16 B/tuple vs the compact tree.
3. *Navigation*: linear ol-list traversal vs O(depth) ff navigation.
4. *Collective metadata*: per-access expanded ol-list volume vs the
   one-time compact fileview exchange.
5. *Merge vs mergeview*: O(Σ Nblock) list merge vs the O(P·depth)
   coverage evaluation.

Regenerate the summary table::

    python benchmarks/bench_ablation_overheads.py
"""

from __future__ import annotations

import sys
import time

import pytest

from repro import datatypes as dt
from repro.bench.reporting import fmt_bytes, format_table
from repro.core import ff_extent, size_of_ext
from repro.core.dataloop import compile_dataloop
from repro.core.fileview_cache import CompactFileview
from repro.core.mergeview import build_mergeview
from repro.datatypes import decode
from repro.flatten import expand_range, flatten_datatype, merge_lists

NBLOCK = 16384
SBLOCK = 8


def make_vector(nblock=NBLOCK, sblock=SBLOCK):
    return dt.vector(nblock, sblock, 2 * sblock, dt.BYTE)


def fresh_vector(nblock=NBLOCK, sblock=SBLOCK):
    """A structurally identical datatype without warmed caches."""
    return dt.vector(nblock, sblock, 2 * sblock, dt.BYTE)


# ----------------------------------------------------------------------
# 1. Representation build time
# ----------------------------------------------------------------------
def test_ablation_flatten_cost_scales_with_nblock(benchmark):
    benchmark.pedantic(
        lambda: flatten_datatype(fresh_vector()), rounds=3, iterations=1
    )


def test_ablation_dataloop_compile_is_o_tree(benchmark):
    benchmark.pedantic(
        lambda: compile_dataloop(fresh_vector()), rounds=3, iterations=1
    )


def test_ablation_compile_beats_flatten_asymptotically():
    big = 1 << 18
    t0 = time.perf_counter()
    compile_dataloop(fresh_vector(big))
    t_compile = time.perf_counter() - t0
    t0 = time.perf_counter()
    flatten_datatype(fresh_vector(big))
    t_flatten = time.perf_counter() - t0
    assert t_compile * 5 < t_flatten, (t_compile, t_flatten)


# ----------------------------------------------------------------------
# 2. Representation memory
# ----------------------------------------------------------------------
def test_ablation_representation_memory():
    v = make_vector()
    ol = flatten_datatype(v)
    tree_bytes = decode.tree_nbytes(decode.to_tree(v))
    assert ol.nbytes_repr == NBLOCK * 16
    assert tree_bytes < 200
    # Paper §2.1: for Sblock < 16 B the list outweighs the data.
    assert ol.nbytes_repr > v.size


# ----------------------------------------------------------------------
# 3. Navigation
# ----------------------------------------------------------------------
def test_ablation_list_navigation(benchmark):
    v = make_vector()
    ol = flatten_datatype(v)
    target = v.size // 2  # the paper's average case: Nblock/2 traversed

    benchmark.pedantic(
        lambda: ol.find_position(target), rounds=5, iterations=1
    )


def test_ablation_ff_navigation(benchmark):
    v = make_vector()
    compile_dataloop(v)  # warm, as a real view would be
    target = v.size // 2

    benchmark.pedantic(
        lambda: ff_extent(v, target, 64), rounds=5, iterations=1
    )


def test_ablation_ff_navigation_beats_list_scan():
    v = make_vector(1 << 16)
    ol = flatten_datatype(v)
    compile_dataloop(v)
    target = v.size // 2
    t0 = time.perf_counter()
    for _ in range(50):
        ol.find_position(target)
    t_list = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(50):
        ff_extent(v, target, 64)
    t_ff = time.perf_counter() - t0
    assert t_ff * 10 < t_list, (t_ff, t_list)


# ----------------------------------------------------------------------
# 4. Collective metadata volume
# ----------------------------------------------------------------------
def test_ablation_metadata_volume():
    """Expanded per-access ol-lists vs one-time compact views, for a
    4-process access covering 4 filetype instances."""
    P = 4
    from repro.bench.noncontig import build_noncontig_filetype

    per_access = 0
    one_time = 0
    for r in range(P):
        ft = build_noncontig_filetype(P, r, SBLOCK, 1024)
        flat = flatten_datatype(ft)
        ol = expand_range(flat, ft.extent, 0, 0, 4 * ft.extent)
        per_access += ol.nbytes_repr
        one_time += CompactFileview.from_view(0, dt.BYTE, ft).wire_bytes
    data_volume = P * SBLOCK * 1024 * 4
    assert per_access >= data_volume  # lists rival the data (paper §2.3)
    assert one_time < per_access / 100


# ----------------------------------------------------------------------
# 5. Merge vs mergeview
# ----------------------------------------------------------------------
def _merge_setup(P=4, nblock=4096):
    from repro.bench.noncontig import build_noncontig_filetype

    fts = [build_noncontig_filetype(P, r, SBLOCK, nblock) for r in range(P)]
    span = fts[0].extent
    ols = [
        expand_range(flatten_datatype(ft), ft.extent, 0, 0, span)
        for ft in fts
    ]
    views = [CompactFileview.from_view(0, dt.BYTE, ft) for ft in fts]
    return ols, views, span


def test_ablation_list_merge(benchmark):
    ols, _views, span = _merge_setup()
    merged = benchmark.pedantic(
        lambda: merge_lists(ols), rounds=3, iterations=1
    )
    assert merged == [(0, span)]


def test_ablation_mergeview_check(benchmark):
    _ols, views, span = _merge_setup()
    mv = build_mergeview(views)

    result = benchmark.pedantic(
        lambda: mv.covers(0, span), rounds=3, iterations=1
    )
    assert result


def main() -> None:
    v = make_vector()
    ol = flatten_datatype(v)
    rows = []

    t0 = time.perf_counter()
    flatten_datatype(fresh_vector())
    t_fl = time.perf_counter() - t0
    t0 = time.perf_counter()
    compile_dataloop(fresh_vector())
    t_dl = time.perf_counter() - t0
    rows.append(("representation build", f"{t_fl*1e3:.2f} ms",
                 f"{t_dl*1e3:.3f} ms"))

    rows.append(
        (
            "representation memory",
            fmt_bytes(ol.nbytes_repr),
            fmt_bytes(decode.tree_nbytes(decode.to_tree(v))),
        )
    )

    target = v.size // 2
    compile_dataloop(v)
    t0 = time.perf_counter()
    for _ in range(100):
        ol.find_position(target)
    t_nav_list = (time.perf_counter() - t0) / 100
    t0 = time.perf_counter()
    for _ in range(100):
        ff_extent(v, target, 64)
    t_nav_ff = (time.perf_counter() - t0) / 100
    rows.append(("navigation (mid-type)", f"{t_nav_list*1e6:.1f} us",
                 f"{t_nav_ff*1e6:.1f} us"))

    ols, views, span = _merge_setup()
    per_access = sum(o.nbytes_repr for o in ols)
    one_time = sum(cv.wire_bytes for cv in views)
    rows.append(("collective metadata", fmt_bytes(per_access) +
                 " / access", fmt_bytes(one_time) + " once"))

    t0 = time.perf_counter()
    merge_lists(ols)
    t_merge = time.perf_counter() - t0
    mv = build_mergeview(views)
    t0 = time.perf_counter()
    mv.covers(0, span)
    t_mv = time.perf_counter() - t0
    rows.append(("write contiguity check", f"{t_merge*1e3:.2f} ms",
                 f"{t_mv*1e6:.1f} us"))

    print("=== Ablation: ol-list overheads (paper §2.4) vs listless "
          "(§3.3) ===")
    print(format_table(["overhead", "list-based", "listless"], rows))


if __name__ == "__main__":
    main()

"""Paper Table 3: BTIO I/O time, list-based vs listless.

For each (class, P) the paper reports Δt_io for both engines, the ratio
``r_io = Δt_list / Δt_listless`` (1.07–2.07 on the SX-7 — BTIO's blocks
are ≥ 816 B, where the copy-loop advantage fades and the remaining win
comes from eliminating the collective ol-list handling), and effective
bandwidths.

The default harness times scaled-down classes (S/W/A, few steps) so a
laptop finishes in seconds; ``--paper-scale`` runs class B at the paper's
process counts.  Regenerate::

    python benchmarks/bench_table3_btio_timing.py [--paper-scale]
"""

from __future__ import annotations

import sys

import pytest

from repro.bench import BTIOConfig, mb_per_s, run_btio
from repro.bench.reporting import format_table

#: BTIO runs are short and the host may be single-core: medians over
#: more repeats are needed than for the noncontig sweeps.
REPEATS = 5

#: Scaled-down grid: class A carries the paper's signal (blocks of
#: ~1.3 kB, tens of MB per run) at laptop cost; S/W document the
#: small-problem regime where constant overheads level the engines.
QUICK_CASES = [("S", 4), ("W", 4), ("A", 4), ("A", 9)]
PAPER_CASES = [("B", 4), ("B", 9), ("B", 16), ("B", 25)]


def timed(engine: str, cls: str, P: int, nsteps: int,
          repeats: int = REPEATS):
    """Best-of-N (io seconds, bandwidth bytes/s) over repeated runs.

    On an oversubscribed host (P ranks on few cores) individual runs can
    stall for whole scheduler quanta; the minimum is the standard
    stall-robust estimator and is what the engines' costs actually
    determine.
    """
    times, bws, runs = [], [], []
    for _ in range(repeats):
        r = run_btio(
            engine,
            BTIOConfig(cls=cls, nprocs=P, nsteps=nsteps,
                       compute_sweeps=1),
        )
        times.append(r.io_time.total)
        bws.append(r.io_bandwidth)
        runs.append(r)
    best = min(runs, key=lambda r: r.io_time.total)
    return min(times), max(bws), best.phases, best.rounds


# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["list_based", "listless"])
@pytest.mark.parametrize("cls,P", [("S", 4), ("W", 4)])
def test_table3_btio_io_time(benchmark, engine, cls, P):
    cfg = BTIOConfig(cls=cls, nprocs=P, nsteps=2, compute_sweeps=0)
    result = benchmark.pedantic(
        lambda: run_btio(engine, cfg), rounds=3, iterations=1
    )
    benchmark.extra_info["io_seconds"] = result.io_time.total
    benchmark.extra_info["io_MBps"] = result.io_bandwidth / 1e6


def test_table3_shape_listless_not_slower():
    """The paper's r_io ≥ 1: at a class with realistic block sizes
    (A: ~1.3 kB blocks, ~10 MB/step) listless BTIO I/O clearly beats
    list-based; at toy classes (S/W) the engines tie within noise."""
    t_lb, _, _, _ = timed("list_based", "A", 4, nsteps=2)
    t_ll, _, _, _ = timed("listless", "A", 4, nsteps=2)
    assert t_ll < t_lb, (t_ll, t_lb)


def main(paper_scale: bool = False) -> None:
    cases = PAPER_CASES if paper_scale else QUICK_CASES
    nsteps = 5 if paper_scale else 3
    rows = []
    phase_cols = {}
    round_cols = {}
    for cls, P in cases:
        t_lb, bw_lb, ph_lb, rd_lb = timed("list_based", cls, P, nsteps)
        t_ll, bw_ll, ph_ll, rd_ll = timed("listless", cls, P, nsteps)
        phase_cols[(cls, P)] = [("list-based", ph_lb),
                                ("listless", ph_ll)]
        round_cols[(cls, P)] = [("list-based", rd_lb),
                                ("listless", rd_ll)]
        rows.append(
            (
                cls,
                P,
                f"{t_lb:.3f}",
                f"{t_ll:.3f}",
                f"{t_lb / t_ll:.2f}",
                f"{mb_per_s(bw_lb):.0f}",
                f"{mb_per_s(bw_ll):.0f}",
            )
        )
    print(f"=== Table 3: BTIO I/O time comparison (nsteps={nsteps}) ===")
    print(
        format_table(
            [
                "Class",
                "P",
                "dT_io list [s]",
                "dT_io listless [s]",
                "r_io",
                "B_list [MB/s]",
                "B_listless [MB/s]",
            ],
            rows,
        )
    )
    print("(paper, SX-7: r_io between 1.07 and 2.07; bandwidths in the "
          "GB/s range on real hardware)")

    from repro.obs.phases import format_phase_table

    cls, P = cases[-1]
    print(f"\nper-phase decomposition, class {cls}, P={P} "
          "(seconds summed over ranks, best repeat):")
    print(format_phase_table(phase_cols[(cls, P)]))

    print(f"\nper-round exchange/file_io split, class {cls}, P={P} "
          "(seconds summed over ranks and accesses, best repeat):")
    for name, rounds in round_cols[(cls, P)]:
        if not rounds:
            print(f"  {name}: no round-based collectives recorded")
            continue
        print(f"  {name}:")
        print(format_table(
            ["round", "of", "exchange [s]", "file_io [s]", "wall [s]"],
            [
                (
                    r["index"] + 1,
                    r["total"],
                    f"{r['exchange']:.4f}",
                    f"{r['file_io']:.4f}",
                    f"{r['wall']:.4f}",
                )
                for r in rounds
            ],
        ))


if __name__ == "__main__":
    main(paper_scale="--paper-scale" in sys.argv)

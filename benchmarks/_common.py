"""Shared machinery for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper:
it contains pytest-benchmark cases for representative points (so
``pytest benchmarks/ --benchmark-only`` exercises everything) and a
``main()`` that sweeps the full parameter range and prints the same
rows/series the paper reports.  Run any module directly::

    python benchmarks/bench_fig5_nblock_independent.py

Bandwidths are per-process MB/s over measured CPU time + simulated device
and wire time (see DESIGN.md §5.5); point estimates are medians over
``REPEATS`` runs because the host may be a single-core box with noisy
thread scheduling.
"""

from __future__ import annotations

import statistics
from typing import Callable, Dict, List, Sequence, Tuple

from repro.bench import (
    NoncontigConfig,
    mb_per_s,
    run_noncontig,
)

#: Runs per measured point; medians damp scheduler noise.
REPEATS = 3

ENGINES = ("list_based", "listless")
PATTERNS = ("nc-nc", "nc-c", "c-nc")

#: Legend entries exactly as in the paper figures.
CURVES = [
    f"{eng.replace('_', '-').replace('list-based', 'list-based')}: {pat}"
    for eng in ENGINES
    for pat in PATTERNS
]


def curve_name(engine: str, pattern: str) -> str:
    return f"{'list-based' if engine == 'list_based' else 'listless'}: " \
           f"{pattern}"


def median_bpp(
    engine: str, cfg: NoncontigConfig, phase: str, repeats: int = REPEATS
) -> float:
    """Median per-process bandwidth (MB/s) of the given phase."""
    vals = []
    for _ in range(repeats):
        res = run_noncontig(engine, cfg)
        vals.append(res.write_bpp if phase == "write" else res.read_bpp)
    return mb_per_s(statistics.median(vals))


def sweep_noncontig(
    xs: Sequence[int],
    make_cfg: Callable[[int], NoncontigConfig],
    phase: str,
    repeats: int = REPEATS,
) -> Dict[str, List[float]]:
    """Measure every (engine, pattern) curve over the x-axis values."""
    curves: Dict[str, List[float]] = {}
    for engine in ENGINES:
        for pattern in PATTERNS:
            name = curve_name(engine, pattern)
            vals = []
            for x in xs:
                base = make_cfg(x)
                cfg = NoncontigConfig(
                    nprocs=base.nprocs,
                    blocklen=base.blocklen,
                    blockcount=base.blockcount,
                    pattern=pattern,
                    collective=base.collective,
                    nreps=base.nreps,
                    hints=base.hints,
                )
                vals.append(median_bpp(engine, cfg, phase, repeats))
            curves[name] = vals
    return curves


def speedup_row(curves: Dict[str, List[float]], pattern: str,
                i: int) -> float:
    """listless / list-based ratio for one pattern at x-index i."""
    return (
        curves[curve_name("listless", pattern)][i]
        / curves[curve_name("list_based", pattern)][i]
    )


def print_figure(
    title: str,
    x_name: str,
    xs: Sequence[int],
    curves: Dict[str, List[float]],
) -> None:
    from repro.bench import format_series

    print(f"\n=== {title} ===")
    print(
        format_series(
            x_name, list(xs), [(k, v) for k, v in curves.items()]
        )
    )
    for pat in PATTERNS:
        ratios = [speedup_row(curves, pat, i) for i in range(len(xs))]
        rng = f"{min(ratios):.1f}x .. {max(ratios):.1f}x"
        print(f"listless speedup [{pat}]: {rng}")

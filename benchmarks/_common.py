"""Shared machinery for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper:
it contains pytest-benchmark cases for representative points (so
``pytest benchmarks/ --benchmark-only`` exercises everything) and a
``main()`` that sweeps the full parameter range and prints the same
rows/series the paper reports.  Run any module directly::

    python benchmarks/bench_fig5_nblock_independent.py

Bandwidths are per-process MB/s over measured CPU time + simulated device
and wire time (see DESIGN.md §5.5); point estimates are medians over
``REPEATS`` runs because the host may be a single-core box with noisy
thread scheduling.
"""

from __future__ import annotations

import statistics
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench import (
    NoncontigConfig,
    mb_per_s,
    run_noncontig,
)

#: Runs per measured point; medians damp scheduler noise.
REPEATS = 3

ENGINES = ("list_based", "listless")
PATTERNS = ("nc-nc", "nc-c", "c-nc")

#: Legend entries exactly as in the paper figures.
CURVES = [
    f"{eng.replace('_', '-').replace('list-based', 'list-based')}: {pat}"
    for eng in ENGINES
    for pat in PATTERNS
]


def curve_name(engine: str, pattern: str) -> str:
    return f"{'list-based' if engine == 'list_based' else 'listless'}: " \
           f"{pattern}"


def median_bpp(
    engine: str, cfg: NoncontigConfig, phase: str, repeats: int = REPEATS
) -> float:
    """Median per-process bandwidth (MB/s) of the given phase."""
    vals = []
    for _ in range(repeats):
        res = run_noncontig(engine, cfg)
        vals.append(res.write_bpp if phase == "write" else res.read_bpp)
    return mb_per_s(statistics.median(vals))


def sweep_noncontig(
    xs: Sequence[int],
    make_cfg: Callable[[int], NoncontigConfig],
    phase: str,
    repeats: int = REPEATS,
) -> Dict[str, List[float]]:
    """Measure every (engine, pattern) curve over the x-axis values."""
    curves: Dict[str, List[float]] = {}
    for engine in ENGINES:
        for pattern in PATTERNS:
            name = curve_name(engine, pattern)
            vals = []
            for x in xs:
                base = make_cfg(x)
                cfg = NoncontigConfig(
                    nprocs=base.nprocs,
                    blocklen=base.blocklen,
                    blockcount=base.blockcount,
                    pattern=pattern,
                    collective=base.collective,
                    nreps=base.nreps,
                    hints=base.hints,
                )
                vals.append(median_bpp(engine, cfg, phase, repeats))
            curves[name] = vals
    return curves


def speedup_row(curves: Dict[str, List[float]], pattern: str,
                i: int) -> float:
    """listless / list-based ratio for one pattern at x-index i."""
    return (
        curves[curve_name("listless", pattern)][i]
        / curves[curve_name("list_based", pattern)][i]
    )


def probe_metric_schema() -> Dict:
    """Metric schema (key structure, no values) of both engines.

    Runs one tiny collective write per engine and snapshots the metrics
    registry while the file handles are still open (engine entries are
    weakly referenced, so the snapshot must happen inside the worker).
    The result is what ``benchmarks/check_metrics_schema.py`` diffs
    against the golden ``results/METRICS_SCHEMA.json``.
    """
    import numpy as np

    from repro import datatypes as dt
    from repro.fs import SimFileSystem
    from repro.io import File, MODE_CREATE, MODE_RDWR
    from repro.mpi import run_spmd
    from repro.obs import metrics

    box: Dict = {}

    def run(engine: str) -> None:
        fs = SimFileSystem()
        ft_box = {}

        def worker(comm):
            ft = dt.vector(8, 2, 2 * comm.size, dt.DOUBLE)
            fh = File.open(comm, fs, "/probe", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.set_view(comm.rank * 16, dt.DOUBLE, ft)
            buf = np.arange(16, dtype=np.float64)
            fh.write_at_all(0, buf)
            if comm.rank == 0:
                ft_box["snap"] = metrics.snapshot()
            comm.barrier()
            fh.close()

        run_spmd(2, worker)
        schema = metrics.metric_schema(ft_box["snap"])
        box.setdefault("engines", {}).update(schema["engines"])
        box["file_counters"] = schema["file_counters"]
        box["global"] = schema["global"]

    for engine in ENGINES:
        run(engine)

    # Service section: one tiny write+read through the IOP server so
    # the per-tenant counter key set lands in the golden schema too.
    from repro.server import IOPServer, ServiceClient

    with IOPServer(workers=1) as srv:
        srv.register_tenant("probe")
        cl = ServiceClient(srv, "probe")
        cl.write("/probe", 0, np.zeros(64, np.uint8), timeout=30.0)
        cl.read("/probe", 0, 64, timeout=30.0)
        service = metrics.metric_schema(
            srv.session.metrics.snapshot())["service"]

    return {
        "engines": {k: box["engines"][k] for k in sorted(box["engines"])},
        "file_counters": box["file_counters"],
        "global": box["global"],
        "service": service,
    }


def obs_record(phases: Optional[Dict[str, float]] = None) -> Dict:
    """Observability block embedded in ``BENCH_*.json`` records.

    Carries the live metric schema (so recorded runs document the
    counter/phase key set they were produced under) and, when the
    benchmark collected one, the per-phase time decomposition.
    """
    rec: Dict = {"metric_schema": probe_metric_schema()}
    if phases is not None:
        rec["phases"] = {k: float(phases[k]) for k in sorted(phases)}
    return rec


def print_figure(
    title: str,
    x_name: str,
    xs: Sequence[int],
    curves: Dict[str, List[float]],
) -> None:
    from repro.bench import format_series

    print(f"\n=== {title} ===")
    print(
        format_series(
            x_name, list(xs), [(k, v) for k, v in curves.items()]
        )
    )
    for pat in PATTERNS:
        ratios = [speedup_row(curves, pat, i) for i in range(len(xs))]
        rng = f"{min(ratios):.1f}x .. {max(ratios):.1f}x"
        print(f"listless speedup [{pat}]: {rng}")

"""Paper Figure 7: Bpp vs vector blocksize Sblock — independent access.

noncontig benchmark, Nblock = 8, P = 2, Sblock = 4 B … 16 kB.

Paper result: the listless advantage *diminishes* as blocks grow (fewer,
larger copies make the per-tuple loop competitive), and listless never
performs worse than list-based.  Regenerate::

    python benchmarks/bench_fig7_sblock_independent.py [--paper-scale]
"""

from __future__ import annotations

import sys

import pytest

from benchmarks._common import (
    ENGINES,
    PATTERNS,
    curve_name,
    median_bpp,
    print_figure,
    sweep_noncontig,
)
from repro.bench import NoncontigConfig, run_noncontig

NBLOCK = 8
P = 2
NREPS = 4

SBLOCKS_QUICK = [4, 64, 1024, 16384]
SBLOCKS_PAPER = [4, 16, 64, 256, 1024, 4096, 16384]


def config(sblock: int) -> NoncontigConfig:
    return NoncontigConfig(
        nprocs=P, blocklen=sblock, blockcount=NBLOCK,
        collective=False, nreps=NREPS,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("sblock", [8, 4096])
def test_fig7_blocksize(benchmark, engine, pattern, sblock):
    cfg = NoncontigConfig(
        nprocs=P, blocklen=sblock, blockcount=NBLOCK, pattern=pattern,
        collective=False, nreps=NREPS,
    )
    result = benchmark.pedantic(
        lambda: run_noncontig(engine, cfg), rounds=3, iterations=1
    )
    benchmark.extra_info["write_MBps"] = result.write_bpp / 1e6


def test_fig7_shape_advantage_shrinks_with_blocksize():
    """The listless/list-based ratio at tiny blocks must exceed the
    ratio at large blocks (the paper's crossover-free convergence)."""
    def ratio(sblock, blockcount):
        cfg = NoncontigConfig(
            nprocs=P, blocklen=sblock, blockcount=blockcount,
            pattern="nc-nc", collective=False, nreps=NREPS,
        )
        return (
            median_bpp("listless", cfg, "write")
            / median_bpp("list_based", cfg, "write")
        )

    # Same total volume: 8B x 4096 vs 16kB x 2.
    small = ratio(8, 4096)
    large = ratio(16384, 2)
    assert small > large
    assert small > 2.0


def main(paper_scale: bool = False) -> None:
    xs = SBLOCKS_PAPER if paper_scale else SBLOCKS_QUICK
    for phase in ("write", "read"):
        curves = sweep_noncontig(xs, config, phase)
        print_figure(
            f"Figure 7 ({phase}): Bpp [MB/s] vs Sblock — independent, "
            f"Nblock={NBLOCK}, P={P}",
            "Sblock[B]", xs, curves,
        )


if __name__ == "__main__":
    main(paper_scale="--paper-scale" in sys.argv)

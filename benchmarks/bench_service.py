"""The multi-tenant IOP service: soak, admission A/B, batching A/B.

Three cells, each pinning one acceptance claim of the service-ified
stack (``repro.server``, ``docs/service.md``):

* **soak** — hundreds of concurrent clients spread over several
  tenants hammer ≥ 8 files through one :class:`IOPServer`; the
  harness (:func:`repro.server.soak.run_soak`) proves the final file
  bytes are identical to serialized execution of the same writes, and
  records per-tenant latency percentiles;
* **admission A/B** — a noisy tenant floods the service with large
  writes while a victim tenant runs a closed loop of small requests.
  With admission control (weighted-fair DRR dequeue + in-flight byte
  budget) the victim's p99 stays bounded; with ``fair=False`` (one
  global arrival-order queue, no budgets) the victim queues behind the
  flood.  Acceptance: victim p99 with admission ≤ victim p99 without;
* **batching A/B** — concurrently posted tiling writes with cross-
  client batching on vs off, same workload.  Acceptance is the
  *counter*, not the clock: with batching, ``file_accesses`` (server
  accesses actually performed) drops below ``requests_executed``;
  without, they are equal.

Standalone run writes the machine-readable record::

    python benchmarks/bench_service.py --quick \
        --out results/BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import threading
import time

import numpy as np

from repro.errors import ServiceQueueFull
from repro.server import IOPServer, ServiceClient
from repro.server.soak import SoakConfig, run_soak

#: Soak shape (full mode; --quick divides the client count down).
SOAK_CLIENTS = 128
SOAK_FILES = 8
SOAK_TENANTS = 4
SOAK_ROUNDS = 3
SOAK_REQ_BYTES = 4096
WORKERS = 4

#: Admission A/B: noisy tenant's request size and the victim's.
NOISY_BYTES = 256 * 1024
VICTIM_BYTES = 4096
#: Victim closed-loop requests measured per mode.
VICTIM_REQUESTS = 40
#: Simulated device latency per server access (creates queueing).
AB_WORKER_DELAY = 0.002

#: Batching A/B: concurrently posted tiling writes.
BATCH_REQUESTS = 32
BATCH_REQ_BYTES = 4096
BATCH_WORKER_DELAY = 0.005


def _pct(xs, q):
    if not xs:
        return 0.0
    xs = sorted(xs)
    return xs[min(len(xs) - 1, int(q * len(xs)))]


def _soak_cell(quick: bool) -> dict:
    cfg = SoakConfig(
        nclients=SOAK_CLIENTS // (4 if quick else 1),
        nfiles=SOAK_FILES,
        ntenants=SOAK_TENANTS,
        rounds=SOAK_ROUNDS,
        req_bytes=SOAK_REQ_BYTES,
        workers=WORKERS,
    )
    res = run_soak(cfg)
    return {
        "clients": cfg.nclients,
        "files": cfg.nfiles,
        "tenants": cfg.ntenants,
        "requests": res.requests,
        "rejected": res.rejected,
        "bytes_moved": res.bytes_moved,
        "wall_seconds": res.wall_seconds,
        "byte_identical": bool(res.ok),
        "mismatches": res.mismatches,
        "tenant_p50_ms": {
            t: 1e3 * res.percentile(t, 0.50) for t in res.latencies
        },
        "tenant_p99_ms": {
            t: 1e3 * res.percentile(t, 0.99) for t in res.latencies
        },
        "server": res.server,
    }


def _admission_cell(fair: bool, quick: bool) -> dict:
    """Victim latency under a sustained noisy-tenant flood.

    The noisy threads keep a window of large writes posted for the
    whole victim measurement; batching is off so the cell isolates the
    scheduling policy (merging the noisy tiling writes would shrink
    the flood by itself).
    """
    nvictim = VICTIM_REQUESTS // (2 if quick else 1)
    with IOPServer(workers=2, fair=fair, batching=False,
                   worker_delay=AB_WORKER_DELAY) as srv:
        # Small in-flight budget: at most two noisy requests execute
        # at once no matter how deep its backlog. (Ignored when
        # fair=False — that is the point of the A/B.)
        srv.register_tenant("noisy", byte_budget=2 * NOISY_BYTES,
                            queue_depth=64)
        srv.register_tenant("victim", queue_depth=64)
        noisy = ServiceClient(srv, "noisy")
        victim = ServiceClient(srv, "victim")
        stop = threading.Event()

        def flood():
            blob = np.zeros(NOISY_BYTES, np.uint8)
            i = 0
            while not stop.is_set():
                window = []
                for _ in range(8):
                    try:
                        window.append(
                            noisy.iwrite("/noise", i * NOISY_BYTES,
                                         blob))
                    except ServiceQueueFull:
                        break
                    i = (i + 1) % 64
                for r in window:
                    try:
                        r.wait(60.0)
                    except Exception:
                        pass

        floods = [threading.Thread(target=flood) for _ in range(2)]
        for th in floods:
            th.start()
        time.sleep(0.05)  # let the flood establish a backlog
        lats = []
        data = np.arange(VICTIM_BYTES, dtype=np.int64).astype(np.uint8)
        for k in range(nvictim):
            r = victim.iwrite("/victim", k * VICTIM_BYTES, data)
            r.wait(120.0)
            lats.append(r.latency)
        stop.set()
        for th in floods:
            th.join()
        t = srv.tenant("noisy")
        return {
            "fair": fair,
            "victim_requests": nvictim,
            "victim_p50_ms": 1e3 * _pct(lats, 0.50),
            "victim_p99_ms": 1e3 * _pct(lats, 0.99),
            "victim_mean_ms": 1e3 * sum(lats) / len(lats),
            "noisy_completed": t.stats.completed,
            "noisy_budget_stalls": t.stats.budget_stalls,
        }


def _batching_cell(batching: bool, quick: bool) -> dict:
    n = BATCH_REQUESTS // (2 if quick else 1)
    with IOPServer(workers=1, batching=batching,
                   worker_delay=BATCH_WORKER_DELAY) as srv:
        srv.register_tenant("a")
        cl = ServiceClient(srv, "a")
        data = np.arange(BATCH_REQ_BYTES, dtype=np.int64).astype(
            np.uint8)
        # The plug occupies the single worker so the writes pile up
        # into one scheduling window — the cross-client-batching case.
        plug = cl.iwrite("/plug", 0, np.zeros(8, np.uint8))
        t0 = time.perf_counter()
        reqs = [cl.iwrite("/f", i * BATCH_REQ_BYTES, data)
                for i in range(n)]
        plug.wait(60.0)
        for r in reqs:
            r.wait(60.0)
        wall = time.perf_counter() - t0
        got = cl.read("/f", 0, n * BATCH_REQ_BYTES, timeout=60.0)
        want = np.concatenate([data] * n)
        snap = srv.counters.snapshot()
        return {
            "batching": batching,
            "requests": n + 1,
            "wall_seconds": wall,
            "byte_identical": bool(np.array_equal(got, want)),
            "requests_executed": snap["requests_executed"],
            "file_accesses": snap["file_accesses"],
            "batch_merged_requests": snap["batch_merged_requests"],
        }


def collect(quick: bool) -> dict:
    soak = _soak_cell(quick)
    admission = {
        "with_admission": _admission_cell(True, quick),
        "no_admission": _admission_cell(False, quick),
    }
    batching = {
        "on": _batching_cell(True, quick),
        "off": _batching_cell(False, quick),
    }
    adm_on = admission["with_admission"]["victim_p99_ms"]
    adm_off = admission["no_admission"]["victim_p99_ms"]
    record = {
        "bench": "service",
        "quick": quick,
        "config": {
            "workers": WORKERS,
            "soak_req_bytes": SOAK_REQ_BYTES,
            "noisy_bytes": NOISY_BYTES,
            "victim_bytes": VICTIM_BYTES,
            "ab_worker_delay": AB_WORKER_DELAY,
            "batch_worker_delay": BATCH_WORKER_DELAY,
        },
        "soak": soak,
        "admission": admission,
        "batching": batching,
        "acceptance": {
            "soak_byte_identical": soak["byte_identical"],
            "admission_bounds_p99": bool(adm_on <= adm_off),
            "victim_p99_ratio": adm_off / max(adm_on, 1e-9),
            "batching_reduces_accesses": bool(
                batching["on"]["file_accesses"]
                < batching["on"]["requests_executed"]
                and batching["off"]["file_accesses"]
                == batching["off"]["requests_executed"]
            ),
            "pass": bool(
                soak["byte_identical"]
                and adm_on <= adm_off
                and batching["on"]["file_accesses"]
                < batching["on"]["requests_executed"]
            ),
        },
    }
    try:
        from benchmarks._common import obs_record
    except ImportError:  # run as a script: benchmarks/ is sys.path[0]
        from _common import obs_record
    record["observability"] = obs_record()
    return record


# ----------------------------------------------------------------------
# pytest cases
# ----------------------------------------------------------------------
def test_soak_is_byte_identical_quick():
    cell = _soak_cell(quick=True)
    assert cell["byte_identical"], cell
    assert cell["mismatches"] == 0


def test_admission_bounds_victim_p99():
    on = _admission_cell(True, quick=True)
    off = _admission_cell(False, quick=True)
    assert on["victim_p99_ms"] <= off["victim_p99_ms"], (on, off)


def test_batching_reduces_file_accesses():
    on = _batching_cell(True, quick=True)
    off = _batching_cell(False, quick=True)
    assert on["byte_identical"] and off["byte_identical"]
    assert on["file_accesses"] < on["requests_executed"], on
    assert off["file_accesses"] == off["requests_executed"], off


# ----------------------------------------------------------------------
def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="smaller client counts (CI smoke)")
    ap.add_argument("--out", default=None,
                    help="write the JSON record to this path")
    args = ap.parse_args()

    rec = collect(args.quick)
    s = rec["soak"]
    print("=== Multi-tenant IOP service "
          f"({'quick' if rec['quick'] else 'full'}) ===")
    print(f"soak: {s['clients']} clients / {s['tenants']} tenants / "
          f"{s['files']} files, {s['requests']} requests, "
          f"{s['bytes_moved'] / 1e6:.1f} MB in {s['wall_seconds']:.2f}s "
          f"-> byte-identical: {s['byte_identical']}")
    for t in sorted(s["tenant_p99_ms"]):
        print(f"  {t}: p50 {s['tenant_p50_ms'][t]:7.2f} ms   "
              f"p99 {s['tenant_p99_ms'][t]:7.2f} ms")
    a_on = rec["admission"]["with_admission"]
    a_off = rec["admission"]["no_admission"]
    print(f"admission A/B (victim under noisy flood): "
          f"p99 {a_on['victim_p99_ms']:.1f} ms with admission vs "
          f"{a_off['victim_p99_ms']:.1f} ms without "
          f"({rec['acceptance']['victim_p99_ratio']:.1f}x; "
          f"{a_on['noisy_budget_stalls']} budget stalls)")
    b_on, b_off = rec["batching"]["on"], rec["batching"]["off"]
    print(f"batching A/B: {b_on['requests_executed']} requests in "
          f"{b_on['file_accesses']} accesses with batching vs "
          f"{b_off['file_accesses']} without "
          f"(wall {b_on['wall_seconds']:.3f}s vs "
          f"{b_off['wall_seconds']:.3f}s)")
    acc = rec["acceptance"]
    print(f"acceptance: soak byte-identity {acc['soak_byte_identical']}"
          f", admission bounds p99 {acc['admission_bounds_p99']}, "
          f"batching reduces accesses "
          f"{acc['batching_reduces_accesses']} -> "
          f"{'PASS' if acc['pass'] else 'FAIL'}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(rec, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()

"""Irregular particle I/O with struct records and indexed fileviews.

Each process owns particles identified by *global* indices scattered
irregularly through a shared particle file.  In memory a particle is a
C-style padded struct (tag int, 4 pad bytes, x, y doubles = 24 bytes); on
disk the records are packed to 20 bytes — the datatype engine performs
the gather/pack between the two layouts, exactly what MPI derived
datatypes are for:

* memtype: ``struct{int @0, 2 double @8}`` (20 data bytes in a 24-byte
  extent — the pad is skipped automatically),
* filetype: ``indexed_block`` over packed 20-byte records at this
  process' particle indices.

The example writes all particles collectively, then each process reads
back *only its own* records independently, and shows what the data-
sieving hints do to the number of file operations.

Run::

    python examples/particle_io.py
"""

import numpy as np

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi import run_spmd

NPROCS = 4
TOTAL_PARTICLES = 4096

#: In-memory record: int tag, 4 bytes padding, x, y (24-byte stride).
MEM_RECORD = dt.struct([1, 2], [0, 8], [dt.INT, dt.DOUBLE])
#: On-disk record: the same 20 data bytes, packed.
FILE_RECORD = dt.contiguous(20, dt.BYTE)


def owned_indices(rank: int) -> np.ndarray:
    """A scattered, deterministic set of global particle ids."""
    return np.sort(np.arange(rank, TOTAL_PARTICLES, NPROCS))


def record_buffer(idx: np.ndarray) -> np.ndarray:
    """Padded in-memory records for the given particle ids."""
    buf = np.zeros(idx.size * 24, dtype=np.uint8)
    rows = buf.reshape(idx.size, 24)
    rows[:, 0:4] = idx.astype(np.int32)[:, None].view(np.uint8)
    rows[:, 8:16] = (idx * 1.5)[:, None].view(np.uint8)
    rows[:, 16:24] = (idx * -0.5)[:, None].view(np.uint8)
    return buf


def write_particles(comm, fs):
    idx = owned_indices(comm.rank)
    ftype = dt.indexed_block(1, idx.tolist(), FILE_RECORD)
    fh = File.open(comm, fs, "/particles.dat", MODE_CREATE | MODE_RDWR,
                   engine="listless")
    fh.set_view(0, FILE_RECORD, ftype)
    fh.write_at_all(0, record_buffer(idx), idx.size, MEM_RECORD)
    fh.close()


def read_mine_independently(comm, fs, hints):
    idx = owned_indices(comm.rank)
    ftype = dt.indexed_block(1, idx.tolist(), FILE_RECORD)
    fh = File.open(comm, fs, "/particles.dat", MODE_RDONLY,
                   engine="listless", hints=hints)
    fh.set_view(0, FILE_RECORD, ftype)
    out = np.zeros(idx.size * 24, dtype=np.uint8)
    fh.read_at(0, out, idx.size, MEM_RECORD)
    rows = out.reshape(idx.size, 24)
    tags = rows[:, 0:4].copy().view(np.int32)[:, 0]
    xs = rows[:, 8:16].copy().view(np.float64)[:, 0]
    assert (tags == idx.astype(np.int32)).all()
    assert (xs == idx * 1.5).all()
    assert (rows[:, 4:8] == 0).all()  # padding untouched by I/O
    fh.close()


def main():
    fs = SimFileSystem()
    run_spmd(NPROCS, write_particles, fs)
    f = fs.lookup("/particles.dat")
    print(f"particle file: {f.size:,} bytes "
          f"({TOTAL_PARTICLES} packed records x 20 B)")
    assert f.size == TOTAL_PARTICLES * 20

    for label, hints in [
        ("data sieving ON ", Hints()),
        ("data sieving OFF", Hints(ds_read=False)),
    ]:
        f.stats.reset()
        run_spmd(NPROCS, read_mine_independently, fs, hints)
        s = f.stats.snapshot()
        print(f"{label}: {s['n_reads']:5d} file reads, "
              f"{s['bytes_read']:9,d} bytes read, "
              f"simulated device time {s['sim_time']*1e3:.2f} ms")
    print("\nSieving trades extra bytes (reading the gaps) for far fewer "
          "file operations — the paper's [11] baseline technique that "
          "both engines build on.")


if __name__ == "__main__":
    main()

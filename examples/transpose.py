"""Out-of-core matrix transpose with two fileviews.

A classic trick of MPI-IO: to transpose a huge row-major matrix that
lives in a file, no element-shuffling pass is needed — each process
*writes* its row block through the canonical view and *reads* its column
block back through a strided view.  The datatype engine does the
transposition; collective I/O keeps the file traffic coalesced.

Process r of P:

* owns rows  ``[r·N/P, (r+1)·N/P)``  when writing,
* owns cols  ``[r·N/P, (r+1)·N/P)``  when reading — the read view is a
  ``subarray`` selecting a column stripe, which is exactly the transposed
  block (fetched row-wise, i.e. already transposed in memory after a
  local reshape).

Run::

    python examples/transpose.py
"""

import numpy as np

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.mpi import run_spmd

N = 128          # matrix is N x N doubles
NPROCS = 4
ROWS = N // NPROCS


def write_row_block(comm, fs, matrix_blocks):
    """Each rank writes its row block at its canonical offset."""
    r = comm.rank
    fh = File.open(comm, fs, "/matrix.dat", MODE_CREATE | MODE_RDWR,
                   engine="listless")
    fh.set_view(0, dt.DOUBLE, dt.DOUBLE)
    block = matrix_blocks[r]
    fh.write_at_all(r * ROWS * N, block.reshape(-1), ROWS * N, dt.DOUBLE)
    fh.close()


def read_col_block(comm, fs, out_blocks):
    """Each rank reads its column stripe — the transposed row block."""
    r = comm.rank
    stripe = dt.subarray([N, N], [N, ROWS], [0, r * ROWS], dt.DOUBLE)
    fh = File.open(comm, fs, "/matrix.dat", MODE_RDONLY,
                   engine="listless")
    fh.set_view(0, dt.DOUBLE, stripe)
    buf = np.zeros(N * ROWS, dtype=np.float64)
    fh.read_at_all(0, buf, N * ROWS, dt.DOUBLE)
    # The stripe arrives row-by-row: shape (N, ROWS); transposing the
    # small local block finishes the global transpose.
    out_blocks[r] = buf.reshape(N, ROWS).T.copy()


def main():
    rng = np.random.default_rng(42)
    matrix = rng.random((N, N))
    blocks = [matrix[r * ROWS : (r + 1) * ROWS] for r in range(NPROCS)]

    fs = SimFileSystem()
    run_spmd(NPROCS, write_row_block, fs, blocks)

    out = [None] * NPROCS
    run_spmd(NPROCS, read_col_block, fs, out)

    transposed = np.vstack(out)
    assert transposed.shape == (N, N)
    assert (transposed == matrix.T).all()
    print(f"transposed a {N}x{N} matrix out of core "
          f"({N*N*8:,} bytes) — no shuffle pass, two fileviews: OK")

    stats = fs.lookup("/matrix.dat").stats.snapshot()
    print(f"file ops: {stats['n_writes']} writes, "
          f"{stats['n_reads']} reads "
          f"(collective I/O coalesced the column gather)")


if __name__ == "__main__":
    main()

"""Quickstart: non-contiguous parallel file access in 60 lines.

Four processes share one file.  Each sets up the paper's Fig.-4 fileview
(an interleaved vector pattern), writes its data with a single collective
call, and reads it back — first with the *listless* engine (the paper's
contribution), then with the conventional *list-based* engine, comparing
the communication volume the two need.

Run::

    python examples/quickstart.py
"""

import numpy as np

from repro import datatypes as dt
from repro.fs import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.mpi import run_spmd

NPROCS = 4
BLOCKLEN = 8        # bytes per block (Sblock)
BLOCKCOUNT = 1024   # blocks per process (Nblock)


def fileview_for(rank: int) -> dt.Datatype:
    """Process `rank` sees every NPROCS-th block of the file (Fig. 4):
    struct{ LB@0, vector(BLOCKCOUNT x BLOCKLEN, stride NPROCS*BLOCKLEN),
    UB@extent } displaced by rank*BLOCKLEN."""
    vec = dt.vector(BLOCKCOUNT, BLOCKLEN, NPROCS * BLOCKLEN, dt.BYTE)
    extent = BLOCKCOUNT * NPROCS * BLOCKLEN
    return dt.struct(
        [1, 1, 1], [0, rank * BLOCKLEN, extent], [dt.LB, vec, dt.UB]
    )


def app(comm, fs, engine):
    rank = comm.rank
    fh = File.open(comm, fs, "/quickstart.dat", MODE_CREATE | MODE_RDWR,
                   engine=engine)
    fh.set_view(0, dt.BYTE, fileview_for(rank))

    payload = np.full(BLOCKLEN * BLOCKCOUNT, rank + 1, dtype=np.uint8)
    fh.write_at_all(0, payload)        # one collective call moves it all

    echo = np.zeros_like(payload)
    fh.read_at_all(0, echo)
    assert (echo == payload).all(), "roundtrip failed!"
    fh.close()


def main():
    for engine in ("listless", "list_based"):
        fs = SimFileSystem()
        worlds = []
        run_spmd(NPROCS, app, fs, engine, world_out=worlds)

        data = fs.lookup("/quickstart.dat").contents()
        print(f"[{engine:>10}] file size: {data.size} bytes; "
              f"first 16 bytes: {data[:16].tolist()}")
        print(f"[{engine:>10}] bytes on the wire: "
              f"{worlds[0].total_bytes_sent():,}")
    print("\nThe interleave pattern 1,2,3,4 shows each rank's blocks; "
          "the list-based engine shipped ol-lists on top of the data.")


if __name__ == "__main__":
    main()

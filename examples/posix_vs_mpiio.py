"""The paper's opening motivation: POSIX vs MPI-IO for non-contiguous
access.

"Only few file system interfaces directly support this kind of
non-contiguous file access" — with POSIX, an application that needs
every 4th record of a file must issue one ``lseek`` + ``read`` pair per
record.  With MPI-IO it describes the pattern *once* as a fileview and
issues one call.

This example reads the same scattered records three ways and compares
the file-operation counts and simulated device time:

1. POSIX loop: seek+read per record;
2. MPI-IO independent read (data sieving turns it into few big reads);
3. MPI-IO collective read with 4 processes whose views interleave to
   cover the whole file (two-phase I/O reads every byte exactly once).

Run::

    python examples/posix_vs_mpiio.py
"""

import numpy as np

from repro import datatypes as dt
from repro.fs import PosixFile, SimFileSystem
from repro.io import File, MODE_RDONLY
from repro.mpi import run_spmd

RECORD = 64          # bytes per record
NRECORDS = 4096      # records in the file
NPROCS = 4           # each process owns every 4th record


def make_file(fs):
    f = fs.create("/records.dat")
    data = np.arange(NRECORDS * RECORD, dtype=np.int64) % 251
    f.pwrite(0, data.astype(np.uint8))
    f.stats.reset()
    return f


def posix_reader(fs):
    """Rank-0-style access with the POSIX interface: one seek+read per
    owned record."""
    out = np.zeros(NRECORDS // NPROCS * RECORD, dtype=np.uint8)
    with PosixFile(fs.lookup("/records.dat")) as pf:
        pos = 0
        for rec in range(0, NRECORDS, NPROCS):
            pf.lseek(rec * RECORD)
            out[pos : pos + RECORD] = pf.read(RECORD)
            pos += RECORD
    return out


def mpiio_independent(comm, fs, results):
    ftype = dt.vector(NRECORDS // NPROCS, RECORD, NPROCS * RECORD,
                      dt.BYTE)
    fh = File.open(comm, fs, "/records.dat", MODE_RDONLY,
                   engine="listless")
    fh.set_view(comm.rank * RECORD, dt.BYTE, ftype)
    out = np.zeros(NRECORDS // NPROCS * RECORD, dtype=np.uint8)
    fh.read_at(0, out)
    results[comm.rank] = out
    fh.close()


def mpiio_collective(comm, fs, results):
    vec = dt.vector(NRECORDS // NPROCS, RECORD, NPROCS * RECORD, dt.BYTE)
    ftype = dt.struct(
        [1, 1, 1],
        [0, comm.rank * RECORD, NRECORDS * RECORD],
        [dt.LB, vec, dt.UB],
    )
    fh = File.open(comm, fs, "/records.dat", MODE_RDONLY,
                   engine="listless")
    fh.set_view(0, dt.BYTE, ftype)
    out = np.zeros(NRECORDS // NPROCS * RECORD, dtype=np.uint8)
    fh.read_at_all(0, out)
    results[comm.rank] = out
    fh.close()


def main():
    fs = SimFileSystem()
    f = make_file(fs)
    golden = f.contents().reshape(NRECORDS, RECORD)[0::NPROCS].reshape(-1)
    f.stats.reset()

    # 1. POSIX, single process, per-record seek+read.
    out = posix_reader(fs)
    assert (out == golden).all()
    s = f.stats.snapshot()
    print(f"POSIX seek+read loop : {s['n_reads']:5d} file ops, "
          f"{s['bytes_read']:9,d} B, device {s['sim_time']*1e3:6.2f} ms")

    # 2. MPI-IO independent (data sieving), 4 ranks.
    f.stats.reset()
    results = [None] * NPROCS
    run_spmd(NPROCS, mpiio_independent, fs, results)
    assert (results[0] == golden).all()
    s = f.stats.snapshot()
    print(f"MPI-IO independent   : {s['n_reads']:5d} file ops, "
          f"{s['bytes_read']:9,d} B, device {s['sim_time']*1e3:6.2f} ms")

    # 3. MPI-IO collective (two-phase), 4 ranks.
    f.stats.reset()
    results = [None] * NPROCS
    run_spmd(NPROCS, mpiio_collective, fs, results)
    assert (results[0] == golden).all()
    s = f.stats.snapshot()
    print(f"MPI-IO collective    : {s['n_reads']:5d} file ops, "
          f"{s['bytes_read']:9,d} B, device {s['sim_time']*1e3:6.2f} ms")

    print("\nOne fileview replaces a thousand seeks; collective I/O "
          "additionally reads every byte exactly once across ranks.")


if __name__ == "__main__":
    main()

"""Checkpoint / restart of a block-distributed matrix.

A classic MPI-IO workload: a 2-D array is distributed over a process grid
(here with ``MPI_Type_create_darray`` semantics), and the *global* matrix
is checkpointed to a single canonical-layout file with one collective
write per snapshot.  A restart then reads the same file back through the
same views — possibly on a different engine — and verifies the matrix.

The canonical file is independent of the process count: a sequential
POSIX reader can consume it, which this example demonstrates too.

Run::

    python examples/matrix_checkpoint.py
"""

import numpy as np

from repro import datatypes as dt
from repro.fs import PosixFile, SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.mpi import run_spmd

GRID = 2                       # 2x2 process grid
N = 64                         # global matrix is N x N doubles
LOCAL = N // GRID


def my_view(rank: int, nprocs: int) -> dt.Datatype:
    """This rank's block of the global matrix, as a darray filetype."""
    return dt.darray(
        nprocs, rank,
        gsizes=[N, N],
        distribs=[dt.DISTRIBUTE_BLOCK, dt.DISTRIBUTE_BLOCK],
        dargs=[dt.DISTRIBUTE_DFLT_DARG] * 2,
        psizes=[GRID, GRID],
        base=dt.DOUBLE,
    )


def local_block(rank: int) -> np.ndarray:
    """A deterministic local block: global row/col indices encoded."""
    r, c = divmod(rank, GRID)
    rows = np.arange(r * LOCAL, (r + 1) * LOCAL)
    cols = np.arange(c * LOCAL, (c + 1) * LOCAL)
    return rows[:, None] * 1000.0 + cols[None, :]


def checkpoint(comm, fs, engine):
    fh = File.open(comm, fs, "/matrix.ckpt", MODE_CREATE | MODE_RDWR,
                   engine=engine)
    fh.set_view(0, dt.DOUBLE, my_view(comm.rank, comm.size))
    fh.write_at_all(0, local_block(comm.rank).copy(),
                    LOCAL * LOCAL, dt.DOUBLE)
    fh.close()


def restart(comm, fs, engine):
    fh = File.open(comm, fs, "/matrix.ckpt", MODE_RDONLY, engine=engine)
    fh.set_view(0, dt.DOUBLE, my_view(comm.rank, comm.size))
    block = np.zeros(LOCAL * LOCAL)
    fh.read_at_all(0, block, LOCAL * LOCAL, dt.DOUBLE)
    assert (block.reshape(LOCAL, LOCAL) == local_block(comm.rank)).all()
    fh.close()


def main():
    fs = SimFileSystem()
    # Checkpoint with the listless engine...
    run_spmd(GRID * GRID, checkpoint, fs, "listless")
    # ...restart through the conventional engine: same bytes, same file.
    run_spmd(GRID * GRID, restart, fs, "list_based")

    # The file is in canonical row-major order: a plain sequential reader
    # (no MPI, no views) sees the global matrix directly.
    with PosixFile(fs.lookup("/matrix.ckpt")) as pf:
        raw = pf.read(N * N * 8).view(np.float64).reshape(N, N)
    expect = (np.arange(N)[:, None] * 1000.0 + np.arange(N)[None, :])
    assert (raw == expect).all()
    print(f"checkpointed {N}x{N} matrix ({N*N*8:,} bytes), restarted on "
          f"the other engine, and verified the canonical layout "
          f"sequentially: OK")


if __name__ == "__main__":
    main()

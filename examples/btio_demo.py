"""BTIO in miniature: the paper's application kernel, end to end.

Runs the NAS BTIO write phase (diagonal multi-partitioned cubic grid,
subarray memtypes/filetypes, one collective write per step) for a small
class on both engines and prints a Table-3-style comparison, plus the
characterization rows of Tables 1 and 2 for the configuration.

Run::

    python examples/btio_demo.py
"""

import statistics

from repro.bench import (
    BTIOConfig,
    btio_characterize,
    mb_per_s,
    run_btio,
)

CLS = "W"
NPROCS = 4
NSTEPS = 3
REPEATS = 3


def main():
    c = btio_characterize(CLS, NPROCS, nsteps=NSTEPS)
    print(f"BTIO class {CLS}: grid {c['grid']}^3, P={NPROCS} "
          f"({c['ncells']} cells/rank)")
    print(f"  Nblock = {c['nblock']} blocks of Sblock = {c['sblock']} B "
          f"per process per step")
    print(f"  Dstep = {c['dstep']/1e6:.2f} MB, Drun = {c['drun']/1e6:.1f} "
          f"MB over {NSTEPS} steps\n")

    times = {}
    for engine in ("list_based", "listless"):
        samples = []
        for _ in range(REPEATS):
            r = run_btio(
                engine,
                BTIOConfig(cls=CLS, nprocs=NPROCS, nsteps=NSTEPS,
                           verify=True),
            )
            samples.append(r)
        t = statistics.median(s.io_time.total for s in samples)
        bw = statistics.median(s.io_bandwidth for s in samples)
        times[engine] = t
        print(f"  {engine:>10}: io time {t*1e3:7.1f} ms   "
              f"effective {mb_per_s(bw):7.1f} MB/s   (verified)")

    r_io = times["list_based"] / times["listless"]
    print(f"\n  r_io = {r_io:.2f}  (paper, class B/C on SX-7: 1.07-2.07; "
          "small classes sit near 1 because constant overheads dominate)")


if __name__ == "__main__":
    main()

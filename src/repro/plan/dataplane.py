"""The data plane: batched block copies shared by every executor path.

Every place a plan moves bytes between a file/staging buffer and a
block-described region — sieved gathers, round-staging pack of the
two-phase exchange, read-modify-write overlays, direct per-block file
I/O — used to dispatch its own copy code inline in the executor, with
the conventional engine's :class:`~repro.plan.ops.TupleBlocks` copied
one Python tuple at a time.  This facade centralizes those copies and
fuses them into single NumPy batched kernels:

:class:`~repro.plan.ops.Blocks`
    executed through the compiled :class:`~repro.core.blockprog.
    BlockProgram` of the block list (compiled once, memoized on the
    ``Blocks`` object, translated per call by a scalar base) — or, with
    the program layer disabled, through the one-shot vectorized
    gather/scatter kernels;
:class:`~repro.plan.ops.TupleBlocks`
    the tuple list is lowered once to ``(offsets, lengths)`` index
    arrays (memoized on the ``TupleBlocks`` object) and executed through
    the same batched kernels.  Building and shipping the tuples — the
    §2 costs the conventional engine models — still happens per access
    in the engine; only the byte movement is batched.  With the program
    layer disabled the per-tuple interpreted loop is preserved, so A/B
    runs compare fused against interpreted copies end to end.

Per-block *file* accesses (direct mode) stay per-block — that is real
I/O, not copy overhead — but the Python lists they iterate are derived
once per block spec and memoized (:func:`block_lists`).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core import blockprog
from repro.core.gather import gather_blocks, scatter_blocks
from repro.plan.ops import Blocks, TupleBlocks

__all__ = ["DataPlane", "block_lists", "tuple_arrays"]


def tuple_arrays(blocks: TupleBlocks) -> Tuple[np.ndarray, np.ndarray]:
    """``(offsets, lengths)`` index arrays of a tuple list, built once
    and memoized on the ``TupleBlocks`` object (a cache, like
    ``Blocks.prog`` — replays of a cached plan skip the rebuild)."""
    arrs = blocks.arrs
    if arrs is None:
        offs = np.fromiter((o for o, _ in blocks.pairs), dtype=np.int64,
                           count=len(blocks.pairs))
        lens = np.fromiter((ln for _, ln in blocks.pairs), dtype=np.int64,
                           count=len(blocks.pairs))
        arrs = (offs, lens)
        object.__setattr__(blocks, "arrs", arrs)
    return arrs


def block_lists(blocks) -> Tuple[List[int], List[int]]:
    """Python ``(offsets, lengths)`` lists for per-block file I/O,
    memoized on the block spec (direct-mode plans replay without
    re-running ``tolist`` per access)."""
    lists = blocks.lists
    if lists is None:
        if isinstance(blocks, Blocks):
            lists = (blocks.offsets.tolist(), blocks.lengths.tolist())
        else:
            lists = ([o for o, _ in blocks.pairs],
                     [ln for _, ln in blocks.pairs])
        object.__setattr__(blocks, "lists", lists)
    return lists


class DataPlane:
    """Batched gather/scatter between window buffers and block specs.

    Stateless; offsets inside the block specs are absolute file offsets
    and ``wlo`` is the window origin they are rebased against.  The
    ``enabled`` flag (normally :func:`repro.core.blockprog.enabled`)
    selects the fused paths; disabled, the historical per-call paths
    run (fresh kernel dispatch for ``Blocks``, interpreted per-tuple
    loop for ``TupleBlocks``) for A/B comparison.
    """

    @staticmethod
    def gather(fb: np.ndarray, wlo: int, blocks, out: np.ndarray,
               pos: int, enabled: bool) -> int:
        """Copy ``blocks`` of window buffer ``fb`` into ``out`` at
        ``pos``; returns bytes copied."""
        if isinstance(blocks, Blocks):
            if enabled:
                prog = blockprog.program_for_blocks(blocks)
                return prog.gather(fb, -wlo, out, pos)
            return gather_blocks(fb, blocks.offsets - wlo,
                                 blocks.lengths, out, pos)
        if enabled:
            offs, lens = tuple_arrays(blocks)
            return gather_blocks(fb, offs - wlo, lens, out, pos)
        copied = 0
        for o, ln in blocks.pairs:
            out[pos : pos + ln] = fb[o - wlo : o - wlo + ln]
            pos += ln
            copied += ln
        return copied

    @staticmethod
    def scatter(fb: np.ndarray, wlo: int, blocks, src: np.ndarray,
                pos: int, enabled: bool) -> int:
        """Copy contiguous ``src`` bytes from ``pos`` into ``blocks`` of
        window buffer ``fb``; returns bytes copied."""
        if isinstance(blocks, Blocks):
            if enabled:
                prog = blockprog.program_for_blocks(blocks)
                return prog.scatter(fb, -wlo, src, pos)
            return scatter_blocks(fb, blocks.offsets - wlo,
                                  blocks.lengths, src, pos)
        if enabled:
            offs, lens = tuple_arrays(blocks)
            return scatter_blocks(fb, offs - wlo, lens, src, pos)
        copied = 0
        for o, ln in blocks.pairs:
            fb[o - wlo : o - wlo + ln] = src[pos : pos + ln]
            pos += ln
            copied += ln
        return copied

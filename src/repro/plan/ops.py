"""Typed I/O plan operations.

An :class:`~repro.plan.plan.IOPlan` is an ordered list of these ops — a
*declarative* record of everything an access will do, produced by the
:class:`~repro.plan.planner.Planner` before any byte moves and consumed
by an :class:`~repro.plan.executor.Executor`.  The split mirrors the
paper's core idea: the *description* of a non-contiguous access (which
windows, which blocks, which exchanges) is separated from the *act* of
performing it, so the description can be optimized, cached and replayed.

Data coordinates are *absolute view-data bytes* (bytes through the
fileview, counted from the view origin); file coordinates are absolute
file bytes.  The memory side of an access is never baked into a plan —
gather/scatter ops carry only data ranges and the executor applies them
to whatever :class:`~repro.io.fileview.MemDescriptor` the access
supplies, so one cached plan serves any memory layout of the same size.

Block descriptions come in three flavors, preserving each engine's
characteristic copy machinery:

:class:`Blocks`
    materialized ``(offsets, lengths)`` NumPy arrays, executed through
    the vectorized gather/scatter kernels (the listless engine);
:class:`TupleBlocks`
    explicit Python tuple lists (the conventional list-based engine) —
    lowered once to index arrays and batch-copied by the data plane, or
    copied one tuple at a time in an interpreted loop when the program
    layer is disabled;
``blocks=None``
    deferred — the executor streams blocks through the emitting
    engine's own view walk at execution time (list-based independent
    access, which never materializes per-access lists).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

import numpy as np

__all__ = [
    "PlanOp",
    "GatherOp",
    "ScatterOp",
    "LockOp",
    "UnlockOp",
    "FileReadOp",
    "FileWriteOp",
    "ExchangeOp",
    "RoundOp",
    "DrainOp",
    "ShipOp",
    "Piece",
    "Blocks",
    "TupleBlocks",
    "Send",
    "STAGE",
]

#: Default staging slot used by independent-access plans.
STAGE = "stage"

#: Slot key of the outbound exchange payload for a peer rank.
def out_slot(rank: int) -> Tuple[str, int]:
    return ("out", rank)


#: Slot key under which the exchange stores the payload from a peer.
def in_slot(rank: int) -> Tuple[str, int]:
    return ("in", rank)


@dataclass(frozen=True)
class Blocks:
    """Materialized contiguous file blocks (absolute offsets).

    ``prog`` memoizes the compiled :class:`~repro.core.blockprog.
    BlockProgram` of these blocks (set lazily by the executor via
    ``program_for_blocks``), so replaying a cached plan reuses the
    one-time kernel dispatch instead of re-deriving it per run.
    ``lists`` memoizes the Python offset/length lists direct-mode file
    I/O iterates (``repro.plan.dataplane.block_lists``).  Both are
    caches, not part of the block description — excluded from
    comparison.
    """

    offsets: np.ndarray
    lengths: np.ndarray
    prog: object = field(default=None, compare=False)
    lists: object = field(default=None, compare=False)

    @property
    def nbytes(self) -> int:
        return int(self.lengths.sum()) if self.lengths.size else 0

    @property
    def count(self) -> int:
        return int(self.offsets.size)

    def __repr__(self) -> str:
        return f"Blocks(k={self.count}, nbytes={self.nbytes})"


@dataclass(frozen=True)
class TupleBlocks:
    """Explicit ``(offset, length)`` tuples.

    The data plane lowers the tuples once to ``(offsets, lengths)``
    index arrays — memoized in ``arrs`` — and moves the bytes in one
    batched copy; with the program layer disabled it falls back to the
    historical interpreted per-tuple loop.  ``arrs`` and ``lists`` are
    caches like ``Blocks.prog`` — excluded from comparison.
    """

    pairs: Tuple[Tuple[int, int], ...]
    arrs: object = field(default=None, compare=False)
    lists: object = field(default=None, compare=False)

    @property
    def nbytes(self) -> int:
        return sum(ln for _, ln in self.pairs)

    @property
    def count(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        return f"TupleBlocks(k={self.count}, nbytes={self.nbytes})"


BlockSpec = Union[Blocks, TupleBlocks, None]


@dataclass(frozen=True)
class Piece:
    """One buffer's contribution to a file op.

    ``slot`` names the staging/exchange buffer holding (or receiving)
    the data bytes ``[d_lo, d_hi)``; ``blocks`` are the file blocks they
    occupy (``None`` → stream through the emitting engine's view walk).
    """

    slot: object
    d_lo: int
    d_hi: int
    blocks: BlockSpec = None

    def __repr__(self) -> str:
        return (
            f"Piece(slot={self.slot!r}, data=[{self.d_lo}, {self.d_hi}), "
            f"blocks={self.blocks!r})"
        )


class PlanOp:
    """Base class for plan operations (pretty-printing only)."""

    __slots__ = ()

    def describe(self) -> str:
        return repr(self)


@dataclass(frozen=True, repr=False)
class GatherOp(PlanOp):
    """Pack user-memory data bytes ``[d_lo, d_hi)`` into ``slot``."""

    d_lo: int
    d_hi: int
    slot: object = STAGE

    def __repr__(self) -> str:
        return (
            f"GatherOp(mem[{self.d_lo}:{self.d_hi}] -> {self.slot!r})"
        )


@dataclass(frozen=True, repr=False)
class ScatterOp(PlanOp):
    """Unpack ``slot`` into user-memory data bytes ``[d_lo, d_hi)``."""

    d_lo: int
    d_hi: int
    slot: object = STAGE

    def __repr__(self) -> str:
        return (
            f"ScatterOp({self.slot!r} -> mem[{self.d_lo}:{self.d_hi}])"
        )


@dataclass(frozen=True, repr=False)
class LockOp(PlanOp):
    """Acquire the byte-range lock ``[lo, hi)`` (read-modify-write)."""

    lo: int
    hi: int

    def __repr__(self) -> str:
        return f"LockOp([{self.lo}, {self.hi}))"


@dataclass(frozen=True, repr=False)
class UnlockOp(PlanOp):
    """Release the byte-range lock ``[lo, hi)``."""

    lo: int
    hi: int

    def __repr__(self) -> str:
        return f"UnlockOp([{self.lo}, {self.hi}))"


@dataclass(frozen=True, repr=False)
class FileReadOp(PlanOp):
    """Read file data for one coalesced window ``[lo, hi)``.

    ``mode``:

    ``"window"``
        read the whole window into a file buffer once, then gather each
        piece's blocks out of it (data sieving);
    ``"direct"``
        read each block of each piece with its own file access (sieving
        disabled, or the cost model found few/large blocks).

    ``strict`` makes a short direct read an error (the contiguous-view
    fast path); otherwise the unread tail is zero-filled, matching the
    zeroed staging buffers of sieved reads.

    ``overlap`` marks the op as pipeline-eligible: the executor may
    offload the file access to its background worker and publish the
    filled buffers at the next :class:`DrainOp` instead of completing
    in place (the prefetch stage of a pipelined collective round).
    ``round`` is the round the prefetched window serves (its buffers
    must not be published before that round — an earlier publication
    would clobber reply slots the current round's exchange still
    reads); ``-1`` means "the round it was submitted in".
    """

    lo: int
    hi: int
    mode: str = "window"
    pieces: Tuple[Piece, ...] = ()
    strict: bool = False
    overlap: bool = False
    round: int = -1

    def __repr__(self) -> str:
        return (
            f"FileReadOp([{self.lo}, {self.hi}), mode={self.mode!r}, "
            f"pieces={len(self.pieces)}"
            f"{', strict' if self.strict else ''}"
            f"{', overlap' if self.overlap else ''})"
        )


@dataclass(frozen=True, repr=False)
class FileWriteOp(PlanOp):
    """Write file data for one coalesced window ``[lo, hi)``.

    ``mode``:

    ``"rmw"``
        read-modify-write: pre-read the window, scatter every piece's
        blocks into it, write it back (the general sieved write — pair
        with :class:`LockOp`/:class:`UnlockOp` when racing writers are
        possible);
    ``"assemble"``
        the pieces together cover every byte of the window, so skip the
        pre-read, assemble the window in memory and write once (the
        mergeview coverage decision of paper §3.2.3);
    ``"direct"``
        write each block of each piece with its own file access.

    ``overlap`` marks the op as pipeline-eligible: the executor may
    assemble the window on the spot but offload the actual write to its
    background worker, so the next round's exchange proceeds while the
    bytes land (only ``"assemble"`` windows — ``"rmw"`` stays on the
    ordered synchronous path).
    """

    lo: int
    hi: int
    mode: str = "rmw"
    pieces: Tuple[Piece, ...] = ()
    overlap: bool = False

    def __repr__(self) -> str:
        return (
            f"FileWriteOp([{self.lo}, {self.hi}), mode={self.mode!r}, "
            f"pieces={len(self.pieces)}"
            f"{', overlap' if self.overlap else ''})"
        )


@dataclass(frozen=True, repr=False)
class Send(PlanOp):
    """One outbound payload of an :class:`ExchangeOp`.

    ``slot`` names a buffer prepared earlier in the plan (listless:
    per-IOP :class:`GatherOp` output; replies of a collective read).
    ``ol``/``d_lo`` describe the conventional engine's per-access
    ol-list shipment instead: the expanded list plus the data offset
    its first tuple maps to.
    """

    rank: int
    slot: object = None
    ol: object = None
    d_lo: int = 0

    def __repr__(self) -> str:
        if self.slot is not None:
            return f"Send(rank={self.rank}, slot={self.slot!r})"
        return f"Send(rank={self.rank}, list, d_lo={self.d_lo})"


@dataclass(frozen=True, repr=False)
class RoundOp(PlanOp):
    """Marker opening aggregation round ``index`` of ``total``.

    The ops following it (up to the next :class:`RoundOp` or the plan
    end) form one bounded exchange+file-I/O round of the two-phase
    collective: every rank packs only that round's window bytes, ships
    them, and the IOP accesses one ``cb_buffer_size`` window.  The
    executor uses the marker for per-round phase accounting and trace
    spans.
    """

    index: int
    total: int

    def __repr__(self) -> str:
        return f"RoundOp({self.index + 1}/{self.total})"


@dataclass(frozen=True, repr=False)
class ExchangeOp(PlanOp):
    """Redistribution of the prepared payloads.

    ``mode="alltoall"`` (the default, and the fallback when metadata
    cannot prove who talks to whom) executes one synchronizing
    ``alltoall`` over the plan's communicator: every :class:`Send`
    becomes the outbound payload for its rank, and each inbound payload
    from rank *r* is stored under slot ``("in", r)``.

    ``mode="p2p"`` is the relaxed-synchronization path of the pipelined
    collective: the plan's metadata proved exactly which (AP, IOP)
    pairs move bytes this round, so the executor sends each payload
    point-to-point under ``tag`` and completes receives from exactly
    ``recvs`` in arrival order — ranks with empty windows neither send
    nor wait, paying no round barrier.
    """

    sends: Tuple[Send, ...] = ()
    mode: str = "alltoall"
    recvs: Tuple[int, ...] = ()
    tag: int = 0

    def __repr__(self) -> str:
        if self.mode == "p2p":
            return (
                f"ExchangeOp(p2p, sends={len(self.sends)}, "
                f"recvs={len(self.recvs)}, tag={self.tag})"
            )
        return f"ExchangeOp(sends={len(self.sends)})"


@dataclass(frozen=True, repr=False)
class ShipOp(PlanOp):
    """Ship a file op's noncontiguous accesses to the shard servers.

    A plan rewrite (``repro.io.shipping``) replaces an eligible
    :class:`FileReadOp`/:class:`FileWriteOp` against a
    :class:`~repro.fs.sharded.ShardedFile` with this op: instead of the
    executor accessing bytes through the file surface (one wire round
    trip per primitive), the whole noncontiguous access is described to
    each involved shard server in one request per shard.

    ``protocol`` selects the wire description (the list-I/O vs
    datatype-I/O comparison of "Noncontiguous I/O through PVFS"):
    ``"list"`` ships exploded per-shard offset/length lists, ``"dtype"``
    ships the compact fileview once per (shard, view) and then only
    ``(view id, data range, file delta)`` — ``views`` carries the
    per-piece ``(vid, cview, data_base)`` triple for the dtype path,
    ``None`` entries falling back to lists.  Coordinates in ``pieces``
    stay plan-relative; the executor's file delta is applied at ship
    time, so cached/replayed plans rewrite once and re-ship anywhere.
    """

    lo: int
    hi: int
    write: bool
    protocol: str
    pieces: Tuple[Piece, ...] = ()
    views: Tuple[object, ...] = field(default=(), compare=False)
    strict: bool = False

    def __repr__(self) -> str:
        kind = "write" if self.write else "read"
        return (
            f"ShipOp({kind} [{self.lo}, {self.hi}), "
            f"protocol={self.protocol!r}, pieces={len(self.pieces)}"
            f"{', strict' if self.strict else ''})"
        )


@dataclass(frozen=True, repr=False)
class DrainOp(PlanOp):
    """Barrier against the executor's background file-I/O worker.

    Waits until at most ``keep`` offloaded file ops remain in flight,
    then publishes the buffers of every completed prefetch into the
    plan's staging dict.  ``keep=1`` is the steady-state drain of a
    double-buffered pipeline (round N's window is ready, round N+1's
    prefetch keeps flying); ``keep=0`` is the final drain.
    """

    keep: int = 0

    def __repr__(self) -> str:
        return f"DrainOp(keep={self.keep})"

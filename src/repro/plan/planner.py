"""The planner: build and optimize :class:`~repro.plan.plan.IOPlan`\\ s.

One :class:`Planner` serves one engine instance.  It turns an access —
``(view-data offset, size, direction)`` for independent I/O, the
aggregated ranges and file domains for collective I/O — into an ordered
op list, applying the optimizations the paper and its related work
describe *as plan rewrites* rather than inline control flow:

dense fast-path detection
    an access whose file range contains no holes becomes one direct
    file access, no staging window (paper §4.3's contiguous case);
window coalescing
    adjacent file blocks inside a sieving window are merged before the
    copy kernels see them (:func:`repro.io.sieving.coalesce_blocks`);
sieve-vs-direct decision
    the :class:`~repro.mpi.cost_model.StorageModel` compares one access
    per block against windowed read-modify-write (Thakur et al.'s data
    sieving trade-off) — sieving hints still veto sieving outright;
plan caching
    an LRU keyed on (planner epoch, hint fingerprint, access
    signature).  The epoch is bumped whenever ``set_view`` replaces the
    fileview, so cached plans can never survive a view change, and the
    fingerprint covers the hints and cost-model parameters that feed
    planning, so a ``set_info`` hint change (which bumps no epoch) can
    never replay a stale plan.  Only the listless engine caches: its
    plans derive from the *cached* compact fileview, which is exactly
    the paper's point — the conventional engine re-expands ol-lists per
    access, so its planner re-plans per access.
replay fast path
    every fileview tiles the file with period ``ft_size`` data bytes
    per ``ft_extent`` file bytes, so the whole independent-planning
    pipeline is *translation-covariant*: two accesses whose offsets
    differ by whole periods produce identical plans up to one scalar
    file translation.  :meth:`Planner.plan_independent_bound` exploits
    this with a second table keyed on the offset residue — a hit skips
    planner entry entirely and re-binds the cached whole-access plan
    with a ``file_delta`` the executor applies at the file boundary.

Geometry comes from the engine: engines that can navigate a compact
fileview expose it via ``plan_geometry()`` and get materialized
:class:`~repro.plan.ops.Blocks`; engines that cannot (list-based
independent access) get deferred pieces the executor streams through
the engine's own view walk.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro.core import blockprog
from repro.io.sieving import coalesce_blocks, windows
from repro.io.two_phase import AccessRange
from repro.mpi.cost_model import StorageModel, choose_access_strategy
from repro.obs import trace
from repro.obs.phases import PhaseAccumulator
from repro.plan.ops import (
    STAGE,
    Blocks,
    FileReadOp,
    FileWriteOp,
    GatherOp,
    LockOp,
    Piece,
    ScatterOp,
    UnlockOp,
)
from repro.plan.plan import IOPlan
from repro.plan.stats import PlanStats

__all__ = ["Planner"]

#: Plans holding more materialized block entries than this are built
#: and run but never cached (memory guard for huge accesses).
MAX_CACHED_BLOCKS = 1 << 18


def _clip(v: int, lo: int, hi: int) -> int:
    return min(max(v, lo), hi)


class Planner:
    """Builds, optimizes and caches I/O plans for one engine."""

    def __init__(self, engine, cacheable: bool = True,
                 stats: Optional[PlanStats] = None,
                 storage: Optional[StorageModel] = None,
                 maxsize: int = 32,
                 phases: Optional[PhaseAccumulator] = None) -> None:
        self.engine = engine
        self.cacheable = cacheable
        self.stats = stats if stats is not None else PlanStats()
        self.storage = storage if storage is not None else StorageModel()
        self.maxsize = maxsize
        #: Per-phase buckets plan-build time accumulates into (``plan``).
        self.phases = phases if phases is not None else PhaseAccumulator()
        self.epoch = 0
        self._cache: "OrderedDict[tuple, IOPlan]" = OrderedDict()
        #: Replay table: offset-residue key -> (whole-access plan, q0).
        #: A hit returns the cached plan plus the scalar file delta
        #: ``(q - q0) * ft_extent`` — no planner entry, no rewrite pass.
        self._replay: "OrderedDict[tuple, tuple]" = OrderedDict()

    # ------------------------------------------------------------------
    def _file_key(self):
        """Identity of the open file this planner serves (or ``None``
        for engines without one — unit-test fakes)."""
        shared = getattr(getattr(self.engine, "fh", None), "shared", None)
        return getattr(shared, "file_key", None)

    def _fingerprint(self) -> tuple:
        """File identity + hints + cost-model inputs that shape plans,
        for cache keys.  The file identity makes cached plans impossible
        to alias across two open files with identical fileview geometry
        (epochs alone only order views within one planner)."""
        return ((self._file_key(),)
                + self.engine.fh.hints.fingerprint()
                + self.storage.fingerprint())

    def invalidate(self) -> None:
        """Drop every cached plan (the fileview changed).

        Compiled block programs follow the same epoch rule: a replaced
        view may retire the loops its programs were compiled from, so
        this file's programs are cleared alongside the plan LRU
        (programs for still-live loops recompile on first miss).  The
        clear is owner-scoped — other open files keep their compiled
        programs.
        """
        self.epoch += 1
        self._cache.clear()
        self._replay.clear()
        blockprog.clear(owner=self._file_key())

    def _lookup(self, sig: Optional[tuple]) -> Optional[IOPlan]:
        if not self.cacheable or sig is None:
            return None
        plan = self._cache.get(sig)
        if plan is not None:
            self._cache.move_to_end(sig)
            self.stats.plan_cache_hits += 1
            return plan
        self.stats.plan_cache_misses += 1
        return None

    def _finish(self, plan: IOPlan) -> IOPlan:
        st = self.stats
        st.plans_built += 1
        st.planned_ops += len(plan.ops)
        st.planned_windows += plan.planned_windows
        st.coalesced_bytes += plan.coalesced_bytes
        if self.cacheable and plan.signature is not None:
            self._cache[plan.signature] = plan
            while len(self._cache) > self.maxsize:
                self._cache.popitem(last=False)
        return plan

    # ------------------------------------------------------------------
    # Independent access
    # ------------------------------------------------------------------
    def plan_independent(self, d0: int, nbytes: int,
                         write: bool) -> IOPlan:
        """Plan one independent access (cache-served or freshly built);
        the whole call — lookup, navigation, windowing — bills to the
        ``plan`` phase bucket."""
        t0 = time.perf_counter()
        try:
            return self._plan_independent(d0, nbytes, write)
        finally:
            self.phases.add("plan", time.perf_counter() - t0)
            if trace.TRACE_ON:
                trace.TRACER.add("plan.independent", t0, write=write,
                                 nbytes=nbytes)

    def plan_independent_bound(self, d0: int, nbytes: int,
                               write: bool) -> Tuple[IOPlan, int]:
        """Plan one independent access; returns ``(plan, file_delta)``.

        The replay fast path: because every fileview tiles the file —
        ``d0 = q * ft_size + r`` puts every absolute file offset of the
        plan exactly ``q * ft_extent`` bytes after the residue access's,
        while all data-relative coordinates are translation-invariant —
        one *whole-access* plan per offset residue serves every period.
        A replay hit skips planner entry entirely (no window clipping,
        no navigation, no rewrite pass) and hands the executor the
        cached pre-bound plan plus the scalar translation to apply at
        the file boundary.  Gated on the same switches as the compiled
        kernels (``ff_block_programs`` hint, process-wide layer toggle)
        so A/B comparisons disable the whole batched data plane at once.
        """
        t0 = time.perf_counter()
        try:
            key = None
            q = 0
            fh = self.engine.fh
            view = fh.view
            if (self.cacheable and nbytes > 0 and view.ft_size > 0
                    and fh.hints.ff_block_programs
                    and blockprog.enabled()):
                q, r = divmod(d0, view.ft_size)
                key = (self.epoch, "rind", write, r, nbytes,
                       self._fingerprint())
                entry = self._replay.get(key)
                if entry is not None:
                    plan, q0 = entry
                    self._replay.move_to_end(key)
                    self.stats.plan_cache_hits += 1
                    self.stats.plan_replays += 1
                    return plan, (q - q0) * view.ft_extent
            plan = self._plan_independent(d0, nbytes, write)
            if key is not None and plan.signature is not None:
                self._replay[key] = (plan, q)
                while len(self._replay) > self.maxsize:
                    self._replay.popitem(last=False)
            return plan, 0
        finally:
            self.phases.add("plan", time.perf_counter() - t0)
            if trace.TRACE_ON:
                trace.TRACER.add("plan.independent", t0, write=write,
                                 nbytes=nbytes)

    def _plan_independent(self, d0: int, nbytes: int,
                          write: bool) -> IOPlan:
        engine = self.engine
        fh = engine.fh
        view = fh.view
        hints = fh.hints
        kind = ("write" if write else "read") + "-independent"
        d1 = d0 + nbytes
        ds = hints.ds_write if write else hints.ds_read
        bufsize = (hints.ind_wr_buffer_size if write
                   else hints.ind_rd_buffer_size)

        sig = None
        if self.cacheable:
            sig = (self.epoch, "ind", write, d0, nbytes,
                   self._fingerprint())
            hit = self._lookup(sig)
            if hit is not None:
                return hit

        if nbytes <= 0:
            return self._finish(IOPlan(kind, d0, 0, (), signature=sig))

        # Contiguous view: plain offset arithmetic, no navigation, one
        # strict file access (the c-c / nc-c fast path).
        if view.is_contiguous:
            lo = view.disp + d0
            blocks = Blocks(np.array([lo], dtype=np.int64),
                            np.array([nbytes], dtype=np.int64))
            piece = Piece(STAGE, d0, d1, blocks)
            if write:
                ops = (GatherOp(d0, d1),
                       FileWriteOp(lo, lo + nbytes, "direct", (piece,)))
            else:
                ops = (FileReadOp(lo, lo + nbytes, "direct", (piece,),
                                  strict=True),
                       ScatterOp(d0, d1))
            return self._finish(IOPlan(kind, d0, nbytes, ops,
                                       slots={STAGE: (d0, d1)},
                                       signature=sig))

        lo = engine.abs_of_data(d0)
        hi = engine.abs_of_data(d1, end=True)
        geom = engine.plan_geometry()

        # Dense fast path: the file span equals the data volume, so there
        # are no holes and the access is one contiguous file run
        # regardless of the view's type tree.
        if ds and geom is not None and hi - lo == nbytes:
            blocks = Blocks(np.array([lo], dtype=np.int64),
                            np.array([nbytes], dtype=np.int64))
            piece = Piece(STAGE, d0, d1, blocks)
            if write:
                ops = (GatherOp(d0, d1),
                       FileWriteOp(lo, hi, "direct", (piece,)))
            else:
                ops = (FileReadOp(lo, hi, "direct", (piece,)),
                       ScatterOp(d0, d1))
            return self._finish(IOPlan(kind, d0, nbytes, ops,
                                       slots={STAGE: (d0, d1)},
                                       signature=sig))

        strategy = "direct"
        if ds:
            strategy = choose_access_strategy(
                self.storage, write=write, nbytes=nbytes, span=hi - lo,
                est_blocks=self._est_blocks(view, nbytes),
                bufsize=bufsize,
            )

        if strategy == "direct":
            return self._plan_direct(kind, d0, d1, lo, hi, geom, write,
                                     sig, coalesce=ds)
        return self._plan_sieved(kind, d0, d1, lo, hi, geom, write,
                                 bufsize, sig)

    # ------------------------------------------------------------------
    def _est_blocks(self, view, nbytes: int) -> int:
        """Block-count estimate for the cost model: filetype instances
        needed for ``nbytes`` times blocks per instance."""
        per = view.ft_size
        if per <= 0:
            return 1
        nb = view.filetype.num_blocks or 1
        insts = -(-nbytes // per)
        return max(1, insts * nb)

    def _plan_direct(self, kind, d0, d1, lo, hi, geom, write, sig,
                     coalesce: bool) -> IOPlan:
        """One file access per block (sieving off or not worth it)."""
        coalesced = 0
        if geom is not None:
            offs, lens = geom.blocks_for_data(d0, d1)
            if coalesce:
                offs, lens, coalesced = coalesce_blocks(offs, lens)
            if offs.size > MAX_CACHED_BLOCKS:
                sig = None
            blocks = Blocks(offs, lens)
        else:
            blocks = None  # executor streams the engine's view walk
        piece = Piece(STAGE, d0, d1, blocks)
        if write:
            ops = (GatherOp(d0, d1),
                   FileWriteOp(lo, hi, "direct", (piece,)))
        else:
            ops = (FileReadOp(lo, hi, "direct", (piece,)),
                   ScatterOp(d0, d1))
        return self._finish(IOPlan(kind, d0, d1 - d0, ops,
                                   slots={STAGE: (d0, d1)}, signature=sig,
                                   coalesced_bytes=coalesced))

    def _plan_sieved(self, kind, d0, d1, lo, hi, geom, write, bufsize,
                     sig) -> IOPlan:
        """Windowed data sieving; writes lock their read-modify-write
        windows, reads just gather out of the file buffer."""
        ops: List[object] = []
        nwin = 0
        coalesced = 0
        entries = 0
        if geom is not None:
            # Per-window staging keyed off the compact view: each window
            # gathers/scatters exactly the data bytes it covers.
            for wlo, whi in windows(lo, hi, bufsize):
                dl = _clip(geom.data_of_abs(wlo), d0, d1)
                dh = _clip(geom.data_of_abs(whi), d0, d1)
                if dh <= dl:
                    continue
                offs, lens = geom.blocks_for_data(dl, dh)
                offs, lens, merged = coalesce_blocks(offs, lens)
                coalesced += merged
                entries += int(offs.size)
                piece = Piece(STAGE, dl, dh, Blocks(offs, lens))
                if write:
                    ops += [GatherOp(dl, dh), LockOp(wlo, whi),
                            FileWriteOp(wlo, whi, "rmw", (piece,)),
                            UnlockOp(wlo, whi)]
                else:
                    ops += [FileReadOp(wlo, whi, "window", (piece,)),
                            ScatterOp(dl, dh)]
                nwin += 1
            slots = {}
        else:
            # No navigable geometry (conventional independent access):
            # stage the whole access once and let the executor stream
            # each window through the engine's sequential view walk.
            piece = Piece(STAGE, d0, d1, None)
            if write:
                ops.append(GatherOp(d0, d1))
                for wlo, whi in windows(lo, hi, bufsize):
                    ops += [LockOp(wlo, whi),
                            FileWriteOp(wlo, whi, "rmw", (piece,)),
                            UnlockOp(wlo, whi)]
                    nwin += 1
            else:
                for wlo, whi in windows(lo, hi, bufsize):
                    ops.append(FileReadOp(wlo, whi, "window", (piece,)))
                    nwin += 1
                ops.append(ScatterOp(d0, d1))
            slots = {STAGE: (d0, d1)}
        if entries > MAX_CACHED_BLOCKS:
            sig = None
        return self._finish(IOPlan(kind, d0, d1 - d0, tuple(ops),
                                   slots=slots, signature=sig,
                                   planned_windows=nwin,
                                   coalesced_bytes=coalesced))

    # ------------------------------------------------------------------
    # Collective access (listless: navigable cached views for all ranks)
    # ------------------------------------------------------------------
    def plan_collective(self, write: bool, rng: AccessRange,
                        ranges: List[AccessRange],
                        domains: List[Tuple[int, int]],
                        schedule) -> IOPlan:
        """Plan one collective access; billed to the ``plan`` bucket
        like :meth:`plan_independent`."""
        t0 = time.perf_counter()
        try:
            return self._plan_collective(write, rng, ranges, domains,
                                         schedule)
        finally:
            self.phases.add("plan", time.perf_counter() - t0)
            if trace.TRACE_ON:
                trace.TRACER.add("plan.collective", t0, write=write)

    def _plan_collective(self, write: bool, rng: AccessRange,
                         ranges: List[AccessRange],
                         domains: List[Tuple[int, int]],
                         schedule) -> IOPlan:
        """One round-based plan covering both roles of a two-phase
        collective (see :mod:`repro.io.aggregation`).

        Built entirely from the fileview cache — every rank can compute
        every other rank's block placement, so the whole round schedule
        is known before a byte moves.  That makes the plan a pure
        function of (views, ranges, domains, cb) and therefore cacheable
        across repeated accesses — the payoff of caching compact
        fileviews instead of re-exchanging ol-lists.  The schedule is
        derived deterministically from (domains, cb), so the cache key
        needs no extra field for it.
        """
        from repro.io.aggregation import build_round_plan

        engine = self.engine
        fh = engine.fh
        cb = fh.hints.cb_buffer_size
        rank = fh.comm.rank
        kind = ("write" if write else "read") + "-collective"
        d0 = rng.data_lo

        sig = None
        if self.cacheable:
            sig = (self.epoch, "coll", write, engine.cache.epoch,
                   tuple((r.abs_lo, r.abs_hi, r.data_lo, r.data_hi)
                         for r in ranges),
                   tuple(domains), cb, self._fingerprint())
            hit = self._lookup(sig)
            if hit is not None:
                return hit

        md = engine.collective_metadata(write, rng, ranges)
        ops, nwin = build_round_plan(md, schedule, write, rng, rank)

        if md.entries > MAX_CACHED_BLOCKS:
            sig = None
        nbytes = rng.data_hi - rng.data_lo if not rng.empty else 0
        # No slot table on purpose: per-round staging buffers must stay
        # window-sized, never inflated to whole-access ranges — that is
        # the round pipeline's memory bound.
        return self._finish(IOPlan(kind, d0, nbytes, tuple(ops),
                                   signature=sig,
                                   planned_windows=nwin,
                                   coalesced_bytes=md.coalesced))

"""Plan executors: run an :class:`~repro.plan.plan.IOPlan` against a file.

The executor is the only place where plan ops touch bytes.  It is
deliberately dumb — every decision (windows, coalescing, sieving, pre-read
skipping, exchange schedule) was already taken by the planner and is
encoded in the ops; the executor just dispatches them.

Two backends are provided:

:class:`SimFileExecutor`
    runs plans against a :class:`~repro.fs.simfile.SimFile` (the
    engines' backend);
:class:`PosixExecutor`
    runs the same plans against a :class:`~repro.fs.posix.PosixFile`
    cursor handle — the paper's POSIX baseline — demonstrating that a
    plan is backend-neutral.

The *memory* side of gather/scatter ops is delegated to a ``codec``
(normally the emitting engine), so each engine keeps its characteristic
representation costs; the *file* side — every block copy between window
buffers and staging — goes through the shared
:class:`~repro.plan.dataplane.DataPlane` facade, which batches it.

Plans from the planner's replay fast path execute with a ``file_delta``:
every file offset the plan names (windows, direct blocks, lock ranges)
is translated by that many bytes at dispatch time, so one relocatable
plan serves every period-translated access of the same shape.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, Protocol, Tuple

import numpy as np

from repro.core import blockprog
from repro.errors import IOEngineError
from repro.io.fileview import MemDescriptor
from repro.io.sieving import read_window
from repro.obs import flight, trace
from repro.obs.phases import PhaseAccumulator, RoundLog
from repro.plan.dataplane import DataPlane, block_lists, tuple_arrays
from repro.plan.ops import (
    STAGE,
    Blocks,
    DrainOp,
    ExchangeOp,
    FileReadOp,
    FileWriteOp,
    GatherOp,
    LockOp,
    Piece,
    RoundOp,
    ScatterOp,
    Send,
    ShipOp,
    TupleBlocks,
    UnlockOp,
    in_slot,
)
from repro.plan.pipeline import DeferredWorker, FileJob, PipelineWorker
from repro.plan.plan import IOPlan
from repro.plan.stats import PlanStats

__all__ = [
    "Executor",
    "MemCodec",
    "KernelCodec",
    "SimFileExecutor",
    "PosixExecutor",
]


class MemCodec(Protocol):
    """Memory-side pack/unpack used by gather/scatter ops.

    Offsets are relative to the start of the access (the plan's ``d0``).
    The four ``stream_*`` hooks back deferred (``blocks=None``) pieces;
    only engines that emit such pieces need to provide them.
    """

    def pack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                 out: np.ndarray) -> None: ...

    def unpack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                   data: np.ndarray) -> None: ...


class KernelCodec:
    """Standalone codec using the flattening-on-the-fly kernels."""

    def pack_mem(self, mem, d_lo, d_hi, out):
        if mem.is_contiguous:
            out[: d_hi - d_lo] = mem.contiguous_slice(d_lo, d_hi - d_lo)
            return
        from repro.core.ff_pack import ff_pack

        ff_pack(mem.buf, mem.count, mem.memtype, d_lo, out, d_hi - d_lo,
                origin=mem.origin)

    def unpack_mem(self, mem, d_lo, d_hi, data):
        if mem.is_contiguous:
            mem.contiguous_slice(d_lo, d_hi - d_lo)[...] = data[: d_hi - d_lo]
            return
        from repro.core.ff_pack import ff_unpack

        ff_unpack(data, d_hi - d_lo, mem.buf, mem.count, mem.memtype, d_lo,
                  origin=mem.origin)


class _Buf:
    """A staging buffer: ``arr`` holds data bytes ``[d_lo, d_hi)``.

    ``zero_copy`` marks ``arr`` as a view of the user buffer itself, in
    which case scatter ops are no-ops (the data is already in place).
    """

    __slots__ = ("d_lo", "d_hi", "arr", "zero_copy")

    def __init__(self, d_lo: int, d_hi: int, arr: np.ndarray,
                 zero_copy: bool = False) -> None:
        self.d_lo = d_lo
        self.d_hi = d_hi
        self.arr = arr
        self.zero_copy = zero_copy


class Executor(Protocol):
    """Anything that can run an :class:`IOPlan`."""

    def run(self, plan: IOPlan, mem: Optional[MemDescriptor] = None,
            buffers: Optional[dict] = None) -> dict: ...


class PlanExecutor:
    """Shared op dispatch; subclasses supply the file primitives."""

    def __init__(self, codec=None, comm=None,
                 stats: Optional[PlanStats] = None,
                 phases: Optional[PhaseAccumulator] = None,
                 rounds: Optional[RoundLog] = None) -> None:
        self.codec = codec if codec is not None else KernelCodec()
        self.comm = comm
        self.stats = stats if stats is not None else PlanStats()
        #: Per-phase wall-time buckets this executor accumulates into
        #: (normally the owning engine's; see ``repro.obs.phases``).
        self.phases = phases if phases is not None else PhaseAccumulator()
        #: Per-round exchange/file_io decomposition of collectives.
        self.rounds = rounds if rounds is not None else RoundLog()
        #: File-offset translation of the plan currently running (set by
        #: :meth:`run` from its ``file_delta`` argument; 0 outside runs).
        self._fdelta = 0
        #: Offload worker for ``overlap`` file ops (threaded or
        #: deferred-apply, per backend — see :meth:`_make_worker`).
        #: Created lazily on the first ``overlap`` op, reused across
        #: plan runs, closed with the executor (:meth:`close`).
        self._worker = None
        #: Device-overlap model: perf_counter timestamp at which the
        #: simulated device finishes the offloaded ops absorbed so far.
        #: Device seconds still outstanding when a drain requires
        #: completion are charged to ``device_stall_seconds``; the rest
        #: were hidden behind main-thread CPU.
        self._dev_free_at = 0.0
        #: Completed prefetch jobs whose buffers are not yet published
        #: (their round hasn't drained — publishing early would clobber
        #: the buffers the current round's exchange is about to send).
        self._unpublished = []
        #: Async file seconds per round index, for rounds not yet closed.
        self._pending_async: Dict[int, float] = {}
        #: Inline-worker seconds to move out of ``file_io`` into
        #: ``pipeline_io`` at the next op-accounting point (the deferred
        #: worker runs jobs on this thread inside a ``file_io``-bucketed
        #: drain, so the raw bucket double-counts them).
        self._inline_comp = 0.0
        #: Live RoundLog rows of the current run, for back-filling
        #: ``file_io_async`` when an offloaded op completes after its
        #: round closed.
        self._round_rows: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # File primitives (backend-specific)
    # ------------------------------------------------------------------
    def _pread_into(self, offset: int, out: np.ndarray) -> int:
        raise NotImplementedError

    def _pwrite(self, offset: int, data: np.ndarray) -> None:
        raise NotImplementedError

    def _lock(self, lo: int, hi: int) -> None:
        raise NotImplementedError

    def _unlock(self, lo: int, hi: int) -> None:
        raise NotImplementedError

    def _device_cost(self, kind: str, offset: int, nbytes: int) -> float:
        """Simulated device seconds one file op costs (0 for backends
        without a device model — real devices are measured, not
        modelled)."""
        return 0.0

    # ------------------------------------------------------------------
    def run(self, plan: IOPlan, mem: Optional[MemDescriptor] = None,
            buffers: Optional[dict] = None, file_delta: int = 0) -> dict:
        """Execute ``plan``; returns the final staging-buffer table.

        ``mem`` is required when the plan contains gather/scatter ops.
        ``buffers`` seeds the staging table (used to hand the inbound
        payloads of one plan's exchange to a follow-up plan).
        ``file_delta`` translates every file offset the plan names —
        the replay fast path re-binds a cached relocatable plan to a
        period-translated access this way.
        """
        bufs: Dict[object, object] = dict(buffers) if buffers else {}
        held = []
        stats = self.stats
        phases = self.phases
        now = time.perf_counter
        cur_round = None
        self._fdelta = file_delta
        self._unpublished = []
        self._pending_async = {}
        self._round_rows = {}
        self._inline_comp = 0.0
        try:
            for op in plan.ops:
                t0 = now()
                if isinstance(op, RoundOp):
                    # Round marker: close the previous round's record,
                    # open the next.  The deltas of the exchange/file_io
                    # buckets over the round's span are its per-phase
                    # decomposition.
                    self._close_round(plan, cur_round, t0)
                    cur_round = (op.index, op.total, t0,
                                 phases.exchange, phases.file_io)
                    stats.executed_rounds += 1
                    stats.executed_ops += 1
                    continue
                if isinstance(op, GatherOp):
                    self._do_gather(plan, op, mem, bufs)
                    self._note_staging(bufs)
                    bucket = "pack"
                elif isinstance(op, ScatterOp):
                    self._do_scatter(plan, op, mem, bufs)
                    bucket = "unpack"
                elif isinstance(op, FileReadOp):
                    if op.overlap:
                        # No sync fallback here: an overlap read was
                        # hoisted ahead of the previous round's exchange,
                        # so executing it synchronously would publish its
                        # buffers early and corrupt that exchange.  The
                        # planner only marks offloadable reads.
                        if not self._can_offload(op):
                            raise IOEngineError(
                                "overlap read op carries deferred "
                                "pieces — planner contract violation"
                            )
                        self._submit_file_read(plan, op, cur_round, bufs)
                    else:
                        self._do_file_read(plan, op, mem, bufs)
                        self._note_staging(bufs)
                    bucket = "file_io"
                elif isinstance(op, FileWriteOp):
                    if op.overlap and self._can_offload(op):
                        self._submit_file_write(plan, op, cur_round, bufs)
                    else:
                        # Ordered path (rmw windows): every offloaded op
                        # must land before a synchronous file op runs.
                        if self._worker is not None:
                            self._drain_worker(plan, 0, cur_round, bufs)
                        self._do_file_write(plan, op, bufs)
                    bucket = "file_io"
                elif isinstance(op, DrainOp):
                    self._drain_worker(plan, op.keep, cur_round, bufs)
                    bucket = "file_io"
                elif isinstance(op, LockOp):
                    self._lock(op.lo + file_delta, op.hi + file_delta)
                    held.append((op.lo + file_delta, op.hi + file_delta))
                    stats.executed_locks += 1
                    bucket = "lock"
                elif isinstance(op, UnlockOp):
                    self._unlock(op.lo + file_delta, op.hi + file_delta)
                    held.remove((op.lo + file_delta, op.hi + file_delta))
                    bucket = "lock"
                elif isinstance(op, ExchangeOp):
                    self._do_exchange(plan, op, bufs,
                                      in_round=cur_round is not None)
                    self._note_staging(bufs)
                    stats.executed_exchanges += 1
                    bucket = "exchange"
                elif isinstance(op, ShipOp):
                    from repro.io import shipping

                    if op.write and self._worker is not None:
                        # Same ordering contract as synchronous writes:
                        # offloaded ops land before the shipped write.
                        self._drain_worker(plan, 0, cur_round, bufs)
                    shipping.execute_ship(
                        self, plan, op, mem, bufs,
                        cur_round[0] if cur_round is not None else -1,
                    )
                    self._note_staging(bufs)
                    bucket = "ship"
                else:
                    raise IOEngineError(f"unknown plan op {op!r}")
                stats.executed_ops += 1
                phases.add(bucket, now() - t0)
                comp = self._inline_comp
                if comp:
                    # Inline jobs ran on this thread inside the op just
                    # charged to ``file_io``; their seconds were credited
                    # to ``pipeline_io`` at absorb, so take them back out
                    # of ``file_io`` (clamped — never drive it negative).
                    self._inline_comp = 0.0
                    phases.add("file_io", -min(comp, phases.file_io))
                if trace.TRACE_ON:
                    trace.TRACER.add(
                        f"exec.{type(op).__name__}", t0, plan=plan.kind
                    )
        finally:
            self._fdelta = 0
            self._close_round(plan, cur_round, now())
            if self._worker is not None:
                self._finish_worker(plan, bufs)
            # A failing op must never leave byte-range locks behind
            # (other ranks would deadlock on their next sieved write).
            # ``held`` stores translated ranges, so release them as-is.
            for lo, hi in reversed(held):
                self._unlock(lo, hi)
        return bufs

    def _close_round(self, plan, state, t_end: float) -> None:
        if state is None:
            return
        index, total, t0, ex0, io0 = state
        phases = self.phases
        row = self.rounds.add(
            index, total, t_end - t0,
            phases.exchange - ex0, phases.file_io - io0,
            file_io_async=self._pending_async.pop(index, 0.0),
        )
        # Keep the row addressable: offloaded file ops of this round may
        # complete after it closes, and back-fill ``file_io_async``.
        self._round_rows[index] = row
        flight.note_round(index, total)
        if trace.TRACE_ON:
            trace.TRACER.add("aggregation.round", t0, index=index,
                             total=total, plan=plan.kind)

    def _note_staging(self, bufs) -> None:
        """Track the high-water mark of live staging/exchange bytes.

        Zero-copy views of the user buffer are free; everything else —
        gather outputs, inbound exchange payloads, reply buffers — is
        real staging memory.  The round-based collective keeps this
        bounded by O(cb_buffer_size × participating APs).
        """
        total = 0
        for buf in bufs.values():
            if isinstance(buf, _Buf):
                if not buf.zero_copy:
                    total += buf.arr.nbytes
            elif isinstance(buf, tuple) and len(buf) == 3:
                arr = buf[2]
                if isinstance(arr, np.ndarray):
                    total += arr.nbytes
        if total > self.stats.peak_staging_bytes:
            self.stats.peak_staging_bytes = total

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------
    def _ensure_buf(self, plan, slot, d_lo, d_hi, mem, bufs) -> _Buf:
        """Staging buffer covering ``[d_lo, d_hi)``, allocating if needed.

        The default ``STAGE`` slot of a contiguous memory descriptor is
        a zero-copy view of the user buffer itself.
        """
        buf = bufs.get(slot)
        if isinstance(buf, _Buf) and buf.d_lo <= d_lo and buf.d_hi >= d_hi:
            return buf
        if slot in plan.slots:
            d_lo, d_hi = plan.slots[slot]
        n = d_hi - d_lo
        if slot == STAGE and mem is not None and mem.is_contiguous:
            arr = mem.contiguous_slice(d_lo - plan.d0, n)
            buf = _Buf(d_lo, d_hi, arr, zero_copy=True)
        else:
            buf = _Buf(d_lo, d_hi, np.empty(n, dtype=np.uint8))
        bufs[slot] = buf
        return buf

    @staticmethod
    def _payload_view(bufs, piece: Piece) -> Tuple[np.ndarray, int, bool]:
        """``(array, base_data_offset, zero_copy)`` of a piece's slot."""
        buf = bufs.get(piece.slot)
        if isinstance(buf, _Buf):
            return buf.arr, buf.d_lo, buf.zero_copy
        if isinstance(buf, tuple) and len(buf) == 3:
            d_lo, _d_hi, arr = buf
            return arr, d_lo, False
        raise IOEngineError(
            f"plan references slot {piece.slot!r} with no usable buffer"
        )

    # ------------------------------------------------------------------
    # Pipelined (overlap) file ops.  Offloaded jobs go to one FIFO
    # worker per executor (``repro.plan.pipeline``) — a background
    # thread for real-I/O backends, deferred apply for the simulated
    # one: window reads prefetch into job-local buffers published at
    # DrainOp; assemble-mode writes capture their payload views at
    # submit time and assemble + write off the critical path.  Jobs use
    # the raw ``_pread_into``/``_pwrite`` primitives with the file
    # delta captured at submit — the counted shims and all shared
    # counters stay single-writer on the main thread (merged at drain).
    # ------------------------------------------------------------------
    @staticmethod
    def _can_offload(op) -> bool:
        """Deferred (``blocks=None``) pieces stream through engine codec
        state of unknown thread-safety — keep those synchronous.  Round
        plans always materialize blocks, so this never fires for them."""
        return all(p.blocks is not None for p in op.pieces)

    def _make_worker(self):
        """The offload mechanism for this backend: a real thread.  The
        POSIX primitives block in actual I/O (releasing the GIL), so a
        background thread buys genuine concurrency."""
        return PipelineWorker()

    def _ensure_worker(self):
        if self._worker is None:
            self._worker = self._make_worker()
        return self._worker

    @staticmethod
    def _prepare_blocks(blocks, progs: bool) -> None:
        """Force the block spec's memoized artifacts into existence on
        the main thread, so the worker only ever reads them."""
        if progs:
            if isinstance(blocks, Blocks):
                blockprog.program_for_blocks(blocks)
            elif isinstance(blocks, TupleBlocks):
                tuple_arrays(blocks)

    def _submit_file_read(self, plan, op: FileReadOp, cur_round,
                          bufs) -> None:
        worker = self._ensure_worker()
        pread = self._pread_into
        fdelta = self._fdelta
        lo, hi = op.lo, op.hi
        progs = blockprog.enabled()
        publishes = []
        targets = []
        for piece in op.pieces:
            self._prepare_blocks(piece.blocks, progs)
            buf = _Buf(piece.d_lo, piece.d_hi,
                       np.empty(piece.d_hi - piece.d_lo, dtype=np.uint8))
            publishes.append((piece.slot, buf))
            targets.append((piece, buf))
        dense = (
            len(op.pieces) == 1
            and isinstance(op.pieces[0].blocks, Blocks)
            and op.pieces[0].blocks.count == 1
            and op.pieces[0].blocks.nbytes == hi - lo
        )

        def job_read():
            if dense:
                arr = targets[0][1].arr
                got = pread(lo + fdelta, arr)
                if got < arr.size:
                    arr[got:] = 0
                return
            fb = np.zeros(hi - lo, dtype=np.uint8)
            pread(lo + fdelta, fb)
            for piece, buf in targets:
                DataPlane.gather(fb, lo, piece.blocks, buf.arr,
                                 piece.d_lo - buf.d_lo, progs)

        rnd = op.round
        if rnd < 0:
            rnd = cur_round[0] if cur_round is not None else -1
        worker.submit(FileJob(
            job_read, "read", rnd,
            hi - lo, publishes=publishes, nreads=1,
            dev_seconds=self._device_cost("read", lo + fdelta, hi - lo),
        ))
        self.stats.pipelined_file_ops += 1

    def _submit_file_write(self, plan, op: FileWriteOp, cur_round,
                           bufs) -> None:
        worker = self._ensure_worker()
        # Double buffer: at most one window in flight behind this one.
        self._drain_worker(plan, 1, cur_round, bufs)
        pwrite = self._pwrite
        fdelta = self._fdelta
        lo, hi = op.lo, op.hi
        progs = blockprog.enabled()
        views = []
        for piece in op.pieces:
            self._prepare_blocks(piece.blocks, progs)
            arr, base, _zc = self._payload_view(bufs, piece)
            views.append((piece, arr, base))

        def job_write():
            fb = np.empty(hi - lo, dtype=np.uint8)
            for piece, arr, base in views:
                DataPlane.scatter(fb, lo, piece.blocks, arr,
                                  piece.d_lo - base, progs)
            pwrite(lo + fdelta, fb)

        worker.submit(FileJob(
            job_write, "write",
            cur_round[0] if cur_round is not None else -1,
            hi - lo, nwrites=1,
            dev_seconds=self._device_cost("write", lo + fdelta, hi - lo),
        ))
        self.stats.pipelined_file_ops += 1

    def _drain_worker(self, plan, keep: int, cur_round, bufs) -> None:
        worker = self._worker
        if worker is None:
            return
        t0 = time.perf_counter()
        done = worker.drain(keep)
        self.stats.pipeline_wait_seconds += time.perf_counter() - t0
        self._absorb_jobs(plan, done,
                          cur_round[0] if cur_round is not None else None,
                          bufs, complete=keep == 0)

    def _absorb_jobs(self, plan, done, cur_index, bufs,
                     complete: bool = False) -> None:
        """Merge completed jobs' accounting and publish their buffers.

        Publication is held back for jobs of rounds *after* the current
        one (a prefetch that finished early): their buffers reuse the
        per-peer slot keys, so publishing before the current round's
        exchange has read those slots would clobber its payloads.

        ``complete`` marks a drain whose caller needs the absorbed ops
        *finished* (published reads, a drain-to-zero before ordered
        writes, the end-of-plan drain): any simulated device time still
        outstanding at that point was not hidden and is charged to
        ``device_stall_seconds``.
        """
        stats = self.stats
        w = self._worker
        inline = w is not None and w.inline
        for job in done:
            stats.pipeline_file_seconds += job.seconds
            # Worker file time gets its own phase bucket.  Threaded
            # workers genuinely overlap the main thread, so this is new
            # time; inline (deferred) jobs ran inside a ``file_io``-
            # bucketed drain and are *moved* via ``_inline_comp``.
            self.phases.add("pipeline_io", job.seconds)
            if inline:
                self._inline_comp += job.seconds
            stats.executed_file_reads += job.nreads
            stats.executed_file_writes += job.nwrites
            if job.dev_seconds:
                # The device starts an offloaded op when it is issued
                # (no earlier than the previous op finishing) and works
                # it off concurrently with main-thread CPU.
                start = job.t_issue if job.t_issue > self._dev_free_at \
                    else self._dev_free_at
                self._dev_free_at = start + job.dev_seconds
                stats.device_async_seconds += job.dev_seconds
            row = self._round_rows.get(job.round_index)
            if row is not None:
                row["file_io_async"] += job.seconds
            elif job.round_index >= 0:
                self._pending_async[job.round_index] = (
                    self._pending_async.get(job.round_index, 0.0)
                    + job.seconds
                )
            if trace.TRACE_ON:
                trace.TRACER.add(
                    f"exec.async.{job.kind}", job.t0, job.t1,
                    round=job.round_index, plan=plan.kind,
                )
        pending = self._unpublished + [j for j in done if j.publishes]
        self._unpublished = []
        published = False
        for job in pending:
            if cur_index is not None and job.round_index > cur_index:
                self._unpublished.append(job)
                continue
            for slot, buf in job.publishes:
                bufs[slot] = buf
                published = True
        if published:
            self._note_staging(bufs)
        if complete or published:
            now_t = time.perf_counter()
            if self._dev_free_at > now_t:
                stats.device_stall_seconds += self._dev_free_at - now_t
                self._dev_free_at = now_t
        if self._worker is not None:
            peak = self._worker.peak_inflight_bytes
            if peak > stats.pipeline_inflight_peak_bytes:
                stats.pipeline_inflight_peak_bytes = peak

    def _finish_worker(self, plan, bufs) -> None:
        """Settle the worker at run end (from ``run``'s ``finally``).

        On the normal path the plan's final ``DrainOp(0)`` already
        drained everything, so this is a cheap no-op drain — the thread
        is kept for the next plan run (see :meth:`close`).  On the abort
        path (an exception is propagating, or the drain itself surfaces
        a worker error) the worker is closed and discarded so a broken
        pipeline never leaks into the next run; its error is swallowed
        when another exception is already propagating, so it cannot mask
        the primary failure.  The close cannot hang because jobs only do
        rank-local file work.
        """
        worker = self._worker
        if sys.exc_info()[0] is not None:
            self._worker = None
            done = worker.close(raise_error=False)
        else:
            try:
                done = worker.drain(0)
            except BaseException:
                self._worker = None
                worker.close(raise_error=False)
                raise
        self._absorb_jobs(plan, done, None, bufs, complete=True)
        peak = worker.peak_inflight_bytes
        if peak > self.stats.pipeline_inflight_peak_bytes:
            self.stats.pipeline_inflight_peak_bytes = peak
        self._unpublished = []
        # Jobs absorbed here ran outside any op's timed window, so there
        # is no double-counted ``file_io`` to compensate — drop it.
        self._inline_comp = 0.0

    def close(self) -> None:
        """Release executor resources (the background worker's thread).

        Called when the owning file handle closes; safe to call more
        than once or without a worker ever having been created."""
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.close(raise_error=False)

    # ------------------------------------------------------------------
    # Op implementations
    # ------------------------------------------------------------------
    def _do_gather(self, plan, op: GatherOp, mem, bufs) -> None:
        if mem is None:
            raise IOEngineError("gather op in a plan run without memory")
        n = op.d_hi - op.d_lo
        rel = op.d_lo - plan.d0
        if op.slot == STAGE and mem.is_contiguous:
            bufs[op.slot] = _Buf(
                op.d_lo, op.d_hi, mem.contiguous_slice(rel, n),
                zero_copy=True,
            )
            return
        arr = np.empty(n, dtype=np.uint8)
        self.codec.pack_mem(mem, rel, rel + n, arr)
        bufs[op.slot] = _Buf(op.d_lo, op.d_hi, arr)

    def _do_scatter(self, plan, op: ScatterOp, mem, bufs) -> None:
        if mem is None:
            raise IOEngineError("scatter op in a plan run without memory")
        buf = bufs.get(op.slot)
        if isinstance(buf, _Buf):
            if buf.zero_copy:
                return  # data already landed in the user buffer
            arr, base = buf.arr, buf.d_lo
        elif isinstance(buf, tuple) and len(buf) == 3:
            base, _d_hi, arr = buf
        else:
            raise IOEngineError(
                f"scatter from slot {op.slot!r} with no usable buffer"
            )
        rel = op.d_lo - plan.d0
        data = arr[op.d_lo - base : op.d_hi - base]
        self.codec.unpack_mem(mem, rel, rel + (op.d_hi - op.d_lo), data)

    # -- file reads ----------------------------------------------------
    def _do_file_read(self, plan, op: FileReadOp, mem, bufs) -> None:
        if op.mode == "direct":
            for piece in op.pieces:
                self._read_piece_direct(plan, op, piece, mem, bufs)
            return
        # Window mode: one file buffer per coalesced window.  A single
        # piece whose blocks are one full-window run reads straight into
        # its staging buffer (the dense fast path: no extra copy).
        if (
            len(op.pieces) == 1
            and isinstance(op.pieces[0].blocks, Blocks)
            and op.pieces[0].blocks.count == 1
            and op.pieces[0].blocks.nbytes == op.hi - op.lo
        ):
            self._read_piece_direct(plan, op, op.pieces[0], mem, bufs)
            return
        fb = read_window(self, op.lo, op.hi)
        progs = blockprog.enabled()
        for piece in op.pieces:
            buf = self._ensure_buf(
                plan, piece.slot, piece.d_lo, piece.d_hi, mem, bufs
            )
            pos = piece.d_lo - buf.d_lo
            if piece.blocks is not None:
                DataPlane.gather(
                    fb, op.lo, piece.blocks, buf.arr, pos, progs
                )
            else:
                self.codec.stream_gather_window(
                    fb, op.lo, op.hi, buf.arr, buf.d_lo, buf.d_hi
                )

    def _read_piece_direct(self, plan, op, piece: Piece, mem, bufs) -> None:
        buf = self._ensure_buf(
            plan, piece.slot, piece.d_lo, piece.d_hi, mem, bufs
        )
        blocks = piece.blocks
        if blocks is None:
            self.codec.stream_read_blocks(
                self, op.lo, op.hi, buf.arr, buf.d_lo, buf.d_hi
            )
            return
        pos = piece.d_lo - buf.d_lo
        offs, lens = block_lists(blocks)
        for o, ln in zip(offs, lens):
            got = self.pread_into(o, buf.arr[pos : pos + ln])
            if got < ln:
                if op.strict:
                    raise IOEngineError(
                        f"short read: {got} of {ln} bytes at {o}"
                    )
                buf.arr[pos + got : pos + ln] = 0
            pos += ln

    # -- file writes ---------------------------------------------------
    def _do_file_write(self, plan, op: FileWriteOp, bufs) -> None:
        if op.mode == "direct":
            for piece in op.pieces:
                self._write_piece_direct(op, piece, bufs)
            return
        if op.mode == "assemble":
            fb = np.empty(op.hi - op.lo, dtype=np.uint8)
        else:  # rmw: pre-read the window, overlay, write back
            fb = read_window(self, op.lo, op.hi)
        scattered = 0
        progs = blockprog.enabled()
        for piece in op.pieces:
            arr, base, _zc = self._payload_view(bufs, piece)
            pos = piece.d_lo - base
            if piece.blocks is not None:
                scattered += DataPlane.scatter(
                    fb, op.lo, piece.blocks, arr, pos, progs
                )
            else:
                scattered += self.codec.stream_scatter_window(
                    fb, op.lo, op.hi, arr, base, piece.d_hi
                )
        if scattered or op.mode == "assemble":
            self.pwrite(op.lo, fb)

    def _write_piece_direct(self, op, piece: Piece, bufs) -> None:
        arr, base, _zc = self._payload_view(bufs, piece)
        blocks = piece.blocks
        if blocks is None:
            self.codec.stream_write_blocks(
                self, op.lo, op.hi, arr, base, piece.d_hi
            )
            return
        pos = piece.d_lo - base
        offs, lens = block_lists(blocks)
        for o, ln in zip(offs, lens):
            self.pwrite(o, arr[pos : pos + ln])
            pos += ln

    # -- exchange ------------------------------------------------------
    def _do_exchange(self, plan, op: ExchangeOp, bufs,
                     in_round: bool = False) -> None:
        if op.mode == "p2p":
            # Relaxed round synchronization: only the (AP, IOP) pairs the
            # metadata proves move bytes communicate; a round with nothing
            # to send or receive skips the network entirely.
            if not op.sends and not op.recvs:
                return
            if self.comm is None:
                raise IOEngineError(
                    "plan contains an exchange op but the executor has no "
                    "communicator"
                )
            from repro.io.two_phase import exchange_p2p

            outbound = {}
            for send in op.sends:
                outbound[send.rank] = self._payload_for(send, bufs)
            inbound = exchange_p2p(self.comm, outbound, op.recvs, op.tag)
            for src, item in inbound.items():
                if item is not None:
                    bufs[in_slot(src)] = item
            return
        if self.comm is None:
            raise IOEngineError(
                "plan contains an exchange op but the executor has no "
                "communicator"
            )
        from repro.io.two_phase import exchange

        outbound = [None] * self.comm.size
        for send in op.sends:
            outbound[send.rank] = self._payload_for(send, bufs)
        inbound = exchange(self.comm, outbound)
        if (in_round and not op.sends
                and all(item is None for item in inbound)):
            # This rank synchronized a round it moved no bytes in — the
            # cost the relaxed p2p exchange exists to eliminate.
            self.stats.rounds_idle_synced += 1
        for src, item in enumerate(inbound):
            if item is not None:
                bufs[in_slot(src)] = item

    def _payload_for(self, send: Send, bufs):
        if send.slot is not None:
            buf = bufs.get(send.slot)
            if isinstance(buf, _Buf):
                return (buf.d_lo, buf.d_hi, buf.arr)
            return buf
        return (send.ol, send.d_lo)

    # ------------------------------------------------------------------
    # Counted file access shims.  ``pread_into`` doubles as the SimFile
    # interface expected by :func:`repro.io.sieving.read_window`, and
    # deferred-piece codecs call them to stream blocks (``file.pwrite``
    # in ``stream_write_blocks``, for example).  The running plan's
    # ``file_delta`` applies here, so every file access of a replayed
    # plan — windows, direct blocks, streamed blocks — lands translated.
    # ------------------------------------------------------------------
    def pread_into(self, offset: int, out: np.ndarray) -> int:
        n = self._pread_into(offset + self._fdelta, out)
        self.stats.executed_file_reads += 1
        self.stats.device_sync_seconds += self._device_cost(
            "read", offset + self._fdelta, n
        )
        return n

    def pwrite(self, offset: int, data: np.ndarray):
        self.stats.executed_file_writes += 1
        self.stats.device_sync_seconds += self._device_cost(
            "write", offset + self._fdelta, data.nbytes
        )
        return self._pwrite(offset + self._fdelta, data)


class SimFileExecutor(PlanExecutor):
    """Executor over the simulated parallel file system."""

    def __init__(self, simfile, codec=None, comm=None, stats=None,
                 phases=None, rounds=None) -> None:
        super().__init__(codec=codec, comm=comm, stats=stats,
                         phases=phases, rounds=rounds)
        self.simfile = simfile

    def _pread_into(self, offset, out):
        return self.simfile.pread_into(offset, out)

    def _pwrite(self, offset, data):
        return self.simfile.pwrite(offset, data)

    def _lock(self, lo, hi):
        self.simfile.lock_range(lo, hi)

    def _unlock(self, lo, hi):
        self.simfile.unlock_range(lo, hi)

    def _device_cost(self, kind, offset, nbytes):
        f = self.simfile
        streams = f.striping.streams_for(offset, nbytes)
        if kind == "read":
            return f.device.read_time(nbytes, streams)
        return f.device.write_time(nbytes, streams)

    def _make_worker(self):
        """Deferred apply, not a thread: the simulated backend's file
        primitives are microsecond memcpys plus *simulated* device
        seconds, so a thread would add handoff/GIL cost while hiding
        nothing.  The device-overlap model (``_absorb_jobs``) expresses
        the concurrency instead, from each job's issue time."""
        return DeferredWorker()


class PosixExecutor(PlanExecutor):
    """Executor over a :class:`~repro.fs.posix.PosixFile` handle.

    Demonstrates plan portability: the very ops an engine emits against
    the simulated MPI-IO backend run unchanged against the cursor-based
    POSIX baseline interface.
    """

    def __init__(self, posix_file, codec=None, comm=None,
                 stats=None, phases=None, rounds=None) -> None:
        super().__init__(codec=codec, comm=comm, stats=stats,
                         phases=phases, rounds=rounds)
        self.file = posix_file

    def _pread_into(self, offset, out):
        return self.file.pread_into(offset, out)

    def _pwrite(self, offset, data):
        return self.file.pwrite(offset, data)

    def _lock(self, lo, hi):
        self.file.lock_range(lo, hi)

    def _unlock(self, lo, hi):
        self.file.unlock_range(lo, hi)

"""Background file-I/O workers for pipelined collective rounds.

The pipelined plan shape (``docs/collective.md``) overlaps round *N*'s
file access with round *N+1*'s pack/exchange.  The executor offloads
pipeline-eligible (``overlap``) file ops to a worker with a common
submit/drain contract; two implementations divide the backends:

:class:`PipelineWorker`
    one FIFO background thread — for backends whose file primitives do
    real blocking I/O that releases the GIL (the POSIX executor), where
    a thread buys genuine concurrency;
:class:`DeferredWorker`
    deferred apply on the submitting thread — for the simulated file
    system, whose "I/O" is a microsecond memcpy plus *simulated* device
    seconds.  Threading that would add handoff and GIL-contention cost
    while hiding nothing; instead the op is *issued* at submit (the
    simulated device starts working it off then — see the executor's
    device-overlap model) and the memcpy is applied at the next drain.

Design constraints both workers uphold:

*Ordering.*  A single FIFO thread executes jobs strictly in submission
order — a rank's windows are submitted in round order, so file ops per
IOP stay sequenced by round even though they run off the critical path.

*Publication at drain.*  Jobs never touch the executor's shared staging
table: a read job fills job-local buffers which the *main* thread
publishes when it drains (:class:`~repro.plan.ops.DrainOp`).  The live
staging table therefore holds exactly the serial plan's buffers at
every accounting point, keeping ``peak_staging_bytes`` — the staging
bound the round-based collective exists to enforce — literally
unchanged; the extra in-flight window is tracked separately
(``pipeline_inflight_peak_bytes``).

*Prompt failure.*  Jobs only do rank-local file work (no communication),
so they always terminate; the first job error is captured, the queue is
cleared, and the next drain re-raises it on the main thread — a rank
dying mid-pipeline surfaces through the runtime's usual abort paths
without the drain ever blocking on a dead peer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs import trace

__all__ = ["FileJob", "PipelineWorker", "DeferredWorker"]


def _stamp_submit(job: "FileJob") -> None:
    """Stamp the causal ``submit`` edge for an offloaded job (no-op when
    tracing is off).  The matching ``complete`` edge is stamped where
    the job finishes running; :mod:`repro.obs.causal` pairs them by the
    ``("pipe", rank, seq)`` key."""
    if not trace.TRACE_ON:
        return
    job.rank = trace._current_rank()
    job.seq = trace.TRACER.seq(("p", job.rank))
    trace.add_edge("submit", ("pipe", job.rank, job.seq),
                   t0=job.t_issue, t1=job.t_issue)


def _stamp_complete(job: "FileJob") -> None:
    """Stamp the ``complete`` edge once the job has run.  May execute on
    the background worker thread: the rank comes from the job (stamped
    at submit), not the calling thread, and ``sid`` is pinned to -1 —
    the worker thread has no live span of the owning rank."""
    if job.seq < 0 or not trace.TRACE_ON:
        return
    trace.TRACER.edge("complete", ("pipe", job.rank, job.seq),
                      t0=job.t0, t1=job.t1, rank=job.rank, sid=-1)


class FileJob:
    """One offloaded file op: a closure plus its accounting metadata.

    ``publishes`` maps staging slots to the buffers the job fills
    (reads) — applied to the plan's staging table by the main thread at
    drain time.  ``round_index`` attributes the job's seconds to its
    :class:`~repro.obs.phases.RoundLog` row; ``nreads``/``nwrites`` are
    the file accesses the closure performs (merged into executor stats
    at drain, so the counters stay single-writer).
    """

    __slots__ = ("run", "kind", "round_index", "nbytes", "publishes",
                 "nreads", "nwrites", "dev_seconds", "seconds",
                 "t_issue", "t0", "t1", "seq", "rank")

    def __init__(self, run: Callable[[], None], kind: str,
                 round_index: int, nbytes: int,
                 publishes: Sequence[Tuple[object, object]] = (),
                 nreads: int = 0, nwrites: int = 0,
                 dev_seconds: float = 0.0) -> None:
        self.run = run
        self.kind = kind
        self.round_index = round_index
        self.nbytes = nbytes
        self.publishes = tuple(publishes)
        self.nreads = nreads
        self.nwrites = nwrites
        #: simulated device seconds this op costs (fed to the executor's
        #: device-overlap model when the job is absorbed)
        self.dev_seconds = dev_seconds
        self.seconds = 0.0
        #: perf_counter at submit — when the (simulated) device can
        #: start the op; stamped by the worker's ``submit``
        self.t_issue = 0.0
        self.t0 = 0.0
        self.t1 = 0.0
        #: causal-edge identity, stamped at submit when tracing is on:
        #: the n-th job submitted by ``rank`` (-1 = untraced)
        self.seq = -1
        self.rank = -1


class PipelineWorker:
    """One FIFO background thread executing :class:`FileJob`\\ s.

    Created lazily by the executor on the first ``overlap`` op and kept
    across plan runs (spawning a thread per collective would eat the
    overlap win); the executor closes it with the owning file handle, or
    discards it after an abort.  All public methods are called from the
    owning rank's thread only; the worker thread touches nothing but the
    jobs handed to it.
    """

    #: jobs run concurrently with the submitting thread — their seconds
    #: are genuine overlap, not time carved out of the round wall
    #: (see the executor's ``pipeline_io`` phase attribution)
    inline = False

    def __init__(self, name: str = "io-pipeline") -> None:
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._done: deque = deque()
        self._error: Optional[BaseException] = None
        self._stop = False
        #: jobs submitted but not yet completed (queued + running)
        self.inflight = 0
        self._inflight_bytes = 0
        #: high-water mark of in-flight job buffer bytes
        self.peak_inflight_bytes = 0
        self._thread = threading.Thread(
            target=self._loop, name=name, daemon=True
        )
        self._thread.start()

    # -- main-thread API -----------------------------------------------
    def submit(self, job: FileJob) -> None:
        job.t_issue = time.perf_counter()
        _stamp_submit(job)
        with self._cond:
            if self._error is not None:
                # The pipeline is already broken; surface it instead of
                # queueing work that would never matter.
                raise self._error
            self._queue.append(job)
            self.inflight += 1
            self._inflight_bytes += job.nbytes
            if self._inflight_bytes > self.peak_inflight_bytes:
                self.peak_inflight_bytes = self._inflight_bytes
            self._cond.notify_all()

    def drain(self, keep: int = 0) -> List[FileJob]:
        """Wait until at most ``keep`` jobs remain in flight; returns
        every completed job since the last drain (in completion order).
        Re-raises the first job error on this (the main) thread."""
        t_wait = time.perf_counter() if trace.TRACE_ON else 0.0
        with self._cond:
            while self.inflight > keep and self._error is None:
                self._cond.wait()
            if self._error is not None:
                raise self._error
            out = list(self._done)
            self._done.clear()
        # The drain edge names the last completed job as the cause of
        # this wait (a pipeline stall, in wait-attribution terms).
        if trace.TRACE_ON and out and out[-1].seq >= 0:
            trace.add_edge("drain", ("pipe", out[-1].rank, out[-1].seq),
                           t0=t_wait)
        return out

    def close(self, raise_error: bool = True) -> List[FileJob]:
        """Drain fully, stop the thread and join it.

        ``raise_error=False`` is the abort path (an exception is already
        propagating on the main thread): completed jobs are still
        returned for accounting, the worker error — if any — is
        swallowed so it cannot mask the primary failure.
        """
        with self._cond:
            while self.inflight > 0 and self._error is None:
                self._cond.wait()
            self._stop = True
            self._cond.notify_all()
            out = list(self._done)
            self._done.clear()
            err = self._error
        self._thread.join()
        if err is not None and raise_error:
            raise err
        return out

    # -- worker thread --------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if not self._queue:
                    return  # stopped and drained
                job = self._queue.popleft()
            t0 = time.perf_counter()
            exc: Optional[BaseException] = None
            try:
                job.run()
            except BaseException as e:  # noqa: BLE001 - re-raised at drain
                exc = e
            t1 = time.perf_counter()
            job.t0, job.t1 = t0, t1
            job.seconds = t1 - t0
            _stamp_complete(job)
            with self._cond:
                self.inflight -= 1
                self._inflight_bytes -= job.nbytes
                if exc is not None and self._error is None:
                    # First failure wins; abandon queued work so the
                    # pipeline aborts promptly instead of grinding on.
                    self._error = exc
                    for dropped in self._queue:
                        self.inflight -= 1
                        self._inflight_bytes -= dropped.nbytes
                    self._queue.clear()
                elif exc is None:
                    self._done.append(job)
                self._cond.notify_all()


class DeferredWorker:
    """Deferred-apply twin of :class:`PipelineWorker` (no thread).

    Jobs are queued at submit — the point at which the *simulated*
    device starts working them off, per ``FileJob.t_issue`` — and their
    actual byte work (a memcpy against the in-memory file) is applied
    in FIFO order on the calling thread at the next :meth:`drain`.
    Everything about the contract matches the threaded worker: FIFO
    ordering, publication at drain, the first job error clears the
    queue and re-raises at drain, ``close`` without ``raise_error``
    discards queued work on the abort path.
    """

    #: jobs run *on the submitting thread* at drain — their seconds are
    #: already inside the round wall, so the executor moves them out of
    #: ``file_io`` into ``pipeline_io`` instead of double-counting
    inline = True

    def __init__(self, name: str = "io-deferred") -> None:
        self._queue: deque = deque()
        self._done: List[FileJob] = []
        self._error: Optional[BaseException] = None
        #: jobs submitted but not yet applied
        self.inflight = 0
        self._inflight_bytes = 0
        #: high-water mark of in-flight job buffer bytes
        self.peak_inflight_bytes = 0

    def submit(self, job: FileJob) -> None:
        if self._error is not None:
            raise self._error
        job.t_issue = time.perf_counter()
        _stamp_submit(job)
        self._queue.append(job)
        self.inflight += 1
        self._inflight_bytes += job.nbytes
        if self._inflight_bytes > self.peak_inflight_bytes:
            self.peak_inflight_bytes = self._inflight_bytes

    def _apply(self, job: FileJob) -> None:
        t0 = time.perf_counter()
        try:
            job.run()
        except BaseException as e:  # noqa: BLE001 - re-raised by caller
            self._error = e
            self.inflight = 0
            self._inflight_bytes = 0
            self._queue.clear()
            raise
        finally:
            t1 = time.perf_counter()
            job.t0, job.t1 = t0, t1
            job.seconds = t1 - t0
        _stamp_complete(job)
        self.inflight -= 1
        self._inflight_bytes -= job.nbytes
        self._done.append(job)

    def drain(self, keep: int = 0) -> List[FileJob]:
        """Apply queued jobs until at most ``keep`` remain; returns the
        jobs completed since the last drain.  Raises the first job
        error (queued work is dropped, matching the threaded worker)."""
        if self._error is not None:
            raise self._error
        while self.inflight > keep:
            self._apply(self._queue.popleft())
        out = self._done
        self._done = []
        return out

    def close(self, raise_error: bool = True) -> List[FileJob]:
        """Drain fully (normal path) or drop queued work (abort path:
        ``raise_error=False`` — an exception is already propagating, so
        unapplied deferred writes must not land)."""
        if raise_error:
            return self.drain(0)
        self._queue.clear()
        self.inflight = 0
        self._inflight_bytes = 0
        out = self._done
        self._done = []
        return out

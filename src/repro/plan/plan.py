"""The declarative I/O plan.

An :class:`IOPlan` records everything one access will do — as data, not
as control flow.  Plans are immutable once built, cheap to introspect
(``describe()`` renders the full op list for ``repro.cli plan-dump``)
and replayable: executing a plan twice against the same file and
equivalent memory descriptors moves the same bytes twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.plan.ops import (
    DrainOp,
    ExchangeOp,
    FileReadOp,
    FileWriteOp,
    GatherOp,
    LockOp,
    PlanOp,
    RoundOp,
    ScatterOp,
)

__all__ = ["IOPlan"]


@dataclass(frozen=True)
class IOPlan:
    """An ordered, typed program for one I/O access.

    ``kind``
        ``"read"`` / ``"write"`` plus ``"independent"`` / ``"collective"``
        — informational, used by pretty-printing and stats.
    ``d0`` / ``nbytes``
        the access' starting view-data offset and size; gather/scatter
        ops translate their absolute data ranges to memory offsets
        relative to ``d0``.
    ``slots``
        data ranges ``slot -> (d_lo, d_hi)`` of staging/exchange buffers
        the executor may need to allocate before any op fills them
        (collective-read reply buffers, for example).
    ``signature``
        the planner cache key this plan was stored under, or ``None``
        for uncacheable plans.
    """

    kind: str
    d0: int
    nbytes: int
    ops: Tuple[PlanOp, ...]
    slots: Dict[object, Tuple[int, int]] = field(default_factory=dict)
    signature: Optional[tuple] = None
    planned_windows: int = 0
    coalesced_bytes: int = 0

    @property
    def is_write(self) -> bool:
        return "write" in self.kind

    def __len__(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Op counts by category (for stats and tests)."""
        out = {
            "gather": 0, "scatter": 0, "file_read": 0, "file_write": 0,
            "lock": 0, "exchange": 0, "round": 0, "drain": 0, "other": 0,
        }
        for op in self.ops:
            if isinstance(op, GatherOp):
                out["gather"] += 1
            elif isinstance(op, ScatterOp):
                out["scatter"] += 1
            elif isinstance(op, FileReadOp):
                out["file_read"] += 1
            elif isinstance(op, FileWriteOp):
                out["file_write"] += 1
            elif isinstance(op, LockOp):
                out["lock"] += 1
            elif isinstance(op, ExchangeOp):
                out["exchange"] += 1
            elif isinstance(op, RoundOp):
                out["round"] += 1
            elif isinstance(op, DrainOp):
                out["drain"] += 1
            else:
                out["other"] += 1
        return out

    def describe(self) -> str:
        """Multi-line rendering of the plan (``repro.cli plan-dump``)."""
        head = (
            f"IOPlan kind={self.kind} d0={self.d0} nbytes={self.nbytes} "
            f"ops={len(self.ops)} windows={self.planned_windows} "
            f"coalesced={self.coalesced_bytes}B "
            f"cached={'yes' if self.signature is not None else 'no'}"
        )
        lines = [head]
        for slot, (d_lo, d_hi) in self.slots.items():
            lines.append(f"  slot {slot!r}: data [{d_lo}, {d_hi})")
        for i, op in enumerate(self.ops):
            lines.append(f"  [{i:3d}] {op.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<IOPlan {self.kind} d0={self.d0} nbytes={self.nbytes} "
            f"ops={len(self.ops)}>"
        )

"""The explicit I/O plan layer: plan → optimize → execute.

Every access in the simulation is first *planned* — turned into a
declarative :class:`~repro.plan.plan.IOPlan` of typed ops — then handed
to an :class:`~repro.plan.executor.Executor` that runs it against a
backend.  See ``docs/planning.md``.
"""

from repro.plan.executor import (
    Executor,
    KernelCodec,
    MemCodec,
    PlanExecutor,
    PosixExecutor,
    SimFileExecutor,
)
from repro.plan.ops import (
    STAGE,
    Blocks,
    ExchangeOp,
    FileReadOp,
    FileWriteOp,
    GatherOp,
    LockOp,
    Piece,
    PlanOp,
    ScatterOp,
    Send,
    TupleBlocks,
    UnlockOp,
    in_slot,
    out_slot,
)
from repro.plan.plan import IOPlan
from repro.plan.planner import Planner
from repro.plan.stats import PlanStats

__all__ = [
    "IOPlan",
    "Planner",
    "PlanStats",
    "Executor",
    "PlanExecutor",
    "SimFileExecutor",
    "PosixExecutor",
    "MemCodec",
    "KernelCodec",
    "PlanOp",
    "GatherOp",
    "ScatterOp",
    "LockOp",
    "UnlockOp",
    "FileReadOp",
    "FileWriteOp",
    "ExchangeOp",
    "Send",
    "Piece",
    "Blocks",
    "TupleBlocks",
    "STAGE",
    "in_slot",
    "out_slot",
]

"""Counters for the plan layer.

One :class:`PlanStats` instance is shared by a planner/executor pair and
surfaced through the owning engine's stats snapshot, so every access
reports how it was planned (windows, coalescing, cache behavior) next to
the engine's own §2.4 overhead counters.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlanStats"]


@dataclass
class PlanStats:
    """Plan-layer counters for one (rank, open file)."""

    #: plans built from scratch (planner cache misses + uncacheable)
    plans_built: int = 0
    #: plans served from the LRU cache
    plan_cache_hits: int = 0
    #: cacheable plan lookups that missed
    plan_cache_misses: int = 0
    #: accesses served by the replay fast path (a relocatable whole-
    #: access plan re-bound by a scalar file translation — planner entry
    #: skipped entirely; also counted in ``plan_cache_hits``)
    plan_replays: int = 0
    #: coalesced file windows planned (window-mode file ops)
    planned_windows: int = 0
    #: total ops across built plans
    planned_ops: int = 0
    #: bytes whose file accesses were merged by block coalescing
    coalesced_bytes: int = 0
    #: ops executed (every run, cached plans included)
    executed_ops: int = 0
    #: file read accesses issued by the executor
    executed_file_reads: int = 0
    #: file write accesses issued by the executor
    executed_file_writes: int = 0
    #: byte-range locks taken by the executor
    executed_locks: int = 0
    #: alltoall exchanges performed by the executor
    executed_exchanges: int = 0
    #: aggregation rounds executed (RoundOp markers seen)
    executed_rounds: int = 0
    #: high-water mark of live staging/exchange buffer bytes during any
    #: plan run (the O(cb_buffer_size × APs) memory bound of the
    #: round-based collective shows up here)
    peak_staging_bytes: int = 0
    #: rounds whose synchronizing alltoall this rank joined while moving
    #: no bytes at all (empty window, nothing sent, nothing received) —
    #: the barrier cost the relaxed p2p path eliminates
    rounds_idle_synced: int = 0
    #: file ops completed on the pipeline's background worker
    pipelined_file_ops: int = 0
    #: seconds the background worker spent inside offloaded file ops
    #: (overlapped with exchange/pack time on the main thread)
    pipeline_file_seconds: float = 0.0
    #: seconds the main thread blocked waiting on the worker (drain +
    #: double-buffer capacity waits) — overlap the pipeline did NOT win
    pipeline_wait_seconds: float = 0.0
    #: high-water mark of worker-side in-flight buffer bytes (the extra
    #: window the double buffer holds beyond ``peak_staging_bytes``)
    pipeline_inflight_peak_bytes: int = 0
    #: simulated device seconds charged on the critical path (file ops
    #: issued synchronously: the caller waits out the full device time)
    device_sync_seconds: float = 0.0
    #: simulated device seconds of offloaded (pipelined) file ops —
    #: the device works these off concurrently with exchange/pack CPU
    device_async_seconds: float = 0.0
    #: the unhidden remainder of ``device_async_seconds``: simulated
    #: device time still outstanding when a drain required completion
    #: (effective wall = measured CPU + device_sync + device_stall)
    device_stall_seconds: float = 0.0
    #: ShipOps executed (file ops rewritten to request shipping)
    ship_ops: int = 0
    #: shard-server requests sent by ShipOps
    ship_requests: int = 0
    #: modeled request-description wire bytes (headers + ol-lists or
    #: datatype access params) — the descriptor side of the list-I/O vs
    #: datatype-I/O comparison
    ship_wire_request_bytes: int = 0
    #: payload wire bytes moved by ShipOps (both directions)
    ship_wire_payload_bytes: int = 0
    #: compact-fileview bytes installed on shard servers (charged once
    #: per (shard, view); the datatype-I/O protocol's up-front cost)
    ship_view_bytes: int = 0
    #: dtype-protocol pieces that fell back to list shipping (no
    #: compact view available, or the data-coordinate check failed)
    ship_dtype_fallbacks: int = 0

    def snapshot(self) -> dict:
        return {
            "plans_built": self.plans_built,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_replays": self.plan_replays,
            "planned_windows": self.planned_windows,
            "planned_ops": self.planned_ops,
            "coalesced_bytes": self.coalesced_bytes,
            "executed_ops": self.executed_ops,
            "executed_file_reads": self.executed_file_reads,
            "executed_file_writes": self.executed_file_writes,
            "executed_locks": self.executed_locks,
            "executed_exchanges": self.executed_exchanges,
            "executed_rounds": self.executed_rounds,
            "peak_staging_bytes": self.peak_staging_bytes,
            "rounds_idle_synced": self.rounds_idle_synced,
            "pipelined_file_ops": self.pipelined_file_ops,
            "pipeline_file_seconds": self.pipeline_file_seconds,
            "pipeline_wait_seconds": self.pipeline_wait_seconds,
            "pipeline_inflight_peak_bytes":
                self.pipeline_inflight_peak_bytes,
            "device_sync_seconds": self.device_sync_seconds,
            "device_async_seconds": self.device_async_seconds,
            "device_stall_seconds": self.device_stall_seconds,
            "ship_ops": self.ship_ops,
            "ship_requests": self.ship_requests,
            "ship_wire_request_bytes": self.ship_wire_request_bytes,
            "ship_wire_payload_bytes": self.ship_wire_payload_bytes,
            "ship_view_bytes": self.ship_view_bytes,
            "ship_dtype_fallbacks": self.ship_dtype_fallbacks,
        }

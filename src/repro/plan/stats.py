"""Counters for the plan layer.

One :class:`PlanStats` instance is shared by a planner/executor pair and
surfaced through the owning engine's stats snapshot, so every access
reports how it was planned (windows, coalescing, cache behavior) next to
the engine's own §2.4 overhead counters.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlanStats"]


@dataclass
class PlanStats:
    """Plan-layer counters for one (rank, open file)."""

    #: plans built from scratch (planner cache misses + uncacheable)
    plans_built: int = 0
    #: plans served from the LRU cache
    plan_cache_hits: int = 0
    #: cacheable plan lookups that missed
    plan_cache_misses: int = 0
    #: accesses served by the replay fast path (a relocatable whole-
    #: access plan re-bound by a scalar file translation — planner entry
    #: skipped entirely; also counted in ``plan_cache_hits``)
    plan_replays: int = 0
    #: coalesced file windows planned (window-mode file ops)
    planned_windows: int = 0
    #: total ops across built plans
    planned_ops: int = 0
    #: bytes whose file accesses were merged by block coalescing
    coalesced_bytes: int = 0
    #: ops executed (every run, cached plans included)
    executed_ops: int = 0
    #: file read accesses issued by the executor
    executed_file_reads: int = 0
    #: file write accesses issued by the executor
    executed_file_writes: int = 0
    #: byte-range locks taken by the executor
    executed_locks: int = 0
    #: alltoall exchanges performed by the executor
    executed_exchanges: int = 0
    #: aggregation rounds executed (RoundOp markers seen)
    executed_rounds: int = 0
    #: high-water mark of live staging/exchange buffer bytes during any
    #: plan run (the O(cb_buffer_size × APs) memory bound of the
    #: round-based collective shows up here)
    peak_staging_bytes: int = 0

    def snapshot(self) -> dict:
        return {
            "plans_built": self.plans_built,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_replays": self.plan_replays,
            "planned_windows": self.planned_windows,
            "planned_ops": self.planned_ops,
            "coalesced_bytes": self.coalesced_bytes,
            "executed_ops": self.executed_ops,
            "executed_file_reads": self.executed_file_reads,
            "executed_file_writes": self.executed_file_writes,
            "executed_locks": self.executed_locks,
            "executed_exchanges": self.executed_exchanges,
            "executed_rounds": self.executed_rounds,
            "peak_staging_bytes": self.peak_staging_bytes,
        }

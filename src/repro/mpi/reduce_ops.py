"""Reduction operators for ``allreduce``/``reduce``.

Operators work elementwise on NumPy arrays and directly on scalars, the
two payload kinds the I/O layer reduces (access bounds, flags).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SUM", "MAX", "MIN", "PROD", "LAND", "LOR"]


def SUM(a, b):
    """Elementwise / scalar sum."""
    return np.add(a, b) if isinstance(a, np.ndarray) else a + b


def MAX(a, b):
    """Elementwise / scalar maximum."""
    return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


def MIN(a, b):
    """Elementwise / scalar minimum."""
    return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


def PROD(a, b):
    """Elementwise / scalar product."""
    return np.multiply(a, b) if isinstance(a, np.ndarray) else a * b


def LAND(a, b):
    """Logical and."""
    return np.logical_and(a, b) if isinstance(a, np.ndarray) else (a and b)


def LOR(a, b):
    """Logical or."""
    return np.logical_or(a, b) if isinstance(a, np.ndarray) else (a or b)

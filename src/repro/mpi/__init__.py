"""In-process SPMD MPI runtime.

Runs *P* ranks as OS threads sharing one address space, with tagged
point-to-point messaging, barriers and the collectives the MPI-IO layer
needs (bcast, gather/allgather, alltoall, allreduce).  A
:class:`~repro.mpi.cost_model.NetworkModel` charges every message with
simulated wire time and counts payload bytes, so the benchmark harness can
attribute the communication volume difference between ol-list exchange
(list-based collective I/O) and data-only exchange (listless I/O with
fileview caching).

Entry point::

    from repro.mpi import run_spmd

    def worker(comm):
        ...

    results = run_spmd(nprocs, worker)
"""

from repro.mpi.cost_model import NetworkModel, payload_nbytes
from repro.mpi.status import Status
from repro.mpi.reduce_ops import MAX, MIN, SUM, PROD, LAND, LOR
from repro.mpi.communicator import ANY_TAG, Comm, GroupComm, PendingOp
from repro.mpi.runtime import World, run_spmd

__all__ = [
    "NetworkModel",
    "payload_nbytes",
    "Status",
    "Comm",
    "GroupComm",
    "PendingOp",
    "World",
    "run_spmd",
    "ANY_TAG",
    "MAX",
    "MIN",
    "SUM",
    "PROD",
    "LAND",
    "LOR",
]

"""SPMD MPI runtime with two execution backends.

Runs *P* ranks SPMD-style with tagged point-to-point messaging, barriers
and the collectives the MPI-IO layer needs (bcast, gather/allgather,
alltoall, allreduce).  A :class:`~repro.mpi.cost_model.NetworkModel`
charges every message with simulated wire time and counts payload bytes,
so the benchmark harness can attribute the communication volume
difference between ol-list exchange (list-based collective I/O) and
data-only exchange (listless I/O with fileview caching).

Two backends share one communicator API (see ``docs/runtime.md``):
``sim`` runs ranks as threads in one address space (deterministic,
default), ``proc`` runs them as real OS processes exchanging payloads
through shared memory (:mod:`repro.mpi.proc`).

Entry point::

    from repro.mpi import Runtime, run_spmd

    def worker(comm):
        ...

    results = run_spmd(nprocs, worker)            # sim (REPRO_RUNTIME)
    results = Runtime("proc").run(nprocs, worker)  # real processes
"""

from repro.mpi.cost_model import NetworkModel, payload_nbytes
from repro.mpi.status import Status
from repro.mpi.reduce_ops import MAX, MIN, SUM, PROD, LAND, LOR
from repro.mpi.communicator import ANY_TAG, Comm, GroupComm, PendingOp
from repro.mpi.runtime import Runtime, World, run_spmd

__all__ = [
    "NetworkModel",
    "payload_nbytes",
    "Status",
    "Comm",
    "GroupComm",
    "PendingOp",
    "Runtime",
    "World",
    "run_spmd",
    "ANY_TAG",
    "MAX",
    "MIN",
    "SUM",
    "PROD",
    "LAND",
    "LOR",
]

"""Receive status object (source, tag, payload size)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status"]


@dataclass
class Status:
    """Filled in by :meth:`repro.mpi.communicator.Comm.recv`."""

    source: int = -1
    tag: int = -1
    nbytes: int = 0

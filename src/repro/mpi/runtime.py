"""The SPMD world, thread harness, and runtime selection.

:func:`run_spmd` launches one thread per rank, runs the worker function
SPMD-style, propagates the first failure (aborting barriers and waking
blocked receivers so no rank deadlocks), and returns the per-rank results.

:class:`Runtime` selects between the two SPMD execution backends:

``sim`` (default)
    ranks as threads in this process — deterministic, fast to start,
    with simulated device/wire time (this module);
``proc``
    ranks as real OS processes exchanging payloads through shared
    memory (:mod:`repro.mpi.proc`) — real parallelism, real ``fcntl``
    locks, for measurement runs and conformance testing.

Selection: ``Runtime(backend="proc")`` explicitly, or the
``REPRO_RUNTIME`` environment variable.  Both backends run the *same*
worker function with the same communicator API; see ``docs/runtime.md``.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, List, Optional

from repro.errors import MPIRuntimeError
from repro.mpi.communicator import Comm, _Mailbox
from repro.mpi.cost_model import NetworkModel

__all__ = ["Runtime", "World", "run_spmd"]

#: Valid backend names (the Runtime facade validates against this).
BACKENDS = ("sim", "proc")


class World:
    """Shared state of one SPMD execution."""

    def __init__(self, size: int, network: NetworkModel | None = None):
        if size < 1:
            raise MPIRuntimeError(f"world size must be >= 1, got {size}")
        self.size = size
        self.network = network or NetworkModel()
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._barrier = threading.Barrier(size)
        self.board: List[Any] = [None] * size
        self._failure: Optional[BaseException] = None
        self._failure_mu = threading.Lock()
        self._extra_barriers: List[threading.Barrier] = []
        # Per-rank accounting (no locks needed: each rank owns its slot).
        self.bytes_sent = [0] * size
        self.messages_sent = [0] * size
        self.net_time = [0.0] * size

    # ------------------------------------------------------------------
    def mailbox(self, rank: int) -> _Mailbox:
        return self._mailboxes[rank]

    def account(self, rank: int, nbytes: int, dst: int | None = None) -> None:
        """Charge rank for one message of ``nbytes`` (to ``dst`` when the
        topology matters)."""
        self.bytes_sent[rank] += nbytes
        self.messages_sent[rank] += 1
        self.net_time[rank] += self.network.transfer_time(
            nbytes, rank, rank if dst is None else dst
        )

    def barrier_wait(self) -> None:
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError:
            raise MPIRuntimeError(
                "barrier broken (another rank failed)"
            ) from None

    # ------------------------------------------------------------------
    def register_barrier(self, barrier: threading.Barrier) -> None:
        """Track a sub-communicator barrier so failures break it too."""
        with self._failure_mu:
            self._extra_barriers.append(barrier)
            failed = self._failure is not None
        if failed:
            barrier.abort()

    def fail(self, exc: BaseException) -> None:
        """Record the first failure and unblock everyone."""
        with self._failure_mu:
            if self._failure is None:
                self._failure = exc
            extras = list(self._extra_barriers)
        self._barrier.abort()
        for b in extras:
            b.abort()
        for mb in self._mailboxes:
            with mb.cond:
                mb.cond.notify_all()

    def has_failed(self) -> bool:
        return self._failure is not None

    @property
    def failure(self) -> Optional[BaseException]:
        return self._failure

    # ------------------------------------------------------------------
    def comm(self, rank: int) -> Comm:
        return Comm(self, rank)

    def max_net_time(self) -> float:
        """Wire time of the busiest rank (ranks communicate in parallel)."""
        return max(self.net_time)

    def total_bytes_sent(self) -> int:
        return sum(self.bytes_sent)


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    network: NetworkModel | None = None,
    world_out: Optional[list] = None,
    backend: "str | Runtime | None" = None,
    session=None,
) -> List[Any]:
    """Run ``fn(comm, *args)`` on ``size`` ranks; returns per-rank results.

    The first exception raised by any rank is re-raised in the caller
    (other ranks are unblocked and terminated).  Pass a list as
    ``world_out`` to receive the :class:`World` (for cost inspection).

    ``backend`` routes the run through a non-default execution backend
    (see :class:`Runtime`); ``None`` honours ``REPRO_RUNTIME``.

    ``session`` scopes the world to an :class:`~repro.session.IOSession`
    (sim backend): the session is activated inside every rank thread —
    rank threads start with an empty context, so the caller's active
    session would otherwise not carry over — and only *its* flight
    recorder is cleared at launch, which is what lets several sim worlds
    run concurrently in one process without wiping each other's
    records.  Defaults to the session active in the caller.  The proc
    backend ignores it: rank processes are isolated by construction.
    """
    from repro._ctx import SESSION

    rt = Runtime.resolve(backend)
    if rt.backend != "sim":
        return rt.run(size, fn, *args, network=network,
                      world_out=world_out)
    sess = session if session is not None else SESSION.get(None)
    world = World(size, network=network)
    if world_out is not None:
        world_out.append(world)
    from repro.obs import flight

    # One world, one flight record: drop breadcrumbs and round markers
    # left behind by previous worlds in this session (or, with no
    # session, in the process default recorder).
    recorder = flight.RECORDER if sess is None else sess.flight
    recorder.clear()
    results: List[Any] = [None] * size

    def runner(rank: int) -> None:
        from repro.obs import trace

        if sess is not None:
            SESSION.set(sess)
        try:
            with trace.span("spmd.rank", rank=rank):
                results[rank] = fn(world.comm(rank), *args)
        except MPIRuntimeError as exc:
            # Secondary failures (broken barrier after another rank died)
            # still mark the world, but the primary failure wins.
            world.fail(exc)
        except BaseException as exc:  # noqa: BLE001 - must propagate all
            world.fail(exc)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if world.failure is not None:
        from repro.obs import flight

        flight.dump_on_abort(world.failure, backend="sim",
                             world_size=size, recorder=recorder)
        raise world.failure
    return results


class Runtime:
    """Facade selecting the SPMD execution backend.

    ``Runtime()`` resolves the backend from ``REPRO_RUNTIME`` (default
    ``sim``); ``Runtime(backend="proc")`` picks explicitly.  ``run``
    has the :func:`run_spmd` contract on every backend.
    """

    def __init__(self, backend: Optional[str] = None, *,
                 timeout: Optional[float] = None,
                 start_method: Optional[str] = None) -> None:
        name = backend or os.environ.get("REPRO_RUNTIME", "sim")
        name = name.strip().lower()
        if name not in BACKENDS:
            raise MPIRuntimeError(
                f"unknown runtime backend {name!r} "
                f"(expected one of {', '.join(BACKENDS)})"
            )
        self.backend = name
        self.timeout = timeout
        self.start_method = start_method

    @classmethod
    def resolve(cls, backend: "str | Runtime | None") -> "Runtime":
        """Coerce a backend name / Runtime / None to a Runtime."""
        if isinstance(backend, cls):
            return backend
        return cls(backend)

    def run(
        self,
        size: int,
        fn: Callable[..., Any],
        *args: Any,
        network: NetworkModel | None = None,
        world_out: Optional[list] = None,
    ) -> List[Any]:
        """Run ``fn(comm, *args)`` on ``size`` ranks of this backend."""
        if self.backend == "proc":
            from repro.mpi.proc import run_spmd_proc

            return run_spmd_proc(
                size, fn, *args, network=network, world_out=world_out,
                timeout=self.timeout, start_method=self.start_method,
            )
        return run_spmd(size, fn, *args, network=network,
                        world_out=world_out, backend="sim")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Runtime backend={self.backend!r}>"

"""The communicator: point-to-point and collective operations.

Point-to-point messages are matched by ``(source, tag)`` in FIFO order per
pair, as MPI requires.  Collectives use a shared exchange board guarded by
a generation barrier — semantically equivalent to the tree algorithms of a
real MPI but without their Python-level overhead, so the *accounted* cost
(payload bytes × network model) remains the meaningful quantity.

Every operation aborts promptly when another rank has failed (the runtime
sets a world-wide failure flag), so a crashing rank cannot deadlock the
test suite.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MPIRuntimeError
from repro.mpi.cost_model import payload_nbytes
from repro.mpi.status import Status
from repro.obs import trace

__all__ = ["Comm", "ANY_TAG", "PendingOp", "recv_timeout"]

#: Wildcard tag for :meth:`Comm.recv`.
ANY_TAG = -1

_POLL_INTERVAL = 0.05  # seconds between failure-flag checks while blocked


def recv_timeout() -> float:
    """Seconds a blocked receive may wait before raising.

    A receive whose sender never sends (mismatched tag, crashed peer
    the failure detector missed) must surface as an error, not a hang;
    this deadline bounds every blocking wait in the runtime.  Override
    with ``REPRO_RECV_TIMEOUT``.
    """
    return float(os.environ.get("REPRO_RECV_TIMEOUT", 60.0))


class PendingOp:
    """Request handle for nonblocking point-to-point operations.

    ``test()`` polls without blocking; ``wait()`` blocks until
    completion and returns the payload (None for sends).
    """

    def __init__(self, poll=None, result=None, done=False) -> None:
        self._poll = poll
        self._result = result
        self._done = done

    def test(self) -> bool:
        """Try to complete; True when done (payload via :meth:`wait`)."""
        if self._done:
            return True
        ok, payload = self._poll(block=False)
        if ok:
            self._result = payload
            self._done = True
        return self._done

    def wait(self):
        """Block until completion; returns the payload."""
        if not self._done:
            ok, payload = self._poll(block=True)
            assert ok
            self._result = payload
            self._done = True
        return self._result


class _Mailbox:
    """Per-rank incoming message store with (source, tag) matching."""

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.queues: Dict[Tuple[int, int], deque] = {}

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self.cond:
            self.queues.setdefault((source, tag), deque()).append(payload)
            self.cond.notify_all()

    def get(
        self, source: int, tag: int, failed: Callable[[], bool]
    ) -> Tuple[Any, int]:
        """Blocking matched receive; returns (payload, matched_tag).

        Waits are bounded by :func:`recv_timeout`: a message that never
        arrives raises :class:`MPIRuntimeError` instead of hanging the
        rank (and with it, the whole run) forever.
        """
        deadline = time.monotonic() + recv_timeout()
        with self.cond:
            while True:
                if tag == ANY_TAG:
                    for (src, t), q in self.queues.items():
                        if src == source and q:
                            return q.popleft(), t
                else:
                    q = self.queues.get((source, tag))
                    if q:
                        return q.popleft(), tag
                if failed():
                    raise MPIRuntimeError(
                        "world failed while waiting for a message"
                    )
                if time.monotonic() >= deadline:
                    raise MPIRuntimeError(
                        f"recv from rank {source} (tag {tag}) timed "
                        "out (sender never sent?)"
                    )
                self.cond.wait(timeout=_POLL_INTERVAL)


class Comm:
    """Rank-local facade over the shared :class:`~repro.mpi.runtime.World`."""

    def __init__(self, world, rank: int) -> None:
        self._world = world
        self.rank = rank

    @property
    def world_rank(self) -> int:
        """This rank's identity in the world (== rank for the world
        communicator; overridden by sub-communicators)."""
        return self.rank

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self._world.size

    def _check(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise MPIRuntimeError(
                f"rank {peer} outside world of size {self.size}"
            )

    def _charge(self, nbytes: int, dst: Optional[int] = None) -> None:
        self._world.account(self.rank, nbytes, dst)

    # ------------------------------------------------------------------
    # Causal edge stamps (recorded only while tracing).  Both sides of
    # a matched operation derive the same key locally: p2p messages are
    # FIFO per (source, tag) on every transport, so the n-th send on a
    # (src, dst, tag) stream pairs with the n-th matched receive;
    # collectives are called in identical order by all members of a
    # communicator, so a per-rank call counter + the communicator id
    # names the instance.  repro.obs.causal joins them after the merge.
    # ------------------------------------------------------------------
    def _edge_cid(self) -> str:
        return "w"

    def _stamp_send(self, wsrc: int, wdst: int, tag: int) -> None:
        tr = trace.TRACER
        n = tr.seq(("s", wsrc, wdst, tag))
        tr.edge("send", (wsrc, wdst, tag, n), peer=wdst)

    def _stamp_recv(self, wsrc: int, wdst: int, mtag: int,
                    t0: float) -> None:
        tr = trace.TRACER
        n = tr.seq(("r", wsrc, wdst, mtag))
        tr.edge("recv", (wsrc, wdst, mtag, n), peer=wsrc, t0=t0)

    def _stamp_coll(self, what: str, t0: float) -> None:
        tr = trace.TRACER
        cid = self._edge_cid()
        n = tr.seq(("c", self.world_rank, what, cid))
        tr.edge("coll", (what, cid, n), t0=t0)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Send ``payload`` to ``dest`` with ``tag`` (buffered, non-
        blocking in the eager sense)."""
        self._check(dest)
        self._charge(payload_nbytes(payload), dest)
        if trace.TRACE_ON:
            self._stamp_send(self.rank, dest, tag)
        self._world.mailbox(dest).put(self.rank, tag, payload)

    def recv(
        self, source: int, tag: int = 0, status: Optional[Status] = None
    ) -> Any:
        """Blocking matched receive from ``source``."""
        self._check(source)
        t_wait = trace.now() if trace.TRACE_ON else 0.0
        payload, mtag = self._world.mailbox(self.rank).get(
            source, tag, self._world.has_failed
        )
        if trace.TRACE_ON:
            self._stamp_recv(source, self.rank, mtag, t_wait)
        if status is not None:
            status.source = source
            status.tag = mtag
            status.nbytes = payload_nbytes(payload)
        return payload

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: int,
        sendtag: int = 0,
        recvtag: int = 0,
    ) -> Any:
        """Combined send and receive (deadlock-free here: sends buffer)."""
        self.send(dest, payload, sendtag)
        return self.recv(source, recvtag)

    def _recv_source_key(self, source: int) -> int:
        """Mailbox queue key of communicator rank ``source`` (identity
        here; group communicators translate to world ranks)."""
        self._check(source)
        return source

    def _own_mailbox(self) -> "_Mailbox":
        return self._world.mailbox(self.rank)

    def recv_any(self, sources: Sequence[int], tag: int = 0) -> Tuple[int, Any]:
        """Blocking receive from whichever of ``sources`` has a matching
        message first; returns ``(source, payload)``.

        Arrival-order completion: the caller tracks a set of expected
        peers and consumes them as their messages land, without imposing
        an order — the receive side of relaxed-synchronization rounds,
        where only the (AP, IOP) pairs that actually move bytes talk.
        Bounded by :func:`recv_timeout` and the world failure flag like
        every other blocking wait.
        """
        srcs = [(s, self._recv_source_key(s)) for s in sources]
        if not srcs:
            raise MPIRuntimeError("recv_any needs at least one source")
        mb = self._own_mailbox()
        t_wait = trace.now() if trace.TRACE_ON else 0.0
        deadline = time.monotonic() + recv_timeout()
        with mb.cond:
            while True:
                for s, key in srcs:
                    q = mb.queues.get((key, tag))
                    if q:
                        payload = q.popleft()
                        if trace.TRACE_ON:
                            self._stamp_recv(key, self.world_rank,
                                             tag, t_wait)
                        return s, payload
                if self._world.has_failed():
                    raise MPIRuntimeError(
                        "world failed while waiting for a message"
                    )
                if time.monotonic() >= deadline:
                    raise MPIRuntimeError(
                        f"recv_any from ranks {sorted(s for s, _ in srcs)} "
                        f"(tag {tag}) timed out (sender never sent?)"
                    )
                mb.cond.wait(timeout=_POLL_INTERVAL)

    # ------------------------------------------------------------------
    # Nonblocking point-to-point
    # ------------------------------------------------------------------
    def isend(self, dest: int, payload: Any, tag: int = 0) -> "PendingOp":
        """Nonblocking send.  Sends here buffer eagerly, so the request
        completes immediately; returned for MPI-style code shape."""
        self.send(dest, payload, tag)
        return PendingOp(result=None, done=True)

    def irecv(self, source: int, tag: int = 0) -> "PendingOp":
        """Nonblocking receive: returns a request whose ``wait()`` (or a
        successful ``test()``) yields the payload."""
        self._check(source)
        return PendingOp(
            poll=lambda block: self._try_recv(source, tag, block)
        )

    def _try_recv(self, source: int, tag: int, block: bool):
        mb = self._world.mailbox(self.rank)
        if block:
            payload, _tag = mb.get(source, tag, self._world.has_failed)
            return True, payload
        with mb.cond:
            if tag == ANY_TAG:
                for (src, t), q in mb.queues.items():
                    if src == source and q:
                        return True, q.popleft()
                return False, None
            q = mb.queues.get((source, tag))
            if q:
                return True, q.popleft()
            return False, None

    def probe(self, source: int, tag: int = 0,
              status: Optional[Status] = None) -> None:
        """Block until a matching message is available (not consumed)."""
        self._check(source)
        mb = self._world.mailbox(self.rank)
        deadline = time.monotonic() + recv_timeout()
        with mb.cond:
            while True:
                q = mb.queues.get((source, tag))
                if q:
                    if status is not None:
                        status.source = source
                        status.tag = tag
                        status.nbytes = payload_nbytes(q[0])
                    return
                if self._world.has_failed():
                    raise MPIRuntimeError(
                        "world failed while probing for a message"
                    )
                if time.monotonic() >= deadline:
                    raise MPIRuntimeError(
                        f"probe of rank {source} (tag {tag}) timed "
                        "out (sender never sent?)"
                    )
                mb.cond.wait(timeout=_POLL_INTERVAL)

    def iprobe(self, source: int, tag: int = 0) -> bool:
        """True if a matching message is waiting (not consumed)."""
        self._check(source)
        mb = self._world.mailbox(self.rank)
        with mb.cond:
            q = mb.queues.get((source, tag))
            return bool(q)

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------
    def dup(self) -> "Comm":
        """A new communicator over the same group (``MPI_Comm_dup``).

        Collective.  The duplicate has its own barrier and exchange
        board, so collectives on it cannot interfere with the parent's.
        """
        return self.split(color=0, key=self.rank)

    def split(self, color, key: int = 0) -> "GroupComm | None":
        """Partition ranks by ``color`` into sub-communicators
        (``MPI_Comm_split``); ``key`` orders ranks within each group.
        Collective; returns None for ``color=None`` (MPI_UNDEFINED).
        """
        # Members are identified by WORLD rank so nested splits work.
        info = self.allgather((color, key, self.world_rank))
        if color is None:
            # Still participate in the group-object distribution below.
            self.allgather(None)
            return None
        members = [
            r for _c, _k, r in sorted(
                (e for e in info if e[0] == color),
                key=lambda e: (e[1], e[2]),
            )
        ]
        leader = members[0]
        group = _Group(self._world, members) \
            if self.world_rank == leader else None
        groups = self.allgather(group)
        # groups is indexed by *this communicator's* ranks; find the
        # deposit of whichever local rank is the leader.
        gobj = next(g for g in groups if g is not None
                    and g.members == members)
        return GroupComm(self._world, self.world_rank, gobj)


    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks."""
        t0 = trace.now() if trace.TRACE_ON else 0.0
        with trace.span("mpi.barrier"):
            self._world.barrier_wait()
        if trace.TRACE_ON:
            self._stamp_coll("bar", t0)

    def _board_exchange(self, item: Any) -> List[Any]:
        """Deposit ``item``, wait, and return every rank's deposit."""
        t0 = trace.now() if trace.TRACE_ON else 0.0
        w = self._world
        w.board[self.rank] = item
        w.barrier_wait()
        out = list(w.board)
        w.barrier_wait()
        if trace.TRACE_ON:
            self._stamp_coll("coll", t0)
        return out

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast from ``root``; every rank returns the root's value."""
        self._check(root)
        items = self._board_exchange(payload if self.rank == root else None)
        value = items[root]
        if self.rank == root:
            n = payload_nbytes(value)
            for dst in range(self.size):
                if dst != root:
                    self._charge(n, dst)
        return value

    def gather(self, payload: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather to ``root``; non-roots return None."""
        self._check(root)
        if self.rank != root:
            self._charge(payload_nbytes(payload), root)
        items = self._board_exchange(payload)
        return items if self.rank == root else None

    def allgather(self, payload: Any) -> List[Any]:
        """Gather every rank's value at every rank."""
        n = payload_nbytes(payload)
        with trace.span("mpi.allgather", bytes=n):
            for dst in range(self.size):
                if dst != self.rank:
                    self._charge(n, dst)
            return self._board_exchange(payload)

    def alltoall(self, payloads: Sequence[Any]) -> List[Any]:
        """Personalized all-to-all: ``payloads[d]`` goes to rank ``d``;
        returns the items addressed to this rank."""
        if len(payloads) != self.size:
            raise MPIRuntimeError(
                f"alltoall needs {self.size} payloads, got {len(payloads)}"
            )
        with trace.span("mpi.alltoall"):
            for d, p in enumerate(payloads):
                if d != self.rank:
                    self._charge(payload_nbytes(p), d)
            items = self._board_exchange(list(payloads))
            return [items[src][self.rank] for src in range(self.size)]

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Reduce every rank's value with ``op``; all ranks get the result."""
        n = payload_nbytes(value)
        for dst in range(self.size):
            if dst != self.rank:
                self._charge(n, dst)
        items = self._board_exchange(value)
        acc = items[0]
        for v in items[1:]:
            acc = op(acc, v)
        return acc

    def reduce(
        self, value: Any, op: Callable[[Any, Any], Any], root: int = 0
    ) -> Any:
        """Reduce to ``root``; non-roots return None."""
        result = self.allreduce(value, op)
        return result if self.rank == root else None

    def scatter(self, payloads: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter ``payloads`` (significant at root) to all ranks."""
        self._check(root)
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise MPIRuntimeError(
                    f"scatter at root needs {self.size} payloads"
                )
            for d, p in enumerate(payloads):
                if d != root:
                    self._charge(payload_nbytes(p), d)
        items = self._board_exchange(
            list(payloads) if self.rank == root else None
        )
        return items[root][self.rank]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Comm rank={self.rank}/{self.size}>"


class _Group:
    """Shared synchronization state of one sub-communicator."""

    def __init__(self, world, members) -> None:
        self.members = list(members)
        self.barrier = threading.Barrier(len(members))
        self.board: List[Any] = [None] * len(members)
        # Failures anywhere in the world must break group barriers too.
        world.register_barrier(self.barrier)


class GroupComm(Comm):
    """A communicator over a subset of world ranks.

    ``rank``/``size`` are group-local; messages and accounting translate
    to world ranks.  Tags share the world's matching space, so code that
    mixes world-level and group-level point-to-point traffic between the
    same pair of ranks should use distinct tags (as it must in MPI when
    sharing a communicator).
    """

    def __init__(self, world, world_rank: int, group: _Group) -> None:
        self._world = world
        self._group = group
        self._wrank = world_rank
        self.rank = group.members.index(world_rank)

    @property
    def world_rank(self) -> int:
        return self._wrank

    @property
    def size(self) -> int:
        return len(self._group.members)

    def _to_world(self, peer: int) -> int:
        self._check(peer)
        return self._group.members[peer]

    def _edge_cid(self) -> str:
        return "g" + ",".join(str(m) for m in self._group.members)

    # -- point-to-point: translate ranks -------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        wdest = self._to_world(dest)
        self._world.account(self._wrank, payload_nbytes(payload),
                            wdest)
        if trace.TRACE_ON:
            self._stamp_send(self._wrank, wdest, tag)
        self._world.mailbox(wdest).put(self._wrank, tag, payload)

    def recv(self, source: int, tag: int = 0,
             status: Optional[Status] = None) -> Any:
        wsrc = self._to_world(source)
        t_wait = trace.now() if trace.TRACE_ON else 0.0
        payload, mtag = self._world.mailbox(self._wrank).get(
            wsrc, tag, self._world.has_failed
        )
        if trace.TRACE_ON:
            self._stamp_recv(wsrc, self._wrank, mtag, t_wait)
        if status is not None:
            status.source = source
            status.tag = mtag
            status.nbytes = payload_nbytes(payload)
        return payload

    def _charge(self, nbytes: int, dst: Optional[int] = None) -> None:
        wdst = None if dst is None else self._group.members[dst]
        self._world.account(self._wrank, nbytes, wdst)

    def _recv_source_key(self, source: int) -> int:
        return self._to_world(source)

    def _own_mailbox(self):
        return self._world.mailbox(self._wrank)

    def _try_recv(self, source: int, tag: int, block: bool):
        wsrc = self._to_world(source)
        mb = self._world.mailbox(self._wrank)
        if block:
            payload, _t = mb.get(wsrc, tag, self._world.has_failed)
            return True, payload
        with mb.cond:
            q = mb.queues.get((wsrc, tag))
            if q:
                return True, q.popleft()
            return False, None

    def probe(self, source: int, tag: int = 0,
              status: Optional[Status] = None) -> None:
        wsrc = self._to_world(source)
        mb = self._world.mailbox(self._wrank)
        deadline = time.monotonic() + recv_timeout()
        with mb.cond:
            while True:
                q = mb.queues.get((wsrc, tag))
                if q:
                    if status is not None:
                        status.source = source
                        status.tag = tag
                        status.nbytes = payload_nbytes(q[0])
                    return
                if self._world.has_failed():
                    raise MPIRuntimeError(
                        "world failed while probing for a message"
                    )
                if time.monotonic() >= deadline:
                    raise MPIRuntimeError(
                        f"probe of rank {source} (tag {tag}) timed "
                        "out (sender never sent?)"
                    )
                mb.cond.wait(timeout=_POLL_INTERVAL)

    def iprobe(self, source: int, tag: int = 0) -> bool:
        wsrc = self._to_world(source)
        mb = self._world.mailbox(self._wrank)
        with mb.cond:
            return bool(mb.queues.get((wsrc, tag)))

    # -- collectives: group-local barrier and board ---------------------
    def barrier(self) -> None:
        t0 = trace.now() if trace.TRACE_ON else 0.0
        try:
            self._group.barrier.wait()
        except threading.BrokenBarrierError:
            raise MPIRuntimeError(
                "group barrier broken (another rank failed)"
            ) from None
        if trace.TRACE_ON:
            self._stamp_coll("bar", t0)

    def _board_exchange(self, item: Any) -> List[Any]:
        t0 = trace.now() if trace.TRACE_ON else 0.0
        g = self._group
        g.board[self.rank] = item
        self.barrier()
        out = list(g.board)
        self.barrier()
        if trace.TRACE_ON:
            self._stamp_coll("coll", t0)
        return out

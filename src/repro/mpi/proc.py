"""The multi-process SPMD backend: ranks as real OS processes.

:func:`run_spmd_proc` mirrors :func:`repro.mpi.runtime.run_spmd` but
launches every rank as a ``multiprocessing`` process, so "parallel"
means parallel: ranks contend for the file system through real file
descriptors and real ``fcntl`` locks, and collectives move bytes
through POSIX shared memory (:mod:`repro.mpi.shm`) instead of
in-process reference passing.

Design:

* **Collectives** reuse the board-exchange algorithm of the simulated
  :class:`~repro.mpi.communicator.Comm` — :class:`ProcComm` overrides
  only ``_board_exchange`` (each rank writes one segment, a barrier
  publishes them, every rank attaches its peers' segments, a second
  barrier gates unlink) and ``barrier`` (a ``multiprocessing.Barrier``
  with a timeout).  Everything from ``bcast`` to ``alltoall`` is the
  exact code path the simulated backend runs, which is what makes the
  differential conformance suite meaningful.
* **Point-to-point** messages put only ``(source, tag, segment_name)``
  on the destination's queue; payload bytes stay in shared memory.
  Receives carry a deadline — a dead sender surfaces as
  :class:`~repro.errors.MPIRuntimeError` within ``REPRO_PROC_TIMEOUT``
  seconds (default 60), never as a hang.
* **Failure handling**: a rank that raises aborts the shared barrier
  and sets the world abort flag before reporting, so peers blocked in
  a collective or a receive fail promptly.  The parent additionally
  watches for ranks that *die* (e.g. SIGKILL) without reporting and
  aborts the world on their behalf.
* **Observability**: each rank ships its trace spans (absolute
  ``perf_counter`` stamps — CLOCK_MONOTONIC, comparable across
  processes on Linux) and its per-file stats back to the parent, which
  merges spans into the parent tracer so ``trace --export`` renders
  one timeline across backends.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue as queue_mod
import tempfile
import threading
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import MPIRuntimeError
from repro.mpi import shm
from repro.mpi.communicator import ANY_TAG, Comm, PendingOp
from repro.mpi.cost_model import NetworkModel, payload_nbytes
from repro.mpi.status import Status
from repro.obs import flight, trace

__all__ = ["ProcComm", "ProcWorldReport", "run_spmd_proc"]

#: Seconds a blocked receive / barrier waits before declaring the world
#: dead.  Override with ``REPRO_PROC_TIMEOUT``.
DEFAULT_TIMEOUT = 60.0

#: Queue poll granularity while waiting for a message or a result.
_POLL = 0.05

#: Seconds a rank that exited *cleanly* (exit code 0) may stay
#: unreported before it is declared a no-show.  A rank exits as soon as
#: its own result is queued, so the parent can observe it dead while the
#: result blob is still in flight through the queue's pipe — more so
#: under CPU contention from concurrent worlds.  Ranks killed hard
#: (signal / non-zero exit) get no grace: prompt failure propagation.
_DEATH_GRACE = 1.0

#: Shared counters pre-allocated per world (they must exist before the
#: ranks fork; each collective ``make_shared_counter`` call claims one).
_COUNTER_POOL = 64

#: Per-process point-to-point send sequence.  Shared by every
#: communicator object in the process so segment names (which embed the
#: sender's *world* rank) can never collide, even across nested
#: sub-communicators.
_PSEQ = itertools.count()

#: One sequence number per world launched by this process.  Folded into
#: the world uid so concurrent ``run_spmd_proc`` calls (driver threads
#: running several worlds at once) can never share a segment namespace —
#: the timestamp alone can collide at microsecond granularity, and a
#: shared uid would let one world's end-of-run sweep delete the other's
#: live segments.
_WSEQ = itertools.count()

#: Serializes world *launch* (primitive creation + forks) across
#: concurrent ``run_spmd_proc`` callers.  Creating Queues/Barriers and
#: forking both mutate process-global multiprocessing state (resource
#: tracker, SemLocks, fd table); two driver threads doing so at once
#: can hand a child a torn view of it.  Only the launch window is
#: serialized — the worlds themselves still run concurrently.
_LAUNCH_LOCK = threading.Lock()


def _timeout_from_env(timeout: Optional[float]) -> float:
    if timeout is not None:
        return timeout
    return float(os.environ.get("REPRO_PROC_TIMEOUT", DEFAULT_TIMEOUT))


class _ProcShared:
    """World state inherited by every rank process (fork) or shipped to
    it (spawn): synchronization primitives, mailbox queues, the shared
    counter pool, and the segment namespace."""

    def __init__(self, ctx, size: int, timeout: float, uid: str) -> None:
        self.size = size
        self.timeout = timeout
        self.uid = uid
        self.barrier = ctx.Barrier(size)
        self.abort = ctx.Event()
        self.queues = [ctx.Queue() for _ in range(size)]
        self.results = ctx.Queue()
        self.counters = [ctx.Value("q", 0) for _ in range(_COUNTER_POOL)]
        # Flight-recorder beacons: each rank writes its last completed
        # aggregation round here as a side effect of note_round, so the
        # parent can report a *dead* rank's last round (the rank itself
        # ships nothing after a SIGKILL).  Single-writer per slot.
        self.rounds = [ctx.Value("q", -1, lock=False)
                       for _ in range(size)]


class ProcWorldReport:
    """Post-run accounting mirror of :class:`~repro.mpi.runtime.World`.

    Filled by the parent from each rank's report so code written
    against ``world_out`` (``total_bytes_sent``, ``max_net_time``)
    works unchanged on the proc backend.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.bytes_sent = [0] * size
        self.messages_sent = [0] * size
        self.net_time = [0.0] * size

    def total_bytes_sent(self) -> int:
        return sum(self.bytes_sent)

    def max_net_time(self) -> float:
        return max(self.net_time)


class ProcComm(Comm):
    """Rank-local communicator of the multi-process backend.

    Subclasses the simulated :class:`Comm` and overrides only the
    transport: the collective algorithms (bcast/gather/allgather/
    alltoall/allreduce/scatter and their accounting) are inherited
    verbatim.
    """

    # Comm.__init__ is replaced wholesale: there is no World object.
    def __init__(self, shared: _ProcShared, rank: int,
                 network: Optional[NetworkModel] = None) -> None:
        self._shared = shared
        self.rank = rank
        self._network = network or NetworkModel()
        self._gen = 0          # collective generation (segment names)
        self._split_seq = 0    # split collectives issued (tag namespace)
        self._ns = "w"         # communicator namespace (tag derivation)
        self._next_counter = 0
        # Messages drained off the queue but not yet matched.
        self._pending: Dict[Tuple[int, int], List[Any]] = {}
        # Local accounting (shipped to the parent after the run).
        self.bytes_sent = 0
        self.messages_sent = 0
        self.net_time = 0.0

    # -- world plumbing ------------------------------------------------
    @property
    def size(self) -> int:
        return self._shared.size

    def _charge(self, nbytes: int, dst: Optional[int] = None) -> None:
        self.bytes_sent += nbytes
        self.messages_sent += 1
        self.net_time += self._network.transfer_time(
            nbytes, self.world_rank,
            self.world_rank if dst is None else dst,
        )

    def _check_abort(self) -> None:
        if self._shared.abort.is_set():
            raise MPIRuntimeError("world failed (another rank aborted)")

    # -- barrier and board exchange ------------------------------------
    def barrier(self) -> None:
        t0 = trace.now() if trace.TRACE_ON else 0.0
        with trace.span("mpi.barrier"):
            self._barrier_wait()
        if trace.TRACE_ON:
            self._stamp_coll("bar", t0)

    def _barrier_wait(self) -> None:
        self._check_abort()
        try:
            self._shared.barrier.wait(timeout=self._shared.timeout)
        except threading.BrokenBarrierError:
            raise MPIRuntimeError(
                "barrier broken or timed out (another rank failed?)"
            ) from None

    def _segment(self, gen: int, rank: int) -> str:
        return f"{self._shared.uid}g{gen}r{rank}"

    def _board_exchange(self, item: Any) -> List[Any]:
        t0 = trace.now() if trace.TRACE_ON else 0.0
        gen = self._gen
        self._gen += 1
        own = self._segment(gen, self.world_rank)
        shm.write_segment(own, item)
        try:
            self._barrier_wait()
            out: List[Any] = []
            for src in range(self.size):
                if src == self.rank:
                    out.append(item)
                else:
                    out.append(shm.read_segment(
                        self._segment(gen, self._peer_world_rank(src))
                    ))
            self._barrier_wait()
        finally:
            shm.unlink_segment(own)
        if trace.TRACE_ON:
            self._stamp_coll("coll", t0)
        return out

    def _peer_world_rank(self, peer: int) -> int:
        """World rank of communicator rank ``peer`` (identity here;
        group communicators translate)."""
        return peer

    # -- point-to-point ------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        self._check(dest)
        self._check_abort()
        self._charge(payload_nbytes(payload), dest)
        if trace.TRACE_ON:
            self._stamp_send(self.world_rank,
                             self._peer_world_rank(dest), tag)
        name = f"{self._shared.uid}p{self.world_rank}s{next(_PSEQ)}"
        shm.write_segment(name, payload)
        self._shared.queues[self._peer_world_rank(dest)].put(
            (self.world_rank, tag, name)
        )

    def _drain(self, wait: float) -> bool:
        """Pull at most one queued message into the pending store."""
        try:
            src, tag, name = self._shared.queues[self.world_rank].get(
                timeout=wait
            )
        except queue_mod.Empty:
            return False
        payload = shm.read_segment(name)
        shm.unlink_segment(name)
        self._pending.setdefault((src, tag), []).append(payload)
        return True

    def _match(self, wsrc: int, tag: int, consume: bool):
        """Find (and optionally pop) a pending message from world rank
        ``wsrc`` with ``tag``; returns ``(found, payload, tag)``."""
        if tag == ANY_TAG:
            for (s, t), q in self._pending.items():
                if s == wsrc and q:
                    return True, (q.pop(0) if consume else q[0]), t
            return False, None, tag
        q = self._pending.get((wsrc, tag))
        if q:
            return True, (q.pop(0) if consume else q[0]), tag
        return False, None, tag

    def _recv_match(self, wsrc: int, tag: int, block: bool,
                    consume: bool = True):
        deadline = time.monotonic() + self._shared.timeout
        while True:
            found, payload, mtag = self._match(wsrc, tag, consume)
            if found:
                return True, payload, mtag
            self._check_abort()
            if not block:
                if not self._drain(0.0):
                    return False, None, tag
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise MPIRuntimeError(
                    f"recv from rank {wsrc} (tag {tag}) timed out after "
                    f"{self._shared.timeout:.0f}s (sender dead?)"
                )
            self._drain(min(_POLL, remaining))

    def recv(self, source: int, tag: int = 0,
             status: Optional[Status] = None) -> Any:
        self._check(source)
        t_wait = trace.now() if trace.TRACE_ON else 0.0
        _ok, payload, mtag = self._recv_match(
            self._peer_world_rank(source), tag, block=True
        )
        if trace.TRACE_ON:
            self._stamp_recv(self._peer_world_rank(source),
                             self.world_rank, mtag, t_wait)
        if status is not None:
            status.source = source
            status.tag = mtag
            status.nbytes = payload_nbytes(payload)
        return payload

    def _try_recv(self, source: int, tag: int, block: bool):
        ok, payload, _t = self._recv_match(
            self._peer_world_rank(source), tag, block=block
        )
        return ok, payload

    def probe(self, source: int, tag: int = 0,
              status: Optional[Status] = None) -> None:
        self._check(source)
        _ok, payload, mtag = self._recv_match(
            self._peer_world_rank(source), tag, block=True, consume=False
        )
        if status is not None:
            status.source = source
            status.tag = mtag
            status.nbytes = payload_nbytes(payload)

    def iprobe(self, source: int, tag: int = 0) -> bool:
        self._check(source)
        ok, _p, _t = self._recv_match(
            self._peer_world_rank(source), tag, block=False, consume=False
        )
        return ok

    def isend(self, dest: int, payload: Any, tag: int = 0) -> PendingOp:
        self.send(dest, payload, tag)
        return PendingOp(result=None, done=True)

    def irecv(self, source: int, tag: int = 0) -> PendingOp:
        self._check(source)
        return PendingOp(
            poll=lambda block: self._try_recv(source, tag, block)
        )

    def recv_any(self, sources, tag: int = 0):
        """Blocking receive from whichever of ``sources`` delivers first.

        The multi-process transport drains its queue one message at a
        time, so completion really is arrival-ordered: whatever the OS
        queue yields next (from any expected peer) completes next.
        Deadline-bounded and abort-aware like every blocking receive.
        """
        srcs = [(s, self._peer_world_rank(s)) for s in sources]
        if not srcs:
            raise MPIRuntimeError("recv_any needs at least one source")
        for s, _w in srcs:
            self._check(s)
        t_wait = trace.now() if trace.TRACE_ON else 0.0
        deadline = time.monotonic() + self._shared.timeout
        while True:
            for s, wsrc in srcs:
                found, payload, _t = self._match(wsrc, tag, consume=True)
                if found:
                    if trace.TRACE_ON:
                        self._stamp_recv(wsrc, self.world_rank, tag,
                                         t_wait)
                    return s, payload
            self._check_abort()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise MPIRuntimeError(
                    f"recv_any from ranks "
                    f"{sorted(s for s, _ in srcs)} (tag {tag}) timed out "
                    f"after {self._shared.timeout:.0f}s (sender dead?)"
                )
            self._drain(min(_POLL, remaining))

    # -- communicator management ---------------------------------------
    def split(self, color, key: int = 0) -> "ProcGroupComm | None":
        """Partition by color (collective).  Group membership derives
        deterministically from one allgather; group collectives then run
        leader-relayed over reserved point-to-point tags."""
        seq = self._split_seq
        self._split_seq += 1
        info = self.allgather((color, key, self.world_rank))
        if color is None:
            return None
        members = [
            r for _c, _k, r in sorted(
                (e for e in info if e[0] == color),
                key=lambda e: (e[1], e[2]),
            )
        ]
        return ProcGroupComm(self, members, f"{self._ns}/{seq}")

    def make_shared_counter(self) -> shm.ShmCounter:
        """Claim one cross-process shared counter (collective: every
        rank claims the same pool slot).  The leader zeroes it; a
        barrier orders the reset before any use."""
        idx = self._next_counter
        self._next_counter += 1
        if idx >= len(self._shared.counters):
            raise MPIRuntimeError(
                f"shared counter pool exhausted ({idx} counters; the "
                "pool is sized at fork time)"
            )
        counter = shm.ShmCounter(self._shared.counters[idx])
        if self.rank == 0:
            counter.set(0)
        self._barrier_wait()
        return counter

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ProcComm rank={self.rank}/{self.size}>"


#: Tag space reserved for group-communicator internals: far above any
#: tag application code plausibly uses on the world communicator.
_GROUP_TAG_BASE = 1 << 40


class ProcGroupComm(ProcComm):
    """A communicator over a subset of ranks on the proc backend.

    The world barrier and segment namespace cannot serve a subgroup, so
    collectives run a leader relay over point-to-point messages in a
    reserved tag namespace: members send their item to the group
    leader, the leader replies with the assembled board.  Tags derive
    from the group's namespace path (split lineage from the world
    communicator — identical on every member) plus a per-collective
    generation, so concurrent groups and back-to-back collectives
    never cross-match.
    """

    def __init__(self, parent: ProcComm, members: List[int],
                 ns: str) -> None:
        self._shared = parent._shared
        self._network = parent._network
        self._parent = parent
        self._members = list(members)
        self._wrank = parent.world_rank
        self.rank = members.index(parent.world_rank)
        self._gen = 0
        self._split_seq = 0
        self._ns = ns
        self._next_counter = parent._next_counter
        self._pending = parent._pending  # one mailbox per process
        self.bytes_sent = 0
        self.messages_sent = 0
        self.net_time = 0.0
        self._tag_base = (
            _GROUP_TAG_BASE
            + zlib.crc32(ns.encode("ascii")) * (1 << 20)
        )

    @property
    def world_rank(self) -> int:
        return self._wrank

    @property
    def size(self) -> int:
        return len(self._members)

    def _peer_world_rank(self, peer: int) -> int:
        self._check(peer)
        return self._members[peer]

    def _edge_cid(self) -> str:
        # Sibling groups of one split share the namespace string; the
        # leader's world rank (memberships are disjoint) disambiguates.
        return f"g{self._ns}L{self._members[0]}"

    def _charge(self, nbytes: int, dst: Optional[int] = None) -> None:
        # Account on the parent: the per-rank totals shipped to the
        # parent process are the world comm's counters.
        self._parent._charge(
            nbytes, None if dst is None else self._members[dst]
        )

    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        self._check(dest)
        self._check_abort()
        self._charge(payload_nbytes(payload), dest)
        if trace.TRACE_ON:
            self._stamp_send(self.world_rank, self._members[dest], tag)
        name = f"{self._shared.uid}p{self.world_rank}s{next(_PSEQ)}"
        shm.write_segment(name, payload)
        self._shared.queues[self._members[dest]].put(
            (self.world_rank, tag, name)
        )

    def _collective_tags(self) -> Tuple[int, int]:
        gen = self._gen
        self._gen += 1
        base = self._tag_base + (gen % (1 << 19)) * 2
        return base, base + 1

    def _board_exchange(self, item: Any) -> List[Any]:
        t0 = trace.now() if trace.TRACE_ON else 0.0
        up, down = self._collective_tags()
        leader = 0
        if self.rank == leader:
            out = [item] + [
                self._recv_match(self._members[src], up,
                                 block=True)[1]
                for src in range(1, self.size)
            ]
            for dst in range(1, self.size):
                self.send(dst, out, tag=down)
        else:
            self.send(leader, item, tag=up)
            out = self._recv_match(self._members[leader], down,
                                   block=True)[1]
        if trace.TRACE_ON:
            self._stamp_coll("coll", t0)
        return out

    def barrier(self) -> None:
        with trace.span("mpi.barrier"):
            self._board_exchange(None)

    def _barrier_wait(self) -> None:
        self._board_exchange(None)

    def make_shared_counter(self) -> shm.FileCounter:
        """Claim a cross-process shared counter (collective over the
        group).  The pre-forked pool belongs to the world communicator;
        a group created after the fork uses a file-backed counter at a
        path every member derives identically from the group's
        namespace lineage — no communication needed to agree on it."""
        seq = self._next_counter
        self._next_counter += 1
        # Sibling groups of one split share the namespace string, so the
        # leader's world rank (unique per sibling — memberships are
        # disjoint) disambiguates the path.
        path = os.path.join(
            tempfile.gettempdir(),
            f"{self._shared.uid}c{zlib.crc32(self._ns.encode()):08x}"
            f"L{self._members[0]}n{seq}",
        )
        counter = shm.FileCounter(path)
        if self.rank == 0:
            counter.set(0)
        self._barrier_wait()
        return counter

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ProcGroupComm rank={self.rank}/{self.size} "
                f"world={self._wrank}>")


# ----------------------------------------------------------------------
# Worker harness
# ----------------------------------------------------------------------
def _worker_main(shared: _ProcShared, rank: int, fn, args,
                 trace_on: bool, network: Optional[NetworkModel]) -> None:
    # Rank attribution for the tracer and phase accounting: the same
    # thread-name convention the thread backend uses.  The explicit pin
    # matters: if the parent's main thread ever resolved its own rank
    # (any tracing or flight note in the parent does), this forked
    # child inherits that cached 0 and the rename alone would not
    # shake it.
    threading.current_thread().name = f"rank-{rank}"
    trace.set_current_rank(rank)
    trace.set_tracing(trace_on)
    trace.TRACER.clear()
    # Fresh flight rings (fork inherits the parent's), and a beacon
    # writing this rank's last completed round into shared memory so
    # the parent can report it even if this process is killed.
    flight.RECORDER.clear()
    slot = shared.rounds[rank]

    def _beacon(index: int, _slot=slot) -> None:
        _slot.value = index

    flight.RECORDER.set_beacon(_beacon)
    comm = ProcComm(shared, rank, network=network)
    outcome: Tuple[str, Any]
    try:
        with trace.span("spmd.rank", rank=rank):
            result = fn(comm, *args)
        outcome = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - must propagate all
        shared.abort.set()
        shared.barrier.abort()
        flight.note("rank_error", rank=rank,
                    type=type(exc).__name__, message=str(exc))
        outcome = ("err", exc)
    report = {
        "rank": rank,
        "bytes_sent": comm.bytes_sent,
        "messages_sent": comm.messages_sent,
        "net_time": comm.net_time,
        "spans": trace.TRACER.export_state() if trace.TRACE_ON else {},
        "flight": flight.RECORDER.export_state(),
    }
    # Pre-pickle in the worker thread so an unpicklable result raises
    # *here* (mp.Queue pickles in a feeder thread, where the error
    # would be swallowed and the parent would see a silent no-show).
    try:
        blob = pickle.dumps((outcome[0], outcome[1], report), protocol=5)
    except Exception as exc:  # noqa: BLE001
        kind = "result" if outcome[0] == "ok" else "exception"
        blob = pickle.dumps(
            ("err",
             MPIRuntimeError(f"rank {rank}: unpicklable {kind}: {exc}"),
             report),
            protocol=5,
        )
    shared.results.put(blob)


def _sweep_segments(uid: str) -> None:
    """Remove leftover segments and counter files of this run (crashed
    ranks leak theirs)."""
    for base in ("/dev/shm", tempfile.gettempdir()):
        try:
            names = os.listdir(base)
        except OSError:  # pragma: no cover - non-Linux shm layout
            continue
        for n in names:
            if n.startswith(uid):
                try:
                    os.unlink(os.path.join(base, n))
                except OSError:  # pragma: no cover - racing unlink
                    pass


def run_spmd_proc(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    network: Optional[NetworkModel] = None,
    world_out: Optional[list] = None,
    timeout: Optional[float] = None,
    start_method: Optional[str] = None,
) -> List[Any]:
    """Run ``fn(comm, *args)`` on ``size`` rank *processes*.

    Same contract as :func:`repro.mpi.runtime.run_spmd`: returns
    per-rank results, re-raises the first rank failure, and fills
    ``world_out`` with a :class:`ProcWorldReport`.  ``fn``, ``args``
    and every rank's return value must be picklable.  The start method
    defaults to ``fork`` (closures over test fixtures keep working);
    override with ``start_method=`` or ``REPRO_PROC_START``.
    """
    import multiprocessing as mp

    if size < 1:
        raise MPIRuntimeError(f"world size must be >= 1, got {size}")
    method = start_method or os.environ.get("REPRO_PROC_START", "fork")
    ctx = mp.get_context(method)
    tmo = _timeout_from_env(timeout)
    uid = (f"rp{os.getpid():x}x"
           f"{int(time.monotonic() * 1e6) & 0xFFFFFF:x}"
           f"w{next(_WSEQ):x}")
    # Fresh flight state for this world: sim worlds run in parent
    # threads and leave last-round markers behind; without the clear a
    # stale marker would win the max() against a dead rank's beacon.
    flight.RECORDER.clear()
    report = ProcWorldReport(size)
    if world_out is not None:
        world_out.append(report)

    with _LAUNCH_LOCK:
        shared = _ProcShared(ctx, size, tmo, uid)
        procs = [
            ctx.Process(target=_worker_main,
                        args=(shared, r, fn, args, trace.TRACE_ON,
                              network),
                        name=f"rank-{r}")
            for r in range(size)
        ]
        for p in procs:
            p.start()

    results: List[Any] = [None] * size
    failures: List[Tuple[int, BaseException]] = []
    died: List[int] = []
    reported: set = set()
    dead_since: Dict[int, float] = {}
    deadline = time.monotonic() + tmo + 10.0
    try:
        while len(reported) < size:
            try:
                blob = shared.results.get(timeout=_POLL)
            except queue_mod.Empty:
                blob = None
            if blob is not None:
                kind, value, rep = pickle.loads(blob)
                r = rep["rank"]
                reported.add(r)
                report.bytes_sent[r] = rep["bytes_sent"]
                report.messages_sent[r] = rep["messages_sent"]
                report.net_time[r] = rep["net_time"]
                if rep["spans"]:
                    trace.TRACER.ingest_state(rep["spans"])
                if rep.get("flight"):
                    flight.RECORDER.ingest_state(rep["flight"])
                if kind == "ok":
                    results[r] = value
                else:
                    failures.append((r, value))
                continue
            # No result: check for ranks that died without reporting.
            # A clean exit (code 0) races its own result delivery —
            # give it _DEATH_GRACE to drain before declaring a no-show,
            # so a slow queue never aborts a healthy world.
            now = time.monotonic()
            dead = []
            for r, p in enumerate(procs):
                if r in reported or p.is_alive():
                    continue
                first = dead_since.setdefault(r, now)
                if p.exitcode == 0 and now - first < _DEATH_GRACE:
                    continue
                dead.append(r)
            if dead and not shared.abort.is_set():
                shared.abort.set()
                shared.barrier.abort()
            for r in dead:
                reported.add(r)
                died.append(r)
                failures.append((r, MPIRuntimeError(
                    f"rank {r} died without reporting "
                    f"(exit code {procs[r].exitcode})"
                )))
            if time.monotonic() > deadline:
                shared.abort.set()
                shared.barrier.abort()
                for r in range(size):
                    if r not in reported:
                        reported.add(r)
                        failures.append((r, MPIRuntimeError(
                            f"rank {r} unresponsive past the "
                            f"{tmo:.0f}s world timeout"
                        )))
                break
    finally:
        for p in procs:
            p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - stuck rank
                p.terminate()
                p.join(timeout=5.0)
        _sweep_segments(uid)

    if failures:
        # Prefer a primary failure over secondary broken-world errors,
        # matching the thread backend's first-failure-wins contract.
        primary_rank, primary = next(
            ((r, f) for r, f in failures
             if not isinstance(f, MPIRuntimeError)),
            failures[0],
        )
        # A rank that died without reporting (SIGKILL, OOM) is the
        # failure to name, even when a survivor's error drained first.
        if died and not any(not isinstance(f, MPIRuntimeError)
                            for _r, f in failures):
            primary_rank = min(died)
        flight.dump_on_abort(
            primary, backend="proc",
            failed_rank=primary_rank,
            failed_ranks=sorted({r for r, _f in failures}),
            last_rounds={
                r: shared.rounds[r].value for r in range(size)
                if shared.rounds[r].value >= 0
            },
            world_size=size,
        )
        raise primary
    return results

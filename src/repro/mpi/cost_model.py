"""Communication cost accounting.

Payload sizes are measured the way the paper counts them: 16 bytes per
ol-list tuple, 8 bytes per integer of a compact representation, the raw
``nbytes`` of data arrays.  Each rank accumulates its own wire time from a
latency+bandwidth :class:`NetworkModel`; since ranks communicate in
parallel, the harness adds the *maximum* per-rank wire time to the
measured CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkModel", "payload_nbytes"]


def payload_nbytes(obj) -> int:
    """Wire size of a message payload in bytes.

    Honors objects that know their own wire size (``wire_bytes`` for
    compact fileviews, ``nbytes_repr`` for ol-lists — 16 bytes/tuple as in
    the paper's accounting), NumPy buffers, and plain Python containers
    (8 bytes per scalar).
    """
    if obj is None:
        return 0
    wire = getattr(obj, "wire_bytes", None)
    if wire is not None:
        return int(wire)
    rep = getattr(obj, "nbytes_repr", None)
    if rep is not None:
        return int(rep)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set)):
        return sum(payload_nbytes(x) for x in obj)
    return 64  # unknown object: flat charge


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth model of the message-passing interconnect.

    Defaults approximate the intra-node MPI of the paper's SX-6 (shared
    memory transport: microsecond latency, multi-GB/s bandwidth).

    A multi-node topology — the "different communication topologies" of
    the paper's outlook — is modelled by ``ranks_per_node``: messages
    between ranks on different nodes use the ``inter_*`` parameters
    (defaults approximate the SX IXS crossbar: higher latency, lower
    per-link bandwidth than shared memory).
    """

    latency: float = 3e-6  # seconds per message (intra-node)
    bandwidth: float = 8.0e9  # bytes/second (intra-node)
    ranks_per_node: int = 0  # 0 → single node / uniform network
    inter_latency: float = 12e-6
    inter_bandwidth: float = 2.0e9

    def is_inter_node(self, src: int, dst: int) -> bool:
        """True when ``src`` and ``dst`` live on different nodes."""
        if self.ranks_per_node <= 0:
            return False
        return src // self.ranks_per_node != dst // self.ranks_per_node

    def transfer_time(self, nbytes: int, src: int = 0,
                      dst: int = 0) -> float:
        """Simulated wire seconds for one message of ``nbytes``."""
        if self.is_inter_node(src, dst):
            return self.inter_latency + nbytes / self.inter_bandwidth
        return self.latency + nbytes / self.bandwidth

"""Communication cost accounting.

Payload sizes are measured the way the paper counts them: 16 bytes per
ol-list tuple, 8 bytes per integer of a compact representation, the raw
``nbytes`` of data arrays.  Each rank accumulates its own wire time from a
latency+bandwidth :class:`NetworkModel`; since ranks communicate in
parallel, the harness adds the *maximum* per-rank wire time to the
measured CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "NetworkModel",
    "StorageModel",
    "PIPELINE_DEPTH",
    "PIPELINE_MIN_ROUNDS",
    "choose_access_strategy",
    "choose_domain_align",
    "choose_pipeline",
    "payload_nbytes",
]

#: Minimum round count at which ``cb_pipeline=auto`` turns pipelining
#: on.  A single-round collective has nothing to overlap with — the
#: drain would serialize right behind the submit and the plan would
#: only pay the worker hand-off — so the pipeline needs at least two
#: rounds to win.
PIPELINE_MIN_ROUNDS = 2

#: Read-prefetch depth of the pipelined plan shape: how many windows
#: ahead of the current round an IOP may have in flight.  Depth 1
#: (classic double buffering) only hides one round of exchange time per
#: window; when per-window device time exceeds one round of CPU, the
#: drain stalls every round.  Depth 2 gives the device two rounds of
#: slack per window at the cost of one more in-flight window per IOP —
#: still O(cb_buffer_size) staging, tracked by
#: ``pipeline_inflight_peak_bytes``.
PIPELINE_DEPTH = 2


def payload_nbytes(obj) -> int:
    """Wire size of a message payload in bytes.

    Honors objects that know their own wire size (``wire_bytes`` for
    compact fileviews, ``nbytes_repr`` for ol-lists — 16 bytes/tuple as in
    the paper's accounting), NumPy buffers, and plain Python containers
    (8 bytes per scalar).
    """
    if obj is None:
        return 0
    wire = getattr(obj, "wire_bytes", None)
    if wire is not None:
        return int(wire)
    rep = getattr(obj, "nbytes_repr", None)
    if rep is not None:
        return int(rep)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set)):
        return sum(payload_nbytes(x) for x in obj)
    return 64  # unknown object: flat charge


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth model of the message-passing interconnect.

    Defaults approximate the intra-node MPI of the paper's SX-6 (shared
    memory transport: microsecond latency, multi-GB/s bandwidth).

    A multi-node topology — the "different communication topologies" of
    the paper's outlook — is modelled by ``ranks_per_node``: messages
    between ranks on different nodes use the ``inter_*`` parameters
    (defaults approximate the SX IXS crossbar: higher latency, lower
    per-link bandwidth than shared memory).
    """

    latency: float = 3e-6  # seconds per message (intra-node)
    bandwidth: float = 8.0e9  # bytes/second (intra-node)
    ranks_per_node: int = 0  # 0 → single node / uniform network
    inter_latency: float = 12e-6
    inter_bandwidth: float = 2.0e9

    def is_inter_node(self, src: int, dst: int) -> bool:
        """True when ``src`` and ``dst`` live on different nodes."""
        if self.ranks_per_node <= 0:
            return False
        return src // self.ranks_per_node != dst // self.ranks_per_node

    def transfer_time(self, nbytes: int, src: int = 0,
                      dst: int = 0) -> float:
        """Simulated wire seconds for one message of ``nbytes``."""
        if self.is_inter_node(src, dst):
            return self.inter_latency + nbytes / self.inter_bandwidth
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class StorageModel:
    """First-order file access cost: per-access latency plus bytes/bw.

    Defaults approximate a parallel file system doing small-request I/O
    (paper §2.2's motivation for data sieving): each access pays a high
    fixed cost, so many small block accesses lose to a few large window
    accesses even though the windows move extra gap bytes.
    """

    latency: float = 1.0e-4  # seconds per file access
    bandwidth: float = 5.0e8  # bytes/second for contiguous transfer

    def access_time(self, nbytes: int, naccesses: int = 1) -> float:
        """Model seconds for ``naccesses`` accesses moving ``nbytes``."""
        return naccesses * self.latency + nbytes / self.bandwidth

    def fingerprint(self) -> tuple:
        """The strategy-relevant parameters, for plan-cache keys (a
        planner swapping storage models must never replay plans whose
        sieve-vs-direct decision was taken under the old one)."""
        return (self.latency, self.bandwidth)


def choose_domain_align(
    *,
    total_bytes: int,
    niops: int,
    ndisks: int,
    stripe_size: int,
    max_ft_extent: int,
) -> str:
    """Pick a file-domain partitioning strategy when the
    ``cb_domain_align`` hint is unset.

    Stripe alignment pays off when domains are large enough that whole
    stripes can be owned exclusively (no two IOPs contending for one
    stripe); block alignment pays off when domains span several fileview
    block periods, so snapping boundaries to block edges saves the IOPs
    from splitting a block's read-modify-write.  Tiny accesses keep
    ROMIO's even byte split — alignment would only skew the domains.
    """
    if niops <= 1 or total_bytes <= 0:
        return "even"
    per_domain = total_bytes // niops
    if ndisks > 1 and per_domain >= stripe_size:
        return "stripe"
    if max_ft_extent > 1 and per_domain >= 4 * max_ft_extent:
        return "block"
    return "even"


def choose_pipeline(*, mode: str, nrounds: int) -> bool:
    """Pipeline the collective rounds?  Resolves the ``cb_pipeline``
    hint to a decision.

    Deterministic in rank-identical inputs (the hint and the round
    count both are), so every rank reaches the same answer without a
    coordinating collective — required, because a pipelined plan
    exchanges point-to-point while a serial one calls alltoall, and the
    two cannot interoperate within one round.
    """
    if nrounds <= 0:
        return False
    if mode == "on":
        return True
    if mode == "off":
        return False
    return nrounds >= PIPELINE_MIN_ROUNDS


def choose_access_strategy(
    model: StorageModel,
    *,
    write: bool,
    nbytes: int,
    span: int,
    est_blocks: int,
    bufsize: int,
) -> str:
    """Sieve or go direct?  Returns ``"sieve"`` or ``"direct"``.

    Compares the modelled cost of one file access per block against the
    windowed alternative: a sieved write pays a pre-read *and* a
    write-back per window (read-modify-write), a sieved read pays one
    read per window, and both move the whole window span including gaps.
    """
    if nbytes <= 0 or span <= 0:
        return "direct"
    nwin = -(-span // max(1, bufsize))  # ceil
    t_direct = model.access_time(nbytes, est_blocks)
    per_window = 2 if write else 1
    t_sieve = model.access_time(per_window * span, per_window * nwin)
    return "sieve" if t_sieve <= t_direct else "direct"

"""Shared-memory data plane for the multi-process SPMD runtime.

The proc backend (:mod:`repro.mpi.proc`) moves payload bytes between
ranks through POSIX shared memory, not through pipes: a sender
serializes its payload with pickle protocol 5 so that every NumPy
buffer is carried *out of band*, then lays metadata and raw buffers
into one :class:`multiprocessing.shared_memory.SharedMemory` segment.
Receivers attach the segment by name and reconstruct the object with
writable copies of the buffers.  Only the segment *name* (a short
string) ever crosses a queue.

Wire format of one segment::

    [u64 meta_len][u32 nbufs] [meta: pickle-5 bytes]
    ([u64 buf_len][buf bytes]) * nbufs

All integers little-endian.  ``meta`` is the pickle stream with its
out-of-band buffers stripped; the ``nbufs`` buffers follow in callback
order, which is the order ``pickle.loads(..., buffers=...)`` consumes
them.

Lifecycle: each segment is created by exactly one rank and unlinked by
that rank after a barrier guarantees every peer has read it.  Python's
per-process ``resource_tracker`` would otherwise double-track (and
noisily "clean up") segments whose lifetime we manage explicitly, so
every create/attach immediately unregisters from it.  The parent
harness additionally sweeps leftover ``/dev/shm`` entries of a run's
namespace on teardown, so a crashed rank cannot leak segments.
"""

from __future__ import annotations

import contextlib
import fcntl
import os
import pickle
import struct
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Any, List, Tuple

from repro.errors import MPIRuntimeError

__all__ = [
    "FileCounter",
    "ShmCounter",
    "read_segment",
    "segment_size",
    "serialize",
    "unlink_segment",
    "write_segment",
]

_HEADER = struct.Struct("<QI")
_BUFLEN = struct.Struct("<Q")


_tracker_mu = threading.Lock()


@contextlib.contextmanager
def _untracked():
    """Open a ``SharedMemory`` without resource-tracker registration.

    Segment lifetime is managed by the runtime (explicit unlink after a
    barrier, plus a parent-side sweep) — per-process tracking would
    both double-unlink live segments at child exit and flood stderr
    with unregister bookkeeping errors, because under fork all ranks
    share one tracker process.  Python 3.13 grew ``track=False`` for
    exactly this; on 3.11 the registration hook is stubbed out instead.
    """
    with _tracker_mu:
        orig_reg = resource_tracker.register
        orig_unreg = resource_tracker.unregister
        resource_tracker.register = lambda *a, **k: None
        resource_tracker.unregister = lambda *a, **k: None
        try:
            yield
        finally:
            resource_tracker.register = orig_reg
            resource_tracker.unregister = orig_unreg


def serialize(obj: Any) -> Tuple[bytes, List[memoryview], int]:
    """Pickle ``obj`` with out-of-band buffers.

    Returns ``(meta, raw_buffers, total_segment_bytes)``.
    """
    picked: List[pickle.PickleBuffer] = []
    meta = pickle.dumps(obj, protocol=5, buffer_callback=picked.append)
    raws = [pb.raw() for pb in picked]
    total = _HEADER.size + len(meta) + sum(
        _BUFLEN.size + r.nbytes for r in raws
    )
    return meta, raws, total


def segment_size(obj: Any) -> int:
    """Bytes the segment for ``obj`` would occupy (metadata included)."""
    return serialize(obj)[2]


def write_segment(name: str, obj: Any) -> int:
    """Create segment ``name`` holding ``obj``; returns its byte size."""
    meta, raws, total = serialize(obj)
    try:
        with _untracked():
            seg = shared_memory.SharedMemory(name=name, create=True,
                                             size=max(total, 1))
    except FileExistsError:
        raise MPIRuntimeError(
            f"shared-memory segment {name!r} already exists (stale "
            "segment from a crashed run? remove it from /dev/shm)"
        ) from None
    try:
        buf = seg.buf
        _HEADER.pack_into(buf, 0, len(meta), len(raws))
        pos = _HEADER.size
        buf[pos:pos + len(meta)] = meta
        pos += len(meta)
        for r in raws:
            _BUFLEN.pack_into(buf, pos, r.nbytes)
            pos += _BUFLEN.size
            buf[pos:pos + r.nbytes] = r  # .raw() views are 1-D bytes
            pos += r.nbytes
    finally:
        seg.close()
    return total


def read_segment(name: str) -> Any:
    """Attach segment ``name`` and reconstruct its object.

    Buffers come back as *writable, independent* copies (``bytearray``
    backed), so a receiver may mutate a received array without touching
    the sender's memory — matching the by-value semantics of a real MPI
    message.
    """
    try:
        with _untracked():
            seg = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        raise MPIRuntimeError(
            f"shared-memory segment {name!r} vanished before it was "
            "read (sender died?)"
        ) from None
    try:
        buf = seg.buf
        meta_len, nbufs = _HEADER.unpack_from(buf, 0)
        pos = _HEADER.size
        meta = bytes(buf[pos:pos + meta_len])
        pos += meta_len
        bufs: List[bytearray] = []
        for _ in range(nbufs):
            (ln,) = _BUFLEN.unpack_from(buf, pos)
            pos += _BUFLEN.size
            bufs.append(bytearray(buf[pos:pos + ln]))
            pos += ln
        return pickle.loads(meta, buffers=bufs)
    finally:
        seg.close()


def unlink_segment(name: str) -> None:
    """Remove segment ``name`` (idempotent)."""
    try:
        with _untracked():
            seg = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return
    seg.close()
    try:
        with _untracked():  # unlink() also pokes the tracker
            seg.unlink()
    except FileNotFoundError:  # pragma: no cover - racing sweep
        pass


class ShmCounter:
    """Cross-process shared integer with ``get``/``set``/``add``.

    Wraps a pre-allocated ``multiprocessing.Value('q')`` (created by the
    parent before fork, inherited by every rank).  ``add`` is the
    fetch-and-add the shared file pointer needs: it returns the value
    *before* the increment, atomically.
    """

    def __init__(self, value) -> None:
        self._val = value

    def get(self) -> int:
        with self._val.get_lock():
            return self._val.value

    def set(self, v: int) -> None:
        with self._val.get_lock():
            self._val.value = v

    def add(self, delta: int) -> int:
        with self._val.get_lock():
            old = self._val.value
            self._val.value = old + delta
            return old


class FileCounter:
    """Cross-process shared integer backed by a small file.

    Unlike :class:`ShmCounter` this needs no pre-fork allocation —
    every process just opens the same path — which is what
    sub-communicators created *after* the ranks forked must use.
    Atomicity comes from an exclusive ``fcntl`` lock around each
    read-modify-write.  Pickles by path (each process holds its own
    descriptor).
    """

    _INT = struct.Struct("<q")

    def __init__(self, path: str) -> None:
        self.path = path
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)

    def __reduce__(self):
        return (FileCounter, (self.path,))

    @contextlib.contextmanager
    def _locked(self):
        fcntl.lockf(self._fd, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.lockf(self._fd, fcntl.LOCK_UN)

    def _read(self) -> int:
        data = os.pread(self._fd, self._INT.size, 0)
        return self._INT.unpack(data)[0] if len(data) == self._INT.size \
            else 0

    def get(self) -> int:
        with self._locked():
            return self._read()

    def set(self, v: int) -> None:
        with self._locked():
            os.pwrite(self._fd, self._INT.pack(v), 0)

    def add(self, delta: int) -> int:
        with self._locked():
            old = self._read()
            os.pwrite(self._fd, self._INT.pack(old + delta), 0)
            return old

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except OSError:
            pass

"""Striped multi-server storage backend with request shipping.

A :class:`ShardedFileSystem` stripes every logical file round-robin over
``nshards`` *server processes* per the :class:`StripingConfig` geometry:
stripe ``s`` of a file lives on shard ``s % nshards`` at local offset
``(s // nshards) * stripe_size + (off % stripe_size)``.  Each server
wraps an ordinary :class:`~repro.fs.filesystem.OsFileSystem` (or
``SimFileSystem``) holding its shard of the bytes, and speaks a small
pickled message protocol over a unix-domain socket; payloads at or above
:data:`SHIP_SHM_THRESHOLD` travel out of band through the POSIX
shared-memory data plane of :mod:`repro.mpi.shm`.

A :class:`ShardedFile` exposes the same surface as
:class:`~repro.fs.simfile.SimFile` / :class:`~repro.fs.posix.OsFile`
(``pread_into``/``pwrite``/``lock_range``/``truncate``/...), so the
whole planner/executor stack runs against it unchanged — every byte of
a plain access becomes per-shard wire requests.  On top of that it
offers the two noncontiguous *request shipping* protocols of
"Noncontiguous I/O through PVFS" (see ``docs/shipping.md``):

* **list-I/O** — the client flattens an access into per-shard
  offset/length lists and ships the exploded lists;
* **datatype-I/O** — the client ships the compact fileview descriptor
  once per (shard, view) and then only ``(view id, data range, file
  delta)`` per access; the *server* flattens on the fly with the same
  :func:`split_blocks` kernel and the shared
  :class:`~repro.core.fileview_cache.CompactFileview` navigation.

Locking is layered per shard: a thread-level
:class:`~repro.fs.locks.RangeLockManager` arbitrates client
connections inside each server, and the backing file's own lock manager
(real ``fcntl`` locks for the ``os`` flavor, with residual-unlock
bookkeeping) makes the ranges visible on disk.  Every connection tracks
the locks it acquired and releases them in reverse order when the
connection drops, so a dying client cannot strand ranges on surviving
shards.  Deadlock freedom follows from the client-side ordering
discipline: shards are always locked in ascending shard id, ranges in
ascending local offset.

Crash forensics: each server maintains a *beacon file* (8-byte
little-endian round counter, updated via ``pwrite`` so it survives
``SIGKILL``) plus a pid file under the control directory; a client that
finds a shard dead reads the beacon, drops a ``ship_dead_shard``
breadcrumb in the flight recorder and raises
:class:`~repro.errors.FileSystemError`, which aborts the world through
the normal first-failure machinery.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import struct
import tempfile
import threading
import time
from multiprocessing import get_context
from multiprocessing.connection import Client, Listener
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FileSystemError
from repro.fs.filesystem import OsFileSystem, SimFileSystem
from repro.fs.locks import RangeLockManager
from repro.fs.stats import DeviceModel, FileStats
from repro.fs.striping import StripingConfig
from repro.obs import flight

__all__ = [
    "SHIP_SHM_THRESHOLD",
    "ShardedFile",
    "ShardedFileSystem",
    "global_size",
    "local_size",
    "split_blocks",
    "split_extent",
    "to_global",
    "to_local",
]

#: Payloads at or above this many bytes travel through a POSIX shm
#: segment; smaller ones ride inline in the pickled control message.
SHIP_SHM_THRESHOLD = 1 << 16

# Modeled wire costs (bytes) — what a compact binary encoding of the
# control messages would occupy.  Used for the descriptor-vs-payload
# accounting of ``bench_shipping.py``; the actual pickle stream is an
# implementation convenience, not the thing being measured.
WIRE_HEADER_BYTES = 32      # op, path id, round, count
WIRE_EXTENT_BYTES = 16      # (offset, length) int64 pair
WIRE_DT_PARAM_BYTES = 48    # (view id, d_lo, d_hi, file delta)

_BEACON = struct.Struct("<q")
_SEQ = itertools.count(1)


# ----------------------------------------------------------------------
# Round-robin shard geometry (pure functions; property-tested).
# ----------------------------------------------------------------------

def to_local(offset: int, stripe_size: int, ndisks: int) -> Tuple[int, int]:
    """Map a global byte ``offset`` to ``(shard, local_offset)``."""
    s = offset // stripe_size
    return s % ndisks, (s // ndisks) * stripe_size + (offset - s * stripe_size)


def to_global(shard: int, local: int, stripe_size: int, ndisks: int) -> int:
    """Inverse of :func:`to_local`."""
    row = local // stripe_size
    return (row * ndisks + shard) * stripe_size + (local - row * stripe_size)


def local_size(shard: int, gsize: int, stripe_size: int, ndisks: int) -> int:
    """Bytes shard ``shard`` holds of a file of global size ``gsize``."""
    if gsize <= 0:
        return 0
    full, rem = divmod(gsize, stripe_size)
    q, r = divmod(full, ndisks)
    n = (q + (1 if shard < r else 0)) * stripe_size
    if rem and shard == full % ndisks:
        n += rem
    return n


def global_size(sizes, stripe_size: int, ndisks: int) -> int:
    """Global file size implied by per-shard local sizes (the inverse of
    :func:`local_size` over the shard that holds the last byte)."""
    g = 0
    for k, loc in enumerate(sizes):
        if loc <= 0:
            continue
        row, w = divmod(loc - 1, stripe_size)
        g = max(g, (row * ndisks + k) * stripe_size + w + 1)
    return g


def split_extent(offset: int, nbytes: int, stripe_size: int, ndisks: int):
    """Split a contiguous ``[offset, offset + nbytes)`` at stripe
    boundaries: a list of ``(shard, local_off, length, data_off)`` in
    ascending file order (``data_off`` indexes the access buffer)."""
    out = []
    pos, end = offset, offset + nbytes
    while pos < end:
        s = pos // stripe_size
        ln = min(end, (s + 1) * stripe_size) - pos
        out.append((s % ndisks,
                    (s // ndisks) * stripe_size + (pos - s * stripe_size),
                    ln, pos - offset))
        pos += ln
    return out


def split_blocks(offsets, lengths, stripe_size: int, ndisks: int
                 ) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Split absolute file blocks at stripe boundaries and group by shard.

    Returns ``{shard: (local_offs, local_lens, data_offs)}`` with each
    shard's sub-extents in ascending file order.  ``data_offs`` index
    the concatenated data stream of the input blocks, so a payload built
    (or scattered) per shard in this order is exactly the shard's bytes
    of the access.  Client and server both flatten through this one
    kernel, which is what makes the two shipping protocols byte-
    equivalent regardless of how either side coalesced its block list.
    """
    offs = np.asarray(offsets, dtype=np.int64).reshape(-1)
    lens = np.asarray(lengths, dtype=np.int64).reshape(-1)
    keep = lens > 0
    if not keep.all():
        offs, lens = offs[keep], lens[keep]
    if offs.size == 0:
        return {}
    first = offs // stripe_size
    counts = (offs + lens - 1) // stripe_size - first + 1
    total = int(counts.sum())
    idx = np.repeat(np.arange(offs.size, dtype=np.int64), counts)
    base = np.repeat(np.cumsum(counts) - counts, counts)
    stripe = first[idx] + (np.arange(total, dtype=np.int64) - base)
    ext_lo = np.maximum(offs[idx], stripe * stripe_size)
    ext_len = (np.minimum(offs[idx] + lens[idx], (stripe + 1) * stripe_size)
               - ext_lo)
    dstart = np.repeat(np.cumsum(lens) - lens, counts)
    d_off = dstart + (ext_lo - offs[idx])
    shard = stripe % ndisks
    local = (stripe // ndisks) * stripe_size + (ext_lo - stripe * stripe_size)
    out = {}
    for k in np.unique(shard):
        m = shard == k
        out[int(k)] = (local[m], ext_len[m], d_off[m])
    return out


def coalesce_ranges(ranges):
    """Merge adjacent/overlapping ``(lo, hi)`` ranges (assumed sorted)."""
    out: List[Tuple[int, int]] = []
    for lo, hi in ranges:
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


# ----------------------------------------------------------------------
# Payload transport: inline for small payloads, shm segment otherwise.
# ----------------------------------------------------------------------

def _pack_payload(arr: np.ndarray):
    arr = np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
    if arr.nbytes >= SHIP_SHM_THRESHOLD:
        from repro.mpi import shm

        name = f"shipd{os.getpid():x}x{next(_SEQ):x}"
        shm.write_segment(name, arr)
        return ("shm", name, arr.nbytes)
    return ("inline", arr, arr.nbytes)


def _unpack_payload(ref) -> np.ndarray:
    if ref[0] == "shm":
        from repro.mpi import shm

        data = shm.read_segment(ref[1])
        shm.unlink_segment(ref[1])
    else:
        data = ref[1]
    if isinstance(data, np.ndarray):
        return data.view(np.uint8).reshape(-1)
    return np.frombuffer(data, dtype=np.uint8)


def _ctrl_dir(root: str) -> str:
    """Short, root-derived control directory (unix socket paths are
    limited to ~100 chars; pytest tmp roots routinely exceed that)."""
    digest = hashlib.blake2s(
        os.path.abspath(str(root)).encode()).hexdigest()[:12]
    return os.path.join(tempfile.gettempdir(), f"shipd-{digest}")


# ----------------------------------------------------------------------
# Server process.
# ----------------------------------------------------------------------

class _ServerState:
    def __init__(self, fs, shard, nshards, stripe_size, beacon_fd):
        self.fs = fs
        self.shard = shard
        self.nshards = nshards
        self.ss = stripe_size
        self.beacon_fd = beacon_fd
        self.last_round = -1
        self.bmu = threading.Lock()
        self.stop = threading.Event()
        self.listener = None
        self.sock = None
        self.views: Dict[tuple, object] = {}
        self.vmu = threading.Lock()
        # Thread-level lock managers arbitrating client connections
        # (fcntl never conflicts between threads of one process), plus a
        # published currently-held list for introspection.
        self.tlocks: Dict[str, RangeLockManager] = {}
        self.held_pub: Dict[str, List[Tuple[int, int]]] = {}
        self.lmu = threading.Lock()
        self.cmu = threading.Lock()
        self.counters = {
            "requests": 0, "reads": 0, "writes": 0,
            "bytes_read": 0, "bytes_written": 0,
            "lock_acquires": 0, "lock_releases": 0, "lock_bytes": 0,
            "view_installs": 0, "dt_reads": 0, "dt_writes": 0,
        }

    def bump(self, **deltas) -> None:
        with self.cmu:
            for key, d in deltas.items():
                self.counters[key] += d

    def beacon(self, rnd) -> None:
        if rnd is None or rnd < 0:
            return
        with self.bmu:
            if rnd > self.last_round:
                self.last_round = rnd
                os.pwrite(self.beacon_fd, _BEACON.pack(rnd), 0)


def _read_extents(st: _ServerState, path, loffs, lens, rnd):
    """Read per-extent into one zero-filled payload; returns
    ``(payload_ref, short)`` where ``short`` is ``None`` or the
    ``(payload position, local offset, length, bytes got)`` of the
    first short read — enough for the client to reconstruct the exact
    failing extent whatever its own extent granularity is."""
    f = st.fs.create(path, exist_ok=True)
    loffs = np.asarray(loffs, dtype=np.int64).reshape(-1)
    lens = np.asarray(lens, dtype=np.int64).reshape(-1)
    total = int(lens.sum())
    buf = np.zeros(total, dtype=np.uint8)
    pos, short = 0, None
    for i in range(loffs.size):
        o, ln = int(loffs[i]), int(lens[i])
        got = f.pread_into(o, buf[pos:pos + ln])
        if got < ln and short is None:
            short = (pos, o, ln, got)
        pos += ln
    st.beacon(rnd)
    st.bump(reads=1, bytes_read=total)
    return _pack_payload(buf), short


def _write_extents(st: _ServerState, path, loffs, lens, payload_ref, rnd):
    f = st.fs.create(path, exist_ok=True)
    data = _unpack_payload(payload_ref)
    loffs = np.asarray(loffs, dtype=np.int64).reshape(-1)
    lens = np.asarray(lens, dtype=np.int64).reshape(-1)
    pos = 0
    for i in range(loffs.size):
        o, ln = int(loffs[i]), int(lens[i])
        f.pwrite(o, data[pos:pos + ln])
        pos += ln
    st.beacon(rnd)
    st.bump(writes=1, bytes_written=pos)
    return pos


def _shard_parts(st: _ServerState, vid, d_lo, d_hi, fdelta):
    """Server-side on-the-fly flattening for datatype-I/O: walk the
    installed compact fileview over ``[d_lo, d_hi)`` data bytes and keep
    this shard's sub-extents."""
    with st.vmu:
        cv = st.views.get(vid)
    if cv is None:
        raise FileSystemError(
            f"shard {st.shard}: no fileview installed for {vid!r}"
        )
    offs, lens = cv.blocks_for_data(d_lo, d_hi)
    if fdelta:
        offs = offs + fdelta
    parts = split_blocks(offs, lens, st.ss, st.nshards).get(st.shard)
    if parts is None:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return parts[0], parts[1]


def _lock_ranges(st: _ServerState, path, ranges, held):
    f = st.fs.create(path, exist_ok=True)
    with st.lmu:
        tl = st.tlocks.setdefault(path, RangeLockManager())
    nbytes = 0
    for lo, hi in ranges:
        tl.lock(lo, hi)
        try:
            f.lock_range(lo, hi)
        except BaseException:
            tl.unlock(lo, hi)
            raise
        held.append((path, lo, hi))
        with st.lmu:
            st.held_pub.setdefault(path, []).append((lo, hi))
        nbytes += hi - lo
    st.bump(lock_acquires=len(ranges), lock_bytes=nbytes)


def _unlock_one(st: _ServerState, path, lo, hi):
    f = st.fs.create(path, exist_ok=True)
    f.unlock_range(lo, hi)
    with st.lmu:
        tl = st.tlocks.get(path)
        pub = st.held_pub.get(path)
        if pub is not None and (lo, hi) in pub:
            pub.remove((lo, hi))
    if tl is not None:
        tl.unlock(lo, hi)
    st.bump(lock_releases=1)


def _dispatch(st: _ServerState, msg, held):
    op = msg[0]
    st.bump(requests=1)
    if op == "ping":
        return st.shard
    if op == "read":
        _, path, loffs, lens, rnd = msg
        return _read_extents(st, path, loffs, lens, rnd)
    if op == "write":
        _, path, loffs, lens, ref, rnd = msg
        return _write_extents(st, path, loffs, lens, ref, rnd)
    if op == "view":
        _, vid, cv = msg
        with st.vmu:
            st.views[vid] = cv
        st.bump(view_installs=1)
        return None
    if op == "dt_read":
        _, path, vid, d_lo, d_hi, fdelta, rnd = msg
        loffs, lens = _shard_parts(st, vid, d_lo, d_hi, fdelta)
        st.bump(dt_reads=1)
        return _read_extents(st, path, loffs, lens, rnd)
    if op == "dt_write":
        _, path, vid, d_lo, d_hi, fdelta, ref, rnd = msg
        loffs, lens = _shard_parts(st, vid, d_lo, d_hi, fdelta)
        st.bump(dt_writes=1)
        return _write_extents(st, path, loffs, lens, ref, rnd)
    if op == "lock":
        _, path, ranges = msg
        _lock_ranges(st, path, ranges, held)
        return None
    if op == "unlock":
        _, path, ranges = msg
        for lo, hi in reversed(ranges):
            _unlock_one(st, path, lo, hi)
            if (path, lo, hi) in held:
                held.remove((path, lo, hi))
        return None
    if op == "locks_held":
        _, path = msg
        with st.lmu:
            pub = sorted(st.held_pub.get(path, []))
        f = st.fs.create(path, exist_ok=True)
        residual = getattr(f, "locks", None)
        os_held = sorted(residual.held_by_me()) if residual is not None \
            else []
        return {"ranges": pub, "backing": os_held}
    if op == "size":
        if not st.fs.exists(msg[1]):
            return 0
        return st.fs.create(msg[1], exist_ok=True).size
    if op == "truncate":
        st.fs.create(msg[1], exist_ok=True).truncate(msg[2])
        return None
    if op == "create":
        st.fs.create(msg[1], exist_ok=True)
        return None
    if op == "exists":
        return st.fs.exists(msg[1])
    if op == "unlink":
        st.fs.unlink(msg[1])
        return None
    if op == "listdir":
        return st.fs.listdir()
    if op == "counters":
        with st.cmu:
            return dict(st.counters)
    if op == "reset_counters":
        with st.cmu:
            for key in st.counters:
                st.counters[key] = 0
        return None
    raise FileSystemError(f"shard {st.shard}: unknown wire op {op!r}")


def _handle_conn(st: _ServerState, conn):
    held: List[Tuple[str, int, int]] = []
    try:
        while not st.stop.is_set():
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "shutdown":
                try:
                    conn.send(("ok", None))
                except (BrokenPipeError, OSError):
                    pass
                st.stop.set()
                # Closing the listener does not interrupt a blocked
                # accept() on Linux; dial it once so the accept loop
                # wakes up, re-checks the stop flag and exits.
                try:
                    Client(st.sock, family="AF_UNIX").close()
                except OSError:
                    pass
                break
            try:
                reply = ("ok", _dispatch(st, msg, held))
            except Exception as exc:
                reply = ("err", exc)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        # A dropped connection must not strand locks on this shard:
        # release everything it still holds, in reverse acquire order.
        for path, lo, hi in reversed(held):
            try:
                _unlock_one(st, path, lo, hi)
            except Exception:
                pass
        try:
            conn.close()
        except OSError:
            pass


def _serve_shard(root, ctrl, shard, nshards, stripe_size, flavor,
                 ready_path):
    """Server main: one process per shard, one thread per connection."""
    if flavor == "os":
        backing = OsFileSystem(os.path.join(root, f"shard{shard}"))
    else:
        backing = SimFileSystem()
    beacon_fd = os.open(os.path.join(ctrl, f"beacon.{shard}"),
                        os.O_RDWR | os.O_CREAT, 0o644)
    os.pwrite(beacon_fd, _BEACON.pack(-1), 0)
    with open(os.path.join(ctrl, f"pid.{shard}"), "w") as fh:
        fh.write(str(os.getpid()))
    st = _ServerState(backing, shard, nshards, stripe_size, beacon_fd)
    sock = os.path.join(ctrl, f"{shard}.sock")
    try:
        os.unlink(sock)
    except FileNotFoundError:
        pass
    st.listener = Listener(sock, family="AF_UNIX")
    st.sock = sock
    # Publish readiness only after the listener is accepting.
    with open(ready_path, "w") as fh:
        fh.write("ok")
    threads = []
    while not st.stop.is_set():
        try:
            conn = st.listener.accept()
        except OSError:
            break
        if st.stop.is_set():  # the shutdown handler's wake-up dial
            conn.close()
            break
        t = threading.Thread(target=_handle_conn, args=(st, conn),
                             daemon=True, name=f"shipd-{shard}")
        t.start()
        threads.append(t)
    try:
        st.listener.close()
    except OSError:
        pass
    for t in threads:
        t.join(timeout=1.0)
    if hasattr(backing, "close"):
        backing.close()
    os.close(beacon_fd)
    try:
        os.unlink(sock)
    except FileNotFoundError:
        pass


# ----------------------------------------------------------------------
# Client side.
# ----------------------------------------------------------------------

class ShardedFileSystem:
    """A namespace of files striped over ``nshards`` server processes.

    Presents the :class:`~repro.fs.filesystem.SimFileSystem` surface, so
    ``File.open`` and the engines use it like any other backend.  The
    instance that spawns the servers owns them (``close`` shuts them
    down); pickled or forked copies are clients only.  Striping geometry
    is fixed per file system — per-file ``striping`` overrides are
    ignored, as on real parallel file systems where the layout is a
    mount property.
    """

    def __init__(
        self,
        root: str,
        nshards: int = 2,
        stripe_size: int = 1 << 16,
        flavor: str = "os",
        device: DeviceModel | None = None,
        requires_ol_lists: bool = False,
        request_timeout: float = 30.0,
        spawn: bool = True,
    ) -> None:
        if flavor not in ("os", "sim"):
            raise FileSystemError(f"unknown shard flavor {flavor!r}")
        self.root = str(root)
        self.nshards = int(nshards)
        self.stripe_size = int(stripe_size)
        self.flavor = flavor
        self.device = device
        self.striping = StripingConfig(ndisks=self.nshards,
                                       stripe_size=self.stripe_size)
        self.requires_ol_lists = requires_ol_lists
        self.request_timeout = float(request_timeout)
        self.ctrl = _ctrl_dir(self.root)
        self._owner_pid: Optional[int] = None
        self._procs: list = []
        self._files: Dict[str, "ShardedFile"] = {}
        self._conns: Dict[tuple, object] = {}
        self._mu = threading.Lock()
        if spawn:
            self._spawn_servers()

    # -- pickling: configuration only; copies are non-owning clients ---
    def __getstate__(self):
        return (self.root, self.nshards, self.stripe_size, self.flavor,
                self.device, self.requires_ol_lists, self.request_timeout)

    def __setstate__(self, state):
        (root, nshards, stripe_size, flavor, device, req_ol, timeout) = state
        self.__init__(root, nshards=nshards, stripe_size=stripe_size,
                      flavor=flavor, device=device,
                      requires_ol_lists=req_ol, request_timeout=timeout,
                      spawn=False)

    # -- server lifecycle ----------------------------------------------
    def _spawn_servers(self) -> None:
        os.makedirs(self.root, exist_ok=True)
        os.makedirs(self.ctrl, exist_ok=True)
        ctx = get_context("fork")
        self._owner_pid = os.getpid()
        for k in range(self.nshards):
            ready = os.path.join(self.ctrl, f"ready.{k}")
            try:
                os.unlink(ready)
            except FileNotFoundError:
                pass
            p = ctx.Process(
                target=_serve_shard,
                args=(self.root, self.ctrl, k, self.nshards,
                      self.stripe_size, self.flavor, ready),
                daemon=True, name=f"shipd-{k}")
            p.start()
            self._procs.append(p)
        deadline = time.monotonic() + 15.0
        for k in range(self.nshards):
            ready = os.path.join(self.ctrl, f"ready.{k}")
            while not os.path.exists(ready):
                if time.monotonic() > deadline:
                    raise FileSystemError(
                        f"shard {k} server failed to start"
                    )
                time.sleep(0.01)

    def close(self) -> None:
        """Shut servers down (owner) and drop this process' connections."""
        owner = self._owner_pid == os.getpid()
        if owner:
            for k in range(self.nshards):
                try:
                    self._request(k, ("shutdown",))
                except FileSystemError:
                    pass
        # Drop connections before joining the servers: their handler
        # threads block in recv() until the peer closes, and a lingering
        # handler delays the server's exit by its join timeout.
        with self._mu:
            conns, self._conns = self._conns, {}
        for c in conns.values():
            try:
                c.close()
            except OSError:
                pass
        if owner:
            for p in self._procs:
                p.join(timeout=5.0)
            self._procs = []

    # -- wire plumbing -------------------------------------------------
    def _sock(self, k: int) -> str:
        return os.path.join(self.ctrl, f"{k}.sock")

    def _conn(self, k: int):
        key = (os.getpid(), threading.get_ident(), k)
        c = self._conns.get(key)
        if c is None:
            try:
                c = Client(self._sock(k), family="AF_UNIX")
            except OSError as exc:
                self._shard_dead(k, exc)
            with self._mu:
                self._conns[key] = c
        return c

    def _drop_conn(self, k: int) -> None:
        key = (os.getpid(), threading.get_ident(), k)
        with self._mu:
            c = self._conns.pop(key, None)
        if c is not None:
            try:
                c.close()
            except OSError:
                pass

    def _shard_dead(self, k: int, exc) -> None:
        """A shard stopped answering: breadcrumb its beacon and abort."""
        last = self.shard_last_round(k)
        flight.note("ship_dead_shard", shard=k, last_round=last)
        self._drop_conn(k)
        raise FileSystemError(
            f"shard {k} server dead or unreachable "
            f"(last completed round {last}): {exc!r}"
        ) from exc

    def _post(self, k: int, msg) -> None:
        c = self._conn(k)
        try:
            c.send(msg)
        except (BrokenPipeError, OSError) as exc:
            self._shard_dead(k, exc)

    def _collect(self, k: int):
        c = self._conn(k)
        deadline = time.monotonic() + self.request_timeout
        try:
            while not c.poll(0.05):
                if time.monotonic() > deadline:
                    self._shard_dead(
                        k, TimeoutError(
                            f"no reply in {self.request_timeout:.1f}s"))
            tag, val = c.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            self._shard_dead(k, exc)
        if tag == "err":
            raise val
        return val

    def _request(self, k: int, msg):
        self._post(k, msg)
        return self._collect(k)

    # -- introspection (tests, benchmarks, fault injection) ------------
    def server_pid(self, k: int) -> int:
        with open(os.path.join(self.ctrl, f"pid.{k}")) as fh:
            return int(fh.read())

    def shard_last_round(self, k: int) -> int:
        """Last round the shard served, read from its crash-safe beacon
        file (works even after the server was SIGKILLed)."""
        try:
            with open(os.path.join(self.ctrl, f"beacon.{k}"), "rb") as fh:
                raw = fh.read(_BEACON.size)
        except FileNotFoundError:
            return -1
        if len(raw) < _BEACON.size:
            return -1
        return _BEACON.unpack(raw)[0]

    def shard_last_rounds(self) -> List[int]:
        return [self.shard_last_round(k) for k in range(self.nshards)]

    def shard_counters(self, k: int) -> dict:
        return self._request(k, ("counters",))

    def shard_locks_held(self, k: int, path: str) -> dict:
        return self._request(k, ("locks_held", path))

    # -- namespace surface ---------------------------------------------
    def create(self, path: str, exist_ok: bool = True,
               striping: StripingConfig | None = None) -> "ShardedFile":
        # ``striping`` is accepted for surface compatibility but the
        # shard geometry is a property of the file system (see class
        # docstring).
        del striping
        with self._mu:
            f = self._files.get(path)
        if f is not None:
            if not exist_ok:
                raise FileSystemError(f"file exists: {path!r}")
            return f
        if not exist_ok and self._request(0, ("exists", path)):
            raise FileSystemError(f"file exists: {path!r}")
        for k in range(self.nshards):
            self._post(k, ("create", path))
        for k in range(self.nshards):
            self._collect(k)
        with self._mu:
            f = self._files.setdefault(path, ShardedFile(self, path))
        return f

    def lookup(self, path: str) -> "ShardedFile":
        with self._mu:
            f = self._files.get(path)
        if f is not None:
            return f
        if not self._request(0, ("exists", path)):
            raise FileSystemError(f"no such file: {path!r}")
        return self.create(path)

    def exists(self, path: str) -> bool:
        return bool(self._request(0, ("exists", path)))

    def unlink(self, path: str) -> None:
        with self._mu:
            self._files.pop(path, None)
        for k in range(self.nshards):
            self._request(k, ("unlink", path))

    def listdir(self) -> list:
        return self._request(0, ("listdir",))

    def total_sim_time(self) -> float:
        with self._mu:
            return sum(f.stats.sim_time for f in self._files.values())

    def reset_stats(self) -> None:
        with self._mu:
            for f in self._files.values():
                f.stats.reset()
        for k in range(self.nshards):
            self._request(k, ("reset_counters",))


def _reopen_sharded(state, path):
    fs = ShardedFileSystem.__new__(ShardedFileSystem)
    fs.__setstate__(state)
    return fs.create(path)


class ShardedFile:
    """One logical file striped over the shard servers.

    Implements the :class:`~repro.fs.simfile.SimFile` surface — every
    plain access turns into per-shard wire requests — plus the request-
    shipping entry points ``ship_*`` used by :mod:`repro.io.shipping`.
    Per-shard wire accounting lives in :attr:`wire` (one dict per shard:
    requests / request_bytes / payload_bytes / view_bytes).
    """

    def __init__(self, fs: ShardedFileSystem, name: str) -> None:
        self.fs = fs
        self.name = name
        self.device = fs.device or DeviceModel(
            read_bandwidth=float("inf"), write_bandwidth=float("inf"),
            latency=0.0)
        self.striping = fs.striping
        self.stats = FileStats()
        self.wire = [
            {"requests": 0, "request_bytes": 0, "payload_bytes": 0,
             "view_bytes": 0}
            for _ in range(fs.nshards)
        ]
        self._wmu = threading.Lock()
        #: ``(shard, vid) -> True`` (installed) or a ``threading.Event``
        #: (install in flight — waiters block on it, so no rank can post
        #: a datatype request ahead of the view it names).
        self._views_sent: Dict[tuple, object] = {}
        self._vmu = threading.Lock()

    def __reduce__(self):
        return (_reopen_sharded, (self.fs.__getstate__(), self.name))

    def _count(self, k: int, requests=0, request_bytes=0, payload_bytes=0,
               view_bytes=0) -> None:
        with self._wmu:
            w = self.wire[k]
            w["requests"] += requests
            w["request_bytes"] += request_bytes
            w["payload_bytes"] += payload_bytes
            w["view_bytes"] += view_bytes

    def wire_totals(self) -> dict:
        with self._wmu:
            tot = {key: 0 for key in self.wire[0]}
            for w in self.wire:
                for key, v in w.items():
                    tot[key] += v
        return tot

    # -- geometry helpers ----------------------------------------------
    def _per_shard(self, offset: int, nbytes: int):
        """Group :func:`split_extent` output by shard, preserving file
        order: ``{shard: [(local_off, length, data_off), ...]}``."""
        per: Dict[int, list] = {}
        for k, lo, ln, doff in split_extent(
                offset, nbytes, self.fs.stripe_size, self.fs.nshards):
            per.setdefault(k, []).append((lo, ln, doff))
        return per

    # -- SimFile surface -----------------------------------------------
    @property
    def size(self) -> int:
        ks = range(self.fs.nshards)
        for k in ks:
            self.fs._post(k, ("size", self.name))
            self._count(k, requests=1, request_bytes=WIRE_HEADER_BYTES)
        sizes = [self.fs._collect(k) for k in ks]
        return global_size(sizes, self.fs.stripe_size, self.fs.nshards)

    def pread(self, offset: int, nbytes: int) -> np.ndarray:
        if offset < 0 or nbytes < 0:
            raise FileSystemError(
                f"invalid read [{offset}, {offset + nbytes})"
            )
        out = np.zeros(nbytes, dtype=np.uint8)
        got = self.pread_into(offset, out)
        return out[:got]

    def pread_into(self, offset: int, out: np.ndarray) -> int:
        if offset < 0:
            raise FileSystemError(f"invalid read offset {offset}")
        o = out.view(np.uint8).reshape(-1)
        n = o.size
        if n == 0:
            return 0
        per = self._per_shard(offset, n)
        shards = sorted(per)
        for k in shards:
            parts = per[k]
            loffs = np.array([p[0] for p in parts], dtype=np.int64)
            lens = np.array([p[1] for p in parts], dtype=np.int64)
            self.fs._post(k, ("read", self.name, loffs, lens, -1))
            self._count(k, requests=1,
                        request_bytes=WIRE_HEADER_BYTES
                        + WIRE_EXTENT_BYTES * len(parts))
        got = n
        for k in shards:
            ref, short = self.fs._collect(k)
            payload = _unpack_payload(ref)
            self._count(k, payload_bytes=payload.nbytes)
            pos = 0
            for _lo, ln, doff in per[k]:
                o[doff:doff + ln] = payload[pos:pos + ln]
                if short is not None and short[0] == pos:
                    got = min(got, doff + short[3])
                pos += ln
        self.stats.record_read(n, 0.0)
        return got

    def pwrite(self, offset: int, data: np.ndarray) -> int:
        if offset < 0:
            raise FileSystemError(f"invalid write offset {offset}")
        d = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        n = d.size
        if n == 0:
            return 0
        per = self._per_shard(offset, n)
        shards = sorted(per)
        for k in shards:
            parts = per[k]
            loffs = np.array([p[0] for p in parts], dtype=np.int64)
            lens = np.array([p[1] for p in parts], dtype=np.int64)
            payload = np.empty(int(lens.sum()), dtype=np.uint8)
            pos = 0
            for _lo, ln, doff in parts:
                payload[pos:pos + ln] = d[doff:doff + ln]
                pos += ln
            self.fs._post(k, ("write", self.name, loffs, lens,
                              _pack_payload(payload), -1))
            self._count(k, requests=1,
                        request_bytes=WIRE_HEADER_BYTES
                        + WIRE_EXTENT_BYTES * len(parts),
                        payload_bytes=payload.nbytes)
        for k in shards:
            self.fs._collect(k)
        self.stats.record_write(n, 0.0)
        return n

    def truncate(self, length: int) -> None:
        if length < 0:
            raise FileSystemError(f"negative truncate length {length}")
        ks = range(self.fs.nshards)
        for k in ks:
            self.fs._post(k, ("truncate", self.name, local_size(
                k, length, self.fs.stripe_size, self.fs.nshards)))
            self._count(k, requests=1, request_bytes=WIRE_HEADER_BYTES)
        for k in ks:
            self.fs._collect(k)

    def _lock_plan(self, lo: int, hi: int):
        """Per-shard coalesced local ranges for a global ``[lo, hi)``."""
        per: Dict[int, list] = {}
        for k, llo, ln, _d in split_extent(
                lo, hi - lo, self.fs.stripe_size, self.fs.nshards):
            per.setdefault(k, []).append((llo, llo + ln))
        return {k: coalesce_ranges(rs) for k, rs in per.items()}

    def lock_range(self, lo: int, hi: int) -> None:
        # Sequential, ascending shard order: the global ordering
        # discipline that keeps multi-shard locking deadlock-free.
        done = []
        try:
            for k, ranges in sorted(self._lock_plan(lo, hi).items()):
                self.fs._request(k, ("lock", self.name, ranges))
                done.append((k, ranges))
                self._count(k, requests=1,
                            request_bytes=WIRE_HEADER_BYTES
                            + WIRE_EXTENT_BYTES * len(ranges))
        except BaseException:
            # Mid-acquisition failure (e.g. a dead shard): the executor
            # never sees this lock as held, so roll back the shards we
            # did acquire here, or other ranks deadlock on them.
            for k, ranges in reversed(done):
                try:
                    self.fs._request(k, ("unlock", self.name, ranges))
                except FileSystemError:
                    pass
            raise
        self.stats.record_lock()

    def unlock_range(self, lo: int, hi: int) -> None:
        for k, ranges in sorted(self._lock_plan(lo, hi).items(),
                                reverse=True):
            try:
                self.fs._request(k, ("unlock", self.name, ranges))
            except FileSystemError:
                # A dead shard's locks died with its server (the OS
                # drops fcntl locks on process exit); keep releasing
                # the survivors' ranges.
                continue
            self._count(k, requests=1,
                        request_bytes=WIRE_HEADER_BYTES
                        + WIRE_EXTENT_BYTES * len(ranges))

    def contents(self) -> np.ndarray:
        n = self.size
        out = np.zeros(n, dtype=np.uint8)
        if n:
            self.pread_into(0, out)
        return out

    def fsync(self) -> None:
        pass

    # -- request shipping (used by repro.io.shipping) ------------------
    def ship_view(self, k: int, vid, cview) -> int:
        """Install ``cview`` under ``vid`` on shard ``k`` (idempotent);
        returns the wire bytes this install cost (0 if already sent).

        Concurrent callers for the same ``(shard, vid)`` block until the
        first caller's install round trip completes — a rank must never
        post a datatype request naming a view that is still in flight
        from another rank's thread."""
        while True:
            with self._vmu:
                ent = self._views_sent.get((k, vid))
                if ent is True:
                    return 0
                if ent is None:
                    ev = threading.Event()
                    self._views_sent[(k, vid)] = ev
                    break
            if not ent.wait(self.fs.request_timeout):
                raise FileSystemError(
                    f"timed out waiting for fileview install on shard {k}"
                )
        try:
            self.fs._request(k, ("view", vid, cview))
        except BaseException:
            with self._vmu:
                self._views_sent.pop((k, vid), None)
            ev.set()
            raise
        with self._vmu:
            self._views_sent[(k, vid)] = True
        ev.set()
        nbytes = WIRE_HEADER_BYTES + cview.wire_bytes
        self._count(k, requests=1, view_bytes=nbytes)
        return nbytes

    def ship_post_read(self, k, loffs, lens, rnd) -> int:
        self.fs._post(k, ("read", self.name,
                          np.asarray(loffs, dtype=np.int64),
                          np.asarray(lens, dtype=np.int64), rnd))
        req = WIRE_HEADER_BYTES + WIRE_EXTENT_BYTES * len(loffs)
        self._count(k, requests=1, request_bytes=req)
        return req

    def ship_post_write(self, k, loffs, lens, payload, rnd) -> int:
        self.fs._post(k, ("write", self.name,
                          np.asarray(loffs, dtype=np.int64),
                          np.asarray(lens, dtype=np.int64),
                          _pack_payload(payload), rnd))
        req = WIRE_HEADER_BYTES + WIRE_EXTENT_BYTES * len(loffs)
        self._count(k, requests=1, request_bytes=req,
                    payload_bytes=int(np.asarray(lens).sum()))
        return req

    def ship_post_dt_read(self, k, vid, d_lo, d_hi, fdelta, rnd) -> int:
        self.fs._post(k, ("dt_read", self.name, vid, d_lo, d_hi,
                          fdelta, rnd))
        self._count(k, requests=1, request_bytes=WIRE_DT_PARAM_BYTES)
        return WIRE_DT_PARAM_BYTES

    def ship_post_dt_write(self, k, vid, d_lo, d_hi, fdelta, payload,
                           rnd) -> int:
        self.fs._post(k, ("dt_write", self.name, vid, d_lo, d_hi,
                          fdelta, _pack_payload(payload), rnd))
        self._count(k, requests=1, request_bytes=WIRE_DT_PARAM_BYTES,
                    payload_bytes=payload.nbytes)
        return WIRE_DT_PARAM_BYTES

    def ship_collect_read(self, k):
        """Collect one read reply: ``(payload, short)``."""
        ref, short = self.fs._collect(k)
        payload = _unpack_payload(ref)
        self._count(k, payload_bytes=payload.nbytes)
        return payload, short

    def ship_collect_write(self, k) -> int:
        return self.fs._collect(k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardedFile {self.name!r} shards={self.fs.nshards} "
                f"ss={self.fs.stripe_size}>")

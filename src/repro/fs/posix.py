"""POSIX-style file access: the cursor handle and the real on-disk file.

The paper contrasts MPI-IO's rich access model with "the standard POSIX
I/O interface available at the operating system level".  This module
provides that baseline interface over the simulated file system — a
cursor-based ``read``/``write``/``lseek`` handle (:class:`PosixFile`) —
used by the examples to demonstrate what non-contiguous access costs
when each block needs its own seek+read/write pair, and by tests as a
second, independent access path to the same bytes.

:class:`OsFile` is a *real* file behind the :class:`SimFile` interface:
``pread``/``pwrite`` become ``os.pread``/``os.pwrite`` on a file
descriptor, ``lock_range`` becomes a real ``fcntl`` byte-range lock
(:class:`~repro.fs.locks.FcntlRangeLockManager`).  It is what the
multi-process runtime opens — every rank holds its own descriptor on
the same path, so their accesses contend through the kernel exactly as
ROMIO's do.  Pickling an OsFile re-opens it by path in the receiving
process, which is how ``File.open``'s broadcast of the shared state
hands each rank its own descriptor.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import FileSystemError
from repro.fs.locks import FcntlRangeLockManager
from repro.fs.simfile import SimFile
from repro.fs.stats import DeviceModel, FileStats
from repro.fs.striping import StripingConfig
from repro.obs import trace

__all__ = ["OsFile", "PosixFile", "SEEK_SET", "SEEK_CUR", "SEEK_END"]

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class OsFile:
    """A real on-disk file with the :class:`SimFile` access surface.

    ``name`` is the virtual path (what the namespace calls the file);
    ``ospath`` is where the bytes live.  Statistics are per *process*
    (each rank counts its own operations); the device model charges
    zero simulated time by default — on this backend the real device is
    the measurement.
    """

    def __init__(
        self,
        ospath: str,
        name: str | None = None,
        device: DeviceModel | None = None,
        striping: StripingConfig | None = None,
    ) -> None:
        self.path = ospath
        self.name = name or ospath
        self.device = device or DeviceModel(
            read_bandwidth=float("inf"),
            write_bandwidth=float("inf"),
            latency=0.0,
        )
        self.striping = striping or StripingConfig()
        self.stats = FileStats()
        self._fd = os.open(ospath, os.O_RDWR | os.O_CREAT, 0o644)
        self.locks = FcntlRangeLockManager(self._fd)
        self._closed = False

    # -- pickling: re-open by path in the receiving process ------------
    def __reduce__(self):
        return (OsFile, (self.path, self.name, self.device,
                         self.striping))

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current file size in bytes."""
        return os.fstat(self._fd).st_size

    def pread(self, offset: int, nbytes: int) -> np.ndarray:
        """Read up to ``nbytes`` at absolute ``offset``; returns a
        writable array (possibly shorter at end-of-file)."""
        if offset < 0 or nbytes < 0:
            raise FileSystemError(
                f"invalid read [{offset}, {offset + nbytes})"
            )
        data = os.pread(self._fd, nbytes, offset)
        out = np.frombuffer(bytearray(data), dtype=np.uint8)
        streams = self.striping.streams_for(offset, out.size)
        self.stats.record_read(
            out.size, self.device.read_time(out.size, streams)
        )
        return out

    def pread_into(self, offset: int, out: np.ndarray) -> int:
        """Read into a caller buffer; returns bytes read."""
        if offset < 0:
            raise FileSystemError(f"invalid read offset {offset}")
        t0 = trace.now() if trace.TRACE_ON else 0.0
        n = os.preadv(self._fd, [out], offset)
        streams = self.striping.streams_for(offset, n)
        self.stats.record_read(n, self.device.read_time(n, streams))
        if trace.TRACE_ON:
            trace.TRACER.add("fs.pread", t0, bytes=n)
        return n

    def pwrite(self, offset: int, data: np.ndarray) -> int:
        """Write ``data`` at absolute ``offset`` (gaps become holes)."""
        if offset < 0:
            raise FileSystemError(f"invalid write offset {offset}")
        buf = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        t0 = trace.now() if trace.TRACE_ON else 0.0
        n = os.pwrite(self._fd, buf, offset)
        streams = self.striping.streams_for(offset, n)
        self.stats.record_write(n, self.device.write_time(n, streams))
        if trace.TRACE_ON:
            trace.TRACER.add("fs.pwrite", t0, bytes=n)
        return n

    def truncate(self, length: int) -> None:
        """Set the file size (extend with zeros or cut)."""
        if length < 0:
            raise FileSystemError(f"negative truncate length {length}")
        os.ftruncate(self._fd, length)

    def lock_range(self, lo: int, hi: int) -> None:
        """Acquire the real ``fcntl`` advisory lock for a
        read-modify-write region."""
        t0 = trace.now() if trace.TRACE_ON else 0.0
        self.locks.lock(lo, hi)
        self.stats.record_lock()
        if trace.TRACE_ON:
            trace.TRACER.add("fs.lock", t0, lo=lo, hi=hi)

    def unlock_range(self, lo: int, hi: int) -> None:
        self.locks.unlock(lo, hi)

    def contents(self) -> np.ndarray:
        """A copy of the whole file (tests and examples)."""
        return self.pread(0, self.size)

    def fsync(self) -> None:
        os.fsync(self._fd)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            os.close(self._fd)

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OsFile {self.name!r} at {self.path!r} size={self.size}>"


class PosixFile:
    """A per-open cursor over a :class:`SimFile`."""

    def __init__(self, simfile: SimFile) -> None:
        self._file = simfile
        self._pos = 0
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise FileSystemError("I/O on closed file")

    def lseek(self, offset: int, whence: int = SEEK_SET) -> int:
        """Move the cursor; returns the new absolute position."""
        self._check_open()
        if whence == SEEK_SET:
            pos = offset
        elif whence == SEEK_CUR:
            pos = self._pos + offset
        elif whence == SEEK_END:
            pos = self._file.size + offset
        else:
            raise FileSystemError(f"bad whence {whence}")
        if pos < 0:
            raise FileSystemError(f"seek to negative offset {pos}")
        self._pos = pos
        return pos

    def tell(self) -> int:
        self._check_open()
        return self._pos

    def read(self, nbytes: int) -> np.ndarray:
        """Read up to ``nbytes`` at the cursor, advancing it."""
        self._check_open()
        with trace.span("posix.read", bytes=nbytes):
            out = self._file.pread(self._pos, nbytes)
        self._pos += out.size
        return out

    def write(self, data: np.ndarray) -> int:
        """Write at the cursor, advancing it."""
        self._check_open()
        with trace.span("posix.write", bytes=int(data.size)):
            n = self._file.pwrite(self._pos, data)
        self._pos += n
        return n

    def pread(self, offset: int, nbytes: int) -> np.ndarray:
        """Positional read (does not move the cursor)."""
        self._check_open()
        return self._file.pread(offset, nbytes)

    def pread_into(self, offset: int, out: np.ndarray) -> int:
        """Positional read into ``out``; returns the bytes read."""
        self._check_open()
        return self._file.pread_into(offset, out)

    def pwrite(self, offset: int, data: np.ndarray) -> int:
        """Positional write (does not move the cursor)."""
        self._check_open()
        return self._file.pwrite(offset, data)

    # fcntl(F_SETLKW)-style advisory byte-range locks, so the POSIX
    # handle can run plans containing read-modify-write windows.
    def lock_range(self, lo: int, hi: int) -> None:
        self._check_open()
        self._file.lock_range(lo, hi)

    def unlock_range(self, lo: int, hi: int) -> None:
        self._check_open()
        self._file.unlock_range(lo, hi)

    def ftruncate(self, length: int) -> None:
        self._check_open()
        self._file.truncate(length)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "PosixFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

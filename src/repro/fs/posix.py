"""POSIX-style per-open file handle.

The paper contrasts MPI-IO's rich access model with "the standard POSIX
I/O interface available at the operating system level".  This module
provides that baseline interface over the simulated file system — a
cursor-based ``read``/``write``/``lseek`` handle — used by the examples
to demonstrate what non-contiguous access costs when each block needs its
own seek+read/write pair, and by tests as a second, independent access
path to the same bytes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FileSystemError
from repro.fs.simfile import SimFile
from repro.obs import trace

__all__ = ["PosixFile", "SEEK_SET", "SEEK_CUR", "SEEK_END"]

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class PosixFile:
    """A per-open cursor over a :class:`SimFile`."""

    def __init__(self, simfile: SimFile) -> None:
        self._file = simfile
        self._pos = 0
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise FileSystemError("I/O on closed file")

    def lseek(self, offset: int, whence: int = SEEK_SET) -> int:
        """Move the cursor; returns the new absolute position."""
        self._check_open()
        if whence == SEEK_SET:
            pos = offset
        elif whence == SEEK_CUR:
            pos = self._pos + offset
        elif whence == SEEK_END:
            pos = self._file.size + offset
        else:
            raise FileSystemError(f"bad whence {whence}")
        if pos < 0:
            raise FileSystemError(f"seek to negative offset {pos}")
        self._pos = pos
        return pos

    def tell(self) -> int:
        self._check_open()
        return self._pos

    def read(self, nbytes: int) -> np.ndarray:
        """Read up to ``nbytes`` at the cursor, advancing it."""
        self._check_open()
        with trace.span("posix.read", bytes=nbytes):
            out = self._file.pread(self._pos, nbytes)
        self._pos += out.size
        return out

    def write(self, data: np.ndarray) -> int:
        """Write at the cursor, advancing it."""
        self._check_open()
        with trace.span("posix.write", bytes=int(data.size)):
            n = self._file.pwrite(self._pos, data)
        self._pos += n
        return n

    def pread(self, offset: int, nbytes: int) -> np.ndarray:
        """Positional read (does not move the cursor)."""
        self._check_open()
        return self._file.pread(offset, nbytes)

    def pread_into(self, offset: int, out: np.ndarray) -> int:
        """Positional read into ``out``; returns the bytes read."""
        self._check_open()
        return self._file.pread_into(offset, out)

    def pwrite(self, offset: int, data: np.ndarray) -> int:
        """Positional write (does not move the cursor)."""
        self._check_open()
        return self._file.pwrite(offset, data)

    # fcntl(F_SETLKW)-style advisory byte-range locks, so the POSIX
    # handle can run plans containing read-modify-write windows.
    def lock_range(self, lo: int, hi: int) -> None:
        self._check_open()
        self._file.lock_range(lo, hi)

    def unlock_range(self, lo: int, hi: int) -> None:
        self._check_open()
        self._file.unlock_range(lo, hi)

    def ftruncate(self, length: int) -> None:
        self._check_open()
        self._file.truncate(length)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "PosixFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Cost accounting for the simulated file system.

:class:`DeviceModel` converts operations into *simulated device seconds*;
:class:`FileStats` accumulates counts, bytes and simulated time.  The
benchmark harness reports bandwidths over ``measured CPU time + simulated
device time``, so a fast device model (the default, calibrated to the
paper's SX-6 local file system) leaves datatype handling as the dominant
cost — the regime the paper studies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["DeviceModel", "FileStats"]


@dataclass(frozen=True)
class DeviceModel:
    """Latency/bandwidth model of the storage device.

    Defaults mirror the paper's platform: 8 GB/s sustained read, 6.5 GB/s
    sustained write, and a small per-operation latency typical of a local
    high-end RAID of the era.
    """

    read_bandwidth: float = 8.0e9  # bytes/second
    write_bandwidth: float = 6.5e9  # bytes/second
    latency: float = 50e-6  # seconds per operation

    def read_time(self, nbytes: int, nstreams: int = 1) -> float:
        """Simulated seconds for one read of ``nbytes`` over ``nstreams``
        parallel stripes."""
        return self.latency + nbytes / (self.read_bandwidth * max(nstreams, 1))

    def write_time(self, nbytes: int, nstreams: int = 1) -> float:
        """Simulated seconds for one write of ``nbytes``."""
        return self.latency + nbytes / (
            self.write_bandwidth * max(nstreams, 1)
        )


@dataclass
class FileStats:
    """Mutable operation counters (thread-safe)."""

    n_reads: int = 0
    n_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    sim_time: float = 0.0
    n_locks: int = 0
    _mu: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_read(self, nbytes: int, sim_time: float) -> None:
        with self._mu:
            self.n_reads += 1
            self.bytes_read += nbytes
            self.sim_time += sim_time

    def record_write(self, nbytes: int, sim_time: float) -> None:
        with self._mu:
            self.n_writes += 1
            self.bytes_written += nbytes
            self.sim_time += sim_time

    def record_lock(self) -> None:
        with self._mu:
            self.n_locks += 1

    def snapshot(self) -> dict:
        """A plain-dict copy for reporting."""
        with self._mu:
            return {
                "n_reads": self.n_reads,
                "n_writes": self.n_writes,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "sim_time": self.sim_time,
                "n_locks": self.n_locks,
            }

    def reset(self) -> None:
        with self._mu:
            self.n_reads = 0
            self.n_writes = 0
            self.bytes_read = 0
            self.bytes_written = 0
            self.sim_time = 0.0
            self.n_locks = 0

"""Striping configuration for the simulated storage.

A file's bytes are distributed round-robin over ``ndisks`` simulated
devices in units of ``stripe_size``.  The device model charges an access
according to how many devices it engages: a large access striped over all
disks enjoys the aggregated bandwidth, a small one pays single-disk
bandwidth — reproducing the "suitable striping configuration" effect the
paper notes for parallel file access (§4.2, "Number of processes").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StripingConfig"]


@dataclass(frozen=True)
class StripingConfig:
    """Round-robin striping over simulated disks."""

    ndisks: int = 1
    stripe_size: int = 1 << 20

    def __post_init__(self) -> None:
        if self.ndisks < 1:
            raise ValueError(f"ndisks must be >= 1, got {self.ndisks}")
        if self.stripe_size < 1:
            raise ValueError(
                f"stripe_size must be >= 1, got {self.stripe_size}"
            )

    def align_floor(self, offset: int) -> int:
        """Largest stripe boundary at or below ``offset``."""
        return (offset // self.stripe_size) * self.stripe_size

    def streams_for(self, offset: int, nbytes: int) -> int:
        """Number of distinct disks an access ``[offset, offset+nbytes)``
        touches (bounds the bandwidth aggregation)."""
        if nbytes <= 0:
            return 1
        first = offset // self.stripe_size
        last = (offset + nbytes - 1) // self.stripe_size
        return min(self.ndisks, last - first + 1)

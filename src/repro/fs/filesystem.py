"""File-system namespaces.

A :class:`SimFileSystem` maps paths to :class:`~repro.fs.simfile.SimFile`
objects and carries the shared device model and striping configuration.
It is the object a benchmark constructs once and hands to every rank.

An :class:`OsFileSystem` is the same namespace surface over a real
directory: paths map to :class:`~repro.fs.posix.OsFile` descriptors on
disk.  It is picklable (it carries only configuration — each rank
process re-opens its own descriptors), which is what the multi-process
runtime needs: the benchmark constructs one, every forked rank gets a
copy, and the *kernel* provides the shared state the simulated
namespace provides in-process.
"""

from __future__ import annotations

import os
import threading
from typing import Dict

from repro.errors import FileSystemError
from repro.fs.simfile import SimFile
from repro.fs.stats import DeviceModel
from repro.fs.striping import StripingConfig

__all__ = ["OsFileSystem", "SimFileSystem"]


class SimFileSystem:
    """An in-memory namespace of simulated files."""

    def __init__(
        self,
        device: DeviceModel | None = None,
        striping: StripingConfig | None = None,
        requires_ol_lists: bool = False,
    ) -> None:
        self.device = device or DeviceModel()
        self.striping = striping or StripingConfig()
        #: Paper footnote 4: file systems like NFS and PVFS use their own
        #: (list-based) access functions for independent I/O, so even the
        #: listless implementation must still *create* the ol-lists on
        #: such file systems — it just never uses them in the generic
        #: access functions.  Setting this reproduces that residual cost.
        self.requires_ol_lists = requires_ol_lists
        self._files: Dict[str, SimFile] = {}
        self._mu = threading.Lock()

    def create(
        self,
        path: str,
        exist_ok: bool = True,
        striping: StripingConfig | None = None,
    ) -> SimFile:
        """Create (or reuse) the file at ``path``.

        ``striping`` overrides the file-system default layout for the new
        file (ignored when the file already exists — striping is fixed at
        creation, as on real parallel file systems).
        """
        with self._mu:
            f = self._files.get(path)
            if f is not None:
                if not exist_ok:
                    raise FileSystemError(f"file exists: {path!r}")
                return f
            f = SimFile(path, self.device, striping or self.striping)
            self._files[path] = f
            return f

    def lookup(self, path: str) -> SimFile:
        """Return the existing file at ``path``."""
        with self._mu:
            try:
                return self._files[path]
            except KeyError:
                raise FileSystemError(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        with self._mu:
            return path in self._files

    def unlink(self, path: str) -> None:
        with self._mu:
            if path not in self._files:
                raise FileSystemError(f"no such file: {path!r}")
            del self._files[path]

    def listdir(self) -> list[str]:
        with self._mu:
            return sorted(self._files)

    def total_sim_time(self) -> float:
        """Accumulated simulated device seconds across all files."""
        with self._mu:
            return sum(f.stats.sim_time for f in self._files.values())

    def reset_stats(self) -> None:
        with self._mu:
            for f in self._files.values():
                f.stats.reset()


class OsFileSystem:
    """A real directory behind the :class:`SimFileSystem` surface.

    Virtual paths like ``/btio.out`` map to files under ``root``.
    Handles are cached per process; ``lookup`` finds files created by
    *other* processes through the kernel, so rank 0 creating a file
    before the open broadcast is enough for every rank to open it.
    """

    def __init__(
        self,
        root: str,
        device: DeviceModel | None = None,
        striping: StripingConfig | None = None,
        requires_ol_lists: bool = False,
    ) -> None:
        self.root = str(root)
        self.device = device
        self.striping = striping or StripingConfig()
        self.requires_ol_lists = requires_ol_lists
        os.makedirs(self.root, exist_ok=True)
        self._files: Dict[str, object] = {}
        self._mu = threading.Lock()

    # -- pickling: configuration only; handles re-open per process -----
    def __getstate__(self):
        return (self.root, self.device, self.striping,
                self.requires_ol_lists)

    def __setstate__(self, state):
        self.__init__(*state)

    def _ospath(self, path: str) -> str:
        rel = path.lstrip("/")
        if not rel or ".." in rel.split("/"):
            raise FileSystemError(f"bad path {path!r}")
        return os.path.join(self.root, *rel.split("/"))

    def _open(self, path: str, striping: StripingConfig | None = None):
        from repro.fs.posix import OsFile

        f = OsFile(self._ospath(path), name=path, device=self.device,
                   striping=striping or self.striping)
        self._files[path] = f
        return f

    def create(
        self,
        path: str,
        exist_ok: bool = True,
        striping: StripingConfig | None = None,
    ):
        """Create (or open) the file at ``path``."""
        with self._mu:
            f = self._files.get(path)
            if f is not None:
                if not exist_ok:
                    raise FileSystemError(f"file exists: {path!r}")
                return f
            ospath = self._ospath(path)
            if os.path.exists(ospath) and not exist_ok:
                raise FileSystemError(f"file exists: {path!r}")
            os.makedirs(os.path.dirname(ospath), exist_ok=True)
            return self._open(path, striping)

    def lookup(self, path: str):
        """Return the file at ``path`` (on disk counts: another process
        may have created it)."""
        with self._mu:
            f = self._files.get(path)
            if f is not None:
                return f
            if not os.path.isfile(self._ospath(path)):
                raise FileSystemError(f"no such file: {path!r}")
            return self._open(path)

    def exists(self, path: str) -> bool:
        with self._mu:
            return (path in self._files
                    or os.path.isfile(self._ospath(path)))

    def unlink(self, path: str) -> None:
        with self._mu:
            f = self._files.pop(path, None)
            if f is not None:
                f.close()
            try:
                os.unlink(self._ospath(path))
            except FileNotFoundError:
                if f is None:
                    raise FileSystemError(
                        f"no such file: {path!r}"
                    ) from None

    def listdir(self) -> list[str]:
        out = []
        for dirpath, _dirs, files in os.walk(self.root):
            for fn in files:
                full = os.path.join(dirpath, fn)
                rel = os.path.relpath(full, self.root)
                out.append("/" + rel.replace(os.sep, "/"))
        return sorted(out)

    def total_sim_time(self) -> float:
        """Simulated device seconds — zero by default on this backend
        (the real device is the measurement); nonzero only when
        constructed with an explicit device model."""
        with self._mu:
            return sum(f.stats.sim_time for f in self._files.values())

    def reset_stats(self) -> None:
        with self._mu:
            for f in self._files.values():
                f.stats.reset()

    def close(self) -> None:
        """Close every cached descriptor (end of a rank's run)."""
        with self._mu:
            for f in self._files.values():
                f.close()
            self._files.clear()

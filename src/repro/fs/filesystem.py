"""File-system namespace.

A :class:`SimFileSystem` maps paths to :class:`~repro.fs.simfile.SimFile`
objects and carries the shared device model and striping configuration.
It is the object a benchmark constructs once and hands to every rank.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.errors import FileSystemError
from repro.fs.simfile import SimFile
from repro.fs.stats import DeviceModel
from repro.fs.striping import StripingConfig

__all__ = ["SimFileSystem"]


class SimFileSystem:
    """An in-memory namespace of simulated files."""

    def __init__(
        self,
        device: DeviceModel | None = None,
        striping: StripingConfig | None = None,
        requires_ol_lists: bool = False,
    ) -> None:
        self.device = device or DeviceModel()
        self.striping = striping or StripingConfig()
        #: Paper footnote 4: file systems like NFS and PVFS use their own
        #: (list-based) access functions for independent I/O, so even the
        #: listless implementation must still *create* the ol-lists on
        #: such file systems — it just never uses them in the generic
        #: access functions.  Setting this reproduces that residual cost.
        self.requires_ol_lists = requires_ol_lists
        self._files: Dict[str, SimFile] = {}
        self._mu = threading.Lock()

    def create(
        self,
        path: str,
        exist_ok: bool = True,
        striping: StripingConfig | None = None,
    ) -> SimFile:
        """Create (or reuse) the file at ``path``.

        ``striping`` overrides the file-system default layout for the new
        file (ignored when the file already exists — striping is fixed at
        creation, as on real parallel file systems).
        """
        with self._mu:
            f = self._files.get(path)
            if f is not None:
                if not exist_ok:
                    raise FileSystemError(f"file exists: {path!r}")
                return f
            f = SimFile(path, self.device, striping or self.striping)
            self._files[path] = f
            return f

    def lookup(self, path: str) -> SimFile:
        """Return the existing file at ``path``."""
        with self._mu:
            try:
                return self._files[path]
            except KeyError:
                raise FileSystemError(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        with self._mu:
            return path in self._files

    def unlink(self, path: str) -> None:
        with self._mu:
            if path not in self._files:
                raise FileSystemError(f"no such file: {path!r}")
            del self._files[path]

    def listdir(self) -> list[str]:
        with self._mu:
            return sorted(self._files)

    def total_sim_time(self) -> float:
        """Accumulated simulated device seconds across all files."""
        with self._mu:
            return sum(f.stats.sim_time for f in self._files.values())

    def reset_stats(self) -> None:
        with self._mu:
            for f in self._files.values():
                f.stats.reset()

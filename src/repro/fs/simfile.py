"""The shared in-memory file object.

A :class:`SimFile` stores bytes in a growable NumPy array, supports
absolute-offset reads/writes (``pread``/``pwrite`` semantics), is safe for
concurrent access from the rank threads, and charges every operation to
its :class:`~repro.fs.stats.FileStats` via the owning file system's
:class:`~repro.fs.stats.DeviceModel`.

Reads beyond end-of-file return the available prefix (POSIX semantics);
writes beyond end-of-file extend the file, zero-filling any gap.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import FileSystemError
from repro.fs.locks import RangeLockManager
from repro.fs.stats import DeviceModel, FileStats
from repro.fs.striping import StripingConfig
from repro.obs import trace

__all__ = ["SimFile"]


class SimFile:
    """One file: bytes, size, locks and statistics."""

    def __init__(
        self,
        name: str,
        device: DeviceModel,
        striping: StripingConfig,
        initial_capacity: int = 4096,
    ) -> None:
        self.name = name
        self.device = device
        self.striping = striping
        self.stats = FileStats()
        self.locks = RangeLockManager()
        self._data = np.zeros(max(initial_capacity, 16), dtype=np.uint8)
        self._size = 0
        self._mu = threading.Lock()

    def __reduce__(self):
        # A SimFile is shared by reference between rank threads; copying
        # it into another process would silently fork its contents.
        raise FileSystemError(
            "SimFile cannot cross process boundaries — use an "
            "OsFileSystem (repro.fs.filesystem) with the proc runtime"
        )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current file size in bytes."""
        with self._mu:
            return self._size

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._data.size:
            return
        cap = self._data.size
        while cap < needed:
            cap *= 2
        grown = np.zeros(cap, dtype=np.uint8)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    # ------------------------------------------------------------------
    def pread(self, offset: int, nbytes: int) -> np.ndarray:
        """Read up to ``nbytes`` at absolute ``offset``; returns a copy
        (possibly shorter at end-of-file)."""
        if offset < 0 or nbytes < 0:
            raise FileSystemError(
                f"invalid read [{offset}, {offset + nbytes})"
            )
        with self._mu:
            end = min(offset + nbytes, self._size)
            if end <= offset:
                out = np.empty(0, dtype=np.uint8)
            else:
                out = self._data[offset:end].copy()
        streams = self.striping.streams_for(offset, out.size)
        self.stats.record_read(out.size, self.device.read_time(out.size, streams))
        return out

    def pread_into(self, offset: int, out: np.ndarray) -> int:
        """Read into a caller buffer; returns bytes read."""
        if offset < 0:
            raise FileSystemError(f"invalid read offset {offset}")
        t0 = trace.now() if trace.TRACE_ON else 0.0
        with self._mu:
            end = min(offset + out.size, self._size)
            n = max(end - offset, 0)
            if n:
                out[:n] = self._data[offset:end]
        streams = self.striping.streams_for(offset, n)
        self.stats.record_read(n, self.device.read_time(n, streams))
        if trace.TRACE_ON:
            trace.TRACER.add("fs.pread", t0, bytes=n)
        return n

    def pwrite(self, offset: int, data: np.ndarray) -> int:
        """Write ``data`` at absolute ``offset``, extending the file as
        needed; returns bytes written."""
        if offset < 0:
            raise FileSystemError(f"invalid write offset {offset}")
        buf = data.view(np.uint8).reshape(-1)
        n = buf.size
        t0 = trace.now() if trace.TRACE_ON else 0.0
        with self._mu:
            self._ensure_capacity(offset + n)
            if offset > self._size:
                # POSIX hole: zero-fill (capacity array is already zeroed
                # only on first growth, so clear explicitly).
                self._data[self._size : offset] = 0
            self._data[offset : offset + n] = buf
            self._size = max(self._size, offset + n)
        streams = self.striping.streams_for(offset, n)
        self.stats.record_write(n, self.device.write_time(n, streams))
        if trace.TRACE_ON:
            trace.TRACER.add("fs.pwrite", t0, bytes=n)
        return n

    def truncate(self, length: int) -> None:
        """Set the file size (extend with zeros or cut)."""
        if length < 0:
            raise FileSystemError(f"negative truncate length {length}")
        with self._mu:
            self._ensure_capacity(length)
            if length > self._size:
                self._data[self._size : length] = 0
            self._size = length

    # ------------------------------------------------------------------
    def lock_range(self, lo: int, hi: int) -> None:
        """Acquire the advisory lock for a read-modify-write region."""
        t0 = trace.now() if trace.TRACE_ON else 0.0
        self.locks.lock(lo, hi)
        self.stats.record_lock()
        if trace.TRACE_ON:
            trace.TRACER.add("fs.lock", t0, lo=lo, hi=hi)

    def unlock_range(self, lo: int, hi: int) -> None:
        self.locks.unlock(lo, hi)

    # ------------------------------------------------------------------
    def contents(self) -> np.ndarray:
        """A copy of the whole file (tests and examples)."""
        with self._mu:
            return self._data[: self._size].copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimFile {self.name!r} size={self.size}>"

"""Advisory byte-range locks.

Data-sieving writes must lock the file region they read-modify-write so
that the gaps in the file buffer do not clobber concurrent writers (paper
§2.2).  ROMIO uses ``fcntl`` range locks; :class:`RangeLockManager`
provides the same semantics for the in-memory file system: exclusive
locks over ``[lo, hi)`` ranges, blocking on conflict, with deadlock-free
FIFO wakeup.

:class:`FcntlRangeLockManager` is the real thing behind the same
interface — POSIX ``fcntl(F_SETLKW)`` record locks on an open file
descriptor, used by the disk-backed files of the multi-process runtime
(:class:`repro.fs.posix.OsFile`).  It adds the bookkeeping POSIX makes
necessary: per *process*, releasing ``[lo, hi)`` drops the process'
lock over **every** byte of that range, even bytes still covered by
another logical lock the same rank took (e.g. atomic mode's
whole-access lock nested around per-window sieving locks).  The manager
refcounts held ranges and, on unlock, only releases bytes no residual
logical lock covers — overlapping locks from the same rank neither
self-deadlock (POSIX never blocks a process on its own locks) nor lose
protection mid-access.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.errors import LockError

__all__ = ["FcntlRangeLockManager", "RangeLockManager"]


class RangeLockManager:
    """Exclusive byte-range locks over one file."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        # owner (thread ident) -> list of held (lo, hi) ranges
        self._held: Dict[int, List[Tuple[int, int]]] = {}

    @staticmethod
    def _overlaps(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        return a[0] < b[1] and b[0] < a[1]

    def _conflicts(self, me: int, rng: Tuple[int, int]) -> bool:
        for owner, ranges in self._held.items():
            if owner == me:
                continue
            for r in ranges:
                if self._overlaps(r, rng):
                    return True
        return False

    def lock(self, lo: int, hi: int) -> None:
        """Acquire an exclusive lock on ``[lo, hi)``; blocks on conflict."""
        if hi <= lo:
            raise LockError(f"empty lock range [{lo}, {hi})")
        me = threading.get_ident()
        rng = (lo, hi)
        with self._cond:
            while self._conflicts(me, rng):
                self._cond.wait()
            self._held.setdefault(me, []).append(rng)

    def unlock(self, lo: int, hi: int) -> None:
        """Release a previously acquired lock on exactly ``[lo, hi)``."""
        me = threading.get_ident()
        with self._cond:
            ranges = self._held.get(me, [])
            try:
                ranges.remove((lo, hi))
            except ValueError:
                raise LockError(
                    f"thread does not hold lock [{lo}, {hi})"
                ) from None
            if not ranges:
                del self._held[me]
            self._cond.notify_all()

    def held_by_me(self) -> List[Tuple[int, int]]:
        """Ranges currently held by the calling thread (for tests)."""
        me = threading.get_ident()
        with self._cond:
            return list(self._held.get(me, []))


def _subtract_ranges(
    ranges: List[Tuple[int, int]], cut: Tuple[int, int]
) -> List[Tuple[int, int]]:
    """Remove ``cut`` from every range in ``ranges`` (interval algebra)."""
    clo, chi = cut
    out: List[Tuple[int, int]] = []
    for lo, hi in ranges:
        if chi <= lo or hi <= clo:  # no overlap
            out.append((lo, hi))
            continue
        if lo < clo:
            out.append((lo, clo))
        if chi < hi:
            out.append((chi, hi))
    return out


class FcntlRangeLockManager:
    """Real POSIX ``fcntl`` byte-range locks over one open descriptor.

    Same interface as :class:`RangeLockManager`.  ``lock`` blocks via
    ``F_SETLKW`` until conflicting locks of *other processes* clear;
    ``unlock`` releases only the bytes of ``[lo, hi)`` not covered by a
    remaining logical lock of this process (see the module docstring
    for why plain ``F_UNLCK`` over the range would be wrong).

    The held-range list is a multiset: locking the same range twice
    requires unlocking it twice before the bytes actually release.
    """

    def __init__(self, fd: int) -> None:
        self._fd = fd
        self._mu = threading.Lock()
        self._held: List[Tuple[int, int]] = []

    def lock(self, lo: int, hi: int) -> None:
        """Acquire an exclusive lock on ``[lo, hi)``; blocks on conflict
        with other processes (own overlapping locks never conflict)."""
        import fcntl
        import os

        if hi <= lo:
            raise LockError(f"empty lock range [{lo}, {hi})")
        try:
            fcntl.lockf(self._fd, fcntl.LOCK_EX, hi - lo, lo, os.SEEK_SET)
        except OSError as exc:
            raise LockError(
                f"fcntl lock of [{lo}, {hi}) failed: {exc}"
            ) from exc
        with self._mu:
            self._held.append((lo, hi))

    def unlock(self, lo: int, hi: int) -> None:
        """Release one logical lock on exactly ``[lo, hi)``.

        Bytes still covered by another held range stay locked at the
        OS level (POSIX would otherwise drop them with this release).
        """
        import fcntl
        import os

        with self._mu:
            try:
                self._held.remove((lo, hi))
            except ValueError:
                raise LockError(
                    f"process does not hold lock [{lo}, {hi})"
                ) from None
            residual = [(lo, hi)]
            for r in self._held:
                residual = _subtract_ranges(residual, r)
        for rlo, rhi in residual:
            try:
                fcntl.lockf(self._fd, fcntl.LOCK_UN, rhi - rlo, rlo,
                            os.SEEK_SET)
            except OSError as exc:  # pragma: no cover - closed fd etc.
                raise LockError(
                    f"fcntl unlock of [{rlo}, {rhi}) failed: {exc}"
                ) from exc

    def held_by_me(self) -> List[Tuple[int, int]]:
        """Logical ranges currently held by this process (for tests)."""
        with self._mu:
            return list(self._held)

"""Advisory byte-range locks.

Data-sieving writes must lock the file region they read-modify-write so
that the gaps in the file buffer do not clobber concurrent writers (paper
§2.2).  ROMIO uses ``fcntl`` range locks; this manager provides the same
semantics for the in-memory file system: exclusive locks over ``[lo, hi)``
ranges, blocking on conflict, with deadlock-free FIFO wakeup.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.errors import LockError

__all__ = ["RangeLockManager"]


class RangeLockManager:
    """Exclusive byte-range locks over one file."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        # owner (thread ident) -> list of held (lo, hi) ranges
        self._held: Dict[int, List[Tuple[int, int]]] = {}

    @staticmethod
    def _overlaps(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        return a[0] < b[1] and b[0] < a[1]

    def _conflicts(self, me: int, rng: Tuple[int, int]) -> bool:
        for owner, ranges in self._held.items():
            if owner == me:
                continue
            for r in ranges:
                if self._overlaps(r, rng):
                    return True
        return False

    def lock(self, lo: int, hi: int) -> None:
        """Acquire an exclusive lock on ``[lo, hi)``; blocks on conflict."""
        if hi <= lo:
            raise LockError(f"empty lock range [{lo}, {hi})")
        me = threading.get_ident()
        rng = (lo, hi)
        with self._cond:
            while self._conflicts(me, rng):
                self._cond.wait()
            self._held.setdefault(me, []).append(rng)

    def unlock(self, lo: int, hi: int) -> None:
        """Release a previously acquired lock on exactly ``[lo, hi)``."""
        me = threading.get_ident()
        with self._cond:
            ranges = self._held.get(me, [])
            try:
                ranges.remove((lo, hi))
            except ValueError:
                raise LockError(
                    f"thread does not hold lock [{lo}, {hi})"
                ) from None
            if not ranges:
                del self._held[me]
            self._cond.notify_all()

    def held_by_me(self) -> List[Tuple[int, int]]:
        """Ranges currently held by the calling thread (for tests)."""
        me = threading.get_ident()
        with self._cond:
            return list(self._held.get(me, []))

"""Simulated parallel file system.

An in-memory, byte-addressed file store with a POSIX-like access
interface, advisory byte-range locks, optional striping across simulated
disks, and a calibrated device-time model.

The paper's test platforms (NEC SX-6/SX-7) had local file systems with
sustained bandwidths of ~6.5 GB/s (write) and ~8 GB/s (read) — fast
enough that CPU-side datatype handling, not the storage device, dominated
non-contiguous access cost.  The device model defaults to exactly those
figures: every read/write operation charges ``latency + bytes/bandwidth``
of *simulated device time*, which the benchmark harness adds to measured
CPU time, reproducing the paper's regime without sleeping.

Public surface:

* :class:`SimFileSystem` — namespace, open/unlink/stat.
* :class:`SimFile` — the shared file object (pread/pwrite at absolute
  offsets, thread-safe, growable).
* :class:`repro.fs.posix.PosixFile` — a per-open cursor with
  ``lseek/read/write`` for code written against the POSIX interface.
* :class:`RangeLockManager` — advisory byte-range locks, used by
  data-sieving writes exactly as ROMIO uses ``fcntl`` locks.
* :class:`DeviceModel`, :class:`FileStats` — cost accounting.
* :class:`OsFileSystem`, :class:`OsFile`,
  :class:`FcntlRangeLockManager` — the same surfaces over a real
  directory, real descriptors and real ``fcntl`` locks, for the
  multi-process runtime (``docs/runtime.md``).
* :class:`ShardedFileSystem`, :class:`ShardedFile` — one logical file
  striped round-robin across N shard server processes, the request-
  shipping backend of ``docs/shipping.md``.
"""

from repro.fs.stats import DeviceModel, FileStats
from repro.fs.locks import FcntlRangeLockManager, RangeLockManager
from repro.fs.simfile import SimFile
from repro.fs.striping import StripingConfig
from repro.fs.filesystem import OsFileSystem, SimFileSystem
from repro.fs.posix import OsFile, PosixFile
from repro.fs.sharded import (
    ShardedFile,
    ShardedFileSystem,
    global_size,
    local_size,
    split_blocks,
    split_extent,
    to_global,
    to_local,
)

__all__ = [
    "DeviceModel",
    "FileStats",
    "FcntlRangeLockManager",
    "RangeLockManager",
    "SimFile",
    "StripingConfig",
    "OsFile",
    "OsFileSystem",
    "SimFileSystem",
    "PosixFile",
    "ShardedFile",
    "ShardedFileSystem",
    "global_size",
    "local_size",
    "split_blocks",
    "split_extent",
    "to_global",
    "to_local",
]

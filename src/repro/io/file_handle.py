"""The MPI-IO file handle.

:class:`File` mirrors the ``MPI_File`` API surface that the paper's
workloads use: collective open/close, ``set_view``, independent and
collective reads/writes at explicit offsets or via individual/shared file
pointers, size management, and atomicity control.

Offsets and file pointers count in *etype units* of the current view; a
buffer is described by ``(buf, count, memtype)`` exactly as in MPI.  All
byte movement is delegated to the configured engine (``"listless"`` or
``"list_based"``).
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional

import numpy as np

from repro._ctx import SESSION
from repro.core.fileview_cache import FileviewCache
from repro.datatypes.base import Datatype
from repro.datatypes.basic import BYTE
from repro.errors import IOEngineError
from repro.fs.filesystem import SimFileSystem
from repro.fs.simfile import SimFile
from repro.io.fileview import FileView, MemDescriptor, default_view
from repro.io.hints import Hints
from repro.io.request import Request
from repro.mpi.communicator import Comm

__all__ = [
    "File",
    "SharedFileState",
    "MODE_RDONLY",
    "MODE_WRONLY",
    "MODE_RDWR",
    "MODE_CREATE",
    "MODE_EXCL",
    "MODE_DELETE_ON_CLOSE",
    "MODE_APPEND",
    "SEEK_SET",
    "SEEK_CUR",
    "SEEK_END",
]

MODE_RDONLY = 0x01
MODE_WRONLY = 0x02
MODE_RDWR = 0x04
MODE_CREATE = 0x08
MODE_EXCL = 0x10
MODE_DELETE_ON_CLOSE = 0x20
MODE_APPEND = 0x40

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class LocalCounter:
    """Thread-shared integer with ``get``/``set``/``add`` — the shared
    file pointer of the sim backend.  ``add`` returns the value before
    the increment, atomically.  Pickles without its lock (a copy that
    crosses a process boundary starts an independent lock)."""

    def __init__(self, value: int = 0) -> None:
        self._value = value
        self._mu = threading.Lock()

    def get(self) -> int:
        with self._mu:
            return self._value

    def set(self, v: int) -> None:
        with self._mu:
            self._value = v

    def add(self, delta: int) -> int:
        with self._mu:
            old = self._value
            self._value = old + delta
            return old

    def __getstate__(self):
        return self.get()

    def __setstate__(self, state):
        self.__init__(state)


class SharedFileState:
    """State shared by all ranks that opened the same file.

    On the sim backend one instance is shared by reference between the
    rank threads.  On the proc backend the open broadcast hands each
    rank a pickled *copy* — the pieces that must stay truly shared are
    then swapped for cross-process primitives: the file pointer counter
    is adopted from the communicator (:meth:`attach_counter`), and the
    file bytes live behind an :class:`~repro.fs.posix.OsFile`
    descriptor in the kernel.
    """

    #: Monotonic open sequence feeding ``file_key`` (never reused, so a
    #: close/reopen of the same path is a distinct identity).
    _open_seq = itertools.count(1)

    def __init__(self, simfile: SimFile, path: str,
                 requires_ol_lists: bool = False) -> None:
        self.simfile = simfile
        self.path = path
        #: Identity of this open file, stable across the rank threads /
        #: processes sharing the state (it is assigned once on rank 0
        #: and travels with the open broadcast).  Keys the planner's
        #: caches and compiled block programs so two open files with
        #: identical fileview geometry can never alias each other.
        self.file_key = (str(path), next(self._open_seq))
        self._ptr = LocalCounter()  # etype units
        self.fileview_cache = FileviewCache()
        self.atomicity = False
        #: NFS/PVFS-like file system (paper footnote 4): ol-lists must
        #: still be created even by the listless engine.
        self.requires_ol_lists = requires_ol_lists

    @property
    def shared_ptr(self) -> int:
        return self._ptr.get()

    @shared_ptr.setter
    def shared_ptr(self, value: int) -> None:
        self._ptr.set(value)

    def bump_shared_ptr(self, delta: int) -> int:
        """Atomically advance the shared pointer; returns its old value."""
        return self._ptr.add(delta)

    def attach_counter(self, counter) -> None:
        """Replace the pointer counter (cross-process adoption),
        preserving the current value."""
        counter.set(self._ptr.get())
        self._ptr = counter


def _validate_amode(amode: int) -> None:
    access = [
        m for m in (MODE_RDONLY, MODE_WRONLY, MODE_RDWR) if amode & m
    ]
    if len(access) != 1:
        raise IOEngineError(
            "amode must contain exactly one of MODE_RDONLY, MODE_WRONLY, "
            "MODE_RDWR"
        )
    if amode & MODE_RDONLY and amode & (MODE_CREATE | MODE_EXCL):
        raise IOEngineError("MODE_RDONLY cannot combine with CREATE/EXCL")


class File:
    """Per-rank handle on a collectively opened file."""

    def __init__(
        self,
        comm: Comm,
        shared: SharedFileState,
        amode: int,
        engine_name: str,
        hints: Hints,
        session=None,
    ) -> None:
        self.comm = comm
        self.shared = shared
        self.amode = amode
        self.hints = hints
        #: The IOSession this handle reports into (explicit, or the one
        #: active when the handle was built, or None → process default).
        self.session = session if session is not None else SESSION.get(None)
        self.view: FileView = default_view()
        self._ind_ptr = 0  # etype units
        self._closed = False
        self._split_pending = None  # outstanding split collective, if any
        if hints.obs_trace:
            from repro.obs import trace

            trace.set_tracing(True)
        from repro.io.engines import make_engine
        from repro.obs import metrics

        metrics.register_file(shared.path, shared.simfile.stats,
                              session=self.session)
        self.engine_name = engine_name
        self.engine = make_engine(engine_name, self)
        # Views must be installed collectively even for the default view,
        # so collective accesses before any set_view work out of the box.
        self.engine.setup_view()

    # ------------------------------------------------------------------
    # Open / close
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        comm: Comm,
        fs: SimFileSystem,
        path: str,
        amode: int,
        engine: str = "listless",
        info: Optional[dict] = None,
        hints: Optional[Hints] = None,
        session=None,
    ) -> "File":
        """Collectively open ``path`` on ``fs``.

        ``engine`` picks the non-contiguous machinery (``"listless"`` or
        ``"list_based"``); ``info`` takes ``MPI_Info``-style hint strings,
        or pass a ready :class:`~repro.io.hints.Hints` as ``hints``.
        ``session`` pins the handle's metrics/caches to a specific
        :class:`~repro.session.IOSession` (default: the active one).
        """
        _validate_amode(amode)
        if hints is None:
            hints = Hints.from_mapping(info)
        elif info:
            raise IOEngineError("pass either info or hints, not both")

        if comm.rank == 0:
            if amode & MODE_CREATE:
                striping = None
                if hints.striping_factor or hints.striping_unit:
                    from repro.fs.striping import StripingConfig

                    base = fs.striping
                    striping = StripingConfig(
                        ndisks=hints.striping_factor or base.ndisks,
                        stripe_size=hints.striping_unit
                        or base.stripe_size,
                    )
                simfile = fs.create(
                    path, exist_ok=not (amode & MODE_EXCL),
                    striping=striping,
                )
            else:
                simfile = fs.lookup(path)
            state = SharedFileState(
                simfile, path,
                requires_ol_lists=getattr(fs, "requires_ol_lists", False),
            )
        else:
            state = None  # type: ignore[assignment]
        state = comm.bcast(state, root=0)
        # On backends where the bcast copies state across processes, the
        # shared file pointer must live somewhere truly shared: adopt a
        # communicator-provided cross-process counter.
        make_counter = getattr(comm, "make_shared_counter", None)
        if make_counter is not None:
            state.attach_counter(make_counter())
        fh = cls(comm, state, amode, engine, hints, session=session)
        fh._fs = fs  # for DELETE_ON_CLOSE
        if amode & MODE_APPEND:
            fh.seek(fh._etypes_in_file(), SEEK_SET)
        return fh

    def close(self) -> None:
        """Collectively close the handle."""
        self._check_open()
        if self._split_pending is not None:
            raise IOEngineError(
                "cannot close with an outstanding split collective "
                f"({self._split_pending[0]}_begin without _end)"
            )
        self.engine.close()
        self.comm.barrier()
        if self.amode & MODE_DELETE_ON_CLOSE and self.comm.rank == 0:
            fs = getattr(self, "_fs", None)
            if fs is not None and fs.exists(self.shared.path):
                fs.unlink(self.shared.path)
        self.comm.barrier()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise IOEngineError("I/O on closed file handle")

    def _check_readable(self) -> None:
        if not self.amode & (MODE_RDONLY | MODE_RDWR):
            raise IOEngineError("file not opened for reading")

    def _check_writable(self) -> None:
        if not self.amode & (MODE_WRONLY | MODE_RDWR):
            raise IOEngineError("file not opened for writing")

    # ------------------------------------------------------------------
    # Views and pointers
    # ------------------------------------------------------------------
    @property
    def simfile(self) -> SimFile:
        return self.shared.simfile

    def set_view(
        self,
        disp: int,
        etype: Datatype,
        filetype: Optional[Datatype] = None,
        info: Optional[dict] = None,
    ) -> None:
        """Collectively establish a new fileview.

        Resets the individual and shared file pointers to zero, as MPI
        requires.  The listless engine exchanges compact fileviews here —
        its one-time communication; the list-based engine only flattens.
        """
        self._check_open()
        if info:
            self.hints = Hints.from_mapping(info)
        self.view = FileView(disp, etype, filetype or etype)
        self._ind_ptr = 0
        if self.comm.rank == 0:
            self.shared.shared_ptr = 0
        self.engine.setup_view()

    def get_view(self):
        """Return ``(disp, etype, filetype)`` of the current view."""
        return (self.view.disp, self.view.etype, self.view.filetype)

    def seek(self, offset: int, whence: int = SEEK_SET) -> None:
        """Move the individual file pointer (etype units)."""
        self._check_open()
        if whence == SEEK_SET:
            pos = offset
        elif whence == SEEK_CUR:
            pos = self._ind_ptr + offset
        elif whence == SEEK_END:
            pos = self._etypes_in_file() + offset
        else:
            raise IOEngineError(f"bad whence {whence}")
        if pos < 0:
            raise IOEngineError(f"seek to negative etype offset {pos}")
        self._ind_ptr = pos

    def tell(self) -> int:
        """Individual file pointer in etype units."""
        return self._ind_ptr

    def _etypes_in_file(self) -> int:
        """Etype units visible through the view up to end-of-file."""
        return self.engine.data_of_abs(self.simfile.size) // self.view.esize

    def get_byte_offset(self, offset: int) -> int:
        """Absolute byte offset of etype offset ``offset``
        (``MPI_File_get_byte_offset``)."""
        self._check_open()
        return self.engine.abs_of_data(offset * self.view.esize)

    def get_position(self) -> int:
        """Individual file pointer in etype units
        (``MPI_File_get_position``)."""
        self._check_open()
        return self._ind_ptr

    def get_position_shared(self) -> int:
        """Shared file pointer in etype units
        (``MPI_File_get_position_shared``)."""
        self._check_open()
        return self.shared.shared_ptr

    def get_amode(self) -> int:
        """The access mode the file was opened with."""
        self._check_open()
        return self.amode

    def get_info(self) -> Hints:
        """The hints in effect (``MPI_File_get_info``)."""
        self._check_open()
        return self.hints

    def set_info(self, info: Optional[dict] = None,
                 hints: Optional[Hints] = None) -> None:
        """Replace the hints (``MPI_File_set_info``; collective)."""
        self._check_open()
        if hints is not None and info:
            raise IOEngineError("pass either info or hints, not both")
        self.comm.barrier()
        self.hints = hints if hints is not None else Hints.from_mapping(
            info
        )
        self.comm.barrier()

    def get_type_extent(self, datatype: Datatype) -> int:
        """Extent of ``datatype`` in this file's data representation
        (``MPI_File_get_type_extent``; the native representation here)."""
        self._check_open()
        return datatype.extent

    # ------------------------------------------------------------------
    # Size management
    # ------------------------------------------------------------------
    def get_size(self) -> int:
        """File size in bytes."""
        self._check_open()
        return self.simfile.size

    def set_size(self, nbytes: int) -> None:
        """Collectively truncate/extend the file."""
        self._check_open()
        self._check_writable()
        self.comm.barrier()
        if self.comm.rank == 0:
            self.simfile.truncate(nbytes)
        self.comm.barrier()

    def preallocate(self, nbytes: int) -> None:
        """Collectively ensure the file is at least ``nbytes`` long."""
        self._check_open()
        self._check_writable()
        self.comm.barrier()
        if self.comm.rank == 0 and self.simfile.size < nbytes:
            self.simfile.truncate(nbytes)
        self.comm.barrier()

    def sync(self) -> None:
        """Flush (a no-op for the in-memory store, kept for API parity)."""
        self._check_open()

    # ------------------------------------------------------------------
    # Atomicity
    # ------------------------------------------------------------------
    def set_atomicity(self, flag: bool) -> None:
        """Collectively toggle atomic mode (whole-access locking)."""
        self._check_open()
        self.comm.barrier()
        self.shared.atomicity = bool(flag)
        self.comm.barrier()

    def get_atomicity(self) -> bool:
        return self.shared.atomicity

    # ------------------------------------------------------------------
    # Access plumbing
    # ------------------------------------------------------------------
    def _mem(
        self, buf: np.ndarray, count: Optional[int], memtype: Optional[Datatype]
    ) -> MemDescriptor:
        if memtype is None:
            memtype = BYTE
            if count is None:
                count = buf.nbytes
        elif count is None:
            count = 1
        return MemDescriptor(buf, count, memtype)

    def _advance(self, mem: MemDescriptor, ptr: int) -> int:
        nbytes = mem.nbytes
        esize = self.view.esize
        if nbytes % esize:
            raise IOEngineError(
                f"access of {nbytes} bytes is not a whole number of etypes "
                f"(etype size {esize})"
            )
        return ptr + nbytes // esize

    def _atomic_guard(self, mem: MemDescriptor, d0: int):
        """Whole-access range lock under atomic mode."""
        if not self.shared.atomicity or mem.nbytes == 0:
            return None
        lo = self.engine.abs_of_data(d0)
        hi = self.engine.abs_of_data(d0 + mem.nbytes, end=True)
        self.simfile.lock_range(lo, hi)
        return (lo, hi)

    # ------------------------------------------------------------------
    # Independent access, explicit offsets
    # ------------------------------------------------------------------
    def write_at(
        self,
        offset: int,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Independent write at etype offset ``offset``."""
        self._check_open()
        self._check_writable()
        mem = self._mem(buf, count, memtype)
        d0 = offset * self.view.esize
        guard = self._atomic_guard(mem, d0)
        try:
            self.engine.write_independent(mem, d0)
        finally:
            if guard:
                self.simfile.unlock_range(*guard)

    def read_at(
        self,
        offset: int,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Independent read at etype offset ``offset``."""
        self._check_open()
        self._check_readable()
        mem = self._mem(buf, count, memtype)
        d0 = offset * self.view.esize
        guard = self._atomic_guard(mem, d0)
        try:
            self.engine.read_independent(mem, d0)
        finally:
            if guard:
                self.simfile.unlock_range(*guard)

    # ------------------------------------------------------------------
    # Independent access, individual file pointer
    # ------------------------------------------------------------------
    def write(
        self,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Independent write at the individual file pointer."""
        mem = self._mem(buf, count, memtype)
        self.write_at(self._ind_ptr, buf, mem.count, mem.memtype)
        self._ind_ptr = self._advance(mem, self._ind_ptr)

    def read(
        self,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Independent read at the individual file pointer."""
        mem = self._mem(buf, count, memtype)
        self.read_at(self._ind_ptr, buf, mem.count, mem.memtype)
        self._ind_ptr = self._advance(mem, self._ind_ptr)

    # ------------------------------------------------------------------
    # Independent access, shared file pointer
    # ------------------------------------------------------------------
    def _bump_shared(self, mem: MemDescriptor) -> int:
        delta = self._advance(mem, 0)
        return self.shared.bump_shared_ptr(delta)

    def write_shared(
        self,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Independent write at the shared file pointer."""
        self._check_open()
        self._check_writable()
        mem = self._mem(buf, count, memtype)
        pos = self._bump_shared(mem)
        self.write_at(pos, buf, mem.count, mem.memtype)

    def read_shared(
        self,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Independent read at the shared file pointer."""
        self._check_open()
        self._check_readable()
        mem = self._mem(buf, count, memtype)
        pos = self._bump_shared(mem)
        self.read_at(pos, buf, mem.count, mem.memtype)

    def seek_shared(self, offset: int, whence: int = SEEK_SET) -> None:
        """Collectively move the shared file pointer."""
        self._check_open()
        self.comm.barrier()
        if self.comm.rank == 0:
            if whence == SEEK_SET:
                pos = offset
            elif whence == SEEK_CUR:
                pos = self.shared.shared_ptr + offset
            elif whence == SEEK_END:
                pos = self._etypes_in_file() + offset
            else:
                raise IOEngineError(f"bad whence {whence}")
            if pos < 0:
                raise IOEngineError(f"seek to negative etype offset {pos}")
            self.shared.shared_ptr = pos
        self.comm.barrier()

    # ------------------------------------------------------------------
    # Collective access
    # ------------------------------------------------------------------
    def write_at_all(
        self,
        offset: int,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Collective write at etype offset ``offset``."""
        self._check_open()
        self._check_writable()
        mem = self._mem(buf, count, memtype)
        self.engine.write_collective(mem, offset * self.view.esize)

    def read_at_all(
        self,
        offset: int,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Collective read at etype offset ``offset``."""
        self._check_open()
        self._check_readable()
        mem = self._mem(buf, count, memtype)
        self.engine.read_collective(mem, offset * self.view.esize)

    def write_all(
        self,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Collective write at the individual file pointer."""
        mem = self._mem(buf, count, memtype)
        self.write_at_all(self._ind_ptr, buf, mem.count, mem.memtype)
        self._ind_ptr = self._advance(mem, self._ind_ptr)

    def read_all(
        self,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Collective read at the individual file pointer."""
        mem = self._mem(buf, count, memtype)
        self.read_at_all(self._ind_ptr, buf, mem.count, mem.memtype)
        self._ind_ptr = self._advance(mem, self._ind_ptr)

    # ------------------------------------------------------------------
    # Ordered-mode collectives (shared file pointer, rank order)
    # ------------------------------------------------------------------
    def _ordered_offsets(self, mem: MemDescriptor) -> int:
        """Collectively compute this rank's etype offset for an ordered
        access and advance the shared pointer past all of them."""
        esize = self.view.esize
        if mem.nbytes % esize:
            raise IOEngineError(
                f"ordered access of {mem.nbytes} bytes is not a whole "
                f"number of etypes (etype size {esize})"
            )
        my_etypes = mem.nbytes // esize
        # Read the base BEFORE the allgather: the allgather then orders
        # every rank's read before rank 0's update below, and the
        # engine's own collectives order the update before any rank's
        # next ordered access.
        base = self.shared.shared_ptr
        sizes = self.comm.allgather(my_etypes)
        my_off = base + sum(sizes[: self.comm.rank])
        if self.comm.rank == 0:
            self.shared.shared_ptr = base + sum(sizes)
        return my_off

    def write_ordered(
        self,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Collective write in rank order at the shared file pointer
        (``MPI_File_write_ordered``): rank r's data lands immediately
        after ranks 0..r-1's, and the shared pointer ends past all of
        it."""
        self._check_open()
        self._check_writable()
        mem = self._mem(buf, count, memtype)
        my_off = self._ordered_offsets(mem)
        self.engine.write_collective(mem, my_off * self.view.esize)

    def read_ordered(
        self,
        buf: np.ndarray,
        count: Optional[int] = None,
        memtype: Optional[Datatype] = None,
    ) -> None:
        """Collective read in rank order at the shared file pointer
        (``MPI_File_read_ordered``)."""
        self._check_open()
        self._check_readable()
        mem = self._mem(buf, count, memtype)
        my_off = self._ordered_offsets(mem)
        self.engine.read_collective(mem, my_off * self.view.esize)

    # ------------------------------------------------------------------
    # Split collectives (MPI_File_write_at_all_begin / _end)
    # ------------------------------------------------------------------
    def _begin_split(self, kind: str, buf: np.ndarray) -> None:
        if getattr(self, "_split_pending", None) is not None:
            raise IOEngineError(
                "a split collective is already outstanding on this handle"
            )
        self._split_pending = (kind, id(buf))

    def _end_split(self, kind: str, buf: np.ndarray) -> None:
        pending = getattr(self, "_split_pending", None)
        if pending is None:
            raise IOEngineError(f"{kind}_end without matching _begin")
        if pending[0] != kind:
            raise IOEngineError(
                f"{kind}_end does not match outstanding {pending[0]}_begin"
            )
        if pending[1] != id(buf):
            raise IOEngineError(
                f"{kind}_end called with a different buffer than _begin"
            )
        self._split_pending = None

    def write_at_all_begin(self, offset, buf, count=None, memtype=None):
        """Begin a split collective write (completes the I/O eagerly;
        ``write_at_all_end`` finishes the operation)."""
        self._begin_split("write_at_all", buf)
        self.write_at_all(offset, buf, count, memtype)

    def write_at_all_end(self, buf) -> None:
        """Complete a split collective write."""
        self._end_split("write_at_all", buf)

    def read_at_all_begin(self, offset, buf, count=None, memtype=None):
        """Begin a split collective read."""
        self._begin_split("read_at_all", buf)
        self.read_at_all(offset, buf, count, memtype)

    def read_at_all_end(self, buf) -> None:
        """Complete a split collective read; ``buf`` holds the data."""
        self._end_split("read_at_all", buf)

    def write_all_begin(self, buf, count=None, memtype=None):
        """Begin a split collective write at the individual pointer."""
        self._begin_split("write_all", buf)
        self.write_all(buf, count, memtype)

    def write_all_end(self, buf) -> None:
        self._end_split("write_all", buf)

    def read_all_begin(self, buf, count=None, memtype=None):
        """Begin a split collective read at the individual pointer."""
        self._begin_split("read_all", buf)
        self.read_all(buf, count, memtype)

    def read_all_end(self, buf) -> None:
        self._end_split("read_all", buf)

    # ------------------------------------------------------------------
    # Nonblocking variants (plan eagerly, execute on wait/test)
    # ------------------------------------------------------------------
    def _defer(self, mem: MemDescriptor, d0: int, write: bool) -> Request:
        """Plan the access now, defer its execution into a Request.

        Planning at post time pins the access to the current view (a
        later ``set_view`` cannot retarget it) and pays navigation up
        front; the file I/O itself runs on ``wait()``/``test()``.
        """
        if mem.nbytes == 0:
            return Request.completed()
        engine = self.engine
        if write:
            plan = engine.plan_write_independent(mem, d0)
        else:
            plan = engine.plan_read_independent(mem, d0)

        def pending() -> None:
            guard = self._atomic_guard(mem, d0)
            try:
                engine.run_plan(plan, mem)
            finally:
                if guard:
                    self.simfile.unlock_range(*guard)

        return Request(pending, plan=plan)

    def iwrite_at(self, offset, buf, count=None, memtype=None) -> Request:
        """Nonblocking independent write at etype offset ``offset``."""
        self._check_open()
        self._check_writable()
        mem = self._mem(buf, count, memtype)
        return self._defer(mem, offset * self.view.esize, write=True)

    def iread_at(self, offset, buf, count=None, memtype=None) -> Request:
        """Nonblocking independent read at etype offset ``offset``."""
        self._check_open()
        self._check_readable()
        mem = self._mem(buf, count, memtype)
        return self._defer(mem, offset * self.view.esize, write=False)

    def iwrite(self, buf, count=None, memtype=None) -> Request:
        """Nonblocking write at the individual pointer (advances it)."""
        self._check_open()
        self._check_writable()
        mem = self._mem(buf, count, memtype)
        d0 = self._ind_ptr * self.view.esize
        self._ind_ptr = self._advance(mem, self._ind_ptr)
        return self._defer(mem, d0, write=True)

    def iread(self, buf, count=None, memtype=None) -> Request:
        """Nonblocking read at the individual pointer (advances it)."""
        self._check_open()
        self._check_readable()
        mem = self._mem(buf, count, memtype)
        d0 = self._ind_ptr * self.view.esize
        self._ind_ptr = self._advance(mem, self._ind_ptr)
        return self._defer(mem, d0, write=False)

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self._closed else "open"
        return (
            f"<File {self.shared.path!r} rank={self.comm.rank} "
            f"engine={self.engine_name} {state}>"
        )

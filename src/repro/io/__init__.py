"""MPI-IO layer: file handles, fileviews, independent and collective I/O.

The public entry point is :class:`repro.io.file_handle.File`:

>>> fh = File.open(comm, fs, "/data", MODE_CREATE | MODE_RDWR,
...                engine="listless")          # or "list_based"
>>> fh.set_view(disp, etype, filetype)          # collective
>>> fh.write_at_all(offset_in_etypes, buffer, count, memtype)
>>> fh.close()

Two interchangeable engines implement the non-contiguous machinery:

* ``list_based`` (:mod:`repro.io.engines.list_based`) — the conventional
  ROMIO approach the paper's §2 describes: explicit ol-lists, linear list
  traversal for positioning, per-tuple copy loops, per-access ol-list
  exchange for collective I/O and ol-list merging for the collective-write
  optimization.
* ``listless`` (:mod:`repro.io.engines.listless`) — the paper's §3:
  flattening-on-the-fly pack/unpack, O(depth) navigation, fileview
  caching, and the mergeview contiguity check.

Both engines share the same data sieving and two-phase drivers
(:mod:`repro.io.sieving`, :mod:`repro.io.two_phase`), so measured
differences isolate exactly what the paper changed.
"""

from repro.io.hints import Hints
from repro.io.fileview import FileView
from repro.io.file_handle import (
    File,
    MODE_RDONLY,
    MODE_WRONLY,
    MODE_RDWR,
    MODE_CREATE,
    MODE_EXCL,
    MODE_DELETE_ON_CLOSE,
    MODE_APPEND,
    SEEK_SET,
    SEEK_CUR,
    SEEK_END,
)

__all__ = [
    "File",
    "FileView",
    "Hints",
    "MODE_RDONLY",
    "MODE_WRONLY",
    "MODE_RDWR",
    "MODE_CREATE",
    "MODE_EXCL",
    "MODE_DELETE_ON_CLOSE",
    "MODE_APPEND",
    "SEEK_SET",
    "SEEK_CUR",
    "SEEK_END",
]

"""Engine-neutral round-based aggregation for two-phase collectives.

Both engines used to run their own private copy of the two-phase loop
(paper §2.3): partition the aggregate range into per-IOP file domains,
ship every AP's whole contribution to the owning IOPs in one bulk
exchange, then let each IOP walk its domain window by window.  That
one-shot exchange forces every IOP to buffer O(domain) bytes at once.

This module replaces both copies with one *round-based* driver: the
collective proceeds in rounds, one ``cb_buffer_size`` window per IOP per
round.  In each round every AP packs only the bytes falling into that
round's windows and ships them in a single alltoall, and each IOP
accesses exactly one window — bounding IOP staging memory to
O(cb_buffer_size × participating APs) and interleaving exchange with
file I/O.  What stays engine-specific is only the *metadata* — how a
rank learns which data bytes land in a window — behind the narrow
:class:`CollectiveMetadata` protocol (listless: ff navigation of cached
compact views; list-based: cursors over exchanged ol-lists).

File-domain partitioning is pluggable (the ``cb_domain_align`` hint):

``even``
    ROMIO's balanced byte split (the previous behavior);
``stripe``
    domain boundaries snapped down to ``fs/striping.py`` stripe
    boundaries, so each IOP accesses whole stripes and no two IOPs
    contend for one stripe;
``block``
    boundaries snapped to fileview block-period edges
    (``Type_ff_extent``-style: the largest ``disp + k·extent`` at or
    below the even boundary, over all accessing ranks' views), so a
    filetype instance is never split between IOPs.

Unset, the planner's cost model (:func:`repro.mpi.cost_model.
choose_domain_align`) picks a strategy per access.  Every strategy
covers ``[agg_lo, agg_hi)`` exactly with no overlap (snapped boundaries
that would cross fall back to the even split), so file contents are
byte-identical across strategies, engines and runtimes.

See ``docs/collective.md`` for the full pipeline.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Protocol, Tuple

from repro.io.two_phase import (
    COLLECTIVE_TAG_BASE,
    AccessRange,
    aggregate_ranges,
    domain_windows,
    partition_domains,
)
from repro.mpi.cost_model import (
    PIPELINE_DEPTH,
    choose_domain_align,
    choose_pipeline,
)
from repro.obs import flight, trace
from repro.plan.ops import (
    DrainOp,
    ExchangeOp,
    FileReadOp,
    FileWriteOp,
    GatherOp,
    Piece,
    RoundOp,
    ScatterOp,
    Send,
    in_slot,
    out_slot,
)

__all__ = [
    "CollectiveMetadata",
    "RoundSchedule",
    "build_round_plan",
    "domain_skew",
    "partition_domains_aligned",
    "run_collective",
    "snap_to_blocks",
    "snap_to_stripe",
]


# ----------------------------------------------------------------------
# File-domain partitioning strategies
# ----------------------------------------------------------------------
def snap_to_stripe(boundary: int, stripe_size: int) -> int:
    """Largest stripe boundary at or below ``boundary``."""
    return (boundary // stripe_size) * stripe_size


def snap_to_blocks(
    boundary: int, geoms: List[Tuple[int, int]]
) -> Optional[int]:
    """Largest fileview block-period edge at or below ``boundary``.

    ``geoms`` holds ``(disp, ft_extent)`` per accessing rank; an edge is
    any ``disp + k·extent``.  Returns ``None`` when no view has an edge
    at or below the boundary (degenerate extents, boundary before every
    displacement) — the caller falls back to the even split.
    """
    best: Optional[int] = None
    for disp, ext in geoms:
        if ext <= 0 or boundary < disp:
            continue
        edge = disp + ((boundary - disp) // ext) * ext
        if best is None or edge > best:
            best = edge
    return best


def partition_domains_aligned(
    agg_lo: int,
    agg_hi: int,
    niops: int,
    align: str = "even",
    *,
    stripe_size: Optional[int] = None,
    geoms: Optional[List[Tuple[int, int]]] = None,
) -> List[Tuple[int, int]]:
    """Split ``[agg_lo, agg_hi)`` into ``niops`` domains under a
    partitioning strategy.

    Starts from ROMIO's even byte split and snaps each interior boundary
    down to the nearest aligned position; a snap that would land at or
    before the previous boundary reverts to the even boundary, so the
    result always covers the aggregate range exactly, with no overlap
    (some domains may be empty — the round schedule skips those IOPs).
    """
    even = partition_domains(agg_lo, agg_hi, niops)
    if align == "even" or niops <= 1:
        return even
    bounds = [agg_lo]
    for i in range(niops - 1):
        b = even[i][1]
        if align == "stripe" and stripe_size:
            snapped: Optional[int] = snap_to_stripe(b, stripe_size)
        elif align == "block" and geoms:
            snapped = snap_to_blocks(b, geoms)
        else:
            snapped = None
        if snapped is None or snapped <= bounds[-1]:
            snapped = max(b, bounds[-1])
        bounds.append(min(snapped, agg_hi))
    bounds.append(agg_hi)
    return list(zip(bounds[:-1], bounds[1:]))


def domain_skew(domains: List[Tuple[int, int]]) -> int:
    """Byte imbalance an alignment strategy introduced: largest minus
    smallest domain size."""
    if not domains:
        return 0
    sizes = [dhi - dlo for dlo, dhi in domains]
    return max(sizes) - min(sizes)


# ----------------------------------------------------------------------
# Round schedule
# ----------------------------------------------------------------------
class RoundSchedule:
    """The window timetable of one collective access.

    Round *r* pairs IOP *i* with the *r*-th ``cb_buffer_size`` window of
    its domain; IOPs whose domain is exhausted (or empty) sit the round
    out as IOPs but keep participating as APs.  The schedule is a pure
    function of (domains, cb_buffer_size), so every rank derives the
    identical timetable without communicating.

    ``pipeline`` selects the plan shape :func:`build_round_plan` emits:
    serial (strict exchange → file-I/O per round, synchronizing
    alltoall) or pipelined (double-buffered windows, background file
    I/O, relaxed p2p round synchronization).  The driver resolves it
    from the ``cb_pipeline`` hint and the round count — both rank-
    identical, so all ranks agree without a coordinating collective.
    """

    def __init__(self, domains: List[Tuple[int, int]],
                 cb_buffer_size: int, pipeline: bool = False) -> None:
        self.domains = domains
        self.cb_buffer_size = cb_buffer_size
        self.pipeline = pipeline
        self.windows = [
            domain_windows(domains, iop, cb_buffer_size)
            for iop in range(len(domains))
        ]
        self.nrounds = max((len(w) for w in self.windows), default=0)

    def window(self, iop: int, rnd: int) -> Optional[Tuple[int, int]]:
        """IOP ``iop``'s window in round ``rnd`` (``None`` when it has
        none — past its domain end, empty domain, or not an IOP)."""
        if iop >= len(self.windows):
            return None
        w = self.windows[iop]
        return w[rnd] if rnd < len(w) else None

    def active(
        self, rnd: int
    ) -> Iterator[Tuple[int, Tuple[int, int]]]:
        """Yield ``(iop, (wlo, whi))`` for every IOP serving a window in
        round ``rnd``, in IOP order (the order AP-side cursors advance)."""
        for iop, w in enumerate(self.windows):
            if rnd < len(w):
                yield iop, w[rnd]


# ----------------------------------------------------------------------
# Engine metadata protocol
# ----------------------------------------------------------------------
class CollectiveMetadata(Protocol):
    """What an engine must answer to drive one collective access.

    Implementations may keep per-access state (the list-based engine
    advances linear cursors), so the builder guarantees an ordered query
    discipline *per query family*: ``ap_span`` is asked per active IOP
    in IOP order with rounds ascending, and ``iop_pieces`` is asked for
    this rank's own windows in ascending window order — each IOP's
    window sequence is visited exactly once, in file order, within each
    family.  The two families may interleave out of round-lockstep (the
    pipelined builder asks for the *next* round's own-window pieces
    before the current round's spans, to prefetch), so implementations
    must not share cursor state between them.

    The *symmetry invariant* both sides must uphold: for any (AP, IOP,
    window), the AP's ``ap_span`` is non-empty **iff** the IOP's
    ``iop_pieces`` emits a piece for that AP — a send in some round must
    be matched by a consumer in the same round, or the IOP would read a
    stale staging buffer.
    """

    #: materialized block entries accumulated while answering queries
    #: (plan-cache size guard)
    entries: int
    #: bytes whose file accesses were merged by block coalescing
    coalesced: int

    def ap_span(self, iop: int, wlo: int,
                whi: int) -> Optional[Tuple[int, int]]:
        """My data bytes ``(d_lo, d_hi)`` falling in window
        ``[wlo, whi)`` of IOP ``iop``'s domain, or ``None``."""
        ...

    def iop_pieces(
        self, wlo: int, whi: int, write: bool
    ) -> Tuple[List[Piece], int]:
        """Per-AP pieces of my own window ``[wlo, whi)`` plus the
        covered byte count (``>= whi - wlo`` → a write may assemble the
        window without pre-reading).  Write pieces name inbound exchange
        slots, read pieces name outbound reply slots."""
        ...


# ----------------------------------------------------------------------
# The shared round loop
# ----------------------------------------------------------------------
def build_round_plan(
    md: CollectiveMetadata,
    schedule: RoundSchedule,
    write: bool,
    rng: AccessRange,
    rank: int,
) -> Tuple[List[object], int]:
    """Build the op list of one rank's round-based collective.

    Returns ``(ops, windows_planned)``.  Two plan shapes, selected by
    ``schedule.pipeline``:

    *Serial* (``pipeline=False``): the strict ``exchange → file I/O``
    sequence per round.  Every rank emits exactly ``schedule.nrounds``
    :class:`~repro.plan.ops.ExchangeOp`\\ s — the alltoall is
    synchronizing, so ranks with nothing to move still take part in
    every round.

    *Pipelined* (``pipeline=True``): a software pipeline.  Exchanges
    carry ``mode="p2p"`` with the exact send/recv peer sets the
    metadata proved (the symmetry invariant makes both sides derivable
    without coordination), so idle ranks skip the round barrier
    entirely; file ops are marked ``overlap`` so the executor runs
    round *N*'s file I/O on its background worker while round *N+1*'s
    pack/exchange proceeds.  Writes stay ordered per IOP: windows are
    submitted in round order to a FIFO worker, read-modify-write
    windows stay synchronous (drain-first), and a final
    :class:`~repro.plan.ops.DrainOp` closes the pipeline.  Reads
    prefetch: round *N*'s plan issues the read of window *N+1*, then
    drains window *N* (``keep=1`` — the double buffer) before
    exchanging its replies.
    """
    if schedule.pipeline:
        return _build_pipelined(md, schedule, write, rank)
    ops: List[object] = []
    nwin = 0
    nrounds = schedule.nrounds
    for rnd in range(nrounds):
        ops.append(RoundOp(rnd, nrounds))
        if write:
            # AP phase: pack this round's bytes per destination IOP.
            sends = []
            for iop, (wlo, whi) in schedule.active(rnd):
                span = md.ap_span(iop, wlo, whi)
                if span is not None:
                    pl, ph = span
                    slot = out_slot(iop)
                    ops.append(GatherOp(pl, ph, slot))
                    sends.append(Send(iop, slot=slot))
            ops.append(ExchangeOp(tuple(sends)))
            # IOP phase: overlay the received pieces on my window.
            win = schedule.window(rank, rnd)
            if win is not None:
                wlo, whi = win
                pieces, covered = md.iop_pieces(wlo, whi, write=True)
                if pieces:
                    mode = ("assemble" if covered >= whi - wlo
                            else "rmw")
                    ops.append(
                        FileWriteOp(wlo, whi, mode, tuple(pieces))
                    )
                    nwin += 1
        else:
            # IOP phase: read my window, reply per requesting AP.
            sends = []
            win = schedule.window(rank, rnd)
            if win is not None:
                wlo, whi = win
                pieces, _covered = md.iop_pieces(wlo, whi, write=False)
                if pieces:
                    ops.append(
                        FileReadOp(wlo, whi, "window", tuple(pieces))
                    )
                    nwin += 1
                    sends = [Send(p.slot[1], slot=p.slot)
                             for p in pieces]
            ops.append(ExchangeOp(tuple(sends)))
            # AP phase: scatter this round's replies into user memory.
            for iop, (wlo, whi) in schedule.active(rnd):
                span = md.ap_span(iop, wlo, whi)
                if span is not None:
                    pl, ph = span
                    ops.append(ScatterOp(pl, ph, in_slot(iop)))
    return ops, nwin


def _offloadable(pieces) -> bool:
    """May these pieces' file op run on the pipeline worker?  Deferred
    (``blocks=None``) pieces stream through engine codec state of
    unknown thread-safety, so they pin their op to the main thread."""
    return all(p.blocks is not None for p in pieces)


def _build_pipelined(
    md: CollectiveMetadata,
    schedule: RoundSchedule,
    write: bool,
    rank: int,
) -> Tuple[List[object], int]:
    """Pipelined plan shape (see :func:`build_round_plan`)."""
    ops: List[object] = []
    nwin = 0
    nrounds = schedule.nrounds
    if write:
        for rnd in range(nrounds):
            ops.append(RoundOp(rnd, nrounds))
            # AP phase: pack this round's bytes per destination IOP.
            sends = []
            for iop, (wlo, whi) in schedule.active(rnd):
                span = md.ap_span(iop, wlo, whi)
                if span is not None:
                    pl, ph = span
                    slot = out_slot(iop)
                    ops.append(GatherOp(pl, ph, slot))
                    sends.append(Send(iop, slot=slot))
            # IOP phase, derived before the exchange so the exchange
            # knows its receive set: who sends into my window is exactly
            # who has a piece there (the symmetry invariant).
            wop = None
            recvs: Tuple[int, ...] = ()
            win = schedule.window(rank, rnd)
            if win is not None:
                wlo, whi = win
                pieces, covered = md.iop_pieces(wlo, whi, write=True)
                if pieces:
                    # Only fully-covered windows may run behind the next
                    # round (rmw pre-reads must stay ordered), and only
                    # with materialized blocks (deferred pieces stream
                    # through engine codec state the worker can't touch).
                    mode = ("assemble" if covered >= whi - wlo
                            else "rmw")
                    overlap = (mode == "assemble"
                               and _offloadable(pieces))
                    wop = FileWriteOp(wlo, whi, mode, tuple(pieces),
                                      overlap=overlap)
                    recvs = tuple(p.slot[1] for p in pieces)
                    nwin += 1
            ops.append(ExchangeOp(tuple(sends), mode="p2p", recvs=recvs,
                                  tag=COLLECTIVE_TAG_BASE + rnd))
            if wop is not None:
                ops.append(wop)
        if nrounds:
            ops.append(DrainOp(0))
        return ops, nwin
    # Reads: prefetch up to ``PIPELINE_DEPTH`` windows ahead on the
    # worker while replies are exchanged and scattered.  Each round's
    # drain waits for exactly its own window (the worker is FIFO, so
    # ``keep`` = the number of deeper prefetches still in flight) and
    # publishes it; deeper windows carry their target round on the op,
    # so an early completion is held back — the per-peer staging slots
    # are reused from round to round and must not be overwritten before
    # the round's exchange has shipped them.  A window that cannot go
    # to the worker (deferred pieces) is NOT hoisted: it executes
    # synchronously at the top of its own round, where its immediate
    # publication is safe, and blocks prefetching past it.
    # ``iop_pieces`` windows are still queried in ascending order — the
    # memoized ``spec`` never re-queries — as the metadata query-family
    # protocol requires.
    specs = {}

    def spec(q):
        if q not in specs:
            win = schedule.window(rank, q)
            if win is None:
                specs[q] = None
            else:
                wlo, whi = win
                pieces, _covered = md.iop_pieces(wlo, whi, write=False)
                specs[q] = ((wlo, whi, tuple(pieces))
                            if pieces else None)
        return specs[q]

    pending: List[int] = []  # prefetched window rounds, FIFO order
    for rnd in range(nrounds):
        ops.append(RoundOp(rnd, nrounds))
        cur = spec(rnd)
        if pending and pending[0] == rnd:
            pending.pop(0)
            # Publish this round's window; deeper prefetches stay in
            # flight (FIFO ⇒ at most ``len(pending)`` jobs remain).
            ops.append(DrainOp(len(pending)))
            nwin += 1
        elif cur is not None:
            # Round 0, or a window the worker can't run: synchronous.
            wlo, whi, pieces = cur
            ops.append(FileReadOp(wlo, whi, "window", pieces))
            nwin += 1
        # Top up the prefetch pipe behind this round's exchange.
        q = (pending[-1] if pending else rnd) + 1
        while len(pending) < PIPELINE_DEPTH and q < nrounds:
            nxt = spec(q)
            if nxt is None:
                q += 1
                continue
            if not _offloadable(nxt[2]):
                break
            wlo, whi, pieces = nxt
            ops.append(FileReadOp(wlo, whi, "window", pieces,
                                  overlap=True, round=q))
            pending.append(q)
            q += 1
        sends = (tuple(Send(p.slot[1], slot=p.slot) for p in cur[2])
                 if cur else ())
        recvs = []
        scatters = []
        for iop, (wlo, whi) in schedule.active(rnd):
            span = md.ap_span(iop, wlo, whi)
            if span is not None:
                pl, ph = span
                recvs.append(iop)
                scatters.append(ScatterOp(pl, ph, in_slot(iop)))
        ops.append(ExchangeOp(sends, mode="p2p", recvs=tuple(recvs),
                              tag=COLLECTIVE_TAG_BASE + rnd))
        ops.extend(scatters)
    return ops, nwin


# ----------------------------------------------------------------------
# The collective driver
# ----------------------------------------------------------------------
def run_collective(engine, mem, d0: int, write: bool) -> None:
    """Orchestrate one collective access end to end.

    Aggregates ranges (piggybacking each rank's view geometry on the
    same allgather), partitions the file domains under the chosen
    alignment strategy, derives the round schedule, asks the engine for
    its plan and runs it.  Empty-domain IOPs and ranks beyond the IOP
    count fall out of the schedule uniformly — neither engine re-checks.
    """
    fh = engine.fh
    comm = fh.comm
    stats = engine.stats
    hints = fh.hints

    # The range allgather (and waiting for slower ranks inside it) is
    # the collective's synchronization cost.
    t0 = time.perf_counter()
    rng = engine.access_range(mem, d0)
    ranges, agg_lo, agg_hi, geoms = aggregate_ranges(
        comm, rng, extra=engine.domain_geometry()
    )
    stats.phases.add("sync", time.perf_counter() - t0)
    if trace.TRACE_ON:
        trace.TRACER.add("two_phase.aggregate_ranges", t0)
    if agg_lo is None:
        return  # nobody accesses anything

    niops = hints.effective_cb_nodes(comm.size)
    striping = getattr(fh.simfile, "striping", None)
    live_geoms = [g for g, r in zip(geoms, ranges) if not r.empty]
    align = hints.cb_domain_align
    if align is None:
        align = choose_domain_align(
            total_bytes=agg_hi - agg_lo,
            niops=niops,
            ndisks=striping.ndisks if striping else 1,
            stripe_size=striping.stripe_size if striping else 1,
            max_ft_extent=max((ext for _d, ext in live_geoms),
                              default=0),
        )
    domains = partition_domains_aligned(
        agg_lo, agg_hi, niops, align,
        stripe_size=striping.stripe_size if striping else None,
        geoms=live_geoms,
    )
    schedule = RoundSchedule(domains, hints.cb_buffer_size)
    # Pipeline decision: a pure function of rank-identical inputs (the
    # hint, and a round count derived from the allgathered ranges), so
    # every rank agrees without another collective.
    schedule.pipeline = choose_pipeline(
        mode=hints.cb_pipeline, nrounds=schedule.nrounds
    )
    stats.coll_rounds += schedule.nrounds
    stats.coll_domain_skew = max(stats.coll_domain_skew,
                                 domain_skew(domains))
    if trace.TRACE_ON:
        trace.TRACER.add("aggregation.partition", t0, align=align,
                         niops=niops, nrounds=schedule.nrounds,
                         pipeline=schedule.pipeline)
    # Flight-recorder breadcrumb: if this collective dies mid-flight,
    # the record names what was being attempted and how far it got
    # (per-round progress lands via the executor's ``note_round``).
    flight.note("collective", write=write, rounds=schedule.nrounds,
                pipeline=schedule.pipeline, align=align)
    plan = engine.collective_plan(write, rng, ranges, domains, schedule)
    engine.run_plan(plan, mem)

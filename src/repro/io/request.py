"""Nonblocking request objects.

A :class:`Request` is backed by a *pending plan*: the nonblocking entry
points (``iwrite_at``/``iread_at``/``iwrite``/``iread``) plan the access
eagerly — so navigation and plan caching happen at call time, like an
MPI implementation posting the operation — and defer the execution into
a completion closure the request runs on its first ``wait()`` or
``test()``.

Semantics (matching ``MPI_Wait``/``MPI_Test``):

* completion is *lazy but exactly-once*: the closure runs on the first
  ``wait()``/``test()``, never again;
* errors raised by the deferred execution are captured and re-raised by
  ``wait()`` (and every subsequent ``wait()``/``test()`` — the request
  stays completed-with-error; it never re-executes);
* double ``wait()`` / ``test()`` after ``wait()`` are harmless no-ops;
* waiting on a request that was never started (a bare ``Request()``)
  is a program error and raises.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import IOEngineError

__all__ = ["Request"]


class Request:
    """Handle for a (possibly deferred) nonblocking operation."""

    def __init__(self, pending: Optional[Callable[[], None]] = None,
                 plan=None) -> None:
        #: The :class:`~repro.plan.plan.IOPlan` this request will run,
        #: if any (``None`` for zero-byte accesses) — introspectable
        #: until completion.
        self.plan = plan
        self._pending = pending
        self._done = False
        self._error: Optional[BaseException] = None

    @classmethod
    def completed(cls) -> "Request":
        r = cls()
        r._done = True
        return r

    def _run(self) -> None:
        fn, self._pending = self._pending, None
        try:
            fn()
        except BaseException as exc:
            self._error = exc
        finally:
            self._done = True

    def test(self) -> bool:
        """Complete the operation if still pending; True when done.

        A request that completed with an error re-raises it (as
        ``MPI_Test`` reports the operation's error class).  A bare,
        never-started request is simply not done yet.
        """
        if not self._done:
            if self._pending is None:
                return False
            self._run()
        if self._error is not None:
            raise self._error
        return True

    def wait(self) -> None:
        """Complete the operation (idempotent; re-raises its error)."""
        if not self._done:
            if self._pending is None:
                raise IOEngineError("waiting on an unstarted request")
            self._run()
        if self._error is not None:
            raise self._error

    def __repr__(self) -> str:  # pragma: no cover
        if not self._done:
            state = "pending" if self._pending else "unstarted"
        elif self._error is not None:
            state = f"error: {self._error!r}"
        else:
            state = "complete"
        return f"<Request {state}>"

"""Nonblocking request objects.

The in-process runtime performs I/O synchronously, so nonblocking calls
complete immediately; the :class:`Request` exists for API parity with
MPI-IO (``MPI_File_iwrite``/``iread`` + ``MPI_Wait``) so application code
written against the split style runs unchanged.
"""

from __future__ import annotations

from repro.errors import IOEngineError

__all__ = ["Request"]


class Request:
    """Handle for a (possibly already finished) nonblocking operation."""

    def __init__(self) -> None:
        self._done = False

    @classmethod
    def completed(cls) -> "Request":
        r = cls()
        r._done = True
        return r

    def test(self) -> bool:
        """True when the operation has completed."""
        return self._done

    def wait(self) -> None:
        """Block until completion (immediate here)."""
        if not self._done:
            raise IOEngineError("waiting on an unstarted request")

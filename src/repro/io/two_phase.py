"""Shared scaffolding for two-phase collective I/O.

Both engines perform collective access the same way (paper §2.3): the
aggregate file range of all processes is partitioned into contiguous *file
domains*, each owned by an I/O process (IOP); access processes (APs) ship
their data for a domain to its IOP, which performs the actual file access
window by window.  What differs between the engines is only the
*metadata*: list-based I/O must build and send expanded ol-lists per
AP×IOP pair for every access, listless I/O navigates cached fileviews.

This module holds the engine-independent pieces: range aggregation over
the communicator, domain partitioning, the access-range record, and the
AP↔IOP payload exchange itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.obs import trace

__all__ = [
    "AccessRange",
    "COLLECTIVE_TAG_BASE",
    "aggregate_ranges",
    "exchange",
    "exchange_p2p",
    "partition_domains",
    "domain_windows",
]

#: Tag namespace reserved for relaxed-synchronization collective rounds
#: (round ``r`` of a collective exchanges under ``BASE + r``).  High
#: enough that user-level and runtime-internal tags never collide with
#: it, and below the proc backend's group-collective namespace
#: (``1 << 40``).  Tag reuse across back-to-back collectives is safe:
#: matching is FIFO per (source, tag) pair, and within one pair round
#: ``r`` of the next collective cannot overtake round ``r`` of the
#: previous one on the ordered transports both runtimes use.
COLLECTIVE_TAG_BASE = 1 << 30


@dataclass(frozen=True)
class AccessRange:
    """One process' access in absolute file bytes and view-data bytes.

    ``None`` bounds denote a zero-size access (the process still takes
    part in the collective calls).
    """

    abs_lo: Optional[int]
    abs_hi: Optional[int]
    data_lo: int
    data_hi: int

    @property
    def empty(self) -> bool:
        return self.abs_lo is None or self.abs_hi is None or (
            self.abs_hi <= self.abs_lo
        )


def aggregate_ranges(comm, mine: AccessRange, extra=None):
    """Allgather everyone's access range; returns (ranges, agg_lo, agg_hi).

    ``agg_lo``/``agg_hi`` are None when nobody accesses anything.  An
    optional per-rank ``extra`` payload piggybacks on the same allgather
    (no additional collective); when given, a fourth element — the list
    of every rank's extras — is appended to the return tuple.
    """
    if extra is not None:
        pairs = comm.allgather((mine, extra))
        ranges = [p[0] for p in pairs]
        extras = [p[1] for p in pairs]
    else:
        ranges = comm.allgather(mine)
        extras = None
    agg_lo: Optional[int] = None
    agg_hi: Optional[int] = None
    for r in ranges:
        if r.empty:
            continue
        agg_lo = r.abs_lo if agg_lo is None else min(agg_lo, r.abs_lo)
        agg_hi = r.abs_hi if agg_hi is None else max(agg_hi, r.abs_hi)
    if extra is not None:
        return ranges, agg_lo, agg_hi, extras
    return ranges, agg_lo, agg_hi


def exchange(comm, outbound: List) -> List:
    """The two-phase AP↔IOP payload exchange: one all-to-all.

    ``outbound[r]`` is this rank's contribution for rank ``r`` (``None``
    when it has nothing for that peer); returns the inbound list indexed
    by source rank.  Every byte the engines ship between access and I/O
    processes goes through here — on the simulated backend that is a
    reference hand-off between rank threads, on the proc backend a
    shared-memory copy between rank processes — so the exchange is the
    single seam both runtimes share.
    """
    with trace.span("two_phase.exchange"):
        return comm.alltoall(outbound)


def exchange_p2p(comm, outbound, sources, tag: int):
    """Relaxed-synchronization payload exchange: point-to-point only.

    Where the round metadata proves exactly which (AP, IOP) pairs move
    bytes, the synchronizing all-to-all is unnecessary: this rank sends
    each ``dest → payload`` of the ``outbound`` mapping eagerly, then
    completes
    receives from exactly ``sources`` in *arrival order* — no barrier,
    so ranks with empty windows in a round neither send nor wait.
    Returns ``{source: payload}``.

    Deadlock-free without ordering: sends buffer eagerly on both
    runtimes, so posting every send before any receive cannot stall.
    Self-transfers short-circuit without touching the transport.
    """
    with trace.span("two_phase.exchange_p2p"):
        inbound = {}
        me = comm.rank
        for dest, payload in outbound.items():
            if dest == me:
                inbound[me] = payload
            else:
                comm.send(dest, payload, tag=tag)
        pending = set(s for s in sources if s != me)
        while pending:
            src, payload = comm.recv_any(sorted(pending), tag)
            inbound[src] = payload
            pending.discard(src)
        return inbound


def partition_domains(
    agg_lo: int, agg_hi: int, niops: int
) -> List[Tuple[int, int]]:
    """Split ``[agg_lo, agg_hi)`` into ``niops`` contiguous file domains.

    Domain *i* is served by IOP rank *i*.  The split is balanced to the
    byte (first ``rem`` domains one byte longer), matching ROMIO's
    even-division aggregation.
    """
    total = agg_hi - agg_lo
    base, rem = divmod(total, niops)
    out: List[Tuple[int, int]] = []
    pos = agg_lo
    for i in range(niops):
        n = base + (1 if i < rem else 0)
        out.append((pos, pos + n))
        pos += n
    return out


def domain_windows(
    domains: List[Tuple[int, int]], rank: int, cb_buffer_size: int
) -> List[Tuple[int, int]]:
    """File-buffer windows this rank serves as an IOP (possibly none).

    The planner's collective schedule: rank *i* owns domain *i* and
    covers it in ``cb_buffer_size`` windows; ranks beyond the IOP count
    and empty domains get no windows.
    """
    if rank >= len(domains):
        return []
    dlo, dhi = domains[rank]
    if dhi <= dlo:
        return []
    out = []
    pos = dlo
    while pos < dhi:
        end = min(pos + cb_buffer_size, dhi)
        out.append((pos, end))
        pos = end
    return out

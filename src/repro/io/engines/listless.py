"""The listless I/O engine (paper §3).

No ol-list is ever built, stored, traversed or exchanged:

* navigation uses ``ff_size``/``ff_extent``-style dataloop walks,
  O(depth·log k) per query regardless of Nblock and of the position;
* all copying between user buffers, pack buffers and file buffers goes
  through the flattening-on-the-fly gather/scatter kernels;
* collective access relies on *fileview caching*: compact views are
  allgathered once in ``setup_view``; afterwards IOPs navigate any AP's
  view locally and only file data crosses the wire;
* the collective-write "can we skip the pre-read?" decision evaluates
  coverage directly from the cached views (the mergeview evaluation of
  §3.2.3, generalized to accesses that cover the file range only
  partially), never by merging lists.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.fileview_cache import CompactFileview, FileviewCache
from repro.core.ff_pack import ff_pack, ff_unpack
from repro.core.mergeview import build_mergeview
from repro.io.engines.base import IOEngine
from repro.io.fileview import MemDescriptor
from repro.io.sieving import read_window, windows
from repro.io.two_phase import AccessRange

__all__ = ["ListlessEngine"]


def _clip(x: int, lo: int, hi: int) -> int:
    return lo if x < lo else hi if x > hi else x


class ListlessEngine(IOEngine):
    """Flattening-on-the-fly I/O engine."""

    name = "listless"

    def __init__(self, fh) -> None:
        super().__init__(fh)
        self.cview: Optional[CompactFileview] = None
        self.cache: Optional[FileviewCache] = None
        self.mergeview = None

    # ------------------------------------------------------------------
    def setup_view(self) -> None:
        """Collective: exchange compact views once (fileview caching)."""
        view = self.fh.view
        if self.fh.shared.requires_ol_lists:
            # Paper footnote 4: NFS/PVFS-style file systems perform
            # independent accesses through their own list-based entry
            # points, so the ol-list must still be created (and cached) —
            # it is just never used by the generic access functions here.
            from repro.flatten import flatten_cached

            flatten_cached(view.filetype)
        self.cview = CompactFileview.from_view(
            view.disp, view.etype, view.filetype
        )
        comm = self.fh.comm
        gathered = comm.allgather(self.cview)
        cache = self.fh.shared.fileview_cache
        cache.install({rank: cv for rank, cv in enumerate(gathered)})
        self.cache = cache
        self.mergeview = build_mergeview(gathered)
        self.stats.ff_view_bytes_exchanged += cache.exchange_bytes

    # ------------------------------------------------------------------
    # Navigation — O(depth · log k), position-independent
    # ------------------------------------------------------------------
    def abs_of_data(self, data_off: int, end: bool = False) -> int:
        assert self.cview is not None
        self.stats.ff_navigations += 1
        return self.cview.abs_of_data(data_off, end)

    def data_of_abs(self, abs_off: int) -> int:
        assert self.cview is not None
        self.stats.ff_navigations += 1
        return self.cview.data_of_abs(abs_off)

    # ------------------------------------------------------------------
    # Memory-side pack/unpack — one gather/scatter kernel call
    # ------------------------------------------------------------------
    def pack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                 out: np.ndarray) -> None:
        if mem.is_contiguous:
            out[: d_hi - d_lo] = mem.contiguous_slice(d_lo, d_hi - d_lo)
            return
        self.stats.ff_kernel_calls += 1
        ff_pack(
            mem.buf, mem.count, mem.memtype, d_lo, out, d_hi - d_lo,
            origin=mem.origin,
        )

    def unpack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                   data: np.ndarray) -> None:
        if mem.is_contiguous:
            mem.contiguous_slice(d_lo, d_hi - d_lo)[...] = data[: d_hi - d_lo]
            return
        self.stats.ff_kernel_calls += 1
        ff_unpack(
            data, d_hi - d_lo, mem.buf, mem.count, mem.memtype, d_lo,
            origin=mem.origin,
        )

    # ------------------------------------------------------------------
    # Independent access: data sieving with ff kernels
    # ------------------------------------------------------------------
    def _dense_range(self, lo: int, hi: int) -> bool:
        """One ``ff_size``-style evaluation decides whether the access
        range is fully dense through the view — i.e. the non-contiguous
        *type* produces a contiguous *access* (e.g. a k-plane of a 3-D
        subarray).  The list-based engine has no O(depth) way to ask
        this and always runs its block walk."""
        assert self.cview is not None
        return self.cview.data_in_range(lo, hi) == hi - lo

    def _sieve_write(self, mem: MemDescriptor, d0: int, lo: int,
                     hi: int) -> None:
        assert self.cview is not None
        fh = self.fh
        simfile = fh.simfile
        d1 = d0 + mem.nbytes
        cv = self.cview
        if not fh.hints.ds_write:
            self._blockwise_write(mem, d0, d1)
            return
        if self._dense_range(lo, hi):
            # Contiguous access through a non-contiguous view: one plain
            # write, no read-modify-write, no lock.
            if mem.is_contiguous:
                simfile.pwrite(lo, mem.contiguous_slice(0, d1 - d0))
            else:
                pack = np.empty(d1 - d0, dtype=np.uint8)
                self.pack_mem(mem, 0, d1 - d0, pack)
                simfile.pwrite(lo, pack)
            return
        bufsize = fh.hints.ind_wr_buffer_size
        pack = np.empty(min(mem.nbytes, bufsize), dtype=np.uint8)
        for wlo, whi in windows(lo, hi, bufsize):
            dl = _clip(cv.data_of_abs(wlo), d0, d1)
            dh = _clip(cv.data_of_abs(whi), d0, d1)
            if dh <= dl:
                continue
            simfile.lock_range(wlo, whi)
            try:
                # Independent data sieving is always read-modify-write
                # (as in ROMIO); only *collective* writes may skip the
                # pre-read, via the mergeview decision.
                fb = read_window(simfile, wlo, whi)
                # user buffer → pack buffer → file buffer (paper Fig. 3)
                self.pack_mem(mem, dl - d0, dh - d0, pack)
                offs, lens = cv.blocks_for_data(dl, dh)
                _scatter(fb, offs - wlo, lens, pack)
                simfile.pwrite(wlo, fb)
            finally:
                simfile.unlock_range(wlo, whi)

    def _sieve_read(self, mem: MemDescriptor, d0: int, lo: int,
                    hi: int) -> None:
        assert self.cview is not None
        fh = self.fh
        simfile = fh.simfile
        d1 = d0 + mem.nbytes
        cv = self.cview
        if not fh.hints.ds_read:
            self._blockwise_read(mem, d0, d1)
            return
        if self._dense_range(lo, hi):
            if mem.is_contiguous:
                simfile.pread_into(lo, mem.contiguous_slice(0, d1 - d0))
            else:
                pack = np.zeros(d1 - d0, dtype=np.uint8)
                simfile.pread_into(lo, pack)
                self.unpack_mem(mem, 0, d1 - d0, pack)
            return
        bufsize = fh.hints.ind_rd_buffer_size
        pack = np.empty(min(mem.nbytes, bufsize), dtype=np.uint8)
        for wlo, whi in windows(lo, hi, bufsize):
            dl = _clip(cv.data_of_abs(wlo), d0, d1)
            dh = _clip(cv.data_of_abs(whi), d0, d1)
            if dh <= dl:
                continue
            fb = read_window(simfile, wlo, whi)
            offs, lens = cv.blocks_for_data(dl, dh)
            _gather(fb, offs - wlo, lens, pack)
            self.unpack_mem(mem, dl - d0, dh - d0, pack)

    def _blockwise_write(self, mem: MemDescriptor, d0: int, d1: int) -> None:
        """Sieving disabled: one file write per contiguous view block."""
        assert self.cview is not None
        simfile = self.fh.simfile
        pack = np.empty(d1 - d0, dtype=np.uint8)
        self.pack_mem(mem, 0, d1 - d0, pack)
        offs, lens = self.cview.blocks_for_data(d0, d1)
        pos = 0
        for o, ln in zip(offs.tolist(), lens.tolist()):
            simfile.pwrite(o, pack[pos : pos + ln])
            pos += ln

    def _blockwise_read(self, mem: MemDescriptor, d0: int, d1: int) -> None:
        """Sieving disabled: one file read per contiguous view block."""
        assert self.cview is not None
        simfile = self.fh.simfile
        pack = np.empty(d1 - d0, dtype=np.uint8)
        offs, lens = self.cview.blocks_for_data(d0, d1)
        pos = 0
        for o, ln in zip(offs.tolist(), lens.tolist()):
            simfile.pread_into(o, pack[pos : pos + ln])
            pos += ln
        self.unpack_mem(mem, 0, d1 - d0, pack)

    # ------------------------------------------------------------------
    # Collective access: two-phase with fileview caching
    # ------------------------------------------------------------------
    def _ap_portion(
        self, cv: CompactFileview, rng: AccessRange, dlo: int, dhi: int
    ) -> Tuple[int, int]:
        """Data range of an access falling inside file domain [dlo, dhi)."""
        dl = _clip(cv.data_of_abs(dlo), rng.data_lo, rng.data_hi)
        dh = _clip(cv.data_of_abs(dhi), rng.data_lo, rng.data_hi)
        return dl, dh

    def _collective_write(self, mem, rng, ranges, domains) -> None:
        assert self.cview is not None and self.cache is not None
        fh = self.fh
        comm = fh.comm
        niops = len(domains)
        # --- AP phase: pack my contribution per IOP; only data moves.
        outbound: List[Optional[Tuple[int, int, np.ndarray]]]
        outbound = [None] * comm.size
        if not rng.empty:
            for iop, (dlo, dhi) in enumerate(domains):
                dl, dh = self._ap_portion(self.cview, rng, dlo, dhi)
                if dh <= dl:
                    continue
                data = np.empty(dh - dl, dtype=np.uint8)
                self.pack_mem(mem, dl - rng.data_lo, dh - rng.data_lo, data)
                outbound[iop] = (dl, dh, data)
        inbound = comm.alltoall(outbound)
        # --- IOP phase: scatter every AP's data into my file domain.
        if comm.rank >= niops:
            return
        dlo, dhi = domains[comm.rank]
        if dhi <= dlo:
            return
        contribs = [
            (src, self.cache.view_of(src), dl, dh, data)
            for src, item in enumerate(inbound)
            if item is not None
            for (dl, dh, data) in (item,)
        ]
        simfile = fh.simfile
        for wlo, whi in windows(dlo, dhi, fh.hints.cb_buffer_size):
            pieces = []
            covered_bytes = 0
            for src, cv, dl, dh, data in contribs:
                sl = _clip(cv.data_of_abs(wlo), dl, dh)
                sh = _clip(cv.data_of_abs(whi), dl, dh)
                if sh <= sl:
                    continue
                pieces.append((cv, sl, sh, data, dl))
                covered_bytes += sh - sl
            if not pieces:
                continue
            # Mergeview-style contiguity decision: skip the pre-read iff
            # the combined views cover every byte of the window.
            covered = covered_bytes == whi - wlo
            if covered:
                fb = np.empty(whi - wlo, dtype=np.uint8)
            else:
                fb = read_window(simfile, wlo, whi)
            for cv, sl, sh, data, dl in pieces:
                offs, lens = cv.blocks_for_data(sl, sh)
                _scatter(fb, offs - wlo, lens, data[sl - dl : sh - dl])
            simfile.pwrite(wlo, fb)

    def _collective_read(self, mem, rng, ranges, domains) -> None:
        assert self.cview is not None and self.cache is not None
        fh = self.fh
        comm = fh.comm
        niops = len(domains)
        simfile = fh.simfile
        # --- IOP phase: read my domain and gather per-AP data.
        outbound: List[Optional[Tuple[int, int, np.ndarray]]]
        outbound = [None] * comm.size
        if comm.rank < niops:
            dlo, dhi = domains[comm.rank]
            per_src: List[Optional[Tuple[int, int, np.ndarray]]] = []
            for src, r in enumerate(ranges):
                if r.empty:
                    per_src.append(None)
                    continue
                cv = self.cache.view_of(src)
                dl, dh = self._ap_portion(cv, r, dlo, dhi)
                if dh <= dl:
                    per_src.append(None)
                    continue
                per_src.append((dl, dh, np.empty(dh - dl, dtype=np.uint8)))
            for wlo, whi in windows(dlo, dhi, fh.hints.cb_buffer_size):
                fb = None
                for src, item in enumerate(per_src):
                    if item is None:
                        continue
                    dl, dh, buf = item
                    cv = self.cache.view_of(src)
                    sl = _clip(cv.data_of_abs(wlo), dl, dh)
                    sh = _clip(cv.data_of_abs(whi), dl, dh)
                    if sh <= sl:
                        continue
                    if fb is None:
                        fb = read_window(simfile, wlo, whi)
                    offs, lens = cv.blocks_for_data(sl, sh)
                    _gather(fb, offs - wlo, lens, buf[sl - dl : sh - dl])
            outbound = [
                item if item is None else (item[0], item[1], item[2])
                for item in per_src
            ]
        inbound = comm.alltoall(outbound)
        # --- AP phase: unpack every IOP's segment into the user buffer.
        if rng.empty:
            return
        for iop, item in enumerate(inbound):
            if item is None:
                continue
            dl, dh, data = item
            self.unpack_mem(mem, dl - rng.data_lo, dh - rng.data_lo, data)


# ----------------------------------------------------------------------
# Local gather/scatter aliases operating on window-relative offsets
# ----------------------------------------------------------------------
def _scatter(fb: np.ndarray, offs: np.ndarray, lens: np.ndarray,
             data: np.ndarray) -> None:
    from repro.core.gather import scatter_blocks

    scatter_blocks(fb, offs, lens, data, 0)


def _gather(fb: np.ndarray, offs: np.ndarray, lens: np.ndarray,
            out: np.ndarray) -> None:
    from repro.core.gather import gather_blocks

    gather_blocks(fb, offs, lens, out, 0)

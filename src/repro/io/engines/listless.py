"""The listless I/O engine (paper §3).

No ol-list is ever built, stored, traversed or exchanged:

* navigation uses ``ff_size``/``ff_extent``-style dataloop walks,
  O(depth·log k) per query regardless of Nblock and of the position;
* all copying between user buffers, pack buffers and file buffers goes
  through the flattening-on-the-fly gather/scatter kernels;
* collective access relies on *fileview caching*: compact views are
  allgathered once in ``setup_view``; afterwards IOPs navigate any AP's
  view locally and only file data crosses the wire;
* the collective-write "can we skip the pre-read?" decision evaluates
  coverage directly from the cached views (the mergeview evaluation of
  §3.2.3, generalized to accesses that cover the file range only
  partially), never by merging lists.

All access paths are *planned*: the engine exposes its compact view as
plan geometry, so the shared :class:`~repro.plan.planner.Planner` builds
plans with materialized block lists — and, because those plans are pure
functions of the cached views, it caches them across repeated accesses
(plans for a collective access are built once per distinct access
signature and replayed).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.fileview_cache import CompactFileview, FileviewCache
from repro.core.ff_pack import ff_pack, ff_unpack
from repro.core.mergeview import build_mergeview
from repro.io.engines.base import IOEngine
from repro.io.fileview import MemDescriptor
from repro.io.sieving import coalesce_blocks
from repro.obs import trace
from repro.plan.ops import Blocks, Piece, in_slot, out_slot

__all__ = ["ListlessEngine"]


def _clip(v: int, lo: int, hi: int) -> int:
    return min(max(v, lo), hi)


class _ListlessMetadata:
    """Collective metadata from cached compact fileviews.

    Stateless per query: any (window, rank) pair is answered by O(depth)
    navigation of the allgathered views, so the AP and IOP sides of the
    round loop are computed with the *same* arithmetic on the same views
    — which is what upholds the aggregation layer's symmetry invariant
    (a send exists iff the IOP plans a piece for it).
    """

    __slots__ = ("cview", "cache", "rng", "ranges", "entries",
                 "coalesced")

    def __init__(self, engine: "ListlessEngine", rng, ranges) -> None:
        assert engine.cview is not None and engine.cache is not None
        self.cview = engine.cview
        self.cache = engine.cache
        self.rng = rng
        self.ranges = ranges
        self.entries = 0
        self.coalesced = 0

    def ap_span(self, iop, wlo, whi):
        rng = self.rng
        if rng.empty:
            return None
        pl = _clip(self.cview.data_of_abs(wlo), rng.data_lo, rng.data_hi)
        ph = _clip(self.cview.data_of_abs(whi), rng.data_lo, rng.data_hi)
        if ph <= pl:
            return None
        return pl, ph

    def iop_pieces(self, wlo, whi, write):
        pieces = []
        covered = 0
        for src, r in enumerate(self.ranges):
            if r.empty:
                continue
            cv = self.cache.view_of(src)
            pl = _clip(cv.data_of_abs(wlo), r.data_lo, r.data_hi)
            ph = _clip(cv.data_of_abs(whi), r.data_lo, r.data_hi)
            if ph <= pl:
                continue
            offs, lens = cv.blocks_for_data(pl, ph)
            offs, lens, merged = coalesce_blocks(offs, lens)
            self.coalesced += merged
            self.entries += int(offs.size)
            slot = in_slot(src) if write else out_slot(src)
            pieces.append(Piece(slot, pl, ph, Blocks(offs, lens)))
            # Mergeview coverage (§3.2.3): ranks' data bytes in the
            # window sum to the window size iff every byte is covered.
            covered += ph - pl
        return pieces, covered


class ListlessEngine(IOEngine):
    """Flattening-on-the-fly I/O engine."""

    name = "listless"
    cacheable_plans = True

    def __init__(self, fh) -> None:
        super().__init__(fh)
        self.cview: Optional[CompactFileview] = None
        self.cache: Optional[FileviewCache] = None
        self.mergeview = None

    # ------------------------------------------------------------------
    def setup_view(self) -> None:
        """Collective: exchange compact views once (fileview caching)."""
        with trace.span("listless.setup_view"):
            self._setup_view()

    def _setup_view(self) -> None:
        view = self.fh.view
        if self.fh.shared.requires_ol_lists:
            # Paper footnote 4: NFS/PVFS-style file systems perform
            # independent accesses through their own list-based entry
            # points, so the ol-list must still be created (and cached) —
            # it is just never used by the generic access functions here.
            from repro.flatten import flatten_cached

            flatten_cached(view.filetype)
        self.cview = CompactFileview.from_view(
            view.disp, view.etype, view.filetype
        )
        self.cview.owner = self.fh.shared.file_key
        comm = self.fh.comm
        gathered = comm.allgather(self.cview)
        # Every installed view carries the file identity: compiled block
        # programs key on it, so identical geometries on other open
        # files can never serve (or be evicted by) this file's queries.
        for cv in gathered:
            cv.owner = self.fh.shared.file_key
        cache = self.fh.shared.fileview_cache
        cache.install({rank: cv for rank, cv in enumerate(gathered)})
        self.cache = cache
        self.mergeview = build_mergeview(gathered)
        self.stats.ff_view_bytes_exchanged += cache.exchange_bytes
        self.planner.invalidate()

    # ------------------------------------------------------------------
    # Navigation — O(depth · log k), position-independent
    # ------------------------------------------------------------------
    def abs_of_data(self, data_off: int, end: bool = False) -> int:
        assert self.cview is not None
        self.stats.ff_navigations += 1
        return self.cview.abs_of_data(data_off, end)

    def data_of_abs(self, abs_off: int) -> int:
        assert self.cview is not None
        self.stats.ff_navigations += 1
        return self.cview.data_of_abs(abs_off)

    def plan_geometry(self) -> Optional[CompactFileview]:
        """The compact view *is* the plan geometry: the planner clips
        windows and materializes block lists by navigating it (the
        list-based engine has no O(depth) way to offer this)."""
        return self.cview

    # ------------------------------------------------------------------
    # Memory-side pack/unpack — one gather/scatter kernel call
    # ------------------------------------------------------------------
    def _use_programs(self) -> Optional[bool]:
        """Per-file A/B toggle: ``ff_block_programs=false`` forces the
        cold traversal path; the default defers to the process-wide
        switch (:func:`repro.core.blockprog.enabled`)."""
        return None if self.fh.hints.ff_block_programs else False

    def pack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                 out: np.ndarray) -> None:
        if mem.is_contiguous:
            out[: d_hi - d_lo] = mem.contiguous_slice(d_lo, d_hi - d_lo)
            return
        self.stats.ff_kernel_calls += 1
        ff_pack(
            mem.buf, mem.count, mem.memtype, d_lo, out, d_hi - d_lo,
            origin=mem.origin, use_programs=self._use_programs(),
            owner=self.fh.shared.file_key,
        )

    def unpack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                   data: np.ndarray) -> None:
        if mem.is_contiguous:
            mem.contiguous_slice(d_lo, d_hi - d_lo)[...] = data[: d_hi - d_lo]
            return
        self.stats.ff_kernel_calls += 1
        ff_unpack(
            data, d_hi - d_lo, mem.buf, mem.count, mem.memtype, d_lo,
            origin=mem.origin, use_programs=self._use_programs(),
            owner=self.fh.shared.file_key,
        )

    # ------------------------------------------------------------------
    # Collective access: one cached round-based plan for both roles
    # ------------------------------------------------------------------
    def collective_plan(self, write, rng, ranges, domains, schedule):
        assert self.cview is not None and self.cache is not None
        return self.planner.plan_collective(write, rng, ranges, domains,
                                            schedule)

    def collective_metadata(self, write, rng, ranges):
        return _ListlessMetadata(self, rng, ranges)

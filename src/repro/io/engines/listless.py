"""The listless I/O engine (paper §3).

No ol-list is ever built, stored, traversed or exchanged:

* navigation uses ``ff_size``/``ff_extent``-style dataloop walks,
  O(depth·log k) per query regardless of Nblock and of the position;
* all copying between user buffers, pack buffers and file buffers goes
  through the flattening-on-the-fly gather/scatter kernels;
* collective access relies on *fileview caching*: compact views are
  allgathered once in ``setup_view``; afterwards IOPs navigate any AP's
  view locally and only file data crosses the wire;
* the collective-write "can we skip the pre-read?" decision evaluates
  coverage directly from the cached views (the mergeview evaluation of
  §3.2.3, generalized to accesses that cover the file range only
  partially), never by merging lists.

All access paths are *planned*: the engine exposes its compact view as
plan geometry, so the shared :class:`~repro.plan.planner.Planner` builds
plans with materialized block lists — and, because those plans are pure
functions of the cached views, it caches them across repeated accesses
(plans for a collective access are built once per distinct access
signature and replayed).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.fileview_cache import CompactFileview, FileviewCache
from repro.core.ff_pack import ff_pack, ff_unpack
from repro.core.mergeview import build_mergeview
from repro.io.engines.base import IOEngine
from repro.io.fileview import MemDescriptor
from repro.obs import trace

__all__ = ["ListlessEngine"]


class ListlessEngine(IOEngine):
    """Flattening-on-the-fly I/O engine."""

    name = "listless"
    cacheable_plans = True

    def __init__(self, fh) -> None:
        super().__init__(fh)
        self.cview: Optional[CompactFileview] = None
        self.cache: Optional[FileviewCache] = None
        self.mergeview = None

    # ------------------------------------------------------------------
    def setup_view(self) -> None:
        """Collective: exchange compact views once (fileview caching)."""
        with trace.span("listless.setup_view"):
            self._setup_view()

    def _setup_view(self) -> None:
        view = self.fh.view
        if self.fh.shared.requires_ol_lists:
            # Paper footnote 4: NFS/PVFS-style file systems perform
            # independent accesses through their own list-based entry
            # points, so the ol-list must still be created (and cached) —
            # it is just never used by the generic access functions here.
            from repro.flatten import flatten_cached

            flatten_cached(view.filetype)
        self.cview = CompactFileview.from_view(
            view.disp, view.etype, view.filetype
        )
        comm = self.fh.comm
        gathered = comm.allgather(self.cview)
        cache = self.fh.shared.fileview_cache
        cache.install({rank: cv for rank, cv in enumerate(gathered)})
        self.cache = cache
        self.mergeview = build_mergeview(gathered)
        self.stats.ff_view_bytes_exchanged += cache.exchange_bytes
        self.planner.invalidate()

    # ------------------------------------------------------------------
    # Navigation — O(depth · log k), position-independent
    # ------------------------------------------------------------------
    def abs_of_data(self, data_off: int, end: bool = False) -> int:
        assert self.cview is not None
        self.stats.ff_navigations += 1
        return self.cview.abs_of_data(data_off, end)

    def data_of_abs(self, abs_off: int) -> int:
        assert self.cview is not None
        self.stats.ff_navigations += 1
        return self.cview.data_of_abs(abs_off)

    def plan_geometry(self) -> Optional[CompactFileview]:
        """The compact view *is* the plan geometry: the planner clips
        windows and materializes block lists by navigating it (the
        list-based engine has no O(depth) way to offer this)."""
        return self.cview

    # ------------------------------------------------------------------
    # Memory-side pack/unpack — one gather/scatter kernel call
    # ------------------------------------------------------------------
    def _use_programs(self) -> Optional[bool]:
        """Per-file A/B toggle: ``ff_block_programs=false`` forces the
        cold traversal path; the default defers to the process-wide
        switch (:func:`repro.core.blockprog.enabled`)."""
        return None if self.fh.hints.ff_block_programs else False

    def pack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                 out: np.ndarray) -> None:
        if mem.is_contiguous:
            out[: d_hi - d_lo] = mem.contiguous_slice(d_lo, d_hi - d_lo)
            return
        self.stats.ff_kernel_calls += 1
        ff_pack(
            mem.buf, mem.count, mem.memtype, d_lo, out, d_hi - d_lo,
            origin=mem.origin, use_programs=self._use_programs(),
        )

    def unpack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                   data: np.ndarray) -> None:
        if mem.is_contiguous:
            mem.contiguous_slice(d_lo, d_hi - d_lo)[...] = data[: d_hi - d_lo]
            return
        self.stats.ff_kernel_calls += 1
        ff_unpack(
            data, d_hi - d_lo, mem.buf, mem.count, mem.memtype, d_lo,
            origin=mem.origin, use_programs=self._use_programs(),
        )

    # ------------------------------------------------------------------
    # Collective access: one cached plan covering both two-phase roles
    # ------------------------------------------------------------------
    def _collective_write(self, mem, rng, ranges, domains) -> None:
        assert self.cview is not None and self.cache is not None
        plan = self.planner.plan_collective(True, rng, ranges, domains)
        self.run_plan(plan, mem)

    def _collective_read(self, mem, rng, ranges, domains) -> None:
        assert self.cview is not None and self.cache is not None
        plan = self.planner.plan_collective(False, rng, ranges, domains)
        self.run_plan(plan, mem)

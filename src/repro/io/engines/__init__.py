"""I/O engines: the conventional list-based baseline and listless I/O."""

from repro.io.engines.base import IOEngine
from repro.io.engines.list_based import ListBasedEngine
from repro.io.engines.listless import ListlessEngine

ENGINES = {
    ListBasedEngine.name: ListBasedEngine,
    ListlessEngine.name: ListlessEngine,
}


def make_engine(name: str, fh) -> IOEngine:
    """Instantiate the engine ``name`` ("list_based" or "listless")."""
    try:
        cls = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose from {sorted(ENGINES)}"
        ) from None
    return cls(fh)


__all__ = ["IOEngine", "ListBasedEngine", "ListlessEngine", "make_engine",
           "ENGINES"]

"""The list-based I/O engine — a faithful re-implementation of the
conventional (ROMIO) approach the paper's §2 analyzes.

Every cost the paper attributes to ol-lists is really paid here:

* the filetype is explicitly flattened at ``set_view`` (O(Nblock) time and
  16 bytes/tuple of memory, cached per datatype as ROMIO caches it);
* a fresh ol-list is built for the memtype on *every* access and dropped
  afterwards (paper §2.1, last paragraph);
* positioning the file pointer walks the list linearly — O(Nblock/2) list
  elements per navigation on average (§2.2);
* data sieving moves the listed bytes through the shared data plane:
  the per-access lists are lowered to index arrays and batch-copied
  (§2.1's "Copy time" stays proportional to the list, but is paid in
  one fused copy); with the program layer disabled the historical
  interpreted per-tuple loop runs instead, preserving the A/B baseline;
* collective access expands each AP's view over every IOP's file domain
  into per-pair ol-lists that are *sent along with the data* (16 bytes per
  tuple of wire volume, §2.3), and the collective-write contiguity
  optimization merges all received lists per window (§2.3, last
  paragraph).

Accesses are planned like the listless engine's, but the plans preserve
the conventional cost profile: the engine offers no plan geometry, so
independent plans carry *deferred* pieces that the executor streams
through :meth:`_view_blocks` (the linear tuple walk) at execution time;
collective plans carry :class:`~repro.plan.ops.TupleBlocks` the data
plane batch-copies; and no plan is ever cached — the conventional
scheme re-derives its lists on every access, which is precisely the
overhead the paper measures.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core import blockprog
from repro.core.gather import gather_blocks, scatter_blocks
from repro.flatten.flattener import flatten_cached, flatten_datatype
from repro.flatten.list_ops import expand_range, merge_lists
from repro.flatten.ol_list import OLList
from repro.io.aggregation import build_round_plan
from repro.io.engines.base import IOEngine
from repro.io.fileview import MemDescriptor
from repro.io.two_phase import AccessRange
from repro.obs import trace
from repro.plan.ops import (
    ExchangeOp,
    Piece,
    Send,
    TupleBlocks,
    in_slot,
    out_slot,
)
from repro.plan.plan import IOPlan

__all__ = ["ListBasedEngine"]


class _ListBasedMetadata:
    """Collective metadata from exchanged ol-lists.

    Stateful: linear cursors (the paper's §2.2 positioning cost) advance
    through each list in window order.  The AP-side cursor walks the
    list this rank shipped to an IOP; the IOP-side cursor walks the
    *identical* list it received — the same tuples picked over the same
    window sequence, which upholds the aggregation layer's symmetry
    invariant without any navigation.
    """

    __slots__ = ("engine", "my_lists", "inbound", "ap_cursors",
                 "iop_cursors", "entries", "coalesced")

    def __init__(self, engine: "ListBasedEngine", my_lists,
                 inbound) -> None:
        #: {iop: (ol, d_lo)} — the lists I shipped as an AP
        self.my_lists = my_lists
        #: {src: (ol, d_lo)} — the lists I received as an IOP
        self.inbound = inbound
        self.engine = engine
        self.ap_cursors = {iop: [0, 0] for iop in my_lists}
        self.iop_cursors = {src: [0, 0] for src in inbound}
        self.entries = 0
        self.coalesced = 0

    def ap_span(self, iop, wlo, whi):
        item = self.my_lists.get(iop)
        if item is None:
            return None
        ol, dl = item
        picked, dstart = self.engine._pick_window(
            ol, self.ap_cursors[iop], wlo, whi
        )
        if not picked:
            return None
        total = sum(ln for _, ln in picked)
        return dl + dstart, dl + dstart + total

    def iop_pieces(self, wlo, whi, write):
        engine = self.engine
        pieces = []
        parts = []
        for src in sorted(self.inbound):
            ol, dl = self.inbound[src]
            picked, dstart = engine._pick_window(
                ol, self.iop_cursors[src], wlo, whi
            )
            if not picked:
                continue
            total = sum(ln for _, ln in picked)
            slot = in_slot(src) if write else out_slot(src)
            pieces.append(Piece(slot, dl + dstart, dl + dstart + total,
                                TupleBlocks(tuple(picked))))
            parts.append(picked)
            self.entries += len(picked)
        covered = 0
        if write and pieces:
            # ROMIO's contiguity optimization: merge all lists; skip
            # the pre-read iff they form one block covering the window.
            engine.stats.list_tuples_merged += sum(
                len(p) for p in parts
            )
            merged = merge_lists([OLList(p) for p in parts])
            if (
                len(merged) == 1
                and merged[0][0] <= wlo
                and merged[0][0] + merged[0][1] >= whi
            ):
                covered = whi - wlo
        return pieces, covered


class ListBasedEngine(IOEngine):
    """Conventional ol-list I/O engine."""

    name = "list_based"
    cacheable_plans = False  # lists are re-expanded on every access

    def __init__(self, fh) -> None:
        super().__init__(fh)
        self.flat: Optional[OLList] = None

    # ------------------------------------------------------------------
    def setup_view(self) -> None:
        """Explicitly flatten the filetype (no exchange happens here —
        the conventional implementation ships lists per access)."""
        with trace.span("list_based.setup_view"):
            cold = (
                getattr(self.fh.view.filetype, "_ollist_cache", None)
                is None
            )
            self.flat = flatten_cached(self.fh.view.filetype)
            if cold:
                self.stats.list_tuples_built += len(self.flat)
            self.planner.invalidate()
            # Collective call contract: everyone still synchronizes.
            self.fh.comm.barrier()

    # ------------------------------------------------------------------
    # Navigation by linear list traversal (the paper's §2.2 overhead)
    # ------------------------------------------------------------------
    def abs_of_data(self, data_off: int, end: bool = False) -> int:
        assert self.flat is not None
        view = self.fh.view
        self.stats.list_scans += 1
        if end and data_off > 0:
            q, r = divmod(data_off - 1, view.ft_size)
            i, within = self.flat.find_position(r)  # linear scan
            return (
                view.disp
                + q * view.ft_extent
                + self.flat.offsets[i]
                + within
                + 1
            )
        q, r = divmod(data_off, view.ft_size)
        i, within = self.flat.find_position(r)  # linear scan
        if i == len(self.flat):
            return view.disp + (q + 1) * view.ft_extent + self.flat.offsets[0]
        return view.disp + q * view.ft_extent + self.flat.offsets[i] + within

    def data_of_abs(self, abs_off: int) -> int:
        assert self.flat is not None
        view = self.fh.view
        rel = abs_off - view.disp
        if rel <= 0:
            return 0
        self.stats.list_scans += 1
        q, r = divmod(rel, view.ft_extent)
        return q * view.ft_size + self.flat.data_before(r)  # linear scan

    # ------------------------------------------------------------------
    # Memory side: per-access flattening; the listed bytes move in one
    # fused batched copy (or the interpreted per-tuple loop when the
    # program layer is disabled — the A/B baseline)
    # ------------------------------------------------------------------
    def _mem_block_arrays(
        self, mem: MemDescriptor, d_lo: int, d_hi: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(buffer_offsets, lengths)`` index arrays of the contiguous
        memory blocks overlapping data range ``[d_lo, d_hi)``, in data
        order.

        The memtype ol-list is still built fresh for the access — the
        §2.1 list-building cost is untouched — but clipping and tiling
        happen vectorized, and because data bytes enumerate contiguously
        the destination of a fused copy is simply sequential.
        """
        flat = flatten_datatype(mem.memtype)  # fresh list, per access
        self.stats.list_tuples_built += len(flat)
        offs = np.asarray(flat.offsets, dtype=np.int64)
        lens = np.asarray(flat.lengths, dtype=np.int64)
        fsize = int(lens.sum())
        if fsize == 0 or d_hi <= d_lo:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        cum = np.concatenate((np.zeros(1, dtype=np.int64),
                              np.cumsum(lens)))
        i_lo = d_lo // fsize
        i_hi = min(-(-d_hi // fsize), mem.count)
        insts = np.arange(i_lo, i_hi, dtype=np.int64)
        ext = mem.memtype.extent
        dstart = (insts[:, None] * fsize + cum[None, :-1]).ravel()
        blens = np.tile(lens, len(insts))
        boffs = (
            mem.origin + insts[:, None] * ext + offs[None, :]
        ).ravel()
        a = np.maximum(d_lo - dstart, 0)
        b = np.minimum(d_hi - dstart, blens)
        keep = b > a
        return boffs[keep] + a[keep], (b - a)[keep]

    def _mem_blocks(
        self, mem: MemDescriptor, d_lo: int, d_hi: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(buffer_offset, length, data_offset)`` per contiguous
        memory block overlapping data range ``[d_lo, d_hi)``.

        The memtype ol-list is built fresh for the access — exactly as
        ROMIO does — and traversed linearly from the start.
        """
        flat = flatten_datatype(mem.memtype)  # fresh list, per access
        self.stats.list_tuples_built += len(flat)
        ext = mem.memtype.extent
        base = mem.origin
        dpos = 0
        for inst in range(mem.count):
            ioff = base + inst * ext
            for off, ln in zip(flat.offsets, flat.lengths):
                if dpos + ln > d_lo and dpos < d_hi:
                    a = max(d_lo - dpos, 0)
                    b = min(d_hi - dpos, ln)
                    yield (ioff + off + a, b - a, dpos + a)
                dpos += ln
                if dpos >= d_hi:
                    return

    def pack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                 out: np.ndarray) -> None:
        if mem.is_contiguous:
            out[: d_hi - d_lo] = mem.contiguous_slice(d_lo, d_hi - d_lo)
            return
        buf = mem.as_bytes
        if blockprog.enabled():
            boffs, lens = self._mem_block_arrays(mem, d_lo, d_hi)
            gather_blocks(buf, boffs, lens, out, 0)
            return
        for boff, ln, doff in self._mem_blocks(mem, d_lo, d_hi):
            out[doff - d_lo : doff - d_lo + ln] = buf[boff : boff + ln]

    def unpack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                   data: np.ndarray) -> None:
        if mem.is_contiguous:
            mem.contiguous_slice(d_lo, d_hi - d_lo)[...] = data[: d_hi - d_lo]
            return
        buf = mem.as_bytes
        if blockprog.enabled():
            boffs, lens = self._mem_block_arrays(mem, d_lo, d_hi)
            scatter_blocks(buf, boffs, lens, data, 0)
            return
        for boff, ln, doff in self._mem_blocks(mem, d_lo, d_hi):
            buf[boff : boff + ln] = data[doff - d_lo : doff - d_lo + ln]

    # ------------------------------------------------------------------
    # View-side block walk (linear, with running state as in ROMIO)
    # ------------------------------------------------------------------
    def _view_blocks(
        self, lo: int, hi: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(abs_offset, length, data_offset)`` per view block
        clipped to absolute range ``[lo, hi)``, walking the flattened list
        one tuple at a time."""
        assert self.flat is not None
        view = self.fh.view
        flat = self.flat
        if len(flat) == 0:
            return
        ext = view.ft_extent
        fsize = view.ft_size
        rel = lo - view.disp
        inst = max(rel - flat.end_offset(), 0) // ext if ext else 0
        while True:
            base = view.disp + inst * ext
            if base + flat.offsets[0] >= hi:
                return
            dbase = inst * fsize
            dpos = 0
            for off, ln in zip(flat.offsets, flat.lengths):
                a = base + off
                b = a + ln
                if b > lo and a < hi:
                    s = max(lo - a, 0)
                    e = min(hi - a, ln)
                    yield (a + s, e - s, dbase + dpos + s)
                dpos += ln
                if a >= hi:
                    break
            inst += 1

    # ------------------------------------------------------------------
    # Deferred-piece codec: the executor streams blocks through the
    # engine's linear walk at execution time (independent access never
    # materializes a per-access list — it re-walks instead).
    # ------------------------------------------------------------------
    def stream_gather_window(self, fb: np.ndarray, wlo: int, whi: int,
                             arr: np.ndarray, base_d: int,
                             d_hi: int) -> int:
        copied = 0
        for a, ln, doff in self._view_blocks(wlo, whi):
            if doff >= d_hi:
                break
            ln = min(ln, d_hi - doff)
            arr[doff - base_d : doff - base_d + ln] = (
                fb[a - wlo : a - wlo + ln]
            )
            copied += ln
        return copied

    def stream_scatter_window(self, fb: np.ndarray, wlo: int, whi: int,
                              arr: np.ndarray, base_d: int,
                              d_hi: int) -> int:
        copied = 0
        for a, ln, doff in self._view_blocks(wlo, whi):
            if doff >= d_hi:
                break
            ln = min(ln, d_hi - doff)
            fb[a - wlo : a - wlo + ln] = (
                arr[doff - base_d : doff - base_d + ln]
            )
            copied += ln
        return copied

    def stream_read_blocks(self, file, lo: int, hi: int, arr: np.ndarray,
                           base_d: int, d_hi: int) -> None:
        for a, ln, doff in self._view_blocks(lo, hi):
            if doff >= d_hi:
                break
            ln = min(ln, d_hi - doff)
            pos = doff - base_d
            got = file.pread_into(a, arr[pos : pos + ln])
            if got < ln:
                arr[pos + got : pos + ln] = 0
        return None

    def stream_write_blocks(self, file, lo: int, hi: int, arr: np.ndarray,
                            base_d: int, d_hi: int) -> None:
        for a, ln, doff in self._view_blocks(lo, hi):
            if doff >= d_hi:
                break
            ln = min(ln, d_hi - doff)
            pos = doff - base_d
            file.pwrite(a, arr[pos : pos + ln])
        return None

    # ------------------------------------------------------------------
    # Collective access: per-access ol-list exchange + list merging.
    # Each collective runs as two plans: plan A ships the expanded
    # ol-lists — the window schedule depends on the *received* lists,
    # which the conventional scheme cannot know in advance — then the
    # shared round loop derives plan B from what arrived, with linear
    # cursors picking each window's tuples.  Data moves only inside
    # plan B's rounds.
    # ------------------------------------------------------------------
    def _expand_sends(self, rng: AccessRange, domains):
        """AP side: one expanded ol-list per IOP whose domain I touch."""
        assert self.flat is not None
        view = self.fh.view
        sends: List[Send] = []
        for iop, (dlo, dhi) in enumerate(domains):
            a_lo = max(dlo, rng.abs_lo)
            a_hi = min(dhi, rng.abs_hi)
            if a_hi <= a_lo:
                continue
            ol = expand_range(
                self.flat, view.ft_extent, view.disp, a_lo, a_hi
            )
            if len(ol) == 0:
                continue
            self.stats.list_tuples_built += len(ol)
            self.stats.list_tuples_sent += len(ol)
            dl = self.data_of_abs(ol.offsets[0])
            sends.append(Send(iop, ol=ol, d_lo=dl))
        return sends

    def _pick_window(self, ol: OLList, cursor: List[int], wlo: int,
                     whi: int) -> Tuple[List[Tuple[int, int]], int]:
        """Advance one contribution's linear cursor through a window;
        returns the clipped tuples and their starting data position."""
        idx, dpos = cursor
        picked: List[Tuple[int, int]] = []
        dstart = dpos
        while idx < len(ol):
            o, ln = ol.offsets[idx], ol.lengths[idx]
            if o >= whi:
                break
            if o + ln <= wlo:
                idx += 1
                dpos += ln
                continue
            s = max(wlo - o, 0)
            e = min(whi - o, ln)
            if not picked:
                dstart = dpos + s
            picked.append((o + s, e - s))
            if o + ln <= whi:
                idx += 1
                dpos += ln
            else:
                break  # block continues into the next window
        cursor[0], cursor[1] = idx, dpos
        return picked, dstart

    def collective_plan(self, write, rng: AccessRange, ranges, domains,
                        schedule) -> IOPlan:
        assert self.flat is not None
        comm = self.fh.comm
        d0 = rng.data_lo
        kind = "write" if write else "read"
        # --- Plan A: ship the per-IOP expanded ol-lists.  Expanding
        # them is the conventional scheme's per-access list building
        # (§2.1) — billed to the plan phase.
        t0 = time.perf_counter()
        sends = [] if rng.empty else self._expand_sends(rng, domains)
        plan_a = IOPlan(f"{kind}-collective(lists)", d0, 0,
                        (ExchangeOp(tuple(sends)),))
        self.stats.phases.add("plan", time.perf_counter() - t0)
        if trace.TRACE_ON:
            trace.TRACER.add("list_based.expand_lists", t0)
        bufs = self.run_plan(plan_a)
        # --- Plan B: the shared round loop, fed by linear cursors over
        # the lists I shipped (AP side) and the lists that arrived (IOP
        # side).  Deriving the window schedule is plan time again.
        t0 = time.perf_counter()
        inbound = {}
        for src in range(comm.size):
            item = bufs.get(in_slot(src))
            if item is None:
                continue
            ol, dl = item
            if len(ol) == 0:
                continue
            inbound[src] = (ol, dl)
        my_lists = {s.rank: (s.ol, s.d_lo) for s in sends}
        md = _ListBasedMetadata(self, my_lists, inbound)
        ops, nwin = build_round_plan(md, schedule, write, rng,
                                     comm.rank)
        nbytes = rng.data_hi - d0 if not rng.empty else 0
        plan_b = IOPlan(f"{kind}-collective", d0, nbytes, tuple(ops),
                        planned_windows=nwin)
        self.stats.phases.add("plan", time.perf_counter() - t0)
        if trace.TRACE_ON:
            trace.TRACER.add("list_based.derive_iop_schedule", t0)
        return plan_b

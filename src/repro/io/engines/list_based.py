"""The list-based I/O engine — a faithful re-implementation of the
conventional (ROMIO) approach the paper's §2 analyzes.

Every cost the paper attributes to ol-lists is really paid here:

* the filetype is explicitly flattened at ``set_view`` (O(Nblock) time and
  16 bytes/tuple of memory, cached per datatype as ROMIO caches it);
* a fresh ol-list is built for the memtype on *every* access and dropped
  afterwards (paper §2.1, last paragraph);
* positioning the file pointer walks the list linearly — O(Nblock/2) list
  elements per navigation on average (§2.2);
* data sieving copies one ``(offset, length)`` tuple at a time in an
  interpreted loop, reading the tuple before each copy (§2.1 "Copy time");
* collective access expands each AP's view over every IOP's file domain
  into per-pair ol-lists that are *sent along with the data* (16 bytes per
  tuple of wire volume, §2.3), and the collective-write contiguity
  optimization merges all received lists per window (§2.3, last
  paragraph).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.flatten.flattener import flatten_cached, flatten_datatype
from repro.flatten.list_ops import expand_range, merge_lists
from repro.flatten.ol_list import OLList
from repro.io.engines.base import IOEngine
from repro.io.fileview import MemDescriptor
from repro.io.sieving import read_window, windows
from repro.io.two_phase import AccessRange

__all__ = ["ListBasedEngine"]


def _clip(x: int, lo: int, hi: int) -> int:
    return lo if x < lo else hi if x > hi else x


class ListBasedEngine(IOEngine):
    """Conventional ol-list I/O engine."""

    name = "list_based"

    def __init__(self, fh) -> None:
        super().__init__(fh)
        self.flat: Optional[OLList] = None

    # ------------------------------------------------------------------
    def setup_view(self) -> None:
        """Explicitly flatten the filetype (no exchange happens here —
        the conventional implementation ships lists per access)."""
        cold = getattr(self.fh.view.filetype, "_ollist_cache", None) is None
        self.flat = flatten_cached(self.fh.view.filetype)
        if cold:
            self.stats.list_tuples_built += len(self.flat)
        # Collective call contract: everyone still synchronizes.
        self.fh.comm.barrier()

    # ------------------------------------------------------------------
    # Navigation by linear list traversal (the paper's §2.2 overhead)
    # ------------------------------------------------------------------
    def abs_of_data(self, data_off: int, end: bool = False) -> int:
        assert self.flat is not None
        view = self.fh.view
        self.stats.list_scans += 1
        if end and data_off > 0:
            q, r = divmod(data_off - 1, view.ft_size)
            i, within = self.flat.find_position(r)  # linear scan
            return (
                view.disp
                + q * view.ft_extent
                + self.flat.offsets[i]
                + within
                + 1
            )
        q, r = divmod(data_off, view.ft_size)
        i, within = self.flat.find_position(r)  # linear scan
        if i == len(self.flat):
            return view.disp + (q + 1) * view.ft_extent + self.flat.offsets[0]
        return view.disp + q * view.ft_extent + self.flat.offsets[i] + within

    def data_of_abs(self, abs_off: int) -> int:
        assert self.flat is not None
        view = self.fh.view
        rel = abs_off - view.disp
        if rel <= 0:
            return 0
        self.stats.list_scans += 1
        q, r = divmod(rel, view.ft_extent)
        return q * view.ft_size + self.flat.data_before(r)  # linear scan

    # ------------------------------------------------------------------
    # Memory side: per-access flattening, per-tuple copy loops
    # ------------------------------------------------------------------
    def _mem_blocks(
        self, mem: MemDescriptor, d_lo: int, d_hi: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(buffer_offset, length, data_offset)`` per contiguous
        memory block overlapping data range ``[d_lo, d_hi)``.

        The memtype ol-list is built fresh for the access — exactly as
        ROMIO does — and traversed linearly from the start.
        """
        flat = flatten_datatype(mem.memtype)  # fresh list, per access
        self.stats.list_tuples_built += len(flat)
        ext = mem.memtype.extent
        base = mem.origin
        dpos = 0
        for inst in range(mem.count):
            ioff = base + inst * ext
            for off, ln in zip(flat.offsets, flat.lengths):
                if dpos + ln > d_lo and dpos < d_hi:
                    a = max(d_lo - dpos, 0)
                    b = min(d_hi - dpos, ln)
                    yield (ioff + off + a, b - a, dpos + a)
                dpos += ln
                if dpos >= d_hi:
                    return

    def pack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                 out: np.ndarray) -> None:
        if mem.is_contiguous:
            out[: d_hi - d_lo] = mem.contiguous_slice(d_lo, d_hi - d_lo)
            return
        buf = mem.as_bytes
        for boff, ln, doff in self._mem_blocks(mem, d_lo, d_hi):
            out[doff - d_lo : doff - d_lo + ln] = buf[boff : boff + ln]

    def unpack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                   data: np.ndarray) -> None:
        if mem.is_contiguous:
            mem.contiguous_slice(d_lo, d_hi - d_lo)[...] = data[: d_hi - d_lo]
            return
        buf = mem.as_bytes
        for boff, ln, doff in self._mem_blocks(mem, d_lo, d_hi):
            buf[boff : boff + ln] = data[doff - d_lo : doff - d_lo + ln]

    # ------------------------------------------------------------------
    # View-side block walk (linear, with running state as in ROMIO)
    # ------------------------------------------------------------------
    def _view_blocks(
        self, lo: int, hi: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(abs_offset, length, data_offset)`` per view block
        clipped to absolute range ``[lo, hi)``, walking the flattened list
        one tuple at a time."""
        assert self.flat is not None
        view = self.fh.view
        flat = self.flat
        if len(flat) == 0:
            return
        ext = view.ft_extent
        fsize = view.ft_size
        rel = lo - view.disp
        inst = max(rel - flat.end_offset(), 0) // ext if ext else 0
        while True:
            base = view.disp + inst * ext
            if base + flat.offsets[0] >= hi:
                return
            dbase = inst * fsize
            dpos = 0
            for off, ln in zip(flat.offsets, flat.lengths):
                a = base + off
                b = a + ln
                if b > lo and a < hi:
                    s = max(lo - a, 0)
                    e = min(hi - a, ln)
                    yield (a + s, e - s, dbase + dpos + s)
                dpos += ln
                if a >= hi:
                    break
            inst += 1

    # ------------------------------------------------------------------
    # Independent access: data sieving with per-tuple copies
    # ------------------------------------------------------------------
    def _sieve_write(self, mem: MemDescriptor, d0: int, lo: int,
                     hi: int) -> None:
        fh = self.fh
        simfile = fh.simfile
        d1 = d0 + mem.nbytes
        if not fh.hints.ds_write:
            self._blockwise_write(mem, d0, lo, hi)
            return
        # ROMIO packs a non-contiguous user buffer once, up front.
        stage = self._stage_pack(mem)
        bufsize = fh.hints.ind_wr_buffer_size
        for wlo, whi in windows(lo, hi, bufsize):
            simfile.lock_range(wlo, whi)
            try:
                fb = read_window(simfile, wlo, whi)
                wrote = False
                for a, ln, doff in self._view_blocks(wlo, whi):
                    if doff >= d1:
                        break
                    fb[a - wlo : a - wlo + ln] = stage[
                        doff - d0 : doff - d0 + ln
                    ]
                    wrote = True
                if wrote:
                    simfile.pwrite(wlo, fb)
            finally:
                simfile.unlock_range(wlo, whi)

    def _sieve_read(self, mem: MemDescriptor, d0: int, lo: int,
                    hi: int) -> None:
        fh = self.fh
        simfile = fh.simfile
        d1 = d0 + mem.nbytes
        if not fh.hints.ds_read:
            self._blockwise_read(mem, d0, lo, hi)
            return
        stage = np.empty(mem.nbytes, dtype=np.uint8)
        bufsize = fh.hints.ind_rd_buffer_size
        for wlo, whi in windows(lo, hi, bufsize):
            fb = read_window(simfile, wlo, whi)
            for a, ln, doff in self._view_blocks(wlo, whi):
                if doff >= d1:
                    break
                stage[doff - d0 : doff - d0 + ln] = fb[a - wlo : a - wlo + ln]
        self.unpack_mem(mem, 0, mem.nbytes, stage)

    def _stage_pack(self, mem: MemDescriptor) -> np.ndarray:
        """Contiguous staging copy of the whole access (per-tuple loop)."""
        if mem.is_contiguous:
            return mem.contiguous_slice(0, mem.nbytes)
        stage = np.empty(mem.nbytes, dtype=np.uint8)
        self.pack_mem(mem, 0, mem.nbytes, stage)
        return stage

    def _blockwise_write(self, mem: MemDescriptor, d0: int, lo: int,
                         hi: int) -> None:
        """Sieving disabled: one file write per view block (per tuple)."""
        stage = self._stage_pack(mem)
        simfile = self.fh.simfile
        for a, ln, doff in self._view_blocks(lo, hi):
            simfile.pwrite(a, stage[doff - d0 : doff - d0 + ln])

    def _blockwise_read(self, mem: MemDescriptor, d0: int, lo: int,
                        hi: int) -> None:
        """Sieving disabled: one file read per view block (per tuple)."""
        stage = np.empty(mem.nbytes, dtype=np.uint8)
        simfile = self.fh.simfile
        for a, ln, doff in self._view_blocks(lo, hi):
            simfile.pread_into(a, stage[doff - d0 : doff - d0 + ln])
        self.unpack_mem(mem, 0, mem.nbytes, stage)

    # ------------------------------------------------------------------
    # Collective access: per-access ol-list exchange + list merging
    # ------------------------------------------------------------------
    def _collective_write(self, mem, rng: AccessRange, ranges, domains):
        assert self.flat is not None
        fh = self.fh
        comm = fh.comm
        view = fh.view
        niops = len(domains)
        stage = self._stage_pack(mem) if not rng.empty else None
        # --- AP phase: build and send one expanded ol-list (plus the
        # matching data bytes) per IOP whose domain I touch.
        outbound: List[Optional[Tuple[OLList, np.ndarray, int]]]
        outbound = [None] * comm.size
        if not rng.empty:
            for iop, (dlo, dhi) in enumerate(domains):
                a_lo = max(dlo, rng.abs_lo)
                a_hi = min(dhi, rng.abs_hi)
                if a_hi <= a_lo:
                    continue
                ol = expand_range(
                    self.flat, view.ft_extent, view.disp, a_lo, a_hi
                )
                if len(ol) == 0:
                    continue
                self.stats.list_tuples_built += len(ol)
                self.stats.list_tuples_sent += len(ol)
                dl = self.data_of_abs(ol.offsets[0])
                data = stage[dl - rng.data_lo : dl - rng.data_lo + ol.size]
                outbound[iop] = (ol, data, dl)
        inbound = comm.alltoall(outbound)
        # --- IOP phase.
        if comm.rank >= niops:
            return
        dlo, dhi = domains[comm.rank]
        if dhi <= dlo:
            return
        contribs = [
            (item[0], item[1])
            for item in inbound
            if item is not None and len(item[0]) > 0
        ]
        if not contribs:
            return
        simfile = fh.simfile
        cursors = [[0, 0] for _ in contribs]  # [block index, data pos]
        for wlo, whi in windows(dlo, dhi, fh.hints.cb_buffer_size):
            # Collect each AP's tuples inside the window (linear cursors).
            window_parts: List[Tuple[OLList, np.ndarray]] = []
            for ci, (ol, data) in enumerate(contribs):
                idx, dpos = cursors[ci]
                picked: List[Tuple[int, int]] = []
                dstart = dpos
                while idx < len(ol):
                    o, ln = ol.offsets[idx], ol.lengths[idx]
                    if o >= whi:
                        break
                    if o + ln <= wlo:
                        idx += 1
                        dpos += ln
                        continue
                    s = max(wlo - o, 0)
                    e = min(whi - o, ln)
                    if not picked:
                        dstart = dpos + s
                    picked.append((o + s, e - s))
                    if o + ln <= whi:
                        idx += 1
                        dpos += ln
                    else:
                        break  # block continues into the next window
                cursors[ci] = [idx, dpos]
                if picked:
                    total = sum(ln for _, ln in picked)
                    window_parts.append(
                        (OLList(picked), data[dstart : dstart + total])
                    )
            if not window_parts:
                continue
            # ROMIO's contiguity optimization: merge all lists; skip the
            # pre-read iff they form one block covering the window.
            self.stats.list_tuples_merged += sum(
                len(p) for p, _ in window_parts
            )
            merged = merge_lists([p for p, _ in window_parts])
            covered = (
                len(merged) == 1
                and merged[0][0] <= wlo
                and merged[0][0] + merged[0][1] >= whi
            )
            if covered:
                fb = np.empty(whi - wlo, dtype=np.uint8)
            else:
                fb = read_window(simfile, wlo, whi)
            for ol, data in window_parts:
                pos = 0
                for o, ln in zip(ol.offsets, ol.lengths):
                    fb[o - wlo : o - wlo + ln] = data[pos : pos + ln]
                    pos += ln
            simfile.pwrite(wlo, fb)

    def _collective_read(self, mem, rng: AccessRange, ranges, domains):
        assert self.flat is not None
        fh = self.fh
        comm = fh.comm
        view = fh.view
        niops = len(domains)
        # --- AP phase 1: request lists go to the IOPs.
        requests: List[Optional[Tuple[OLList, int]]] = [None] * comm.size
        if not rng.empty:
            for iop, (dlo, dhi) in enumerate(domains):
                a_lo = max(dlo, rng.abs_lo)
                a_hi = min(dhi, rng.abs_hi)
                if a_hi <= a_lo:
                    continue
                ol = expand_range(
                    self.flat, view.ft_extent, view.disp, a_lo, a_hi
                )
                if len(ol) == 0:
                    continue
                self.stats.list_tuples_built += len(ol)
                self.stats.list_tuples_sent += len(ol)
                dl = self.data_of_abs(ol.offsets[0])
                requests[iop] = (ol, dl)
        incoming = comm.alltoall(requests)
        # --- IOP phase: read windows and serve each request per tuple.
        replies: List[Optional[Tuple[np.ndarray, int]]] = [None] * comm.size
        if comm.rank < niops:
            dlo, dhi = domains[comm.rank]
            reqs = [
                (src, item[0], item[1], np.empty(item[0].size, np.uint8))
                for src, item in enumerate(incoming)
                if item is not None
            ]
            if reqs and dhi > dlo:
                simfile = fh.simfile
                cursors = {src: [0, 0] for src, *_ in reqs}
                for wlo, whi in windows(dlo, dhi, fh.hints.cb_buffer_size):
                    fb = None
                    for src, ol, _dl, buf in reqs:
                        idx, dpos = cursors[src]
                        while idx < len(ol):
                            o, ln = ol.offsets[idx], ol.lengths[idx]
                            if o >= whi:
                                break
                            if o + ln <= wlo:
                                idx += 1
                                dpos += ln
                                continue
                            if fb is None:
                                fb = read_window(simfile, wlo, whi)
                            s = max(wlo - o, 0)
                            e = min(whi - o, ln)
                            buf[dpos + s : dpos + e] = fb[
                                o + s - wlo : o + e - wlo
                            ]
                            if o + ln <= whi:
                                idx += 1
                                dpos += ln
                            else:
                                break
                        cursors[src] = [idx, dpos]
                for src, _ol, dl, buf in reqs:
                    replies[src] = (buf, dl)
        returned = comm.alltoall(replies)
        # --- AP phase 2: place the returned segments, then unpack.
        if rng.empty:
            return
        stage = np.empty(mem.nbytes, dtype=np.uint8)
        for item in returned:
            if item is None:
                continue
            buf, dl = item
            stage[dl - rng.data_lo : dl - rng.data_lo + buf.size] = buf
        self.unpack_mem(mem, 0, mem.nbytes, stage)
